// Table 3 — "Comparison of the Cover Tree and the exact RBC algorithm on a
// quad-core desktop machine. Times shown are the total query time in seconds
// for 10k queries."
//
// Per the paper's protocol the Cover Tree queries on ONE core (its available
// implementation is single-core and a p-way split would only improve an
// O(log n) search by O(log p)), while the RBC uses the whole machine.
#include <cstdio>

#include "bench_util.hpp"
#include "rbc/rbc.hpp"

int main() {
  using namespace rbc;
  bench::print_header(
      "Table 3: Cover Tree (1 core) vs exact RBC (all cores), total query time");

  const index_t nq = bench::num_queries();

  std::printf("%-8s %9s %12s %12s %12s %14s\n", "dataset", "n",
              "covertree(s)", "rbc(s)", "ratio", "ct_evals/q");

  for (const auto& name : bench::all_names()) {
    const bench::BenchData bd = bench::load(name, nq);

    auto tree = make_index("covertree");
    tree->build(bd.database);

    auto index = make_index("rbc-exact", {.rbc = {.seed = 1}});
    index->build(bd.database);

    const SearchRequest request{.queries = &bd.queries, .k = 1};

    // Cover tree: single core, as in the paper.
    double t_ct = 0.0;
    std::uint64_t w_ct = 0;
    {
      ThreadLimit one(1);
      const auto [t, w] =
          bench::timed([&] { (void)tree->knn_search(request); });
      t_ct = t;
      w_ct = w;
    }

    const auto [t_rbc, w_rbc] =
        bench::timed([&] { (void)index->knn_search(request); });
    (void)w_rbc;

    std::printf("%-8s %9u %12.3f %12.3f %11.1fx %14.0f\n", name.c_str(),
                bd.n, t_ct, t_rbc, t_ct / t_rbc,
                static_cast<double>(w_ct) / bd.queries.rows());
  }

  std::printf(
      "\npaper reference (Table 3, seconds for 10k queries):\n"
      "  dataset   covertree   rbc\n"
      "  bio           18.9    6.4\n"
      "  cov            0.4    1.1\n"
      "  phy            1.9    1.7\n"
      "  robot          4.6    5.1\n"
      "  tiny4          0.5    1.2\n"
      "  tiny8         14.6    3.3\n"
      "  tiny16       178.9   25.1\n"
      "  tiny32       387.0   67.9\n"
      "shape to reproduce: RBC wins clearly on the larger/higher-dimensional\n"
      "sets (bio, tiny8-32); the Cover Tree wins on the very low-dimensional\n"
      "ones (tiny4, cov).\n");
  return 0;
}
