// Micro-benchmarks of the search primitives: the brute-force primitive in
// batch and stream mode, TopK selection, and single-query latency of each
// index type (google-benchmark).
#include <benchmark/benchmark.h>

#include "baselines/balltree.hpp"
#include "baselines/covertree.hpp"
#include "baselines/kdtree.hpp"
#include "bruteforce/bf.hpp"
#include "common/rng.hpp"
#include "rbc/rbc.hpp"

namespace {

using namespace rbc;

Matrix<float> clustered(index_t rows, index_t cols, std::uint64_t seed) {
  constexpr index_t kClusters = 8;
  Matrix<float> centers(kClusters, cols);
  Rng rng(seed);
  for (index_t c = 0; c < kClusters; ++c)
    for (index_t j = 0; j < cols; ++j)
      centers.at(c, j) = rng.uniform_float(-5.0f, 5.0f);
  Matrix<float> m(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    const index_t c = rng.uniform_index(kClusters);
    for (index_t j = 0; j < cols; ++j)
      m.at(i, j) = centers.at(c, j) + rng.normal_float(0.0f, 0.3f);
  }
  return m;
}

constexpr index_t kN = 20'000;
constexpr index_t kD = 21;

void BM_BruteForceBatch(benchmark::State& state) {
  const Matrix<float> db = clustered(kN, kD, 1);
  const Matrix<float> q = clustered(64, kD, 2);
  for (auto _ : state) {
    const KnnResult r = bf_knn(q, db, 1);
    benchmark::DoNotOptimize(r.ids.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_BruteForceBatch)->Unit(benchmark::kMillisecond);

void BM_BruteForceStream(benchmark::State& state) {
  const Matrix<float> db = clustered(kN, kD, 1);
  const Matrix<float> q = clustered(1, kD, 2);
  TopK top(1);
  for (auto _ : state) {
    top.reset();
    bf_knn_stream(q.row(0), db, Euclidean{}, top);
    benchmark::DoNotOptimize(top.worst());
  }
}
BENCHMARK(BM_BruteForceStream)->Unit(benchmark::kMicrosecond);

void BM_RbcExactQuery(benchmark::State& state) {
  const Matrix<float> db = clustered(kN, kD, 1);
  const Matrix<float> q = clustered(1, kD, 2);
  RbcExactIndex<> index;
  index.build(db, {.seed = 3});
  RbcExactIndex<>::Scratch scratch;
  TopK top(1);
  for (auto _ : state) {
    top.reset();
    index.search_one(q.row(0), 1, top, scratch);
    benchmark::DoNotOptimize(top.worst());
  }
}
BENCHMARK(BM_RbcExactQuery)->Unit(benchmark::kMicrosecond);

void BM_RbcOneShotQuery(benchmark::State& state) {
  const Matrix<float> db = clustered(kN, kD, 1);
  const Matrix<float> q = clustered(1, kD, 2);
  RbcOneShotIndex<> index;
  index.build(db, {.seed = 3});
  RbcOneShotIndex<>::Scratch scratch;
  TopK top(1);
  for (auto _ : state) {
    top.reset();
    index.search_one(q.row(0), 1, top, scratch);
    benchmark::DoNotOptimize(top.worst());
  }
}
BENCHMARK(BM_RbcOneShotQuery)->Unit(benchmark::kMicrosecond);

void BM_CoverTreeQuery(benchmark::State& state) {
  const Matrix<float> db = clustered(kN, kD, 1);
  const Matrix<float> q = clustered(1, kD, 2);
  CoverTree<> tree;
  tree.build(db);
  TopK top(1);
  for (auto _ : state) {
    top.reset();
    tree.knn(q.row(0), 1, top);
    benchmark::DoNotOptimize(top.worst());
  }
}
BENCHMARK(BM_CoverTreeQuery)->Unit(benchmark::kMicrosecond);

void BM_BallTreeQuery(benchmark::State& state) {
  const Matrix<float> db = clustered(kN, kD, 1);
  const Matrix<float> q = clustered(1, kD, 2);
  BallTree<> tree;
  tree.build(db);
  TopK top(1);
  for (auto _ : state) {
    top.reset();
    tree.knn(q.row(0), 1, top);
    benchmark::DoNotOptimize(top.worst());
  }
}
BENCHMARK(BM_BallTreeQuery)->Unit(benchmark::kMicrosecond);

void BM_KdTreeQuery(benchmark::State& state) {
  const Matrix<float> db = clustered(kN, kD, 1);
  const Matrix<float> q = clustered(1, kD, 2);
  KdTree tree;
  tree.build(db);
  TopK top(1);
  for (auto _ : state) {
    top.reset();
    tree.knn(q.row(0), 1, top);
    benchmark::DoNotOptimize(top.worst());
  }
}
BENCHMARK(BM_KdTreeQuery)->Unit(benchmark::kMicrosecond);

void BM_RbcExactBuild(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const Matrix<float> db = clustered(n, kD, 1);
  for (auto _ : state) {
    RbcExactIndex<> index;
    index.build(db, {.seed = 3});
    benchmark::DoNotOptimize(index.num_reps());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RbcExactBuild)->Arg(5'000)->Arg(20'000)
    ->Unit(benchmark::kMillisecond);

void BM_TopKPush(benchmark::State& state) {
  const auto k = static_cast<index_t>(state.range(0));
  Rng rng(7);
  std::vector<float> values(4096);
  for (auto& v : values) v = rng.uniform_float(0.0f, 1.0f);
  TopK top(k);
  for (auto _ : state) {
    top.reset();
    for (index_t i = 0; i < values.size(); ++i) top.push(values[i], i);
    benchmark::DoNotOptimize(top.worst());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_TopKPush)->Arg(1)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
