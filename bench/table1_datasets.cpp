// Table 1 — "Overview of data sets": name, number of points, dimensionality.
// Extended with the measured expansion-rate estimate of each surrogate
// (log2(c) = intrinsic dimensionality), which is the property the RBC's
// guarantees depend on.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "data/expansion_rate.hpp"

int main() {
  using namespace rbc;
  bench::print_header("Table 1: overview of data sets (paper n vs scaled n)");

  std::printf("%-8s %12s %12s %5s %10s %10s %s\n", "name", "paper_n",
              "bench_n", "dim", "c_hat(q90)", "intr_dim", "provenance");

  for (const auto& name : bench::all_names()) {
    const bench::BenchData bd = bench::load(name, 0);
    // Expansion estimate on a subsample (it scans the full database once per
    // center).
    const index_t est_n = std::min<index_t>(bd.n, 20'000);
    Matrix<float> sample(est_n, bd.database.cols());
    for (index_t i = 0; i < est_n; ++i)
      sample.copy_row_from(bd.database, i, i);
    const data::ExpansionEstimate est =
        data::estimate_expansion_rate(sample, 20, 7);

    std::printf("%-8s %12u %12u %5u %10.1f %10.1f %s\n",
                bd.spec.name.c_str(), bd.spec.paper_n, bd.n,
                bd.spec.dim, est.c_q90, est.intrinsic_dim(),
                bd.spec.provenance.c_str());
  }
  std::printf("\npaper reference (Table 1): Bio 200k/74, Covertype 500k/54, "
              "Physics 100k/78, Robot 2M/21, TinyIm 10M/4-32\n");
  return 0;
}
