// Figure 3 (Appendix C) — exact-search speedup as a function of the number
// of representatives: "There is a single parameter to set for the exact
// search algorithm ... Note that the search time is relatively stable to
// this setting."
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "bruteforce/bf.hpp"
#include "rbc/rbc.hpp"

int main() {
  using namespace rbc;
  bench::print_header(
      "Figure 3: exact-search speedup vs number of representatives");

  const index_t nq = bench::num_queries();

  std::printf("%-8s %8s %9s %11s %11s %10s\n", "dataset", "nr", "t_rbc(s)",
              "speedup_t", "speedup_w", "evals/q");

  for (const auto& name : bench::all_names()) {
    const bench::BenchData bd = bench::load(name, nq);
    const auto [t_bf, w_bf] =
        bench::timed([&] { (void)bf_knn(bd.queries, bd.database, 1); });

    // The paper sweeps nr linearly (e.g. 0..10k for bio, 0..30k for tiny);
    // sweep proportionally around sqrt(n) at our scale.
    const auto root = std::sqrt(static_cast<double>(bd.n));
    for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      const auto nr =
          static_cast<index_t>(std::max(2.0, factor * root));
      if (nr > bd.n) continue;

      RbcExactIndex<> index;
      index.build(bd.database, {.num_reps = nr, .seed = 1});
      SearchStats stats;
      const auto [t_rbc, w_rbc] = bench::timed(
          [&] { (void)index.search(bd.queries, 1, &stats); });

      std::printf("%-8s %8u %9.3f %10.1fx %10.1fx %10.0f\n", name.c_str(),
                  nr, t_rbc, t_bf / t_rbc,
                  static_cast<double>(w_bf) / static_cast<double>(w_rbc),
                  stats.dist_evals_per_query());
    }
    std::printf("\n");
  }

  std::printf("paper reference (Fig. 3): speedup curves are flat-topped —\n"
              "retrieval time is relatively insensitive to nr over a wide\n"
              "range around the standard setting.\n");
  return 0;
}
