// Serving-layer throughput: batched dispatch vs one-query-per-call.
//
// Sweeps client-thread count x max_batch over one rbc-exact index and
// measures end-to-end queries/sec through the SearchService. max_batch = 1
// is the degenerate configuration — every submission becomes its own
// backend call, the way naive request/response serving drives a library —
// and is the baseline the paper's batching argument (§3: BF over a query
// block ~ matrix-matrix multiply) is measured against. A second sweep
// scales the executor pool (workers = 1..4) at the loaded configuration so
// the recorded file also tracks multi-core service throughput, and a third
// sweeps the shard count of a sharded:rbc-exact composite at the same
// loaded configuration (the next scaling axis: row-partitioned fan-out).
//
//   ./bench_serve_throughput [--smoke] [--out=PATH]
//
// Writes machine-readable results to BENCH_serve.json (schema validated by
// scripts/validate_bench_serve.py; the acceptance record compares the best
// batched configuration (max_batch >= 64) against max_batch = 1 at the
// highest client count). --smoke shrinks everything so CI can validate the
// pipeline in seconds. Knobs: RBC_SERVE_BENCH_N (database size),
// RBC_SERVE_BENCH_QUERIES (total queries per configuration).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "data/generators.hpp"
#include "dist/net_router.hpp"
#include "fault_proxy.hpp"
#include "rbc/rbc.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace rbc;

/// Non-owning adapter so every service configuration reuses one built
/// index (SearchService takes ownership; the expensive build shouldn't be
/// repeated per sweep point).
class SharedIndexView final : public Index {
 public:
  explicit SharedIndexView(const Index* inner) : inner_(inner) {}
  void build(const Matrix<float>&) override {}  // already built
  SearchResponse knn_search(const SearchRequest& request) const override {
    return inner_->knn_search(request);
  }
  IndexInfo info() const override { return inner_->info(); }

 private:
  const Index* inner_;
};

struct RunResult {
  int clients = 0;
  index_t max_batch = 0;
  int workers = 1;
  index_t num_shards = 1;
  index_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
  std::uint64_t batches = 0;
  double evals_per_query = 0.0;
};

/// One sweep point: `clients` threads, each pipelining its share of
/// `total_queries` single-query submissions (submit all, then collect), so
/// the service sees a sustained concurrent stream.
RunResult run_config(const Index& shared, const Matrix<float>& queries,
                     int clients, index_t max_batch, index_t k,
                     int workers = 1) {
  serve::SearchService service(
      std::make_unique<SharedIndexView>(&shared),
      {.max_batch = max_batch, .max_wait_us = 300, .workers = workers});

  const index_t total = queries.rows();
  const index_t per_client = total / static_cast<index_t>(clients);
  WallTimer timer;
  counters::Scope work;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      const index_t begin = static_cast<index_t>(c) * per_client;
      const index_t end =
          c == clients - 1 ? total : begin + per_client;
      std::vector<std::future<serve::QueryResult>> futures;
      futures.reserve(end - begin);
      for (index_t qi = begin; qi < end; ++qi)
        futures.push_back(service.submit({queries.row(qi), queries.cols()}, k));
      for (auto& f : futures) (void)f.get();
    });
  for (auto& thread : threads) thread.join();
  service.drain();
  const double seconds = timer.seconds();

  const serve::ServiceStats stats = service.stats();
  RunResult r;
  r.clients = clients;
  r.max_batch = max_batch;
  r.workers = workers;
  r.queries = total;
  r.seconds = seconds;
  r.qps = static_cast<double>(total) / seconds;
  r.p50_ms = stats.latency_p50_ms;
  r.p99_ms = stats.latency_p99_ms;
  r.mean_batch = stats.mean_batch();
  r.batches = stats.batches;
  r.evals_per_query =
      static_cast<double>(work.delta()) / static_cast<double>(total);
  return r;
}

struct MutateRunResult {
  double write_fraction = 0.0;
  int clients = 0;
  index_t queries = 0;     // completed read queries
  std::uint64_t writes = 0;  // insert() calls interleaved with the reads
  double seconds = 0.0;
  double qps = 0.0;  // read queries/sec under the write load
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// One read/write-mix sweep point: `clients` threads each interleave
/// single-row insert() calls into their query stream at `write_fraction`
/// of operations. Writes land in the mutable delta shard and periodically
/// trigger the background merge (max_delta is set low enough that full
/// runs cross it), so the recorded qps shows what the streaming-mutability
/// layer costs concurrent readers. The service must own a live mutable
/// index here — the shared read-only view cannot forward writes — so each
/// point rebuilds rbc-exact from the same database.
MutateRunResult run_mutate_config(const Matrix<float>& database,
                                  const Matrix<float>& queries, int clients,
                                  index_t max_batch, index_t k,
                                  double write_fraction) {
  IndexOptions options{.rbc = {.seed = 3}};
  options.max_delta = 128;  // full runs cross the merge threshold repeatedly
  options.background_merge = true;
  auto index = make_index("rbc-exact", options);
  index->build(database);
  serve::SearchService service(
      std::move(index),
      {.max_batch = max_batch, .max_wait_us = 300, .workers = 2});

  const index_t total = queries.rows();
  const index_t per_client = total / static_cast<index_t>(clients);
  const index_t every =
      write_fraction > 0.0
          ? static_cast<index_t>(1.0 / write_fraction + 0.5)
          : 0;
  const index_t dim = queries.cols();
  std::atomic<index_t> next_id{database.rows()};
  std::atomic<std::uint64_t> writes{0};
  std::atomic<index_t> query_count{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      const index_t begin = static_cast<index_t>(c) * per_client;
      const index_t end = c == clients - 1 ? total : begin + per_client;
      std::vector<std::future<serve::QueryResult>> futures;
      futures.reserve(end - begin);
      for (index_t qi = begin; qi < end; ++qi) {
        if (every != 0 && (qi - begin) % every == every - 1) {
          // A write op: insert one fresh row (content recycled from the
          // database, id globally unique so batches never collide).
          const index_t id = next_id.fetch_add(1);
          Matrix<float> one(1, dim);
          std::copy_n(database.row(id % database.rows()), dim, one.row(0));
          const index_t ids[] = {id};
          service.insert(one, ids);
          writes.fetch_add(1);
          continue;
        }
        futures.push_back(
            service.submit({queries.row(qi), queries.cols()}, k));
      }
      query_count.fetch_add(static_cast<index_t>(futures.size()));
      for (auto& f : futures) (void)f.get();
    });
  for (auto& thread : threads) thread.join();
  service.drain();
  const double seconds = timer.seconds();

  const serve::ServiceStats stats = service.stats();
  MutateRunResult r;
  r.write_fraction = write_fraction;
  r.clients = clients;
  r.queries = query_count.load();
  r.writes = writes.load();
  r.seconds = seconds;
  r.qps = static_cast<double>(r.queries) / seconds;
  r.p50_ms = stats.latency_p50_ms;
  r.p99_ms = stats.latency_p99_ms;
  return r;
}

struct NetRunResult {
  int clients = 0;
  index_t queries = 0;  // completed (admitted + answered) queries
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;  // client-observed round-trip latency
  double p99_ms = 0.0;
  std::uint64_t rejected = 0;  // kOverloaded rejections (each retried)
};

/// One network sweep point: a fresh RbcServer over loopback serving the
/// shared index, `clients` closed-loop threads each sending its share of
/// `total` single-row knn requests over its own TCP connection. Overload
/// rejections are counted, honored (sleep retry_after_ms) and retried, so
/// `queries` completed answers always arrive; `rejected` records how often
/// admission control pushed back. Latency is measured client-side — wire
/// round-trip, not just service time.
NetRunResult run_net_config(const Index& shared, const Matrix<float>& queries,
                            int clients, index_t max_batch, index_t k) {
  serve::net::RbcServer server(
      std::make_unique<SharedIndexView>(&shared), {.port = 0},
      {.max_batch = max_batch, .max_wait_us = 300, .workers = 2});
  const std::uint16_t port = server.port();

  const index_t total = queries.rows();
  const index_t per_client = total / static_cast<index_t>(clients);
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<std::uint64_t> rejected(static_cast<std::size_t>(clients), 0);
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      serve::net::RbcClient client("127.0.0.1", port);
      const index_t begin = static_cast<index_t>(c) * per_client;
      const index_t end = c == clients - 1 ? total : begin + per_client;
      auto& mine = latencies[static_cast<std::size_t>(c)];
      mine.reserve(end - begin);
      for (index_t qi = begin; qi < end; ++qi) {
        Matrix<float> one(1, queries.cols());
        std::copy_n(queries.row(qi), queries.cols(), one.row(0));
        const auto t0 = std::chrono::steady_clock::now();
        for (;;) {
          try {
            (void)client.knn(one, k);
            break;
          } catch (const serve::net::RemoteError& e) {
            if (e.code() != serve::net::ErrorCode::kOverloaded) throw;
            ++rejected[static_cast<std::size_t>(c)];
            std::this_thread::sleep_for(
                std::chrono::milliseconds(std::max(1u, e.retry_after_ms())));
          }
        }
        mine.push_back(std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
      }
    });
  for (auto& thread : threads) thread.join();
  const double seconds = timer.seconds();
  server.stop();

  std::vector<double> all;
  all.reserve(total);
  for (const auto& mine : latencies) all.insert(all.end(), mine.begin(), mine.end());
  std::sort(all.begin(), all.end());
  const auto pct = [&all](double p) {
    if (all.empty()) return 0.0;
    const auto i = static_cast<std::size_t>(
        p * static_cast<double>(all.size() - 1));
    return all[i];
  };
  NetRunResult r;
  r.clients = clients;
  r.queries = static_cast<index_t>(all.size());
  r.seconds = seconds;
  r.qps = static_cast<double>(all.size()) / seconds;
  r.p50_ms = pct(0.50);
  r.p99_ms = pct(0.99);
  for (std::uint64_t n_rejected : rejected) r.rejected += n_rejected;
  return r;
}

struct FaultRunResult {
  std::string scenario;
  int replicas = 1;
  int dead_replicas = 0;
  std::uint32_t slow_ms = 0;
  index_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t failovers = 0;
  std::uint64_t transport_errors = 0;
};

/// One fault sweep point: two shards of the database behind in-process
/// RbcServers (`replicas` identical servers per shard), a NetRouter fanning
/// closed-loop single-row queries over them under an injected failure mode:
/// `dead_replicas` of shard 0's servers stopped before the run (failover +
/// breaker cost), or shard 1 fronted by a FaultProxy adding `slow_ms` to
/// every response chunk (slow-shard cost). Latency is client-observed, so
/// the recorded qps/p99 is what a caller actually experiences while the
/// fault is live.
FaultRunResult run_fault_config(
    const std::vector<std::unique_ptr<Index>>& shard_indexes,
    const Matrix<float>& queries, index_t k, std::string scenario,
    int replicas, int dead_replicas, std::uint32_t slow_ms) {
  const std::size_t num_shards = shard_indexes.size();
  std::vector<std::vector<std::unique_ptr<serve::net::RbcServer>>> servers(
      num_shards);
  std::vector<std::vector<dist::Endpoint>> topology(num_shards);
  std::unique_ptr<rbc::testing::FaultProxy> proxy;
  for (std::size_t s = 0; s < num_shards; ++s)
    for (int r = 0; r < replicas; ++r) {
      servers[s].push_back(std::make_unique<serve::net::RbcServer>(
          std::make_unique<SharedIndexView>(shard_indexes[s].get()),
          serve::net::ServerOptions{.port = 0},
          serve::ServiceOptions{.max_batch = 64, .max_wait_us = 300,
                                .workers = 2}));
      std::uint16_t port = servers[s].back()->port();
      if (slow_ms > 0 && s == num_shards - 1 && r == 0) {
        proxy = std::make_unique<rbc::testing::FaultProxy>("127.0.0.1", port);
        proxy->set_plan({.mode = rbc::testing::FaultPlan::Mode::kDelay,
                         .delay_ms = slow_ms});
        port = proxy->port();
      }
      topology[s].push_back({"127.0.0.1", port});
    }
  for (int d = 0; d < dead_replicas; ++d) servers[0][d]->stop();

  dist::RouterOptions options;
  options.client.timeout_ms = 30'000;
  dist::NetRouter router(topology, options);

  std::vector<double> lat;
  lat.reserve(static_cast<std::size_t>(queries.rows()));
  Matrix<float> one(1, queries.cols());
  WallTimer timer;
  for (index_t qi = 0; qi < queries.rows(); ++qi) {
    std::copy_n(queries.row(qi), queries.cols(), one.row(0));
    const auto t0 = std::chrono::steady_clock::now();
    (void)router.knn(one, k);
    lat.push_back(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
  }
  const double seconds = timer.seconds();

  std::sort(lat.begin(), lat.end());
  const auto pct = [&lat](double p) {
    if (lat.empty()) return 0.0;
    return lat[static_cast<std::size_t>(p *
                                        static_cast<double>(lat.size() - 1))];
  };
  FaultRunResult r;
  r.scenario = std::move(scenario);
  r.replicas = replicas;
  r.dead_replicas = dead_replicas;
  r.slow_ms = slow_ms;
  r.queries = static_cast<index_t>(lat.size());
  r.seconds = seconds;
  r.qps = static_cast<double>(lat.size()) / seconds;
  r.p50_ms = pct(0.50);
  r.p99_ms = pct(0.99);
  r.failovers = router.stats().failovers;
  r.transport_errors = router.stats().transport_errors;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[a], "--out=", 6) == 0) out_path = argv[a] + 6;
  }

  const index_t n = static_cast<index_t>(
      env_or("RBC_SERVE_BENCH_N", std::int64_t{smoke ? 4'000 : 40'000}));
  const index_t total_queries = static_cast<index_t>(env_or(
      "RBC_SERVE_BENCH_QUERIES", std::int64_t{smoke ? 512 : 8'000}));
  const index_t dim = 32, k = 5;

  bench::print_header("Serving: batched dispatch vs one-query-per-call");
  std::printf("backend=rbc-exact n=%u dim=%u k=%u queries/config=%u%s\n\n",
              n, dim, k, total_queries, smoke ? "  [smoke]" : "");

  Matrix<float> database = data::make_subspace_clusters(
      n, dim, /*clusters=*/30, /*intrinsic_d=*/3, /*noise=*/0.05f, /*seed=*/1);
  Matrix<float> queries = data::make_subspace_clusters(
      total_queries, dim, 30, 3, 0.05f, /*seed=*/2);

  auto index = make_index("rbc-exact", {.rbc = {.seed = 3}});
  index->build(database);

  const std::vector<int> client_counts =
      smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 4, 8};
  const std::vector<index_t> batch_sizes =
      smoke ? std::vector<index_t>{1, 64}
            : std::vector<index_t>{1, 16, 64, 256};

  std::printf("%8s %10s %8s %10s %10s %10s %10s %12s\n", "clients",
              "max_batch", "workers", "qps", "p50_ms", "p99_ms", "mean_batch",
              "evals/query");
  const auto print_row = [](const RunResult& r) {
    std::printf("%8d %10u %8d %10.0f %10.2f %10.2f %10.1f %12.0f\n",
                r.clients, r.max_batch, r.workers, r.qps, r.p50_ms, r.p99_ms,
                r.mean_batch, r.evals_per_query);
  };
  std::vector<RunResult> results;
  for (int clients : client_counts)
    for (index_t max_batch : batch_sizes) {
      const RunResult r =
          run_config(*index, queries, clients, max_batch, k);
      print_row(r);
      results.push_back(r);
    }

  // Worker-pool scaling sweep: the same loaded configuration (top client
  // count, largest batch) with 1..4 executor threads, so the recorded file
  // shows multi-core *service* throughput, not just the 1-core batching
  // win. On a single-core host the extra workers mostly document the
  // absence of regression; with cores to use, batches overlap.
  const int top_clients = client_counts.back();
  const index_t top_batch = batch_sizes.back();
  std::printf("\nworker scaling (clients=%d, max_batch=%u):\n", top_clients,
              top_batch);
  std::vector<RunResult> worker_results;
  for (int workers : smoke ? std::vector<int>{1, 2}
                           : std::vector<int>{1, 2, 4}) {
    const RunResult r =
        run_config(*index, queries, top_clients, top_batch, k, workers);
    print_row(r);
    worker_results.push_back(r);
  }

  // Shard-count sweep: the same loaded configuration served by a
  // sharded:rbc-exact composite at increasing shard counts. Results stay
  // bit-identical to the unsharded index (the conformance suite enforces
  // it), so this row records the pure fan-out/merge cost-or-win per shard
  // count. Each point rebuilds the composite from the same database.
  std::printf("\nshard scaling (clients=%d, max_batch=%u, "
              "backend=sharded:rbc-exact):\n",
              top_clients, top_batch);
  std::vector<RunResult> shard_results;
  for (index_t num_shards : smoke ? std::vector<index_t>{1, 2}
                                  : std::vector<index_t>{1, 2, 4, 8}) {
    auto sharded = make_index("sharded:rbc-exact",
                              {.rbc = {.seed = 3}, .num_shards = num_shards});
    sharded->build(database);
    RunResult r =
        run_config(*sharded, queries, top_clients, top_batch, k, /*workers=*/2);
    r.num_shards = num_shards;
    print_row(r);
    shard_results.push_back(r);
  }

  // Read/write-mix sweep: the loaded configuration again, with each client
  // interleaving single-row inserts into its query stream at increasing
  // write fractions. write_fraction = 0 re-measures the pure-read baseline
  // through the same owned-mutable-index path, so the nonzero rows isolate
  // what delta-shard writes and background merges cost concurrent readers.
  std::printf("\nmutate scaling (clients=%d, max_batch=%u, "
              "backend=rbc-exact, writes interleaved):\n",
              top_clients, top_batch);
  std::printf("%8s %10s %10s %10s %10s %10s\n", "write%", "qps", "p50_ms",
              "p99_ms", "queries", "writes");
  std::vector<MutateRunResult> mutate_results;
  for (double write_fraction : {0.0, 0.01, 0.1}) {
    const MutateRunResult r = run_mutate_config(
        database, queries, top_clients, top_batch, k, write_fraction);
    std::printf("%7.1f%% %10.0f %10.2f %10.2f %10u %10llu\n",
                100.0 * r.write_fraction, r.qps, r.p50_ms, r.p99_ms,
                r.queries, static_cast<unsigned long long>(r.writes));
    mutate_results.push_back(r);
  }

  // Network scaling sweep: the same index behind an RbcServer on loopback,
  // closed-loop single-row clients at increasing client counts. This is the
  // wire-level counterpart of the in-process client sweep above: each added
  // client deepens the coalescing window, so queries/sec should grow with
  // client count until the service saturates. Latencies are client-observed
  // round trips; kOverloaded rejections are honored-and-retried and the
  // rejection count is recorded so backpressure is accounted for, not
  // hidden.
  const index_t net_queries = static_cast<index_t>(env_or(
      "RBC_SERVE_BENCH_NET_QUERIES", std::int64_t{smoke ? 128 : 2'000}));
  Matrix<float> net_query_block = data::make_subspace_clusters(
      net_queries, dim, 30, 3, 0.05f, /*seed=*/4);
  std::printf("\nnetwork scaling (loopback, single-row clients, max_batch=%u, "
              "%u queries/config):\n",
              top_batch, net_queries);
  std::printf("%8s %10s %10s %10s %10s %10s\n", "clients", "qps", "p50_ms",
              "p99_ms", "queries", "rejected");
  std::vector<NetRunResult> net_results;
  for (int clients : client_counts) {
    const NetRunResult r =
        run_net_config(*index, net_query_block, clients, top_batch, k);
    std::printf("%8d %10.0f %10.3f %10.3f %10u %10llu\n", r.clients, r.qps,
                r.p50_ms, r.p99_ms, r.queries,
                static_cast<unsigned long long>(r.rejected));
    net_results.push_back(r);
  }

  // Fault scaling sweep: the same database split over two shard-owner
  // servers and queried through the fault-tolerant NetRouter, under three
  // failure modes — healthy (replicated baseline), one dead replica
  // (failover + breaker cost on the hot path), and a 50ms slow shard
  // injected with the chaos tests' FaultProxy (every scatter waits on the
  // straggler). Answers stay exact in all three (the chaos suite asserts
  // it); these rows record what each failure mode costs in qps and tail
  // latency.
  const index_t fault_queries = static_cast<index_t>(env_or(
      "RBC_SERVE_BENCH_FAULT_QUERIES", std::int64_t{smoke ? 64 : 300}));
  Matrix<float> fault_query_block = data::make_subspace_clusters(
      fault_queries, dim, 30, 3, 0.05f, /*seed=*/5);
  std::vector<std::unique_ptr<Index>> fault_shards;
  {
    const auto assignment = shard::partition_rows(
        database.rows(), 2, shard::Partition::kContiguous);
    for (const std::vector<index_t>& mine : assignment) {
      Matrix<float> rows(static_cast<index_t>(mine.size()), database.cols());
      for (index_t i = 0; i < rows.rows(); ++i)
        rows.copy_row_from(database, mine[i], i);
      fault_shards.push_back(make_index("rbc-exact", {.rbc = {.seed = 3}}));
      fault_shards.back()->build(rows);
    }
  }
  std::printf("\nfault scaling (2 shards via NetRouter, closed-loop "
              "single-row client, %u queries/config):\n",
              fault_queries);
  std::printf("%18s %9s %6s %8s %10s %10s %10s %10s %10s\n", "scenario",
              "replicas", "dead", "slow_ms", "qps", "p50_ms", "p99_ms",
              "failovers", "transport");
  std::vector<FaultRunResult> fault_results;
  for (const auto& [scenario, replicas, dead, slow] :
       {std::tuple{"healthy", 2, 0, 0u},
        std::tuple{"one_dead_replica", 2, 1, 0u},
        std::tuple{"slow_shard_50ms", 1, 0, 50u}}) {
    const FaultRunResult r = run_fault_config(
        fault_shards, fault_query_block, k, scenario, replicas, dead, slow);
    std::printf("%18s %9d %6d %8u %10.0f %10.3f %10.3f %10llu %10llu\n",
                r.scenario.c_str(), r.replicas, r.dead_replicas, r.slow_ms,
                r.qps, r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.failovers),
                static_cast<unsigned long long>(r.transport_errors));
    fault_results.push_back(r);
  }

  // Acceptance record: best batched (max_batch >= 64) vs unbatched at the
  // highest client count.
  double unbatched_qps = 0.0, batched_qps = 0.0;
  index_t batched_at = 0;
  for (const RunResult& r : results) {
    if (r.clients != top_clients) continue;
    if (r.max_batch == 1) unbatched_qps = r.qps;
    if (r.max_batch >= 64 && r.qps > batched_qps) {
      batched_qps = r.qps;
      batched_at = r.max_batch;
    }
  }
  const double speedup =
      unbatched_qps > 0.0 ? batched_qps / unbatched_qps : 0.0;
  std::printf("\nbatched (max_batch=%u) vs one-query-per-call at %d clients: "
              "%.2fx queries/sec\n",
              batched_at, top_clients, speedup);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"serve_throughput\",\n"
               "  \"backend\": \"rbc-exact\",\n"
               "  \"smoke\": %s,\n"
               "  \"n\": %u,\n  \"dim\": %u,\n  \"k\": %u,\n"
               "  \"total_queries\": %u,\n"
               "  \"results\": [\n",
               smoke ? "true" : "false", n, dim, k, total_queries);
  const auto write_row = [out](const RunResult& r, bool last) {
    std::fprintf(out,
                 "    {\"clients\": %d, \"max_batch\": %u, \"workers\": %d, "
                 "\"num_shards\": %u, \"queries\": %u, "
                 "\"seconds\": %.4f, \"qps\": %.1f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"mean_batch\": %.2f, \"batches\": %llu, "
                 "\"dist_evals_per_query\": %.1f}%s\n",
                 r.clients, r.max_batch, r.workers, r.num_shards, r.queries,
                 r.seconds, r.qps, r.p50_ms, r.p99_ms, r.mean_batch,
                 static_cast<unsigned long long>(r.batches),
                 r.evals_per_query, last ? "" : ",");
  };
  for (std::size_t i = 0; i < results.size(); ++i)
    write_row(results[i], i + 1 == results.size());
  std::fprintf(out,
               "  ],\n"
               "  \"worker_scaling\": [\n");
  for (std::size_t i = 0; i < worker_results.size(); ++i)
    write_row(worker_results[i], i + 1 == worker_results.size());
  std::fprintf(out,
               "  ],\n"
               "  \"shard_scaling\": [\n");
  for (std::size_t i = 0; i < shard_results.size(); ++i)
    write_row(shard_results[i], i + 1 == shard_results.size());
  std::fprintf(out,
               "  ],\n"
               "  \"mutate_scaling\": [\n");
  for (std::size_t i = 0; i < mutate_results.size(); ++i) {
    const MutateRunResult& r = mutate_results[i];
    std::fprintf(out,
                 "    {\"write_fraction\": %.3f, \"clients\": %d, "
                 "\"queries\": %u, \"writes\": %llu, \"seconds\": %.4f, "
                 "\"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 r.write_fraction, r.clients, r.queries,
                 static_cast<unsigned long long>(r.writes), r.seconds, r.qps,
                 r.p50_ms, r.p99_ms,
                 i + 1 == mutate_results.size() ? "" : ",");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"net_scaling\": [\n");
  for (std::size_t i = 0; i < net_results.size(); ++i) {
    const NetRunResult& r = net_results[i];
    std::fprintf(out,
                 "    {\"clients\": %d, \"queries\": %u, \"seconds\": %.4f, "
                 "\"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"rejected\": %llu}%s\n",
                 r.clients, r.queries, r.seconds, r.qps, r.p50_ms, r.p99_ms,
                 static_cast<unsigned long long>(r.rejected),
                 i + 1 == net_results.size() ? "" : ",");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"fault_scaling\": [\n");
  for (std::size_t i = 0; i < fault_results.size(); ++i) {
    const FaultRunResult& r = fault_results[i];
    std::fprintf(out,
                 "    {\"scenario\": \"%s\", \"replicas\": %d, "
                 "\"dead_replicas\": %d, \"slow_ms\": %u, \"queries\": %u, "
                 "\"seconds\": %.4f, \"qps\": %.1f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"failovers\": %llu, "
                 "\"transport_errors\": %llu}%s\n",
                 r.scenario.c_str(), r.replicas, r.dead_replicas, r.slow_ms,
                 r.queries, r.seconds, r.qps, r.p50_ms, r.p99_ms,
                 static_cast<unsigned long long>(r.failovers),
                 static_cast<unsigned long long>(r.transport_errors),
                 i + 1 == fault_results.size() ? "" : ",");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"acceptance\": {\n"
               "    \"clients\": %d,\n"
               "    \"unbatched_qps\": %.1f,\n"
               "    \"batched_qps\": %.1f,\n"
               "    \"batched_max_batch\": %u,\n"
               "    \"speedup\": %.3f,\n"
               "    \"pass\": %s\n"
               "  }\n}\n",
               top_clients, unbatched_qps, batched_qps, batched_at, speedup,
               speedup >= 2.0 ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
