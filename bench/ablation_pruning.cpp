// Ablation (ours, motivated by §5.2): the paper notes that "the simultaneous
// use of both inequalities improved the empirical performance". This harness
// quantifies the marginal value of each pruning component of the exact
// search: rule (1) ball-overlap, rule (2) Lemma-1, the sorted-list early
// exit (Claim 2), and the annulus lower bound (our extension).
#include <cstdio>

#include "bench_util.hpp"
#include "rbc/rbc.hpp"

namespace {

struct Config {
  const char* name;
  bool overlap, lemma, early, annulus;
};

constexpr Config kConfigs[] = {
    {"none (scan all lists)", false, false, false, false},
    {"rule1 only", true, false, false, false},
    {"rule2 only", false, true, false, false},
    {"rule1+rule2", true, true, false, false},
    {"rule1+rule2+early_exit (paper)", true, true, true, false},
    {"all + annulus (extension)", true, true, true, true},
};

}  // namespace

int main() {
  using namespace rbc;
  bench::print_header("Ablation: exact-search pruning components");

  const index_t nq = bench::num_queries();

  for (const auto& name : {std::string("bio"), std::string("robot"),
                           std::string("tiny16")}) {
    const bench::BenchData bd = bench::load(name, nq);
    std::printf("--- %s (n=%u, d=%u, nr=auto) ---\n", name.c_str(), bd.n,
                bd.spec.dim);
    std::printf("%-32s %9s %10s %12s %12s\n", "config", "t(s)", "evals/q",
                "pruned_r1/q", "pruned_r2/q");

    for (const Config& cfg : kConfigs) {
      RbcParams params;
      params.seed = 1;
      params.use_overlap_rule = cfg.overlap;
      params.use_lemma_rule = cfg.lemma;
      params.use_early_exit = cfg.early;
      params.use_annulus_bound = cfg.annulus;

      RbcExactIndex<> index;
      index.build(bd.database, params);

      SearchStats stats;
      const auto [t, w] = bench::timed(
          [&] { (void)index.search(bd.queries, 1, &stats); });
      (void)w;

      std::printf("%-32s %9.3f %10.0f %12.1f %12.1f\n", cfg.name, t,
                  stats.dist_evals_per_query(),
                  static_cast<double>(stats.reps_pruned_overlap) /
                      stats.queries,
                  static_cast<double>(stats.reps_pruned_lemma) /
                      stats.queries);
    }
    std::printf("\n");
  }
  return 0;
}
