// Micro-benchmarks: the runtime-dispatched SIMD kernel layer vs scalar
// references (google-benchmark). The distance kernel is the innermost loop
// of everything in this library; these benches document the vectorization
// win per kernel shape x ISA and catch regressions.
//
//   ./bench_micro_kernels [--smoke] [--out=PATH] [gbench flags]
//
// Besides the console table, results are written as google-benchmark JSON
// to BENCH_kernels.json (schema + perf bars checked by
// scripts/validate_bench_kernels.py: every compiled ISA must beat the
// scalar single-query scan per evaluation, and the row-blocked
// single-query kernel must reach >= 2x on full runs). Dispatched shapes
// are registered once per ISA the host can execute — a host without
// AVX-512 simply has no avx512 rows, which the validator accepts.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "distance/dispatch.hpp"
#include "distance/kernels.hpp"
#include "distance/quantized.hpp"
#include "distance/pairwise.hpp"
#include "distance/pairwise_gemm.hpp"

namespace {

using namespace rbc;

constexpr index_t kDbRows = 1024;

Matrix<float> make_points(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix<float> m(rows, cols);
  Rng rng(seed);
  for (index_t i = 0; i < rows; ++i)
    for (index_t j = 0; j < cols; ++j)
      m.at(i, j) = rng.uniform_float(-1.0f, 1.0f);
  return m;
}

// The paper's dataset dimensionalities: robot=21, cov=54, bio=74, plus a
// power of two.
void BM_SqL2_Simd(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> pts = make_points(2, d, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(kernels::sq_l2(pts.row(0), pts.row(1), d));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SqL2_Simd)->Arg(21)->Arg(54)->Arg(74)->Arg(128);

void BM_SqL2_Scalar(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> pts = make_points(2, d, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        kernels::sq_l2_scalar(pts.row(0), pts.row(1), d));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SqL2_Scalar)->Arg(21)->Arg(54)->Arg(74)->Arg(128);

void BM_L1_Simd(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> pts = make_points(2, d, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(kernels::l1(pts.row(0), pts.row(1), d));
}
BENCHMARK(BM_L1_Simd)->Arg(74);

void BM_L1_Scalar(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> pts = make_points(2, d, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(kernels::l1_scalar(pts.row(0), pts.row(1), d));
}
BENCHMARK(BM_L1_Scalar)->Arg(74);

void BM_PairwiseTile(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> a = make_points(kTileQ, d, 5);
  const Matrix<float> b = make_points(kTileX, d, 6);
  Matrix<float> out(kTileQ, kTileX);
  for (auto _ : state) {
    pairwise_tile(a, 0, kTileQ, b, 0, kTileX, SqEuclidean{}, out.row(0),
                  out.stride());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kTileQ *
                          kTileX);
}
BENCHMARK(BM_PairwiseTile)->Arg(21)->Arg(74);

// Direct tiled pairwise vs the GEMM (norms + dot) formulation, the paper
// §3 "same structure as matrix-matrix multiply" observation.
void BM_PairwiseDirect(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> q = make_points(64, d, 7);
  const Matrix<float> x = make_points(2048, d, 8);
  for (auto _ : state) {
    const Matrix<float> out = pairwise_all(q, x, SqEuclidean{});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64 *
                          2048);
}
BENCHMARK(BM_PairwiseDirect)->Arg(21)->Arg(74)->Unit(benchmark::kMillisecond);

void BM_PairwiseGemm(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> q = make_points(64, d, 7);
  const Matrix<float> x = make_points(2048, d, 8);
  for (auto _ : state) {
    const Matrix<float> out = pairwise_sq_l2_gemm(q, x);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64 *
                          2048);
}
BENCHMARK(BM_PairwiseGemm)->Arg(21)->Arg(74)->Unit(benchmark::kMillisecond);

// ------------------------------------------- dispatched shapes, per ISA ---
//
// Registered from main() once per ISA this host can execute, under names
// the validator parses: "<shape>/<isa>/<d>", plus the per-query scalar
// baseline "scalar_scan/ref/<d>" every shape's items/s is compared against
// (each item = one (query, point) distance evaluation).

void bench_scalar_scan(benchmark::State& state, index_t d) {
  const Matrix<float> db = make_points(kDbRows, d, 3);
  const Matrix<float> q = make_points(1, d, 4);
  for (auto _ : state) {
    float best = kInfDist;
    for (index_t j = 0; j < kDbRows; ++j) {
      const float dist = kernels::sq_l2_scalar(q.row(0), db.row(j), d);
      if (dist < best) best = dist;
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kDbRows);
}

void bench_rows(benchmark::State& state, dispatch::Isa isa, index_t d) {
  const dispatch::KernelOps& ops = *dispatch::ops_for(isa);
  const Matrix<float> db = make_points(kDbRows, d, 3);
  const Matrix<float> q = make_points(1, d, 4);
  std::vector<float> out(kDbRows);
  for (auto _ : state) {
    ops.rows(q.row(0), d, db.data(), db.stride(), 0, kDbRows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kDbRows);
}

void bench_tile(benchmark::State& state, dispatch::Isa isa, index_t d,
                bool gemm_form) {
  const dispatch::KernelOps& ops = *dispatch::ops_for(isa);
  const Matrix<float> db = make_points(kDbRows, d, 3);
  const Matrix<float> q = make_points(dispatch::kTile, d, 4);
  const float* qrows[dispatch::kTile];
  for (index_t t = 0; t < dispatch::kTile; ++t) qrows[t] = q.row(t);
  std::vector<float> qt(static_cast<std::size_t>(d) * dispatch::kTile);
  dispatch::pack_tile(qrows, dispatch::kTile, d, qt.data());
  float q_sq[dispatch::kTile];
  std::vector<float> x_sq(kDbRows);
  for (index_t t = 0; t < dispatch::kTile; ++t)
    q_sq[t] = kernels::dot(q.row(t), q.row(t), d);
  for (index_t p = 0; p < kDbRows; ++p)
    x_sq[p] = kernels::dot(db.row(p), db.row(p), d);
  std::vector<float> out(static_cast<std::size_t>(kDbRows) * dispatch::kTile);
  float lane_min[dispatch::kTile];
  for (auto _ : state) {
    if (gemm_form)
      ops.tile_gemm(qt.data(), q_sq, d, db.data(), db.stride(), x_sq.data(),
                    0, kDbRows, out.data(), lane_min);
    else
      ops.tile(qt.data(), d, db.data(), db.stride(), 0, kDbRows, out.data(),
               lane_min);
    benchmark::DoNotOptimize(out.data());
    benchmark::DoNotOptimize(lane_min);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kDbRows *
                          dispatch::kTile);
}

// ------------------------------------------------- metric sweep, per ISA ---
//
// The runtime-metric shapes (rows_l1, rows_ip) against their own scalar
// single-query baselines ("scalar_scan_l1/ref/<d>", "scalar_scan_ip/ref/<d>"
// — one l1_scalar / dot_scalar call per row). The validator holds every
// SIMD ISA to >= 2x per evaluation over its baseline, the acceptance bar
// of the metric-generic API PR.

void bench_scalar_scan_l1(benchmark::State& state, index_t d) {
  const Matrix<float> db = make_points(kDbRows, d, 9);
  const Matrix<float> q = make_points(1, d, 10);
  for (auto _ : state) {
    float best = kInfDist;
    for (index_t j = 0; j < kDbRows; ++j) {
      const float dist = kernels::l1_scalar(q.row(0), db.row(j), d);
      if (dist < best) best = dist;
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kDbRows);
}

void bench_scalar_scan_ip(benchmark::State& state, index_t d) {
  const Matrix<float> db = make_points(kDbRows, d, 9);
  const Matrix<float> q = make_points(1, d, 10);
  for (auto _ : state) {
    float best = kInfDist;
    for (index_t j = 0; j < kDbRows; ++j) {
      const float dist = -kernels::dot_scalar(q.row(0), db.row(j), d);
      if (dist < best) best = dist;
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kDbRows);
}

void bench_rows_metric(benchmark::State& state, dispatch::Isa isa, index_t d,
                       bool ip) {
  const dispatch::KernelOps& ops = *dispatch::ops_for(isa);
  const Matrix<float> db = make_points(kDbRows, d, 9);
  const Matrix<float> q = make_points(1, d, 10);
  std::vector<float> out(kDbRows);
  for (auto _ : state) {
    if (ip)
      ops.rows_ip(q.row(0), d, db.data(), db.stride(), 0, kDbRows,
                  out.data());
    else
      ops.rows_l1(q.row(0), d, db.data(), db.stride(), 0, kDbRows,
                  out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kDbRows);
}

// ---------------------------------------------- compressed tier, per ISA ---
//
// The quantized single-query scans (rows_fp16, rows_int8) against the same
// squared-L2 baseline. The interesting number is throughput per *vector
// byte* — the compressed tier exists to shrink bytes/vector (4d float32 ->
// 2d fp16 -> 1d int8), so each entry carries a qps_per_vector_byte counter
// and the validator holds int8 to >= 2x the float `rows` kernel on that
// axis (the acceptance bar of the compressed-scan-tier PR).

void bench_rows_quant(benchmark::State& state, dispatch::Isa isa, index_t d,
                      quant::Storage mode) {
  const dispatch::KernelOps& ops = *dispatch::ops_for(isa);
  const Matrix<float> db = make_points(kDbRows, d, 3);
  const Matrix<float> q = make_points(1, d, 4);
  const quant::QuantizedStore store = quant::quantize(mode, db);
  std::vector<float> out(kDbRows);
  for (auto _ : state) {
    if (mode == quant::Storage::kFp16)
      ops.rows_fp16(q.row(0), d, store.fp16.data(), d, 0, kDbRows,
                    out.data());
    else
      ops.rows_int8(q.row(0), d, store.int8.data(), d, store.scale.data(),
                    store.offset.data(), 0, kDbRows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kDbRows);
  const double bytes_per_vector =
      static_cast<double>(d) * (mode == quant::Storage::kFp16 ? 2.0 : 1.0);
  state.counters["qps_per_vector_byte"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kDbRows / bytes_per_vector,
      benchmark::Counter::kIsRate);
}

void register_dispatch_benches(bool smoke) {
  const std::vector<index_t> dims = {21, 32, 74};
  auto tune = [smoke](benchmark::internal::Benchmark* b) {
    if (smoke) b->Iterations(200);  // schema validation in seconds, not perf
  };
  for (const index_t d : dims) {
    tune(benchmark::RegisterBenchmark(
        ("scalar_scan/ref/" + std::to_string(d)).c_str(),
        [d](benchmark::State& s) { bench_scalar_scan(s, d); }));
    tune(benchmark::RegisterBenchmark(
        ("scalar_scan_l1/ref/" + std::to_string(d)).c_str(),
        [d](benchmark::State& s) { bench_scalar_scan_l1(s, d); }));
    tune(benchmark::RegisterBenchmark(
        ("scalar_scan_ip/ref/" + std::to_string(d)).c_str(),
        [d](benchmark::State& s) { bench_scalar_scan_ip(s, d); }));
  }
  for (const dispatch::Isa isa :
       {dispatch::Isa::kScalar, dispatch::Isa::kAvx2,
        dispatch::Isa::kAvx512}) {
    if (!dispatch::isa_available(isa)) continue;
    const std::string name = dispatch::isa_name(isa);
    for (const index_t d : dims) {
      const std::string suffix = name + "/" + std::to_string(d);
      tune(benchmark::RegisterBenchmark(
          ("rows/" + suffix).c_str(),
          [isa, d](benchmark::State& s) { bench_rows(s, isa, d); }));
      tune(benchmark::RegisterBenchmark(
          ("tile/" + suffix).c_str(),
          [isa, d](benchmark::State& s) { bench_tile(s, isa, d, false); }));
      tune(benchmark::RegisterBenchmark(
          ("tile_gemm/" + suffix).c_str(),
          [isa, d](benchmark::State& s) { bench_tile(s, isa, d, true); }));
      tune(benchmark::RegisterBenchmark(
          ("rows_l1/" + suffix).c_str(),
          [isa, d](benchmark::State& s) {
            bench_rows_metric(s, isa, d, false);
          }));
      tune(benchmark::RegisterBenchmark(
          ("rows_ip/" + suffix).c_str(),
          [isa, d](benchmark::State& s) {
            bench_rows_metric(s, isa, d, true);
          }));
      tune(benchmark::RegisterBenchmark(
          ("rows_fp16/" + suffix).c_str(), [isa, d](benchmark::State& s) {
            bench_rows_quant(s, isa, d, quant::Storage::kFp16);
          }));
      tune(benchmark::RegisterBenchmark(
          ("rows_int8/" + suffix).c_str(), [isa, d](benchmark::State& s) {
            bench_rows_quant(s, isa, d, quant::Storage::kInt8);
          }));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_kernels.json";
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0)
      smoke = true;
    else if (std::strncmp(argv[a], "--out=", 6) == 0)
      out_path = argv[a] + 6;
    else
      passthrough.push_back(argv[a]);
  }
  // Route the JSON through google-benchmark's own file reporter.
  std::string out_flag = "--benchmark_out=" + out_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  passthrough.push_back(out_flag.data());
  passthrough.push_back(fmt_flag.data());
  int pass_argc = static_cast<int>(passthrough.size());

  register_dispatch_benches(smoke);
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
