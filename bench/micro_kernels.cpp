// Micro-benchmarks: SIMD vs scalar distance kernels and the tiled pairwise
// primitive (google-benchmark). The distance kernel is the innermost loop of
// everything in this library; these benches document the vectorization win
// and catch regressions.
#include <benchmark/benchmark.h>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "distance/blocked.hpp"
#include "distance/kernels.hpp"
#include "distance/pairwise.hpp"
#include "distance/pairwise_gemm.hpp"

namespace {

using namespace rbc;

Matrix<float> make_points(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix<float> m(rows, cols);
  Rng rng(seed);
  for (index_t i = 0; i < rows; ++i)
    for (index_t j = 0; j < cols; ++j)
      m.at(i, j) = rng.uniform_float(-1.0f, 1.0f);
  return m;
}

// The paper's dataset dimensionalities: robot=21, cov=54, bio=74, plus a
// power of two.
void BM_SqL2_Simd(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> pts = make_points(2, d, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(kernels::sq_l2(pts.row(0), pts.row(1), d));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SqL2_Simd)->Arg(21)->Arg(54)->Arg(74)->Arg(128);

void BM_SqL2_Scalar(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> pts = make_points(2, d, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        kernels::sq_l2_scalar(pts.row(0), pts.row(1), d));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SqL2_Scalar)->Arg(21)->Arg(54)->Arg(74)->Arg(128);

void BM_L1_Simd(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> pts = make_points(2, d, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(kernels::l1(pts.row(0), pts.row(1), d));
}
BENCHMARK(BM_L1_Simd)->Arg(74);

void BM_L1_Scalar(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> pts = make_points(2, d, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(kernels::l1_scalar(pts.row(0), pts.row(1), d));
}
BENCHMARK(BM_L1_Scalar)->Arg(74);

// One query row against a database tile: the shape of the BF inner loop.
void BM_QueryRowScan(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const index_t rows = 1024;
  const Matrix<float> db = make_points(rows, d, 3);
  const Matrix<float> q = make_points(1, d, 4);
  for (auto _ : state) {
    float best = kInfDist;
    for (index_t j = 0; j < rows; ++j) {
      const float dist = kernels::sq_l2(q.row(0), db.row(j), d);
      if (dist < best) best = dist;
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_QueryRowScan)->Arg(21)->Arg(74);

void BM_PairwiseTile(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> a = make_points(kTileQ, d, 5);
  const Matrix<float> b = make_points(kTileX, d, 6);
  Matrix<float> out(kTileQ, kTileX);
  for (auto _ : state) {
    pairwise_tile(a, 0, kTileQ, b, 0, kTileX, SqEuclidean{}, out.row(0),
                  out.stride());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kTileQ *
                          kTileX);
}
BENCHMARK(BM_PairwiseTile)->Arg(21)->Arg(74);

// Direct tiled pairwise vs the GEMM (norms + dot) formulation, the paper
// §3 "same structure as matrix-matrix multiply" observation.
void BM_PairwiseDirect(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> q = make_points(64, d, 7);
  const Matrix<float> x = make_points(2048, d, 8);
  for (auto _ : state) {
    const Matrix<float> out = pairwise_all(q, x, SqEuclidean{});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64 *
                          2048);
}
BENCHMARK(BM_PairwiseDirect)->Arg(21)->Arg(74)->Unit(benchmark::kMillisecond);

void BM_PairwiseGemm(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const Matrix<float> q = make_points(64, d, 7);
  const Matrix<float> x = make_points(2048, d, 8);
  for (auto _ : state) {
    const Matrix<float> out = pairwise_sq_l2_gemm(q, x);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64 *
                          2048);
}
BENCHMARK(BM_PairwiseGemm)->Arg(21)->Arg(74)->Unit(benchmark::kMillisecond);

// The register-blocked multi-query kernel behind the serving layer's
// batched win: kTile queries share every database-row load and keep
// independent FMA chains (distance/blocked.hpp). Compare items/s against
// BM_QueryRowScan at the same dimensionality — the per-evaluation gap (~6x
// on an AVX2 host) is what batch ≥ kBlockedMinBatch buys rbc-exact.
void BM_BlockedTileScan(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const index_t rows = 1024;
  const Matrix<float> db = make_points(rows, d, 3);
  const Matrix<float> q = make_points(blocked::kTile, d, 4);
  const float* qrows[blocked::kTile];
  for (index_t t = 0; t < blocked::kTile; ++t) qrows[t] = q.row(t);
  std::vector<float> qt(static_cast<std::size_t>(d) * blocked::kTile);
  blocked::pack_tile(qrows, blocked::kTile, d, qt.data());
  std::vector<float> out(static_cast<std::size_t>(rows) * blocked::kTile);
  for (auto _ : state) {
    blocked::sq_l2_tile(qt.data(), d, db, 0, rows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows *
                          blocked::kTile);
  state.SetLabel(blocked::fast_kernel() ? "avx2" : "scalar-fallback");
}
BENCHMARK(BM_BlockedTileScan)->Arg(21)->Arg(32)->Arg(74);

}  // namespace

BENCHMARK_MAIN();
