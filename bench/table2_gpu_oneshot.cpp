// Table 2 — "GPU results: speedup of the one-shot algorithm over brute force
// search (both on the GPU)."
//
// Both contenders run on the SIMT device substrate (DESIGN.md §2): brute
// force as one kernel over the full database, one-shot as the two RBC
// kernels. The parameter is set for a mean rank error around 1e-1, matching
// the paper's protocol ("the parameter was set to achieve an error rate of
// roughly 10^-1").
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "data/rank_error.hpp"
#include "gpu/gpu_rbc.hpp"

int main() {
  using namespace rbc;
  bench::print_header(
      "Table 2: one-shot vs brute force, both on the SIMT device");

  // The simulated device pays a per-block scheduling cost far higher than a
  // real GPU's, so the default query count is reduced; transfers are metered.
  const auto nq = static_cast<index_t>(env_or("RBC_BENCH_GPU_QUERIES", std::int64_t{512}));
  const index_t nq_eval = std::min<index_t>(bench::num_eval_queries(), nq);

  simt::Device device;

  std::printf("%-8s %9s %7s %10s %11s %11s %11s %9s\n", "dataset", "n",
              "nr=s", "t_bf(s)", "t_rbc(s)", "speedup_t", "speedup_w",
              "mean_rank");

  for (const auto& name : bench::all_names()) {
    const bench::BenchData bd = bench::load(name, nq);

    // nr = s = 2 sqrt(n): the setting that lands near rank ~1e-1 in Fig. 1.
    const auto param = static_cast<index_t>(
        std::min<double>(2.0 * std::sqrt(static_cast<double>(bd.n)), bd.n));

    RbcOneShotIndex<> host_index;
    host_index.build(bd.database,
                     {.num_reps = param, .points_per_rep = param, .seed = 1});
    const gpu::GpuRbcOneShot device_index(device, host_index);
    const gpu::GpuMatrix gq = gpu::upload_matrix(device, bd.queries);
    const gpu::GpuMatrix gx = gpu::upload_matrix(device, bd.database);

    const auto [t_bf, w_bf] =
        bench::timed([&] { (void)gpu::gpu_bf_knn(device, gq, gx, 1); });
    KnnResult rbc_result;
    const auto [t_rbc, w_rbc] =
        bench::timed([&] { rbc_result = device_index.search(gq, 1); });

    // Rank evaluation on the host (quality is identical to the CPU
    // implementation; the paper makes the same remark for Table 2).
    Matrix<float> eval_q(nq_eval, bd.queries.cols());
    for (index_t i = 0; i < nq_eval; ++i)
      eval_q.copy_row_from(bd.queries, i, i);
    KnnResult eval_res(nq_eval, 1);
    for (index_t i = 0; i < nq_eval; ++i) {
      eval_res.ids.at(i, 0) = rbc_result.ids.at(i, 0);
      eval_res.dists.at(i, 0) = rbc_result.dists.at(i, 0);
    }
    const double rank = data::mean_rank(eval_q, bd.database, eval_res);

    std::printf("%-8s %9u %7u %10.3f %11.3f %10.1fx %10.1fx %9.3f\n",
                name.c_str(), bd.n, param, t_bf, t_rbc, t_bf / t_rbc,
                static_cast<double>(w_bf) / static_cast<double>(w_rbc), rank);
  }

  const auto& stats = device.stats();
  std::printf("\ndevice stats: %llu kernels, %llu blocks, h2d %.1f MB, "
              "d2h %.1f MB\n",
              static_cast<unsigned long long>(stats.kernels_launched),
              static_cast<unsigned long long>(stats.blocks_executed),
              static_cast<double>(stats.bytes_h2d) / 1e6,
              static_cast<double>(stats.bytes_d2h) / 1e6);
  std::printf("paper reference (Table 2): Bio 38.1x, Covertype 94.6x,\n"
              "Physics 19.0x, Robot 53.2x, TinyIm4 188.4x.\n");
  return 0;
}
