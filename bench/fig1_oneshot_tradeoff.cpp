// Figure 1 — one-shot algorithm: log-log plot of speedup over brute force as
// a function of the mean rank of the returned neighbor, one panel (here: one
// row group) per dataset, sweeping the single parameter nr = s.
//
// Paper protocol (§7.2): "we set nr and s equal to one another. The
// parameter allows one to trade-off between the quality of the solution and
// time required; we scan over this parameter to show the trade-off."
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "bruteforce/bf.hpp"
#include "data/rank_error.hpp"
#include "rbc/rbc.hpp"

int main() {
  using namespace rbc;
  bench::print_header(
      "Figure 1: one-shot speedup vs mean rank error (sweep over nr = s)");

  const index_t nq = bench::num_queries();
  const index_t nq_eval = bench::num_eval_queries();

  std::printf("%-8s %7s %9s %9s %11s %11s %11s %9s %8s\n", "dataset", "nr=s",
              "t_bf(s)", "t_rbc(s)", "speedup_t", "speedup_w", "mean_rank",
              "recall@1", "evals/q");

  for (const auto& name : bench::all_names()) {
    const bench::BenchData bd = bench::load(name, nq);
    const index_t n = bd.n;

    // Brute-force baseline over the full timed query set.
    const auto [t_bf, w_bf] =
        bench::timed([&] { (void)bf_knn(bd.queries, bd.database, 1); });

    // Rank evaluation uses the first nq_eval queries (each needs a full
    // scan of its own, so it is kept smaller).
    Matrix<float> eval_q(std::min(nq_eval, bd.queries.rows()),
                         bd.queries.cols());
    for (index_t i = 0; i < eval_q.rows(); ++i)
      eval_q.copy_row_from(bd.queries, i, i);

    // Sweep nr = s geometrically around sqrt(n), as in Appendix C.
    const auto root = static_cast<index_t>(std::sqrt(static_cast<double>(n)));
    for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      const auto param = static_cast<index_t>(
          std::max(4.0, factor * static_cast<double>(root)));
      if (param > n) continue;

      RbcOneShotIndex<> index;
      index.build(bd.database,
                  {.num_reps = param, .points_per_rep = param, .seed = 1});

      SearchStats stats;
      const auto [t_rbc, w_rbc] = bench::timed(
          [&] { (void)index.search(bd.queries, 1, &stats); });

      const KnnResult eval_result = index.search(eval_q, 1);
      const double rank = data::mean_rank(eval_q, bd.database, eval_result);
      const double recall =
          data::recall_at_1(eval_q, bd.database, eval_result);

      std::printf("%-8s %7u %9.3f %9.3f %10.1fx %10.1fx %11.3f %8.3f %8.0f\n",
                  name.c_str(), param, t_bf, t_rbc, t_bf / t_rbc,
                  static_cast<double>(w_bf) / static_cast<double>(w_rbc),
                  rank, recall, stats.dist_evals_per_query());
    }
    std::printf("\n");
  }

  std::printf("paper reference (Fig. 1): at mean rank ~1e-1 the worst-case\n"
              "speedup across datasets is ~1 order of magnitude; at looser\n"
              "ranks speedups reach 1e2-1e4.\n");
  return 0;
}
