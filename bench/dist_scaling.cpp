// Distributed RBC scaling (paper §8 future work, made measurable): shard
// the database over W simulated workers by representative (the paper's
// proposal) vs uniformly at random (the naive baseline), and report the
// §8 quantities of interest — communication volume and per-worker work —
// as W grows.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "dist/distributed_rbc.hpp"

int main() {
  using namespace rbc;
  using dist::DistributedRbc;
  using dist::DistStats;
  using dist::Sharding;
  bench::print_header(
      "Distributed RBC (paper 8): sharding by representative vs random");

  const index_t nq = std::min<index_t>(bench::num_queries(), 1'000);

  for (const auto& name : {std::string("bio"), std::string("robot")}) {
    const bench::BenchData bd = bench::load(name, nq);
    std::printf("--- %s (n=%u, d=%u, %u queries) ---\n", name.c_str(), bd.n,
                bd.spec.dim, nq);
    std::printf("%-9s %8s %14s %12s %14s %14s %12s\n", "sharding", "workers",
                "contacted/q", "KB/query", "evals/q(sum)", "max_worker_ev",
                "balance");

    for (const index_t workers : {index_t{2}, index_t{4}, index_t{8},
                                  index_t{16}}) {
      for (const Sharding sharding :
           {Sharding::kByRepresentative, Sharding::kRandomPoints}) {
        DistributedRbc cluster;
        cluster.build(bd.database, workers, {.seed = 1}, sharding);
        const auto build_traffic = cluster.network().total();

        DistStats stats;
        (void)cluster.search(bd.queries, 1, &stats);

        const auto total_traffic = cluster.network().total();
        const double kb_per_query =
            static_cast<double>(total_traffic.bytes - build_traffic.bytes) /
            1e3 / nq;

        std::uint64_t max_ev = 0, sum_ev = 0;
        for (index_t w = 0; w < workers; ++w) {
          max_ev = std::max(max_ev, cluster.worker_list_evals(w));
          sum_ev += cluster.worker_list_evals(w);
        }
        // balance = ideal share / actual max share (1.0 = perfect).
        const double balance =
            max_ev == 0 ? 1.0
                        : static_cast<double>(sum_ev) /
                              (static_cast<double>(workers) * max_ev);

        std::printf("%-9s %8u %14.2f %12.2f %14.0f %14llu %12.2f\n",
                    sharding == Sharding::kByRepresentative ? "by-rep"
                                                            : "random",
                    workers, stats.workers_contacted_per_query(),
                    kb_per_query,
                    static_cast<double>(stats.list_dist_evals) / nq,
                    static_cast<unsigned long long>(max_ev), balance);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: by-rep contacts a small, ~constant number of workers\n"
      "per query as W grows (pruned lists never leave their worker), while\n"
      "random sharding must touch every worker; by-rep therefore sends\n"
      "fewer, larger-grained messages per query.\n");
  return 0;
}
