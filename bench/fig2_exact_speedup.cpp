// Figure 2 — "Speedup of exact search over brute force" (bar chart with a
// log y-axis, one bar per dataset, 48-core machine).
//
// Both contenders run with all available cores; the work speedup column is
// the machine-independent equivalent (paper speedups: up to two orders of
// magnitude).
#include <cstdio>

#include "bench_util.hpp"
#include "bruteforce/bf.hpp"
#include "rbc/rbc.hpp"

int main() {
  using namespace rbc;
  bench::print_header("Figure 2: speedup of exact RBC search over brute force");

  const index_t nq = bench::num_queries();

  std::printf("%-8s %9s %7s %9s %9s %11s %11s %10s\n", "dataset", "n", "nr",
              "t_bf(s)", "t_rbc(s)", "speedup_t", "speedup_w", "evals/q");

  for (const auto& name : bench::all_names()) {
    const bench::BenchData bd = bench::load(name, nq);

    RbcExactIndex<> index;
    index.build(bd.database, {.seed = 1});  // standard setting nr ~ sqrt(n)

    const auto [t_bf, w_bf] =
        bench::timed([&] { (void)bf_knn(bd.queries, bd.database, 1); });

    SearchStats stats;
    const auto [t_rbc, w_rbc] = bench::timed(
        [&] { (void)index.search(bd.queries, 1, &stats); });

    std::printf("%-8s %9u %7u %9.3f %9.3f %10.1fx %10.1fx %10.0f\n",
                name.c_str(), bd.n, index.num_reps(), t_bf, t_rbc,
                t_bf / t_rbc,
                static_cast<double>(w_bf) / static_cast<double>(w_rbc),
                stats.dist_evals_per_query());
  }

  std::printf("\npaper reference (Fig. 2): exact-search speedups between ~5x\n"
              "and ~100x across the eight datasets on the 48-core machine.\n");
  return 0;
}
