// Figure 2 — "Speedup of exact search over brute force" (bar chart with a
// log y-axis, one bar per dataset, 48-core machine).
//
// Both contenders run with all available cores; the work speedup column is
// the machine-independent equivalent (paper speedups: up to two orders of
// magnitude).
#include <cstdio>

#include "bench_util.hpp"
#include "rbc/rbc.hpp"

int main() {
  using namespace rbc;
  bench::print_header("Figure 2: speedup of exact RBC search over brute force");

  const index_t nq = bench::num_queries();

  std::printf("%-8s %9s %9s %9s %11s %11s %10s\n", "dataset", "n",
              "t_bf(s)", "t_rbc(s)", "speedup_t", "speedup_w", "evals/q");

  for (const auto& name : bench::all_names()) {
    const bench::BenchData bd = bench::load(name, nq);

    // Both contenders behind the unified interface: same request, same
    // measurement loop, different backend name.
    auto brute = make_index("bruteforce");
    brute->build(bd.database);
    auto rbc_exact = make_index("rbc-exact", {.rbc = {.seed = 1}});
    rbc_exact->build(bd.database);  // standard setting nr ~ sqrt(n)

    SearchRequest request{.queries = &bd.queries, .k = 1};
    request.options.collect_stats = true;

    const auto [t_bf, w_bf] =
        bench::timed([&] { (void)brute->knn_search(request); });

    SearchStats stats;
    const auto [t_rbc, w_rbc] = bench::timed(
        [&] { stats = rbc_exact->knn_search(request).stats; });

    std::printf("%-8s %9u %9.3f %9.3f %10.1fx %10.1fx %10.0f\n",
                name.c_str(), bd.n, t_bf, t_rbc,
                t_bf / t_rbc,
                static_cast<double>(w_bf) / static_cast<double>(w_rbc),
                stats.dist_evals_per_query());
  }

  std::printf("\npaper reference (Fig. 2): exact-search speedups between ~5x\n"
              "and ~100x across the eight datasets on the 48-core machine.\n");
  return 0;
}
