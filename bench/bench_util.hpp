// Shared infrastructure for the paper-reproduction benchmark harnesses.
//
// Dataset sizes are the paper's Table 1 sizes divided by RBC_BENCH_SCALE
// (default 50) and clamped to [RBC_BENCH_MIN_N, RBC_BENCH_MAX_N], so the
// suite finishes in minutes on a small machine; set RBC_BENCH_SCALE=1 (and
// raise RBC_BENCH_MAX_N) to run at paper scale. Every harness reports both
// wall-clock speedup and distance-evaluation ("work") speedup; the latter is
// machine-independent and is the quantity the paper's theory bounds (see
// DESIGN.md §2).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/counters.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "data/generators.hpp"
#include "parallel/runtime.hpp"

namespace rbc::bench {

/// Scaled database size for a paper dataset.
inline index_t scaled_n(const data::DatasetSpec& spec) {
  const auto scale = static_cast<double>(env_or("RBC_BENCH_SCALE", std::int64_t{50}));
  const auto min_n = static_cast<index_t>(env_or("RBC_BENCH_MIN_N", std::int64_t{12000}));
  const auto max_n = static_cast<index_t>(env_or("RBC_BENCH_MAX_N", std::int64_t{100000}));
  auto n = static_cast<index_t>(static_cast<double>(spec.paper_n) / scale);
  if (n < min_n) n = min_n;
  if (n > max_n) n = max_n;
  return n;
}

/// Number of timed queries (paper uses 10k; scaled down by default).
inline index_t num_queries() {
  return static_cast<index_t>(env_or("RBC_BENCH_QUERIES", std::int64_t{2000}));
}

/// Number of queries used for rank-error evaluation (each costs a full
/// database scan, so this is kept smaller than num_queries()).
inline index_t num_eval_queries() {
  return static_cast<index_t>(env_or("RBC_BENCH_EVAL_QUERIES", std::int64_t{200}));
}

/// A dataset instance ready for benchmarking.
struct BenchData {
  data::DatasetSpec spec;
  index_t n = 0;
  Matrix<float> database;
  Matrix<float> queries;
};

inline BenchData load(const std::string& name, index_t nq) {
  BenchData bd;
  bd.spec = data::dataset_by_name(name);
  bd.n = scaled_n(bd.spec);
  data::DataSplit split =
      data::make_benchmark_data(bd.spec, bd.n, nq, /*seed=*/20'120'513);
  bd.database = std::move(split.database);
  bd.queries = std::move(split.queries);
  return bd;
}

/// All eight dataset names in the paper's presentation order.
inline std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& spec : data::paper_datasets()) names.push_back(spec.name);
  return names;
}

/// Times `body()` and returns {seconds, distance evals}.
template <class F>
std::pair<double, std::uint64_t> timed(F&& body) {
  counters::Scope scope;
  WallTimer timer;
  body();
  return {timer.seconds(), scope.delta()};
}

inline void print_header(const char* title) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("threads=%d  scale=%lld  (set RBC_BENCH_SCALE=1 for paper-sized runs)\n",
              max_threads(),
              static_cast<long long>(env_or("RBC_BENCH_SCALE", std::int64_t{50})));
  std::printf("================================================================\n");
}

}  // namespace rbc::bench
