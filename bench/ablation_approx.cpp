// Ablation (paper §5 footnote 1): the exact search "can be easily modified
// so that it only guarantees an approximate nearest neighbor, which reduces
// search time". Sweep the approximation factor eps and report the work
// saved against the observed error (which is typically far below the
// worst-case (1+eps) guarantee).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "bruteforce/bf.hpp"
#include "rbc/rbc.hpp"

int main() {
  using namespace rbc;
  bench::print_header(
      "Ablation: (1+eps)-approximate exact search (footnote 1)");

  const index_t nq = bench::num_queries();

  for (const auto& name : {std::string("bio"), std::string("tiny16")}) {
    const bench::BenchData bd = bench::load(name, nq);

    // Ground truth for error measurement (on a subset of queries).
    const index_t nq_eval = std::min<index_t>(bench::num_eval_queries(),
                                              bd.queries.rows());
    Matrix<float> eval_q(nq_eval, bd.queries.cols());
    for (index_t i = 0; i < nq_eval; ++i)
      eval_q.copy_row_from(bd.queries, i, i);
    const KnnResult truth = bf_knn(eval_q, bd.database, 1);

    std::printf("--- %s (n=%u, d=%u) ---\n", name.c_str(), bd.n,
                bd.spec.dim);
    std::printf("%8s %9s %10s %14s %14s\n", "eps", "t(s)", "evals/q",
                "mean_ratio", "max_ratio");

    for (const float eps : {0.0f, 0.1f, 0.25f, 0.5f, 1.0f, 2.0f}) {
      RbcParams params;
      params.seed = 1;
      params.approx_eps = eps;
      RbcExactIndex<> index;
      index.build(bd.database, params);

      SearchStats stats;
      const auto [t, w] = bench::timed(
          [&] { (void)index.search(bd.queries, 1, &stats); });
      (void)w;

      // Observed distance ratio vs ground truth.
      const KnnResult got = index.search(eval_q, 1);
      double sum_ratio = 0.0, max_ratio = 1.0;
      index_t counted = 0;
      for (index_t i = 0; i < nq_eval; ++i) {
        const float td = truth.dists.at(i, 0);
        if (td <= 0.0f) continue;
        const double ratio = got.dists.at(i, 0) / td;
        sum_ratio += ratio;
        max_ratio = std::max(max_ratio, ratio);
        ++counted;
      }
      std::printf("%8.2f %9.3f %10.0f %14.4f %14.4f\n", eps, t,
                  stats.dist_evals_per_query(),
                  counted ? sum_ratio / counted : 1.0, max_ratio);
    }
    std::printf("\n");
  }
  std::printf("guarantee: returned distance <= (1+eps) x true distance;\n"
              "observed error is typically far smaller than the bound.\n");
  return 0;
}
