#!/usr/bin/env bash
# End-to-end smoke of the network serving stack, as CI runs it:
#
#   scripts/net_smoke.sh [build_dir]
#
# Starts `serve_demo --listen 0` (OS-assigned port, synthetic index), parses
# the bound port from its stdout, waits until `net_client info` answers, then
# runs 4 concurrent `net_client knn` clients, and finally sends SIGTERM and
# requires a clean (exit 0) graceful drain. Any failure — server crash,
# client error, unclean shutdown — fails the script.
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/serve_demo"
CLIENT="$BUILD_DIR/net_client"
LOG="$(mktemp)"

[ -x "$SERVE" ] || { echo "missing $SERVE (build examples first)"; exit 1; }
[ -x "$CLIENT" ] || { echo "missing $CLIENT (build examples first)"; exit 1; }

"$SERVE" --listen 0 --n 2000 >"$LOG" 2>&1 &
SERVER_PID=$!
cleanup() { kill "$SERVER_PID" 2>/dev/null || true; rm -f "$LOG"; }
trap cleanup EXIT

# serve_demo prints "rbc_server: serving <backend> ... on port <port>" and
# flushes before entering the event loop.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*on port \([0-9]*\).*/\1/p' "$LOG" | head -n1)"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG"; echo "server died"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { cat "$LOG"; echo "server never reported its port"; exit 1; }
echo "server up on port $PORT"

# Wait until the INFO op answers (the listener is live before the banner,
# but poll anyway so the script has no race to lose).
for _ in $(seq 1 50); do
  "$CLIENT" 127.0.0.1 "$PORT" info >/dev/null 2>&1 && break
  sleep 0.1
done
"$CLIENT" 127.0.0.1 "$PORT" info

# 4 concurrent clients, each a 64-query x k=5 block.
PIDS=()
for _ in 1 2 3 4; do
  "$CLIENT" 127.0.0.1 "$PORT" knn 64 5 >/dev/null &
  PIDS+=("$!")
done
for pid in "${PIDS[@]}"; do wait "$pid"; done
echo "4 concurrent clients OK"

# Graceful drain: SIGTERM must produce a clean exit 0.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
trap - EXIT
rm -f "$LOG"
echo "graceful drain OK"
