#!/usr/bin/env python3
"""Schema validation for BENCH_serve.json (bench/serve_throughput.cpp).

Usage: scripts/validate_bench_serve.py [path/to/BENCH_serve.json]

Validates the machine-readable output so the perf-trajectory file stays
parseable by future tooling: required top-level fields, per-result fields
and types, internal consistency (qps ~= queries/seconds, acceptance row
derived from the results), and — for non-smoke runs — the acceptance bar
itself (batched >= 2x unbatched queries/sec at the top client count).
"""
import json
import sys
from pathlib import Path

path = Path(sys.argv[1] if len(sys.argv) > 1 else "BENCH_serve.json")
errors: list[str] = []

try:
    doc = json.loads(path.read_text(encoding="utf-8"))
except (OSError, json.JSONDecodeError) as exc:
    print(f"cannot read {path}: {exc}")
    sys.exit(1)


def expect(cond: bool, message: str) -> None:
    if not cond:
        errors.append(message)


TOP = {"bench": str, "backend": str, "smoke": bool, "n": int, "dim": int,
       "k": int, "total_queries": int, "results": list,
       "worker_scaling": list, "shard_scaling": list,
       "mutate_scaling": list, "net_scaling": list,
       "fault_scaling": list, "acceptance": dict}
for key, kind in TOP.items():
    expect(isinstance(doc.get(key), kind),
           f"top-level '{key}' missing or not {kind.__name__}")
expect(doc.get("bench") == "serve_throughput", "bench != serve_throughput")

RESULT = {"clients": int, "max_batch": int, "workers": int,
          "num_shards": int, "queries": int,
          "seconds": (int, float), "qps": (int, float),
          "p50_ms": (int, float), "p99_ms": (int, float),
          "mean_batch": (int, float), "batches": int,
          "dist_evals_per_query": (int, float)}


def check_rows(rows: list, section: str) -> None:
    for i, row in enumerate(rows):
        for key, kind in RESULT.items():
            expect(isinstance(row.get(key), kind),
                   f"{section}[{i}].{key} missing or wrong type")
        if isinstance(row.get("seconds"), (int, float)) and row["seconds"] > 0:
            implied = row["queries"] / row["seconds"]
            expect(abs(implied - row["qps"]) <= 0.02 * implied + 1.0,
                   f"{section}[{i}].qps inconsistent with queries/seconds")
        expect(row.get("p99_ms", 0) >= row.get("p50_ms", 0),
               f"{section}[{i}]: p99 < p50")


check_rows(doc.get("results", []), "results")
check_rows(doc.get("worker_scaling", []), "worker_scaling")
check_rows(doc.get("shard_scaling", []), "shard_scaling")
# The worker sweep must actually scale the pool (a workers > 1 point).
expect(any(row.get("workers", 0) > 1
           for row in doc.get("worker_scaling", [])),
       "worker_scaling has no workers > 1 configuration")
# The shard sweep must scale the composite (a num_shards > 1 point) and
# anchor it against the single-shard configuration.
expect(any(row.get("num_shards", 0) > 1
           for row in doc.get("shard_scaling", [])),
       "shard_scaling has no num_shards > 1 configuration")
expect(any(row.get("num_shards", 0) == 1
           for row in doc.get("shard_scaling", [])),
       "shard_scaling has no num_shards == 1 baseline")

# The read/write-mix sweep (streaming mutability under query load) records
# the read qps at each write fraction; writes are counted so the mix is
# auditable, and the 0%-writes row anchors the pure-read baseline.
MUTATE_RESULT = {"write_fraction": (int, float), "clients": int,
                 "queries": int, "writes": int, "seconds": (int, float),
                 "qps": (int, float), "p50_ms": (int, float),
                 "p99_ms": (int, float)}
for i, row in enumerate(doc.get("mutate_scaling", [])):
    for key, kind in MUTATE_RESULT.items():
        expect(isinstance(row.get(key), kind),
               f"mutate_scaling[{i}].{key} missing or wrong type")
    if isinstance(row.get("seconds"), (int, float)) and row["seconds"] > 0:
        implied = row["queries"] / row["seconds"]
        expect(abs(implied - row["qps"]) <= 0.02 * implied + 1.0,
               f"mutate_scaling[{i}].qps inconsistent with queries/seconds")
    expect(row.get("p99_ms", 0) >= row.get("p50_ms", 0),
           f"mutate_scaling[{i}]: p99 < p50")
    frac = row.get("write_fraction", -1)
    expect(isinstance(frac, (int, float)) and 0 <= frac < 1,
           f"mutate_scaling[{i}].write_fraction outside [0, 1)")
    if isinstance(frac, (int, float)) and frac == 0:
        expect(row.get("writes", -1) == 0,
               f"mutate_scaling[{i}]: writes != 0 at write_fraction 0")
    elif isinstance(frac, (int, float)) and frac > 0:
        expect(row.get("writes", 0) > 0,
               f"mutate_scaling[{i}]: no writes at write_fraction > 0")
# The sweep must anchor a pure-read baseline and apply real write load.
expect(any(row.get("write_fraction", -1) == 0
           for row in doc.get("mutate_scaling", [])),
       "mutate_scaling has no write_fraction == 0 baseline")
expect(any(row.get("write_fraction", 0) > 0
           for row in doc.get("mutate_scaling", [])),
       "mutate_scaling has no write_fraction > 0 configuration")

# The network sweep (RbcServer over loopback) has its own row schema:
# client-observed latency, no batching/work columns, and a rejection count
# so backpressure is accounted for rather than hidden.
NET_RESULT = {"clients": int, "queries": int, "seconds": (int, float),
              "qps": (int, float), "p50_ms": (int, float),
              "p99_ms": (int, float), "rejected": int}
for i, row in enumerate(doc.get("net_scaling", [])):
    for key, kind in NET_RESULT.items():
        expect(isinstance(row.get(key), kind),
               f"net_scaling[{i}].{key} missing or wrong type")
    if isinstance(row.get("seconds"), (int, float)) and row["seconds"] > 0:
        implied = row["queries"] / row["seconds"]
        expect(abs(implied - row["qps"]) <= 0.02 * implied + 1.0,
               f"net_scaling[{i}].qps inconsistent with queries/seconds")
    expect(row.get("p99_ms", 0) >= row.get("p50_ms", 0),
           f"net_scaling[{i}]: p99 < p50")
    expect(row.get("rejected", -1) >= 0, f"net_scaling[{i}].rejected < 0")
# The sweep must actually scale the client count (a clients > 1 point).
expect(any(row.get("clients", 0) > 1 for row in doc.get("net_scaling", [])),
       "net_scaling has no clients > 1 configuration")

# The fault sweep (NetRouter over shard-owner servers under injected
# failures) records what each failure mode costs a live caller: a healthy
# replicated baseline, a dead-replica point (failover/breaker path), and a
# slow-shard point (deadline-relevant straggler drag).
FAULT_RESULT = {"scenario": str, "replicas": int, "dead_replicas": int,
                "slow_ms": int, "queries": int, "seconds": (int, float),
                "qps": (int, float), "p50_ms": (int, float),
                "p99_ms": (int, float), "failovers": int,
                "transport_errors": int}
for i, row in enumerate(doc.get("fault_scaling", [])):
    for key, kind in FAULT_RESULT.items():
        expect(isinstance(row.get(key), kind),
               f"fault_scaling[{i}].{key} missing or wrong type")
    if isinstance(row.get("seconds"), (int, float)) and row["seconds"] > 0:
        implied = row["queries"] / row["seconds"]
        expect(abs(implied - row["qps"]) <= 0.02 * implied + 1.0,
               f"fault_scaling[{i}].qps inconsistent with queries/seconds")
    expect(row.get("p99_ms", 0) >= row.get("p50_ms", 0),
           f"fault_scaling[{i}]: p99 < p50")
    expect(row.get("queries", 0) > 0,
           f"fault_scaling[{i}]: zero completed queries (faults must not "
           f"lose work)")
# The sweep must anchor a fault-free baseline and apply real failure modes.
fault_rows = doc.get("fault_scaling", [])
expect(any(r.get("dead_replicas", -1) == 0 and r.get("slow_ms", -1) == 0
           for r in fault_rows),
       "fault_scaling has no healthy baseline row")
expect(any(r.get("dead_replicas", 0) > 0 for r in fault_rows),
       "fault_scaling has no dead-replica configuration")
expect(any(r.get("slow_ms", 0) > 0 for r in fault_rows),
       "fault_scaling has no slow-shard configuration")
# A slow shard must actually show up in the client-observed tail.
for i, row in enumerate(fault_rows):
    if isinstance(row.get("slow_ms"), int) and row.get("slow_ms", 0) > 0:
        expect(row.get("p99_ms", 0) >= row["slow_ms"],
               f"fault_scaling[{i}]: p99 below the injected {row['slow_ms']}"
               f"ms delay — the fault was not applied")

acc = doc.get("acceptance", {})
for key in ("clients", "unbatched_qps", "batched_qps", "batched_max_batch",
            "speedup", "pass"):
    expect(key in acc, f"acceptance.{key} missing")
if isinstance(acc.get("unbatched_qps"), (int, float)) and \
        acc.get("unbatched_qps"):
    implied = acc["batched_qps"] / acc["unbatched_qps"]
    expect(abs(implied - acc["speedup"]) <= 0.02 * implied,
           "acceptance.speedup inconsistent with its qps fields")
    expect(acc.get("pass") == (acc["speedup"] >= 2.0),
           "acceptance.pass does not match speedup >= 2.0")

# The perf bar applies to full runs; smoke mode only validates the schema.
if not doc.get("smoke", True):
    expect(bool(acc.get("pass")),
           f"full run failed the acceptance bar: speedup = "
           f"{acc.get('speedup')}")

if errors:
    print(f"{path}: INVALID")
    for error in errors:
        print(f"  - {error}")
    sys.exit(1)
mode = "smoke" if doc.get("smoke") else "full"
print(f"{path}: valid ({mode} run, {len(doc['results'])} configs, "
      f"speedup {acc.get('speedup')}x)")
