#!/usr/bin/env python3
"""Documentation consistency gate (run from the repo root).

Checks that the architecture docs keep pace with the tree:
  * docs/ARCHITECTURE.md and docs/PAPER_MAP.md exist;
  * every src/ subdirectory is covered by ARCHITECTURE.md;
  * every bench harness referenced in PAPER_MAP.md exists, and every
    fig*/table* harness in bench/ is referenced (no unmapped paper exhibit);
  * every relative markdown link in README.md and docs/*.md resolves.

Exit code 0 = consistent; non-zero prints every violation.
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
errors: list[str] = []


def need(path: Path) -> str:
    if not path.is_file():
        errors.append(f"missing file: {path.relative_to(ROOT)}")
        return ""
    return path.read_text(encoding="utf-8")


architecture = need(ROOT / "docs" / "ARCHITECTURE.md")
paper_map = need(ROOT / "docs" / "PAPER_MAP.md")
readme = need(ROOT / "README.md")

# --- every src/ subdirectory appears in ARCHITECTURE.md -------------------
for sub in sorted(p for p in (ROOT / "src").iterdir() if p.is_dir()):
    token = f"src/{sub.name}/"
    if token not in architecture:
        errors.append(f"docs/ARCHITECTURE.md does not cover {token}")

# --- bench harness references in PAPER_MAP.md are real, and every paper
# figure/table harness is mapped ------------------------------------------
bench_sources = {p.stem for p in (ROOT / "bench").glob("*.cpp")}
# \b + (?!\.) keeps header references like bench_util.hpp out of the
# binary-name namespace.
for name in set(re.findall(r"bench_(\w+)\b(?!\.)", paper_map)):
    if name not in bench_sources:
        errors.append(f"docs/PAPER_MAP.md references bench_{name} "
                      f"but bench/{name}.cpp does not exist")
for name in bench_sources:
    if (name.startswith("fig") or name.startswith("table")) \
            and f"bench_{name}" not in paper_map:
        errors.append(f"bench/{name}.cpp reproduces a paper exhibit but is "
                      f"not mapped in docs/PAPER_MAP.md")

# --- relative markdown links resolve --------------------------------------
for md in [ROOT / "README.md", *(ROOT / "docs").glob("*.md")]:
    if not md.is_file():
        continue
    text = md.read_text(encoding="utf-8")
    for target in re.findall(r"\]\(([^)#]+?)(?:#[^)]*)?\)", text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (md.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{md.relative_to(ROOT)} links to missing "
                          f"{target}")

if errors:
    print("documentation check FAILED:")
    for error in errors:
        print(f"  - {error}")
    sys.exit(1)
print("documentation check passed "
      f"({len(bench_sources)} bench harnesses, docs consistent)")
