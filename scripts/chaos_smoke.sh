#!/usr/bin/env bash
# End-to-end chaos smoke of the fault-tolerant serving stack, as CI runs it:
#
#   scripts/chaos_smoke.sh [build_dir]
#
# Drives the NetRouter through real failures using the chaos harness
# (tests/test_net_faults.cpp + tests/fault_proxy.cpp): real shard-owner
# server processes are SIGKILLed mid-load while a router streams queries
# (zero lost answers, bit-identical results via replica failover), a shard
# is network-partitioned behind the FaultProxy (allow_partial returns
# coverage flags, never an exception), and a crashed shard is restarted
# behind the proxy's stable port (breaker half-open probe recovers it).
# The headline kill-a-replica scenario repeats 3x so a timing-dependent
# regression fails here rather than flaking in the full suite.
set -euo pipefail

BUILD_DIR="${1:-build}"
CHAOS="$BUILD_DIR/test_net_faults"

[ -x "$CHAOS" ] || { echo "missing $CHAOS (build tests first)"; exit 1; }

echo "== chaos smoke: replica kill mid-load (3 repeats, zero lost queries) =="
"$CHAOS" --gtest_repeat=3 \
  --gtest_filter='NetFaults.KillingAnyReplicaMidLoadLosesZeroQueries'

echo "== chaos smoke: partition -> coverage flags, crash -> restart =="
"$CHAOS" --gtest_filter='NetFaults.PartitionedShardYieldsCoverageFlagsNotException:NetFaults.CrashAndRestartThroughProxyRecoversAndClosesBreaker'

echo "chaos smoke OK"
