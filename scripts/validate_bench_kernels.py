#!/usr/bin/env python3
"""Schema + perf validation for BENCH_kernels.json (bench/micro_kernels.cpp).

Usage: scripts/validate_bench_kernels.py [--smoke] [path/to/BENCH_kernels.json]

The file is google-benchmark JSON; the dispatched-kernel benchmarks are
named "<shape>/<isa>/<d>" with items_per_second = distance evaluations per
second, plus the per-query scalar baseline "scalar_scan/ref/<d>".

Checks:
  * schema: context + benchmarks present, every dispatched row has a
    parseable name and a positive items_per_second;
  * coverage: all five shapes (tile, tile_gemm, rows, rows_l1, rows_ip) x
    all three paper dims for every ISA that appears, and the scalar ISA
    always appears (hosts without AVX2/AVX-512 simply lack those rows —
    accepted);
  * perf (full runs only; --smoke skips the bars, whose tiny iteration
    counts make timings meaningless): for every SIMD ISA present, each
    shape beats its scalar single-query scan per evaluation at every dim,
    and the row-blocked single-query kernels — squared-L2 `rows` and the
    metric sweep's `rows_l1`/`rows_ip` — reach >= 2x, the acceptance bars
    of the runtime-dispatch and metric-generic-API PRs. The metric shapes
    compare against their own baselines (scalar_scan_l1 / scalar_scan_ip).
    The compressed shapes (`rows_fp16`/`rows_int8`) additionally carry a
    qps_per_vector_byte counter and, on the SIMD ISAs, are held to a
    per-vector-byte bar against the float `rows` kernel of the same ISA:
    fp16 >= 1x, int8 >= 2x (bytes/vector: 4d float32, 2d fp16, 1d int8).
"""
import json
import sys
from pathlib import Path

SHAPES = ("tile", "tile_gemm", "rows", "rows_l1", "rows_ip",
          "rows_fp16", "rows_int8")
# Which scalar single-query baseline each shape's items/s is compared to.
BASELINE_OF = {
    "tile": "scalar_scan",
    "tile_gemm": "scalar_scan",
    "rows": "scalar_scan",
    "rows_l1": "scalar_scan_l1",
    "rows_ip": "scalar_scan_ip",
    "rows_fp16": "scalar_scan",
    "rows_int8": "scalar_scan",
}
BASELINES = tuple(sorted(set(BASELINE_OF.values())))
# Shapes held to the >= 2x acceptance bar over their baseline.
TWO_X_SHAPES = ("rows", "rows_l1", "rows_ip")
# Compressed shapes carry a qps_per_vector_byte counter; their bar is
# throughput per vector byte relative to the float `rows` kernel of the
# same ISA (bytes/vector: float32 = 4d, fp16 = 2d, int8 = 1d).
QUANT_SHAPES = ("rows_fp16", "rows_int8")
BYTES_PER_DIM = {"rows": 4.0, "rows_fp16": 2.0, "rows_int8": 1.0}
# int8 halves-then-halves the scan's byte traffic; the acceptance bar of the
# compressed-tier PR. fp16 must at least break even per byte.
QPVB_BAR = {"rows_fp16": 1.0, "rows_int8": 2.0}
DIMS = ("21", "32", "74")

args = [a for a in sys.argv[1:] if a != "--smoke"]
smoke = "--smoke" in sys.argv[1:]
path = Path(args[0] if args else "BENCH_kernels.json")
errors: list[str] = []

try:
    doc = json.loads(path.read_text(encoding="utf-8"))
except (OSError, json.JSONDecodeError) as exc:
    print(f"cannot read {path}: {exc}")
    sys.exit(1)


def expect(cond: bool, message: str) -> None:
    if not cond:
        errors.append(message)


expect(isinstance(doc.get("context"), dict), "missing google-benchmark context")
benches = doc.get("benchmarks")
expect(isinstance(benches, list) and benches, "missing benchmarks array")

# name -> items_per_second for the dispatched shapes and the baseline.
throughput: dict[tuple[str, str, str], float] = {}
for row in benches or []:
    name = row.get("name", "")
    # Fixed-iteration runs (--smoke) carry an "/iterations:N" suffix.
    parts = [p for p in name.split("/") if not p.startswith("iterations:")]
    if len(parts) != 3 or parts[0] not in SHAPES + BASELINES:
        continue  # static micro-benchmarks (BM_*) are not validated here
    shape, isa, dim = parts
    ips = row.get("items_per_second")
    expect(isinstance(ips, (int, float)) and ips > 0,
           f"{name}: missing or non-positive items_per_second")
    if isinstance(ips, (int, float)):
        throughput[(shape, isa, dim)] = float(ips)
    if shape in QUANT_SHAPES:
        qpvb = row.get("qps_per_vector_byte")
        expect(isinstance(qpvb, (int, float)) and qpvb > 0,
               f"{name}: missing or non-positive qps_per_vector_byte")

isas = sorted({isa for (_, isa, _) in throughput} - {"ref"})
expect("scalar" in isas, "scalar ISA rows missing (always compiled)")
for dim in DIMS:
    for baseline in BASELINES:
        expect((baseline, "ref", dim) in throughput,
               f"baseline {baseline}/ref/{dim} missing")
for isa in isas:
    for shape in SHAPES:
        for dim in DIMS:
            expect((shape, isa, dim) in throughput,
                   f"{shape}/{isa}/{dim} missing")

if not smoke and not errors:
    for isa in isas:
        if isa == "scalar":
            continue  # the scalar table IS the baseline's class
        for dim in DIMS:
            for shape in SHAPES:
                base = throughput[(BASELINE_OF[shape], "ref", dim)]
                ratio = throughput[(shape, isa, dim)] / base
                expect(ratio >= 1.0,
                       f"{shape}/{isa}/{dim}: {ratio:.2f}x — SIMD shape "
                       f"slower than {BASELINE_OF[shape]}")
                if shape in TWO_X_SHAPES:
                    expect(ratio >= 2.0,
                           f"{shape}/{isa}/{dim}: {ratio:.2f}x < 2x "
                           f"acceptance bar over {BASELINE_OF[shape]}")
    # Compressed-tier bar: per-vector-byte throughput vs the float `rows`
    # kernel of the SAME ISA — the win must come from the smaller codes, not
    # from vectorizing harder than the comparison. Scalar is exempt (as in
    # the speedup bars above): without hardware converts its fp16 decode is
    # a software routine per element, and the bar would measure the codec,
    # not the storage tier.
    for isa in isas:
        if isa == "scalar":
            continue
        for dim in DIMS:
            rows_qpvb = (throughput[("rows", isa, dim)] /
                         (BYTES_PER_DIM["rows"] * float(dim)))
            for shape in QUANT_SHAPES:
                qpvb = (throughput[(shape, isa, dim)] /
                        (BYTES_PER_DIM[shape] * float(dim)))
                bar = QPVB_BAR[shape]
                expect(qpvb >= bar * rows_qpvb,
                       f"{shape}/{isa}/{dim}: {qpvb / rows_qpvb:.2f}x "
                       f"qps/vector-byte < {bar}x bar over rows/{isa}")

if errors:
    print(f"{path}: INVALID")
    for error in errors:
        print(f"  - {error}")
    sys.exit(1)

summary = []
for isa in isas:
    if isa == "scalar":
        continue
    for shape in TWO_X_SHAPES:
        ratios = [throughput[(shape, isa, d)] /
                  throughput[(BASELINE_OF[shape], "ref", d)] for d in DIMS]
        summary.append(f"{isa} {shape} {min(ratios):.1f}-{max(ratios):.1f}x")
for isa in isas:
    if isa == "scalar":
        continue
    for shape in QUANT_SHAPES:
        ratios = [(throughput[(shape, isa, d)] /
                   (BYTES_PER_DIM[shape] * float(d))) /
                  (throughput[("rows", isa, d)] /
                   (BYTES_PER_DIM["rows"] * float(d))) for d in DIMS]
        summary.append(
            f"{isa} {shape} {min(ratios):.1f}-{max(ratios):.1f}x/byte")
mode = "smoke" if smoke else "full"
print(f"{path}: valid ({mode}, ISAs: {', '.join(isas)}"
      f"{'; ' + '; '.join(summary) if summary else ''})")
