// Serving demo: two modes over the same serving stack.
//
// In-process demo (default): N client threads firing single queries at a
// SearchService, which coalesces them into paper-style query blocks for the
// backend.
//
//   ./serve_demo [backend] [clients] [queries_per_client] [max_batch] [metric]
//   ./serve_demo rbc-exact 8 2000 256 cosine
//
// With metric "edit" the same demo serves a *string* workload: the database
// is a synthetic dictionary, each client submits typo'd words through
// submit_payload, and the work line reports edit-distance DP cells instead
// of vector distance evaluations — one serving stack, two data kinds.
//
//   ./serve_demo rbc-exact 8 2000 256 edit
//
// Each client plays an independent user: it submits one query at a time and
// waits for the answer (request/response, like a web frontend would). The
// service turns that anti-batch workload into large BF(Q, X) blocks — watch
// the batch-size histogram: with enough concurrent clients almost nothing
// executes as a singleton.
//
// Network server mode (--listen): stands up an RbcServer speaking the
// framed binary protocol, either over a saved index file or a freshly built
// synthetic one, and serves until SIGINT/SIGTERM — on which it drains
// gracefully (in-flight requests finish, new ones get kShuttingDown).
// Talk to it with examples/net_client.cpp, or run several as shard owners
// behind a rbc::dist::NetRouter.
//
//   ./serve_demo --listen 9172 --index index.rbc
//   ./serve_demo --listen 0 --backend rbc-exact --n 50000 --max-batch 256
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "cli_parse.hpp"
#include "common/rng.hpp"
#include "data/generators.hpp"
#include "metricspace/dataset.hpp"
#include "rbc/rbc.hpp"
#include "serve/net/server.hpp"
#include "serve/service.hpp"

namespace {

/// Synthetic dictionary + typo streams for the "edit" workload: stems with
/// morphological suffixes (clustered, like real vocabularies), corrupted by
/// 1-2 random edits per query.
std::vector<std::string> make_words(rbc::index_t size, std::uint64_t seed) {
  rbc::Rng rng(seed);
  const char* const kSuffixes[] = {"", "s", "ed", "ing", "er", "ly"};
  std::vector<std::string> words;
  words.reserve(size);
  while (words.size() < size) {
    std::string stem;
    const rbc::index_t syllables = 2 + rng.uniform_index(3);
    for (rbc::index_t s = 0; s < syllables; ++s) {
      stem += "bcdfghklmnprstvw"[rng.uniform_index(16)];
      stem += "aeiou"[rng.uniform_index(5)];
    }
    for (const char* suffix : kSuffixes) {
      if (words.size() >= size) break;
      words.push_back(stem + suffix);
    }
  }
  return words;
}

std::vector<std::string> make_typos(const std::vector<std::string>& words,
                                    rbc::index_t count, std::uint64_t seed) {
  rbc::Rng rng(seed);
  std::vector<std::string> typos;
  typos.reserve(count);
  for (rbc::index_t i = 0; i < count; ++i) {
    std::string w = words[rng.uniform_index(
        static_cast<rbc::index_t>(words.size()))];
    const auto pos = rng.uniform_index(static_cast<rbc::index_t>(w.size()));
    w[pos] = static_cast<char>('a' + rng.uniform_index(26));
    typos.push_back(std::move(w));
  }
  return typos;
}

// SIGINT/SIGTERM write 8 bytes to the server's stop eventfd — the only
// async-signal-safe way to request the graceful drain.
int g_stop_fd = -1;
void on_signal(int) {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(g_stop_fd, &one, sizeof one);
}

int run_server(int argc, char** argv) {
  using namespace rbc;

  std::uint16_t port = 0;
  std::string index_file, backend = "rbc-exact", metric = "l2";
  index_t n = 50'000;
  index_t max_batch = 256;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++a];
    };
    if (arg == "--listen") port = cli::parse_port_or_die(next(), "--listen");
    else if (arg == "--index") index_file = next();
    else if (arg == "--backend") backend = next();
    else if (arg == "--metric") metric = next();
    else if (arg == "--n") n = cli::parse_index_or_die(next(), "--n");
    else if (arg == "--max-batch")
      max_batch = cli::parse_index_or_die(next(), "--max-batch");
    else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  std::unique_ptr<Index> index;
  if (!index_file.empty()) {
    std::ifstream is(index_file, std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "cannot open index file %s\n", index_file.c_str());
      return 1;
    }
    index = load_index(is);
  } else {
    Matrix<float> database = data::make_subspace_clusters(
        n, /*dim=*/32, /*clusters=*/30, /*intrinsic_d=*/3, /*noise=*/0.05f,
        /*seed=*/1);
    index = make_index(backend, {.metric = metric});
    index->build(database);
  }
  const IndexInfo info = index->info();

  serve::net::RbcServer server(std::move(index), {.port = port},
                               {.max_batch = max_batch});
  g_stop_fd = server.stop_fd();
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::printf("rbc_server: serving %s (%u points, %u dims, metric %s) on "
              "port %u — SIGINT/SIGTERM drains\n",
              info.backend.c_str(), info.size, info.dim, info.metric.c_str(),
              server.port());
  std::fflush(stdout);

  server.wait();
  const serve::net::NetServerStats stats = server.stats();
  server.stop();
  std::printf("rbc_server: drained. %llu connections, %llu requests "
              "(%llu rejected), %llu frames out\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.frames_out));
  return 0;
}

/// The "edit" workload: same client/service shape as the dense demo below,
/// but the database is a string dictionary and every query rides
/// submit_payload. The work line is per-metric (DP cells), not distance
/// evaluations.
int run_string_demo(const std::string& backend, int clients,
                    rbc::index_t per_client, rbc::index_t max_batch) {
  using namespace rbc;
  const index_t n = 20'000, k = 3;

  const std::vector<std::string> words = make_words(n, 1);
  std::vector<std::vector<std::string>> streams;
  streams.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    streams.push_back(
        make_typos(words, per_client, 100 + static_cast<std::uint64_t>(c)));

  auto index = make_index(backend, {.metric = "edit"});
  index->build_payload(metricspace::make_string_dataset(words));
  const IndexInfo info = index->info();
  std::printf("serving %s over %u dictionary words (metric: edit, cost "
              "unit: %s)\n",
              backend.c_str(), n, info.cost_unit.c_str());

  serve::SearchService service(std::move(index),
                               {.max_batch = max_batch, .max_wait_us = 300});

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      for (const std::string& typo : streams[static_cast<std::size_t>(c)]) {
        serve::QueryResult r = service.submit_payload(typo, k).get();
        if (r.ids.empty()) std::abort();  // unreachable; keeps r observable
      }
    });
  for (auto& thread : threads) thread.join();
  service.drain();

  const serve::ServiceStats stats = service.stats();
  std::printf("\n%d clients x %u typo lookups, max_batch=%u max_wait=%uus\n",
              clients, per_client, service.options().max_batch,
              service.options().max_wait_us);
  std::printf("  completed:   %llu queries in %.2fs  (%.0f queries/s)\n",
              static_cast<unsigned long long>(stats.completed),
              stats.wall_seconds, stats.throughput_qps);
  std::printf("  latency:     p50 %.2fms  p99 %.2fms  max %.2fms\n",
              stats.latency_p50_ms, stats.latency_p99_ms,
              stats.latency_max_ms);
  std::printf("  batches:     %llu dispatched, mean %.1f queries each\n",
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch());
  std::printf("  work:        %.0f %s/query, %.0f edit-distance "
              "evals/query\n",
              static_cast<double>(stats.metric_cost) /
                  static_cast<double>(stats.completed),
              info.cost_unit.c_str(),
              static_cast<double>(stats.dist_evals) /
                  static_cast<double>(stats.completed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbc;

  for (int a = 1; a < argc; ++a)
    if (std::strcmp(argv[a], "--listen") == 0) return run_server(argc, argv);

  const std::string backend = argc > 1 ? argv[1] : "rbc-exact";
  const int clients =
      argc > 2
          ? static_cast<int>(cli::parse_uint_or_die(argv[2], "clients", 1, 4096))
          : 8;
  const index_t per_client =
      argc > 3 ? cli::parse_index_or_die(argv[3], "queries_per_client") : 2'000;
  const index_t max_batch =
      argc > 4 ? cli::parse_index_or_die(argv[4], "max_batch") : 256;
  const std::string metric = argc > 5 ? argv[5] : "l2";
  if (metric == "edit")
    return run_string_demo(backend, clients, per_client, max_batch);
  const index_t n = 50'000, dim = 32, k = 5;

  // Database and one private query stream per client, all from the same
  // cluster model (the paper's in-distribution evaluation protocol).
  Matrix<float> database = data::make_subspace_clusters(
      n, dim, /*clusters=*/30, /*intrinsic_d=*/3, /*noise=*/0.05f, /*seed=*/1);
  std::vector<Matrix<float>> streams;
  streams.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    streams.push_back(data::make_subspace_clusters(
        per_client, dim, 30, 3, 0.05f, /*seed=*/100 + static_cast<std::uint64_t>(c)));

  auto index = make_index(backend, {.metric = metric});
  index->build(database);
  const IndexInfo info = index->info();
  std::printf("serving %s over %u points in %u dims (metric: %s, "
              "kernels: %s)\n",
              backend.c_str(), n, dim, info.metric.c_str(),
              info.kernel_isa.empty() ? "n/a" : info.kernel_isa.c_str());

  serve::SearchService service(std::move(index),
                               {.max_batch = max_batch, .max_wait_us = 300});

  // The clients. Each one is strictly sequential — the batching is entirely
  // the service's doing.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      const Matrix<float>& stream = streams[static_cast<std::size_t>(c)];
      for (index_t qi = 0; qi < stream.rows(); ++qi) {
        serve::QueryResult r =
            service.submit({stream.row(qi), stream.cols()}, k).get();
        if (r.ids.empty()) std::abort();  // unreachable; keeps r observable
      }
    });
  for (auto& thread : threads) thread.join();
  service.drain();

  const serve::ServiceStats stats = service.stats();
  std::printf("\n%d clients x %u queries, max_batch=%u max_wait=%uus\n",
              clients, per_client, service.options().max_batch,
              service.options().max_wait_us);
  std::printf("  completed:   %llu queries in %.2fs  (%.0f queries/s)\n",
              static_cast<unsigned long long>(stats.completed),
              stats.wall_seconds, stats.throughput_qps);
  std::printf("  latency:     p50 %.2fms  p99 %.2fms  max %.2fms\n",
              stats.latency_p50_ms, stats.latency_p99_ms,
              stats.latency_max_ms);
  std::printf("  batches:     %llu dispatched, mean %.1f queries each\n",
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch());
  std::printf("  work:        %.0f distance evals/query\n",
              static_cast<double>(stats.dist_evals) /
                  static_cast<double>(stats.completed));
  std::printf("  batch-size histogram (rows -> batches):\n");
  for (std::size_t b = 0; b < serve::ServiceStats::kHistBuckets; ++b) {
    if (stats.batch_hist[b] == 0) continue;
    const unsigned lo = 1u << b;
    std::printf("    %5u..%-5u %llu\n", lo, (lo << 1) - 1,
                static_cast<unsigned long long>(stats.batch_hist[b]));
  }
  return 0;
}
