// Serving demo: N client threads firing single queries at a SearchService,
// which coalesces them into paper-style query blocks for the backend.
//
//   ./serve_demo [backend] [clients] [queries_per_client] [max_batch] [metric]
//   ./serve_demo rbc-exact 8 2000 256 cosine
//
// Each client plays an independent user: it submits one query at a time and
// waits for the answer (request/response, like a web frontend would). The
// service turns that anti-batch workload into large BF(Q, X) blocks — watch
// the batch-size histogram: with enough concurrent clients almost nothing
// executes as a singleton.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.hpp"
#include "rbc/rbc.hpp"
#include "serve/service.hpp"

int main(int argc, char** argv) {
  using namespace rbc;

  const std::string backend = argc > 1 ? argv[1] : "rbc-exact";
  const int clients = argc > 2 ? std::atoi(argv[2]) : 8;
  const index_t per_client =
      argc > 3 ? static_cast<index_t>(std::atoi(argv[3])) : 2'000;
  const index_t max_batch =
      argc > 4 ? static_cast<index_t>(std::atoi(argv[4])) : 256;
  const std::string metric = argc > 5 ? argv[5] : "l2";
  const index_t n = 50'000, dim = 32, k = 5;

  // Database and one private query stream per client, all from the same
  // cluster model (the paper's in-distribution evaluation protocol).
  Matrix<float> database = data::make_subspace_clusters(
      n, dim, /*clusters=*/30, /*intrinsic_d=*/3, /*noise=*/0.05f, /*seed=*/1);
  std::vector<Matrix<float>> streams;
  streams.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    streams.push_back(data::make_subspace_clusters(
        per_client, dim, 30, 3, 0.05f, /*seed=*/100 + static_cast<std::uint64_t>(c)));

  auto index = make_index(backend, {.metric = metric});
  index->build(database);
  const IndexInfo info = index->info();
  std::printf("serving %s over %u points in %u dims (metric: %s, "
              "kernels: %s)\n",
              backend.c_str(), n, dim, info.metric.c_str(),
              info.kernel_isa.empty() ? "n/a" : info.kernel_isa.c_str());

  serve::SearchService service(std::move(index),
                               {.max_batch = max_batch, .max_wait_us = 300});

  // The clients. Each one is strictly sequential — the batching is entirely
  // the service's doing.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      const Matrix<float>& stream = streams[static_cast<std::size_t>(c)];
      for (index_t qi = 0; qi < stream.rows(); ++qi) {
        serve::QueryResult r =
            service.submit({stream.row(qi), stream.cols()}, k).get();
        if (r.ids.empty()) std::abort();  // unreachable; keeps r observable
      }
    });
  for (auto& thread : threads) thread.join();
  service.drain();

  const serve::ServiceStats stats = service.stats();
  std::printf("\n%d clients x %u queries, max_batch=%u max_wait=%uus\n",
              clients, per_client, service.options().max_batch,
              service.options().max_wait_us);
  std::printf("  completed:   %llu queries in %.2fs  (%.0f queries/s)\n",
              static_cast<unsigned long long>(stats.completed),
              stats.wall_seconds, stats.throughput_qps);
  std::printf("  latency:     p50 %.2fms  p99 %.2fms  max %.2fms\n",
              stats.latency_p50_ms, stats.latency_p99_ms,
              stats.latency_max_ms);
  std::printf("  batches:     %llu dispatched, mean %.1f queries each\n",
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch());
  std::printf("  work:        %.0f distance evals/query\n",
              static_cast<double>(stats.dist_evals) /
                  static_cast<double>(stats.completed));
  std::printf("  batch-size histogram (rows -> batches):\n");
  for (std::size_t b = 0; b < serve::ServiceStats::kHistBuckets; ++b) {
    if (stats.batch_hist[b] == 0) continue;
    const unsigned lo = 1u << b;
    std::printf("    %5u..%-5u %llu\n", lo, (lo << 1) - 1,
                static_cast<unsigned long long>(stats.batch_hist[b]));
  }
  return 0;
}
