// Image-descriptor similarity search — the TinyImages workload of the
// paper's evaluation (§7.1): high-dimensional descriptors reduced by random
// projection, then searched with the one-shot RBC at an accuracy/speed
// trade-off chosen by the caller.
//
//   ./image_search [n_images] [target_dim]
#include <cstdio>
#include <cstdlib>

#include "cli_parse.hpp"
#include "common/timer.hpp"
#include "data/generators.hpp"
#include "data/random_projection.hpp"
#include "data/rank_error.hpp"
#include "rbc/rbc.hpp"

int main(int argc, char** argv) {
  using namespace rbc;
  const index_t n =
      argc > 1 ? cli::parse_index_or_die(argv[1], "n_images") : 100'000;
  const index_t d_out =
      argc > 2 ? cli::parse_index_or_die(argv[2], "target_dim", 1, 128) : 16;

  // 1. "Raw" descriptors on a low-dimensional scene manifold (a stand-in
  //    for GIST descriptors of the 80M Tiny Images set).
  std::printf("generating %u synthetic image descriptors...\n", n + 500);
  Matrix<float> raw = data::make_image_descriptors(n + 500, 128, 7);

  // 2. Random projection to d_out — the paper's preprocessing step. The JL
  //    lemma says pairwise distances survive the projection.
  std::printf("random projection 128 -> %u dims\n", d_out);
  Matrix<float> projected = data::random_projection(raw, d_out, 8);

  // Hold out 500 rows as queries.
  Matrix<float> database(n, d_out);
  Matrix<float> queries(500, d_out);
  for (index_t i = 0; i < n; ++i) database.copy_row_from(projected, i, i);
  for (index_t i = 0; i < 500; ++i)
    queries.copy_row_from(projected, n + i, i);

  // 3. One-shot RBC tuned for ~90% recall: nr = s = 2 sqrt(n).
  const auto param = static_cast<index_t>(
      2.0 * std::sqrt(static_cast<double>(n)));
  RbcOneShotIndex<> index;
  WallTimer build_timer;
  index.build(database, {.num_reps = param, .points_per_rep = param,
                         .seed = 9});
  std::printf("one-shot index built in %.2fs (nr = s = %u, %.1f MB)\n",
              build_timer.seconds(), param,
              static_cast<double>(index.memory_bytes()) / 1e6);

  // 4. Query: top-10 similar images per query descriptor.
  SearchStats stats;
  WallTimer search_timer;
  const KnnResult top10 = index.search(queries, 10, &stats);
  const double elapsed = search_timer.seconds();
  std::printf("500 queries x top-10 in %.3fs (%.1f us/query, %.0f evals/query)\n",
              elapsed, elapsed / 500 * 1e6, stats.dist_evals_per_query());

  // 5. Quality: mean rank of the returned best match.
  Matrix<float> eval_q(100, d_out);
  for (index_t i = 0; i < 100; ++i) eval_q.copy_row_from(queries, i, i);
  KnnResult eval(100, 1);
  for (index_t i = 0; i < 100; ++i) {
    eval.ids.at(i, 0) = top10.ids.at(i, 0);
    eval.dists.at(i, 0) = top10.dists.at(i, 0);
  }
  std::printf("quality over 100 queries: mean rank %.3f, recall@1 %.2f\n",
              data::mean_rank(eval_q, database, eval),
              data::recall_at_1(eval_q, database, eval));

  std::printf("nearest images to query 0: ");
  for (index_t j = 0; j < 5; ++j) std::printf("#%u ", top10.ids.at(0, j));
  std::printf("\n");
  return 0;
}
