// Checked command-line integer parsing shared by the examples.
//
// Every numeric knob used to go through bare std::atoi / std::strtoul,
// which turn a typo into a silent zero ("12q" parses as 12, "bogus" as 0,
// "-3" wraps through the unsigned cast) — and a zero-point benchmark or a
// wrapped port number is far harder to diagnose than a usage error. These
// helpers reject empty input, signs, trailing non-digits, and out-of-range
// values, then exit with the examples' usage status (2).
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/types.hpp"

namespace rbc::cli {

/// Parses `arg` as an unsigned decimal integer in [min, max]; on any
/// failure prints an error naming `what` and exits with status 2.
inline unsigned long long parse_uint_or_die(const char* arg, const char* what,
                                            unsigned long long min,
                                            unsigned long long max) {
  const char* s = arg != nullptr ? arg : "";
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(s, &end, 10);
  // strtoull accepts "-3" by wrapping; a leading sign is a usage error here.
  if (*s == '\0' || *s == '-' || *s == '+' || end == s || *end != '\0') {
    std::fprintf(stderr, "invalid %s '%s': expected an unsigned integer\n",
                 what, s);
    std::exit(2);
  }
  if (errno == ERANGE || value < min || value > max) {
    std::fprintf(stderr, "invalid %s '%s': must be in [%llu, %llu]\n", what, s,
                 min, max);
    std::exit(2);
  }
  return value;
}

/// An index-typed count (point counts, k, batch sizes, worker counts).
inline index_t parse_index_or_die(const char* arg, const char* what,
                                  unsigned long long min = 1,
                                  unsigned long long max = 0xFFFFFFFFull) {
  return static_cast<index_t>(parse_uint_or_die(arg, what, min, max));
}

/// A TCP port; 0 is allowed (the OS picks an ephemeral port).
inline std::uint16_t parse_port_or_die(const char* arg, const char* what) {
  return static_cast<std::uint16_t>(parse_uint_or_die(arg, what, 0, 65535));
}

}  // namespace rbc::cli
