// rbc_tool — command-line driver for the library: generate datasets, build
// and persist indexes, run searches, and evaluate accuracy, all from files.
//
//   rbc_tool gen <dataset> <n> <out.bin>
//   rbc_tool backends
//   rbc_tool build [--metric=<m>] [--storage=<s>] <db.bin> <index.rbc>
//       [backend]
//                  [num_reps|leaf_size]
//   rbc_tool search <index.rbc> <queries.bin> <k>
//   rbc_tool eval <db.bin> <queries.bin> <index.rbc>
//
// Matrices are the binary format of data::save_matrix; indexes are the
// unified serialization format: any backend name from `rbc_tool backends`
// that supports save can be built, and `search`/`eval` restore it through
// rbc::load_index (the leading magic resolves the backend automatically).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cli_parse.hpp"
#include "common/timer.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"
#include "data/rank_error.hpp"
#include "rbc/rbc.hpp"

namespace {

using namespace rbc;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rbc_tool gen <bio|cov|phy|robot|tiny4|tiny8|tiny16|tiny32> "
               "<n> <out.bin>\n"
               "  rbc_tool backends\n"
               "  rbc_tool build [--metric=<l2|l1|cosine|ip>] "
               "[--storage=<float32|fp16|int8>] <db.bin> "
               "<index.rbc> [backend] [num_reps|leaf_size]\n"
               "  rbc_tool search <index.rbc> <queries.bin> <k>\n"
               "  rbc_tool eval <db.bin> <queries.bin> <index.rbc>\n");
  return 2;
}

int cmd_gen(int argc, char** argv) {
  if (argc != 5) return usage();
  const auto& spec = data::dataset_by_name(argv[2]);
  const index_t n = cli::parse_index_or_die(argv[3], "n");
  WallTimer timer;
  const Matrix<float> X = data::make_dataset(spec, n, /*seed=*/1);
  data::save_matrix(X, argv[4]);
  std::printf("wrote %u x %u (%s surrogate) to %s in %.2fs\n", X.rows(),
              X.cols(), spec.name.c_str(), argv[4], timer.seconds());
  return 0;
}

int cmd_backends() {
  for (const std::string& name : registered_backends()) {
    const auto probe = make_index(name);
    std::string metrics;
    for (const std::string& m : probe->info().supported_metrics) {
      if (!metrics.empty()) metrics += ",";
      metrics += m;
    }
    std::printf("%-20s metrics: %-18s%s\n", name.c_str(), metrics.c_str(),
                probe->info().supports_save ? "" : "  (in-memory only)");
  }
  return 0;
}

int cmd_build(int argc, char** argv) {
  // Strip optional --metric=<m> / --storage=<s> flags (any position after
  // the command).
  std::string metric = "l2";
  std::string storage = "float32";
  std::vector<char*> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    if (std::strncmp(*it, "--metric=", 9) == 0) {
      metric = *it + 9;
      it = args.erase(it);
    } else if (std::strncmp(*it, "--storage=", 10) == 0) {
      storage = *it + 10;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc < 4 || argc > 6) return usage();
  // Legacy spellings stay valid; any registered backend name works.
  std::string backend = argc >= 5 ? argv[4] : "rbc-exact";
  if (backend == "exact") backend = "rbc-exact";
  if (backend == "oneshot") backend = "rbc-oneshot";
  IndexOptions options;
  options.metric = metric;
  options.storage = storage;
  if (argc == 6) {
    // The optional numeric knob means whatever the backend tunes; reject it
    // for backends that would silently ignore it.
    const index_t value =
        cli::parse_index_or_die(argv[5], "num_reps|leaf_size");
    if (backend == "rbc-exact" || backend == "rbc-oneshot" ||
        backend == "gpu-oneshot") {
      options.rbc.num_reps = value;
    } else if (backend == "kdtree" || backend == "balltree") {
      options.leaf_size = value;
    } else {
      std::fprintf(stderr, "backend '%s' takes no numeric parameter\n",
                   backend.c_str());
      return usage();
    }
  }

  auto index = make_index(backend, options);
  if (!index->info().supports_save) {
    std::fprintf(stderr,
                 "backend '%s' is in-memory only and cannot be persisted "
                 "(see `rbc_tool backends`)\n",
                 backend.c_str());
    return 1;
  }

  const Matrix<float> X = data::load_matrix(argv[2]);
  WallTimer timer;
  index->build(X);
  try {
    // Atomic replace (tmp + fsync + rename): a crash mid-save cannot
    // destroy an index file already at this path — which a serving process
    // may be hot-reloading from.
    save_index(*index, argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot write %s: %s\n", argv[3], e.what());
    return 1;
  }
  const IndexInfo info = index->info();
  std::printf("%s index (metric: %s, storage: %s) over %u points: %.1f MB, "
              "built in %.2fs\n",
              info.backend.c_str(), info.metric.c_str(), info.storage.c_str(),
              info.size, static_cast<double>(info.memory_bytes) / 1e6,
              timer.seconds());
  return 0;
}

int cmd_search(int argc, char** argv) {
  if (argc != 5) return usage();
  const Matrix<float> Q = data::load_matrix(argv[3]);
  const index_t k = cli::parse_index_or_die(argv[4], "k");

  std::ifstream is(argv[2], std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 1;
  }
  const auto index = load_index(is);

  SearchRequest request{.queries = &Q, .k = k};
  request.options.collect_stats = true;
  WallTimer timer;
  const SearchResponse response = index->knn_search(request);
  const double elapsed = timer.seconds();

  std::printf(
      "[%s/%s] %u queries x %u-NN in %.3fs (%.1f us/query, "
      "%.0f evals/query)\n",
      index->info().backend.c_str(), index->info().metric.c_str(), Q.rows(),
      k, elapsed, elapsed / Q.rows() * 1e6,
      response.stats.dist_evals_per_query());
  const index_t show = std::min<index_t>(Q.rows(), 5);
  for (index_t qi = 0; qi < show; ++qi) {
    std::printf("q%u:", qi);
    for (index_t j = 0; j < k; ++j)
      std::printf(" (%u, %.4f)", response.knn.ids.at(qi, j),
                  response.knn.dists.at(qi, j));
    std::printf("\n");
  }
  return 0;
}

int cmd_eval(int argc, char** argv) {
  if (argc != 5) return usage();
  const Matrix<float> X = data::load_matrix(argv[2]);
  const Matrix<float> Q = data::load_matrix(argv[3]);

  std::ifstream is(argv[4], std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "cannot read %s\n", argv[4]);
    return 1;
  }
  const auto index = load_index(is);
  const KnnResult result = index->knn_search({.queries = &Q, .k = 1}).knn;
  const std::string metric = index->info().metric;
  std::printf("backend:   %s\nmetric:    %s\nmean rank: %.4f\n"
              "recall@1:  %.4f\n",
              index->info().backend.c_str(), metric.c_str(),
              data::mean_rank(Q, X, result, metric),
              data::recall_at_1(Q, X, result, metric));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "backends") return cmd_backends();
    if (cmd == "build") return cmd_build(argc, argv);
    if (cmd == "search") return cmd_search(argc, argv);
    if (cmd == "eval") return cmd_eval(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
