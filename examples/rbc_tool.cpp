// rbc_tool — command-line driver for the library: generate datasets, build
// and persist indexes, run searches, and evaluate accuracy, all from files.
//
//   rbc_tool gen <dataset> <n> <out.bin>
//   rbc_tool build <db.bin> <index.rbc> [exact|oneshot] [num_reps]
//   rbc_tool search <db-or-index path> <queries.bin> <k>
//   rbc_tool eval <db.bin> <queries.bin> <index.rbc>
//
// Matrices are the binary format of data::save_matrix; indexes are the
// save()/load() format of the RBC classes (magic-tagged, so `search` and
// `eval` detect the index kind automatically).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/timer.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"
#include "data/rank_error.hpp"
#include "rbc/rbc.hpp"
#include "rbc/serialize_io.hpp"

namespace {

using namespace rbc;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rbc_tool gen <bio|cov|phy|robot|tiny4|tiny8|tiny16|tiny32> "
               "<n> <out.bin>\n"
               "  rbc_tool build <db.bin> <index.rbc> [exact|oneshot] "
               "[num_reps]\n"
               "  rbc_tool search <index.rbc> <queries.bin> <k>\n"
               "  rbc_tool eval <db.bin> <queries.bin> <index.rbc>\n");
  return 2;
}

std::uint32_t peek_magic(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return is ? magic : 0;
}

int cmd_gen(int argc, char** argv) {
  if (argc != 5) return usage();
  const auto& spec = data::dataset_by_name(argv[2]);
  const auto n = static_cast<index_t>(std::strtoul(argv[3], nullptr, 10));
  WallTimer timer;
  const Matrix<float> X = data::make_dataset(spec, n, /*seed=*/1);
  data::save_matrix(X, argv[4]);
  std::printf("wrote %u x %u (%s surrogate) to %s in %.2fs\n", X.rows(),
              X.cols(), spec.name.c_str(), argv[4], timer.seconds());
  return 0;
}

int cmd_build(int argc, char** argv) {
  if (argc < 4 || argc > 6) return usage();
  const Matrix<float> X = data::load_matrix(argv[2]);
  const std::string kind = argc >= 5 ? argv[4] : "exact";
  RbcParams params;
  if (argc == 6)
    params.num_reps =
        static_cast<index_t>(std::strtoul(argv[5], nullptr, 10));

  std::ofstream os(argv[3], std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  WallTimer timer;
  if (kind == "oneshot") {
    RbcOneShotIndex<> index;
    index.build(X, params);
    index.save(os);
    std::printf("one-shot index: nr=%u s=%u, %.1f MB, built in %.2fs\n",
                index.num_reps(), index.points_per_rep(),
                static_cast<double>(index.memory_bytes()) / 1e6,
                timer.seconds());
  } else if (kind == "exact") {
    RbcExactIndex<> index;
    index.build(X, params);
    index.save(os);
    std::printf("exact index: nr=%u, %.1f MB, built in %.2fs\n",
                index.num_reps(),
                static_cast<double>(index.memory_bytes()) / 1e6,
                timer.seconds());
  } else {
    return usage();
  }
  return 0;
}

int cmd_search(int argc, char** argv) {
  if (argc != 5) return usage();
  const Matrix<float> Q = data::load_matrix(argv[3]);
  const auto k = static_cast<index_t>(std::strtoul(argv[4], nullptr, 10));

  std::ifstream is(argv[2], std::ios::binary);
  const std::uint32_t magic = peek_magic(argv[2]);
  KnnResult result;
  SearchStats stats;
  WallTimer timer;
  double elapsed = 0.0;
  if (magic == io::kMagicExact) {
    const auto index = RbcExactIndex<>::load(is);
    timer.reset();
    result = index.search(Q, k, &stats);
    elapsed = timer.seconds();
  } else if (magic == io::kMagicOneShot) {
    const auto index = RbcOneShotIndex<>::load(is);
    timer.reset();
    result = index.search(Q, k, &stats);
    elapsed = timer.seconds();
  } else {
    std::fprintf(stderr, "%s is not an rbc index\n", argv[2]);
    return 1;
  }

  std::printf("%u queries x %u-NN in %.3fs (%.1f us/query, %.0f evals/query)\n",
              Q.rows(), k, elapsed, elapsed / Q.rows() * 1e6,
              stats.dist_evals_per_query());
  const index_t show = std::min<index_t>(Q.rows(), 5);
  for (index_t qi = 0; qi < show; ++qi) {
    std::printf("q%u:", qi);
    for (index_t j = 0; j < k; ++j)
      std::printf(" (%u, %.4f)", result.ids.at(qi, j),
                  result.dists.at(qi, j));
    std::printf("\n");
  }
  return 0;
}

int cmd_eval(int argc, char** argv) {
  if (argc != 5) return usage();
  const Matrix<float> X = data::load_matrix(argv[2]);
  const Matrix<float> Q = data::load_matrix(argv[3]);

  std::ifstream is(argv[4], std::ios::binary);
  const std::uint32_t magic = peek_magic(argv[4]);
  KnnResult result;
  if (magic == io::kMagicExact) {
    result = RbcExactIndex<>::load(is).search(Q, 1);
  } else if (magic == io::kMagicOneShot) {
    result = RbcOneShotIndex<>::load(is).search(Q, 1);
  } else {
    std::fprintf(stderr, "%s is not an rbc index\n", argv[4]);
    return 1;
  }
  std::printf("mean rank: %.4f\nrecall@1:  %.4f\n",
              data::mean_rank(Q, X, result), data::recall_at_1(Q, X, result));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "build") return cmd_build(argc, argv);
    if (cmd == "search") return cmd_search(argc, argv);
    if (cmd == "eval") return cmd_eval(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
