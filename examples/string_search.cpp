// Metric-space generality: nearest-neighbor search over *strings* under the
// Levenshtein edit distance, using the generic RBC index. The paper (§6)
// stresses that the expansion-rate framework "makes sense for the edit
// distance on strings" — this example is that claim running: a fuzzy
// dictionary matcher (the classic spell-correction workload).
//
//   ./string_search [dictionary_size]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli_parse.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "distance/edit_distance.hpp"
#include "rbc/rbc_generic.hpp"

namespace {

// A synthetic "dictionary": base words plus morphological variants, which
// gives the clustered structure real vocabularies have.
std::vector<std::string> make_dictionary(rbc::index_t size,
                                         std::uint64_t seed) {
  rbc::Rng rng(seed);
  const char* const kSuffixes[] = {"", "s", "ed", "ing", "er", "ly", "ness"};
  std::vector<std::string> words;
  words.reserve(size);
  while (words.size() < size) {
    // Random pronounceable-ish stem.
    const char* const kC = "bcdfghklmnprstvw";
    const char* const kV = "aeiou";
    std::string stem;
    const rbc::index_t syllables = 2 + rng.uniform_index(3);
    for (rbc::index_t s = 0; s < syllables; ++s) {
      stem += kC[rng.uniform_index(16)];
      stem += kV[rng.uniform_index(5)];
    }
    for (const char* suffix : kSuffixes) {
      if (words.size() >= size) break;
      words.push_back(stem + suffix);
    }
  }
  return words;
}

std::string corrupt(const std::string& word, rbc::Rng& rng) {
  std::string out = word;
  const int edits = 1 + static_cast<int>(rng.uniform_index(2));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    const auto pos = rng.uniform_index(static_cast<rbc::index_t>(out.size()));
    switch (rng.uniform_index(3)) {
      case 0:  // substitute
        out[pos] = static_cast<char>('a' + rng.uniform_index(26));
        break;
      case 1:  // delete
        out.erase(pos, 1);
        break;
      default:  // insert
        out.insert(pos, 1, static_cast<char>('a' + rng.uniform_index(26)));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbc;
  const index_t n =
      argc > 1 ? cli::parse_index_or_die(argv[1], "n_words") : 20'000;

  const StringSpace dictionary(make_dictionary(n, 1));
  std::printf("dictionary: %u words (e.g. \"%s\", \"%s\")\n",
              dictionary.size(), dictionary[0].c_str(),
              dictionary[1].c_str());

  RbcGenericExact<StringSpace> index;
  WallTimer build_timer;
  index.build(dictionary, {.seed = 2});
  std::printf("generic exact RBC built in %.2fs (%u representatives)\n",
              build_timer.seconds(), index.num_reps());

  // Typo correction: corrupt dictionary words, then look them up.
  Rng rng(3);
  index_t recovered = 0;
  SearchStats stats;
  WallTimer query_timer;
  const index_t kQueries = 200;
  for (index_t i = 0; i < kQueries; ++i) {
    const index_t target = rng.uniform_index(dictionary.size());
    const std::string typo = corrupt(dictionary[target], rng);
    const auto result = index.search(typo, 3, &stats);
    if (i < 5) {
      std::printf("  \"%s\" -> ", typo.c_str());
      for (const auto& neighbor : result)
        std::printf("\"%s\"(%.0f) ", dictionary[neighbor.id].c_str(),
                    neighbor.dist);
      std::printf("\n");
    }
    // Recovered if the original word appears among the top 3 suggestions.
    for (const auto& neighbor : result)
      if (dictionary[neighbor.id] == dictionary[target]) {
        ++recovered;
        break;
      }
  }
  const double elapsed = query_timer.seconds();
  std::printf("%u corrections in %.2fs (%.1f ms each), %.0f edit-distance "
              "evals/query vs %u brute force\n",
              kQueries, elapsed, elapsed / kQueries * 1e3,
              stats.dist_evals_per_query(), dictionary.size());
  std::printf("top-3 recovery rate: %.1f%%\n",
              100.0 * recovered / kQueries);
  return 0;
}
