// Metric-space generality: nearest-neighbor search over *strings* under the
// Levenshtein edit distance, through the unified API. The paper (§6)
// stresses that the expansion-rate framework "makes sense for the edit
// distance on strings" — this example is that claim running: a fuzzy
// dictionary matcher (the classic spell-correction workload) served by the
// same make_index factory, options struct, and request/response types as
// every dense backend.
//
//   ./string_search [dictionary_size]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "cli_parse.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "metricspace/dataset.hpp"

namespace {

// A synthetic "dictionary": base words plus morphological variants, which
// gives the clustered structure real vocabularies have.
std::vector<std::string> make_dictionary(rbc::index_t size,
                                         std::uint64_t seed) {
  rbc::Rng rng(seed);
  const char* const kSuffixes[] = {"", "s", "ed", "ing", "er", "ly", "ness"};
  std::vector<std::string> words;
  words.reserve(size);
  while (words.size() < size) {
    // Random pronounceable-ish stem.
    const char* const kC = "bcdfghklmnprstvw";
    const char* const kV = "aeiou";
    std::string stem;
    const rbc::index_t syllables = 2 + rng.uniform_index(3);
    for (rbc::index_t s = 0; s < syllables; ++s) {
      stem += kC[rng.uniform_index(16)];
      stem += kV[rng.uniform_index(5)];
    }
    for (const char* suffix : kSuffixes) {
      if (words.size() >= size) break;
      words.push_back(stem + suffix);
    }
  }
  return words;
}

std::string corrupt(const std::string& word, rbc::Rng& rng) {
  std::string out = word;
  const int edits = 1 + static_cast<int>(rng.uniform_index(2));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    const auto pos = rng.uniform_index(static_cast<rbc::index_t>(out.size()));
    switch (rng.uniform_index(3)) {
      case 0:  // substitute
        out[pos] = static_cast<char>('a' + rng.uniform_index(26));
        break;
      case 1:  // delete
        out.erase(pos, 1);
        break;
      default:  // insert
        out.insert(pos, 1, static_cast<char>('a' + rng.uniform_index(26)));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbc;
  const index_t n =
      argc > 1 ? cli::parse_index_or_die(argv[1], "n_words") : 20'000;

  const std::vector<std::string> words = make_dictionary(n, 1);
  const auto dictionary = metricspace::make_string_dataset(words);
  std::printf("dictionary: %u words (e.g. \"%s\", \"%s\")\n",
              dictionary->size(), words[0].c_str(), words[1].c_str());

  // The same factory call that builds a dense L2 index; the "edit" metric
  // routes it to the generic payload backend.
  IndexOptions options;
  options.metric = "edit";
  options.rbc.seed = 2;
  auto index = make_index("rbc-exact", options);
  WallTimer build_timer;
  index->build_payload(dictionary);
  std::printf("%s over \"%s\" built in %.2fs (cost unit: %s)\n",
              index->info().backend.c_str(), index->info().metric.c_str(),
              build_timer.seconds(), index->info().cost_unit.c_str());

  // Typo correction: corrupt dictionary words, then look them up.
  Rng rng(3);
  index_t recovered = 0;
  const index_t kQueries = 200;
  std::vector<std::string> typos;
  std::vector<index_t> targets;
  typos.reserve(kQueries);
  for (index_t i = 0; i < kQueries; ++i) {
    targets.push_back(rng.uniform_index(dictionary->size()));
    typos.push_back(corrupt(words[targets.back()], rng));
  }

  PayloadSearchRequest request{.queries = &typos, .k = 3, .options = {}};
  request.options.metric = "edit";
  request.options.collect_stats = true;
  WallTimer query_timer;
  const SearchResponse response = index->knn_search_payload(request);
  const double elapsed = query_timer.seconds();

  for (index_t i = 0; i < 5; ++i) {
    std::printf("  \"%s\" -> ", typos[i].c_str());
    for (index_t j = 0; j < 3; ++j)
      std::printf("\"%s\"(%.0f) ", words[response.knn.ids.at(i, j)].c_str(),
                  response.knn.dists.at(i, j));
    std::printf("\n");
  }
  // Recovered if the original word appears among the top 3 suggestions.
  for (index_t i = 0; i < kQueries; ++i)
    for (index_t j = 0; j < 3; ++j)
      if (words[response.knn.ids.at(i, j)] == words[targets[i]]) {
        ++recovered;
        break;
      }
  std::printf("%u corrections in %.2fs (%.1f ms each), %.0f edit-distance "
              "evals/query vs %u brute force\n",
              kQueries, elapsed, elapsed / kQueries * 1e3,
              response.stats.dist_evals_per_query(), dictionary->size());
  std::printf("top-3 recovery rate: %.1f%%\n",
              100.0 * recovered / kQueries);
  return 0;
}
