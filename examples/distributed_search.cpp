// Distributed deployment (the paper's §8 direction): shard a database over
// a simulated worker cluster by representative, serve exact queries, and
// read off the communication/balance metrics the paper lists as the open
// questions ("I/O and communication costs").
//
//   ./distributed_search [n_points] [workers]
#include <cstdio>
#include <cstdlib>

#include "cli_parse.hpp"
#include "common/timer.hpp"
#include "data/generators.hpp"
#include "dist/distributed_rbc.hpp"

int main(int argc, char** argv) {
  using namespace rbc;
  const index_t n =
      argc > 1 ? cli::parse_index_or_die(argv[1], "n_points") : 100'000;
  const index_t workers =
      argc > 2 ? cli::parse_index_or_die(argv[2], "workers", 1, 4096) : 8;

  data::DataSplit split = data::make_benchmark_data(
      data::dataset_by_name("bio"), n, 500, /*seed=*/3);

  dist::DistributedRbc cluster;
  WallTimer build_timer;
  cluster.build(split.database, workers, {.seed = 4});
  const auto ingest = cluster.network().total();
  std::printf("sharded %u points over %u workers in %.2fs "
              "(%u representatives, %.1f MB shipped at ingest)\n",
              n, workers, build_timer.seconds(), cluster.num_reps(),
              static_cast<double>(ingest.bytes) / 1e6);
  for (index_t w = 0; w < workers; ++w)
    std::printf("  worker %u: %u points\n", w, cluster.worker_points(w));

  dist::DistStats stats;
  WallTimer search_timer;
  const KnnResult result = cluster.search(split.queries, 3, &stats);
  (void)result;
  const auto total = cluster.network().total();

  std::printf("\n500 exact 3-NN queries in %.3fs\n", search_timer.seconds());
  std::printf("workers contacted per query: %.2f of %u\n",
              stats.workers_contacted_per_query(), workers);
  std::printf("query-phase traffic: %.1f KB total (%.2f KB/query)\n",
              static_cast<double>(total.bytes - ingest.bytes) / 1e3,
              static_cast<double>(total.bytes - ingest.bytes) / 1e3 / 500);
  std::printf("stage-2 work per query (sum over workers): %.0f distance evals\n",
              static_cast<double>(stats.list_dist_evals) / stats.queries);
  std::printf("per-worker scan work: ");
  for (index_t w = 0; w < workers; ++w)
    std::printf("%llu ",
                static_cast<unsigned long long>(cluster.worker_list_evals(w)));
  std::printf("\n");
  return 0;
}
