// Quickstart: build indexes over a synthetic database through the unified
// API, run 1-NN and k-NN queries, and compare against brute force.
//
//   ./quickstart
//
// This is the 60-line tour of the public API; see the other examples for
// realistic workloads and the concrete templated classes (RbcExactIndex<M>,
// BallTree<M>, ...) for zero-overhead direct use with custom metrics.
#include <cstdio>

#include "data/generators.hpp"
#include "rbc/rbc.hpp"

int main() {
  using namespace rbc;

  // 1. A database: 50k points on 3-dimensional cluster subspaces in R^32.
  //    Queries are drawn from the same *distribution* (same cluster model)
  //    but with a different seed, so they are near — not identical to —
  //    database points, matching the paper's evaluation protocol.
  const index_t n = 50'000, dim = 32;
  Matrix<float> database = data::make_subspace_clusters(
      n, dim, /*clusters=*/30, /*intrinsic_d=*/3, /*noise=*/0.05f,
      /*seed=*/42);
  Matrix<float> queries = data::make_subspace_clusters(
      100, dim, 30, 3, 0.05f, /*seed=*/43);  // distribution match, fresh draw

  // 2. Exact index: always returns the true nearest neighbors.
  auto exact = make_index("rbc-exact");  // auto params: nr = ceil(sqrt(n))
  exact->build(database);
  const IndexInfo info = exact->info();
  std::printf("%s index over %u points in %u dims (%.1f MB)\n",
              info.backend.c_str(), info.size, info.dim,
              static_cast<double>(info.memory_bytes) / 1e6);

  SearchRequest request{.queries = &queries, .k = 5};
  request.options.collect_stats = true;
  const SearchResponse exact5 = exact->knn_search(request);
  std::printf("exact 5-NN of query 0: ");
  for (index_t j = 0; j < 5; ++j)
    std::printf("(%u, %.3f) ", exact5.knn.ids.at(0, j),
                exact5.knn.dists.at(0, j));
  std::printf("\n  work: %.0f distance evals/query (brute force would be %u)\n",
              exact5.stats.dist_evals_per_query(), n);

  // 3. Cross-check against the brute-force backend — same request, same
  //    interface, different backend name.
  auto brute = make_index("bruteforce");
  brute->build(database);
  const KnnResult reference = brute->knn_search(request).knn;
  bool identical = true;
  for (index_t qi = 0; qi < queries.rows() && identical; ++qi)
    for (index_t j = 0; j < 5; ++j)
      if (reference.ids.at(qi, j) != exact5.knn.ids.at(qi, j))
        identical = false;
  std::printf("exact == brute force: %s\n", identical ? "yes" : "NO (bug!)");

  // 4. One-shot index: probabilistic answers, one ownership list per query.
  auto oneshot = make_index("rbc-oneshot");
  oneshot->build(database);
  SearchRequest one{.queries = &queries, .k = 1};
  one.options.collect_stats = true;
  const SearchResponse approx = oneshot->knn_search(one);
  index_t agree = 0;
  for (index_t qi = 0; qi < queries.rows(); ++qi)
    if (approx.knn.ids.at(qi, 0) == reference.ids.at(qi, 0)) ++agree;
  std::printf("one-shot: %u/%u exact answers at %.0f distance evals/query\n",
              agree, queries.rows(), approx.stats.dist_evals_per_query());

  // 5. Range search: everything within a radius of each query.
  const RangeResponse in_ball =
      exact->range_search({.queries = &queries, .radius = 1.0f});
  std::printf("range search r=1.0 around query 0: %zu points\n",
              in_ball.ids[0].size());
  return 0;
}
