// Quickstart: build both RBC indexes over a synthetic database, run 1-NN and
// k-NN queries, and compare against brute force.
//
//   ./quickstart
//
// This is the 60-line tour of the public API; see the other examples for
// realistic workloads.
#include <cstdio>

#include "data/generators.hpp"
#include "rbc/rbc.hpp"

int main() {
  using namespace rbc;

  // 1. A database: 50k points on 3-dimensional cluster subspaces in R^32.
  const index_t n = 50'000, dim = 32;
  Matrix<float> database = data::make_subspace_clusters(
      n, dim, /*clusters=*/30, /*intrinsic_d=*/3, /*noise=*/0.05f,
      /*seed=*/42);
  Matrix<float> queries = data::make_subspace_clusters(
      100, dim, 30, 3, 0.05f, 42);  // same distribution

  // 2. Exact index: always returns the true nearest neighbors.
  RbcExactIndex<> exact;       // Euclidean metric by default
  exact.build(database);       // auto parameters: nr = ceil(sqrt(n))
  std::printf("exact index: %u representatives over %u points\n",
              exact.num_reps(), exact.size());

  SearchStats stats;
  const KnnResult knn = exact.search(queries, /*k=*/5, &stats);
  std::printf("exact 5-NN of query 0: ");
  for (index_t j = 0; j < 5; ++j)
    std::printf("(%u, %.3f) ", knn.ids.at(0, j), knn.dists.at(0, j));
  std::printf("\n  work: %.0f distance evals/query (brute force would be %u)\n",
              stats.dist_evals_per_query(), n);

  // 3. Cross-check against the brute-force primitive.
  const KnnResult reference = bf_knn(queries, database, 5);
  bool identical = true;
  for (index_t qi = 0; qi < queries.rows() && identical; ++qi)
    for (index_t j = 0; j < 5; ++j)
      if (reference.ids.at(qi, j) != knn.ids.at(qi, j)) identical = false;
  std::printf("exact == brute force: %s\n", identical ? "yes" : "NO (bug!)");

  // 4. One-shot index: probabilistic answers, one ownership list per query.
  RbcOneShotIndex<> oneshot;
  oneshot.build(database);
  SearchStats os_stats;
  const KnnResult approx = oneshot.search(queries, 1, &os_stats);
  index_t agree = 0;
  for (index_t qi = 0; qi < queries.rows(); ++qi)
    if (approx.ids.at(qi, 0) == reference.ids.at(qi, 0)) ++agree;
  std::printf(
      "one-shot: %u/%u exact answers at %.0f distance evals/query\n",
      agree, queries.rows(), os_stats.dist_evals_per_query());

  // 5. Range search: everything within a radius.
  const auto in_ball = exact.range_search(queries.row(0), 1.0f);
  std::printf("range search r=1.0 around query 0: %zu points\n",
              in_ball.size());
  return 0;
}
