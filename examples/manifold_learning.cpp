// Manifold learning pipeline — the workload behind the paper's intro
// citations [26, 27] (LLE, Isomap): both algorithms start from the k-NN
// graph of the dataset, which is exactly the batch job build_knn_graph
// accelerates. This example runs the Isomap front half on a swiss roll:
//   1. exact k-NN graph via the RBC (vs brute force for timing contrast);
//   2. geodesic distances over the graph (Dijkstra, via GraphSpace);
//   3. sanity metric: geodesics along the roll greatly exceed ambient
//      distances — the signature of a curled-up manifold.
//
//   ./manifold_learning [n_points]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "cli_parse.hpp"
#include "common/timer.hpp"
#include "data/generators.hpp"
#include "distance/graph_metric.hpp"
#include "rbc/knn_graph.hpp"

int main(int argc, char** argv) {
  using namespace rbc;
  const index_t n =
      argc > 1 ? cli::parse_index_or_die(argv[1], "n_points") : 3'000;
  const index_t k = 8;

  Matrix<float> roll = data::make_swiss_roll(n, 3, 0.02f, 11);
  std::printf("swiss roll: %u points in R^3 (intrinsic dimension 2)\n", n);

  // 1. k-NN graph via the exact RBC.
  WallTimer graph_timer;
  const KnnResult graph = build_knn_graph(roll, k, {.seed = 1});
  std::printf("exact %u-NN graph built in %.2fs\n", k, graph_timer.seconds());

  const auto edges = symmetrize_knn_graph(graph);
  std::printf("symmetrized: %zu undirected edges\n", edges.size());

  // 2. Geodesic distances on the graph (Isomap's shortest-path step).
  //    Subsample for the all-pairs table.
  const index_t m = std::min<index_t>(n, 600);
  GraphSpace geo(m);
  index_t kept = 0;
  for (const KnnEdge& e : edges)
    if (e.u < m && e.v < m) {
      geo.add_edge(e.u, e.v, e.dist);
      ++kept;
    }
  WallTimer geo_timer;
  geo.finalize();
  std::printf("geodesics on %u-node subgraph (%u edges) in %.2fs%s\n", m,
              kept, geo_timer.seconds(),
              geo.connected() ? "" : " (subgraph disconnected; expected for"
                                     " a subsample)");

  // 3. Compare geodesic vs ambient distance for far-apart pairs: on a
  //    curled manifold the geodesic is much longer.
  const Euclidean metric{};
  double max_ratio = 0.0, sum_ratio = 0.0;
  index_t pairs = 0;
  for (index_t i = 0; i < m; i += 7)
    for (index_t j = i + 50; j < m; j += 97) {
      const double geodesic = geo.distance(i, j);
      if (!std::isfinite(geodesic)) continue;
      const double ambient = metric(roll.row(i), roll.row(j), 3);
      if (ambient < 1.0) continue;
      const double ratio = geodesic / ambient;
      max_ratio = std::max(max_ratio, ratio);
      sum_ratio += ratio;
      ++pairs;
    }
  std::printf("geodesic/ambient distance over %u far pairs: mean %.2f, "
              "max %.2f\n",
              pairs, pairs ? sum_ratio / pairs : 0.0, max_ratio);
  std::printf("(max >> 1 confirms the graph follows the rolled-up surface "
              "instead of cutting through it)\n");
  return 0;
}
