// Robot-arm state lookup — the paper's Robot workload ([22]: learning
// inverse dynamics for a Barrett WAM arm), through the unified API.
// Model-based controllers look up the nearest previously-seen arm states
// (q, qdot, qddot) to predict torques; the lookup must be exact (a wrong
// neighbor means a wrong torque) and fast (control loops run at hundreds of
// Hz), which is precisely the exact-RBC use case.
//
//   ./robot_arm [n_states]
#include <cstdio>
#include <cstdlib>

#include "api/api.hpp"
#include "cli_parse.hpp"
#include "common/timer.hpp"
#include "data/generators.hpp"

int main(int argc, char** argv) {
  using namespace rbc;
  const index_t n =
      argc > 1 ? cli::parse_index_or_die(argv[1], "n_states") : 200'000;

  std::printf("simulating %u arm states (7 joints x [q, qdot, qddot])...\n",
              n + 1'000);
  Matrix<float> all = data::make_robot_arm(n + 1'000, 11);

  Matrix<float> database(n, all.cols());
  Matrix<float> live(1'000, all.cols());  // "incoming" states to look up
  // Interleave: hold out every (n/1000)-th state as a live query so queries
  // come from the same trajectories as the database.
  const index_t stride = (n + 1'000) / 1'000;
  index_t qi = 0, di = 0;
  for (index_t i = 0; i < n + 1'000; ++i) {
    if (i % stride == 0 && qi < 1'000)
      live.copy_row_from(all, i, qi++);
    else if (di < n)
      database.copy_row_from(all, i, di++);
  }

  IndexOptions options;
  options.rbc.seed = 3;
  auto index = make_index("rbc-exact", options);
  WallTimer build_timer;
  index->build(database);
  std::printf("exact index: n=%u, built in %.2fs\n", index->info().size,
              build_timer.seconds());

  // Control-loop style: one state at a time, 5-NN for local regression.
  Matrix<float> one(1, live.cols());
  SearchRequest single{.queries = &one, .k = 5, .options = {}};
  single.options.collect_stats = true;
  WallTimer loop_timer;
  std::uint64_t evals = 0;
  for (index_t i = 0; i < live.rows(); ++i) {
    one.copy_row_from(live, i, 0);
    evals += index->knn_search(single).stats.dist_evals();
  }
  const double elapsed = loop_timer.seconds();
  std::printf("%u single-state lookups in %.3fs -> %.0f us/lookup "
              "(%.0f Hz control budget), %.0f evals/lookup\n",
              live.rows(), elapsed, elapsed / live.rows() * 1e6,
              live.rows() / elapsed,
              static_cast<double>(evals) / live.rows());

  // Show one lookup in detail.
  one.copy_row_from(live, 0, 0);
  const SearchResponse detail = index->knn_search(single);
  std::printf("5 nearest stored states to live state 0:\n");
  for (index_t j = 0; j < 5; ++j)
    std::printf("  state %-8u distance %.4f\n", detail.knn.ids.at(0, j),
                detail.knn.dists.at(0, j));

  // Batch mode for offline training-set cleanup: all queries at once.
  SearchRequest batch{.queries = &live, .k = 1, .options = {}};
  WallTimer batch_timer;
  (void)index->knn_search(batch);
  std::printf("batch mode: %u lookups in %.3fs (all cores)\n", live.rows(),
              batch_timer.seconds());
  return 0;
}
