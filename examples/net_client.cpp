// Minimal command-line client for an rbc_server (serve_demo --listen):
//
//   ./net_client <host> <port> info
//   ./net_client <host> <port> knn [nq] [k]     # random in-distribution rows
//   ./net_client <host> <port> reload <path>    # server-side index file
//
// `knn` generates queries from the same cluster model serve_demo's synthetic
// mode builds its database from, sends them as one block, and prints the
// first row's neighbors plus client-observed latency. An overloaded server
// answers with a retry_after_ms hint, which this client honors.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "cli_parse.hpp"
#include "data/generators.hpp"
#include "serve/net/client.hpp"

int main(int argc, char** argv) {
  using namespace rbc;
  using namespace rbc::serve::net;

  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <host> <port> info|knn [nq] [k]|reload <path>\n",
                 argv[0]);
    return 2;
  }
  const std::string host = argv[1];
  const std::uint16_t port = cli::parse_port_or_die(argv[2], "port");
  const std::string cmd = argv[3];

  try {
    RbcClient client(host, port);

    if (cmd == "info") {
      const InfoMsg info = client.info();
      std::printf("backend:   %s (metric %s, %u points x %u dims)\n",
                  info.backend.c_str(), info.metric.c_str(), info.size,
                  info.dim);
      std::printf("service:   %llu completed, %llu rejected, p50 %.2fms "
                  "p99 %.2fms\n",
                  static_cast<unsigned long long>(info.completed),
                  static_cast<unsigned long long>(info.rejected),
                  info.p50_ms, info.p99_ms);
      std::printf("this conn: %llu requests, %llu rejected, %llu B in, "
                  "%llu B out\n",
                  static_cast<unsigned long long>(info.conn_requests),
                  static_cast<unsigned long long>(info.conn_rejected),
                  static_cast<unsigned long long>(info.conn_bytes_in),
                  static_cast<unsigned long long>(info.conn_bytes_out));
      return 0;
    }

    if (cmd == "knn") {
      const index_t nq = argc > 4 ? cli::parse_index_or_die(argv[4], "nq") : 16;
      const index_t k = argc > 5 ? cli::parse_index_or_die(argv[5], "k") : 5;
      const InfoMsg info = client.info();
      Matrix<float> queries = data::make_subspace_clusters(
          nq, info.dim, /*clusters=*/30, /*intrinsic_d=*/3, /*noise=*/0.05f,
          /*seed=*/42);

      const auto t0 = std::chrono::steady_clock::now();
      KnnResult result(0, 0);
      for (;;) {
        try {
          result = client.knn(queries, k);
          break;
        } catch (const RemoteError& e) {
          if (e.code() != ErrorCode::kOverloaded) throw;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(e.retry_after_ms()));
        }
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      std::printf("%u queries x k=%u in %.2fms; query 0 neighbors:\n", nq, k,
                  ms);
      for (index_t j = 0; j < k; ++j)
        std::printf("  id %8u  dist %g\n", result.ids.at(0, j),
                    result.dists.at(0, j));
      return 0;
    }

    if (cmd == "reload") {
      if (argc < 5) {
        std::fprintf(stderr, "reload needs a server-side index path\n");
        return 2;
      }
      client.reload(argv[4]);
      std::printf("reloaded %s\n", argv[4]);
      return 0;
    }

    std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "net_client: %s\n", e.what());
    return 1;
  }
}
