// Offloading one-shot search to the (simulated) GPU — the paper's §7.3
// deployment: build the index once on the host, upload it, then stream query
// batches through the two-kernel search with explicit transfer accounting.
//
//   ./gpu_offload [n_points]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "cli_parse.hpp"
#include "common/timer.hpp"
#include "data/generators.hpp"
#include "gpu/gpu_rbc.hpp"

int main(int argc, char** argv) {
  using namespace rbc;
  const index_t n =
      argc > 1 ? cli::parse_index_or_die(argv[1], "n_points") : 50'000;

  Matrix<float> all = data::make_image_descriptors(n + 256, 16, 5);
  Matrix<float> database(n, 16);
  Matrix<float> queries(256, 16);
  for (index_t i = 0; i < n; ++i) database.copy_row_from(all, i, i);
  for (index_t i = 0; i < 256; ++i) queries.copy_row_from(all, n + i, i);

  // Host-side build (offline step).
  const auto param = static_cast<index_t>(
      2.0 * std::sqrt(static_cast<double>(n)));
  RbcOneShotIndex<> host_index;
  host_index.build(database,
                   {.num_reps = param, .points_per_rep = param, .seed = 6});

  // Upload once; query many times.
  simt::Device device;
  std::printf("SIMT device with %d workers\n", device.workers());
  WallTimer upload_timer;
  const gpu::GpuRbcOneShot device_index(device, host_index);
  std::printf("index upload: %.3fs, %.1f MB h2d\n", upload_timer.seconds(),
              static_cast<double>(device.stats().bytes_h2d) / 1e6);

  const gpu::GpuMatrix gq = gpu::upload_matrix(device, queries);
  const gpu::GpuMatrix gx = gpu::upload_matrix(device, database);

  // Device brute force (the §7.3 baseline) vs device one-shot RBC.
  WallTimer bf_timer;
  const KnnResult bf_result = gpu::gpu_bf_knn(device, gq, gx, 1);
  const double t_bf = bf_timer.seconds();

  WallTimer rbc_timer;
  const KnnResult rbc_result = device_index.search(gq, 1);
  const double t_rbc = rbc_timer.seconds();

  index_t agree = 0;
  for (index_t i = 0; i < queries.rows(); ++i)
    if (bf_result.ids.at(i, 0) == rbc_result.ids.at(i, 0)) ++agree;

  std::printf("device brute force: %.3fs | device one-shot: %.3fs "
              "-> %.1fx speedup\n", t_bf, t_rbc, t_bf / t_rbc);
  std::printf("one-shot found the exact NN for %u/%u queries\n", agree,
              queries.rows());

  const auto& stats = device.stats();
  std::printf("device totals: %llu kernels, %llu blocks, h2d %.1f MB, "
              "d2h %.3f MB\n",
              static_cast<unsigned long long>(stats.kernels_launched),
              static_cast<unsigned long long>(stats.blocks_executed),
              static_cast<double>(stats.bytes_h2d) / 1e6,
              static_cast<double>(stats.bytes_d2h) / 1e6);
  return 0;
}
