// Parallel reductions: the "comparison step" of the brute-force primitive
// (paper §3) is an instance of the inverted-binary-tree reduce the paper
// describes; OpenMP realizes the same pattern with per-thread partials.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "parallel/runtime.hpp"

namespace rbc {

/// Generic reduction: each thread folds a private accumulator (seeded with
/// `identity`) over its share of [begin, end) using `fold(acc, i)`, then the
/// per-thread partials are combined with `combine(a, b)` in a final serial
/// pass (thread count is small; a tree adds nothing here).
template <class T, class Fold, class Combine>
T parallel_reduce(std::int64_t begin, std::int64_t end, T identity, Fold fold,
                  Combine combine) {
  const int nt = max_threads();
  std::vector<T> partials(static_cast<std::size_t>(nt), identity);
#pragma omp parallel
  {
    const int tid = thread_id();
    T acc = identity;
#pragma omp for schedule(static) nowait
    for (std::int64_t i = begin; i < end; ++i)
      acc = fold(acc, static_cast<index_t>(i));
    partials[static_cast<std::size_t>(tid)] = acc;
  }
  T result = identity;
  for (const T& p : partials) result = combine(result, p);
  return result;
}

/// Argmin reduction: returns the index i in [begin, end) minimizing value(i),
/// together with the value. Ties resolve to the smallest index so results are
/// deterministic regardless of thread count.
template <class V>
struct ArgMin {
  V value;
  index_t index;
};

template <class V, class ValueFn>
ArgMin<V> parallel_argmin(std::int64_t begin, std::int64_t end, V worst,
                          ValueFn value) {
  using R = ArgMin<V>;
  return parallel_reduce<R>(
      begin, end, R{worst, kInvalidIndex},
      [&](R acc, index_t i) {
        const V v = value(i);
        if (v < acc.value || (v == acc.value && i < acc.index))
          return R{v, i};
        return acc;
      },
      [](R a, R b) {
        if (b.value < a.value || (b.value == a.value && b.index < a.index))
          return b;
        return a;
      });
}

}  // namespace rbc
