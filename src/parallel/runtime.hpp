// Thread-count control for the parallel runtime.
//
// The library parallelizes with OpenMP (the paper's CPU implementation did the
// same). These helpers wrap the OpenMP runtime so the rest of the code never
// touches omp.h directly, and so builds without OpenMP degrade to serial.
#pragma once

namespace rbc {

/// Number of threads parallel_for will use (the current OpenMP max).
int max_threads();

/// Sets the global thread count. Values < 1 are clamped to 1.
void set_num_threads(int n);

/// Identifier of the calling thread within a parallel region, in
/// [0, max_threads()). Returns 0 outside parallel regions.
int thread_id();

/// RAII override of the global thread count; restores on destruction.
/// Used by benchmarks that compare single-core vs all-core configurations
/// (e.g. the Cover Tree comparison, paper §7.4).
class ThreadLimit {
 public:
  explicit ThreadLimit(int n);
  ~ThreadLimit();
  ThreadLimit(const ThreadLimit&) = delete;
  ThreadLimit& operator=(const ThreadLimit&) = delete;

 private:
  int saved_;
};

}  // namespace rbc
