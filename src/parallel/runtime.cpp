#include "parallel/runtime.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace rbc {

int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_num_threads(int n) {
  if (n < 1) n = 1;
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

ThreadLimit::ThreadLimit(int n) : saved_(max_threads()) { set_num_threads(n); }

ThreadLimit::~ThreadLimit() { set_num_threads(saved_); }

}  // namespace rbc
