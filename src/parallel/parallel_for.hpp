// Data-parallel loop primitives over index ranges.
//
// These are thin, zero-allocation wrappers around OpenMP worksharing; they
// exist so call sites express *what* is parallel (a range and a body) rather
// than *how* (pragmas), and so a non-OpenMP build still compiles and runs
// serially. Bodies must not share mutable state (CP.2) — use parallel_reduce
// for accumulations.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace rbc {

/// Calls f(i) for every i in [begin, end), statically scheduled.
/// Best for bodies with uniform cost (e.g. one row of a distance tile).
template <class F>
void parallel_for(std::int64_t begin, std::int64_t end, F&& f) {
#pragma omp parallel for schedule(static)
  for (std::int64_t i = begin; i < end; ++i) f(static_cast<index_t>(i));
}

/// Calls f(i) for every i in [begin, end), dynamically scheduled with the
/// given chunk size. Best for irregular bodies (e.g. one RBC query, whose
/// cost depends on how many representatives survive pruning).
template <class F>
void parallel_for_dynamic(std::int64_t begin, std::int64_t end, F&& f,
                          int chunk = 8) {
#pragma omp parallel for schedule(dynamic, chunk)
  for (std::int64_t i = begin; i < end; ++i) f(static_cast<index_t>(i));
}

/// Splits [begin, end) into contiguous blocks of at most `grain` elements and
/// calls f(block_begin, block_end) for each, dynamically scheduled. Used for
/// tiled computations where the body wants a whole block (e.g. a pairwise
/// distance tile or a chunk of the database in streaming search).
template <class F>
void parallel_for_blocked(std::int64_t begin, std::int64_t end,
                          std::int64_t grain, F&& f) {
  if (grain < 1) grain = 1;
  const std::int64_t num_blocks = (end - begin + grain - 1) / grain;
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    const std::int64_t lo = begin + b * grain;
    const std::int64_t hi = lo + grain < end ? lo + grain : end;
    f(static_cast<index_t>(lo), static_cast<index_t>(hi));
  }
}

}  // namespace rbc
