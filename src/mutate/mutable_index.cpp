#include "mutate/mutable_index.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <istream>
#include <iterator>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "bruteforce/topk.hpp"
#include "distance/metrics.hpp"
#include "metricspace/space.hpp"
#include "parallel/parallel_for.hpp"
#include "rbc/serialize_io.hpp"
#include "shard/merge.hpp"

namespace rbc::mutate {

namespace {

// Same message shape as the shared validators in api/index.cpp — mutation
// request errors must be indistinguishable from search request errors.
[[noreturn]] void fail(const std::string& backend, const std::string& what) {
  throw std::invalid_argument("rbc::Index[" + backend + "]: " + what);
}

[[noreturn]] void corrupt(const std::string& what) {
  throw std::runtime_error("rbc::io: corrupt mutable index stream: " + what);
}

bool contains(const std::vector<index_t>& sorted, index_t id) {
  return std::binary_search(sorted.begin(), sorted.end(), id);
}

/// Position of `id` in the ascending vector, or kInvalidIndex.
index_t position_of(const std::vector<index_t>& sorted, index_t id) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), id);
  if (it == sorted.end() || *it != id) return kInvalidIndex;
  return static_cast<index_t>(it - sorted.begin());
}

void check_ascending_unique(const std::vector<index_t>& ids,
                            const char* what) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == kInvalidIndex) corrupt(std::string(what) + " id is the reserved invalid value");
    if (i > 0 && ids[i] <= ids[i - 1])
      corrupt(std::string(what) + " ids are not strictly ascending");
  }
}

}  // namespace

// ------------------------------------------------------------ registration

BackendEntry wrap(BackendEntry raw) {
  const std::string name = raw.name;
  const auto create = raw.create;
  const std::uint32_t magic = raw.magic;
  const auto raw_load = raw.load;

  BackendEntry wrapped = std::move(raw);
  wrapped.create =
      [name, create, magic](const IndexOptions& options) -> std::unique_ptr<Index> {
    // A metric-space name (metricspace/space.hpp) routes to the generic
    // payload backend inside the raw factory; that path does not mutate
    // (and the delta-shard machinery is row-matrix-shaped anyway), so the
    // mutable wrapper steps aside instead of failing its dense-metric
    // probe.
    if (metricspace::space_registered(options.metric)) return create(options);
    return std::make_unique<MutableIndex>(name, options, create, magic);
  };
  if (magic != 0 && raw_load) {
    // Version-dispatching loader: version-3 (and its storage-tagged
    // version-5 extension) streams carry mutable state; everything else
    // (v1/v2/v4 files written by the raw formats, or streams too short to
    // even peek) goes to the raw backend's loader, which owns the legacy
    // formats and their error messages.
    wrapped.load = [name, create, magic,
                    raw_load](std::istream& is) -> std::unique_ptr<Index> {
      const std::istream::pos_type start = is.tellg();
      std::uint32_t m = 0;
      std::uint32_t version = 0;
      is.read(reinterpret_cast<char*>(&m), sizeof m);
      is.read(reinterpret_cast<char*>(&version), sizeof version);
      const bool mutable_stream =
          is.good() && m == magic &&
          (version == io::kFormatVersionMutable ||
           version == io::kFormatVersionMutableStorage);
      is.clear();
      is.seekg(start);
      if (mutable_stream) return MutableIndex::load(is, name, create, magic);
      return raw_load(is);
    };
  }
  return wrapped;
}

// ------------------------------------------------------- construction/build

MutableIndex::MutableIndex(std::string raw_name, const IndexOptions& options,
                           Factory create, std::uint32_t magic)
    : name_(std::move(raw_name)),
      options_(options),
      inner_options_(options),
      create_(std::move(create)),
      magic_(magic) {
  // The probe validates the (backend, metric) pair with the raw backend's
  // own uniform error, and answers capability queries before build.
  probe_ = create_(options_);
  if (!metric::lookup(options_.metric, kind_))
    fail(name_, "unsupported metric '" + options_.metric + "'");
  // Cosine is served as L2 over unit-normalized rows (api/metrics.hpp);
  // this adapter owns the transform, so the inner structure is built as a
  // plain L2 index over rows that are normalized exactly once.
  if (kind_ == metric::Kind::kCosine) inner_options_.metric = "l2";
}

MutableIndex::~MutableIndex() { join_merge_thread(); }

void MutableIndex::join_merge_thread() {
  std::lock_guard<std::mutex> guard(thread_mutex_);
  if (merge_thread_.joinable()) merge_thread_.join();
}

void MutableIndex::build(const Matrix<float>& X) {
  std::vector<index_t> ids(static_cast<std::size_t>(X.rows()));
  std::iota(ids.begin(), ids.end(), index_t{0});
  build_internal(X, std::move(ids));
}

void MutableIndex::build_with_ids(const Matrix<float>& X,
                                  std::span<const index_t> ids) {
  if (ids.size() != static_cast<std::size_t>(X.rows()))
    fail(name_, "build_with_ids id count " + std::to_string(ids.size()) +
                    " != row count " + std::to_string(X.rows()));
  std::vector<index_t> v(ids.begin(), ids.end());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == kInvalidIndex)
      fail(name_, "build_with_ids ids contain the reserved invalid id");
    if (i > 0 && v[i] <= v[i - 1])
      fail(name_, "build_with_ids ids must be strictly ascending");
  }
  build_internal(X, std::move(v));
}

void MutableIndex::build_internal(const Matrix<float>& X,
                                  std::vector<index_t> ids) {
  join_merge_thread();  // a rebuild obsoletes any in-flight merge
  Matrix<float> rows = X.clone();
  if (kind_ == metric::Kind::kCosine) metric::normalize_rows(rows);
  std::unique_ptr<Index> inner;
  if (rows.rows() > 0) {
    inner = create_(inner_options_);
    inner->build(rows);
  }
  auto main = std::make_shared<MainState>();
  main->inner = std::move(inner);
  main->rows = std::move(rows);
  main->ids = std::move(ids);

  std::unique_lock lock(mutex_);
  built_ = true;
  dim_ = X.cols();
  main_ = std::move(main);
  delta_ = std::make_shared<DeltaState>();
  tombs_ = std::make_shared<std::vector<index_t>>();
  merging_ = false;
  frozen_ids_.clear();
}

MutableIndex::Snapshot MutableIndex::snapshot() const {
  std::shared_lock lock(mutex_);
  return {main_, delta_, tombs_};
}

dist_t MutableIndex::delta_distance(const float* a, const float* b,
                                    index_t d) const {
  switch (kind_) {
    case metric::Kind::kL1:
      return L1{}(a, b, d);
    case metric::Kind::kIp:
      return InnerProduct{}(a, b, d);
    default:
      // l2, and cosine (delta rows are pre-normalized; the merged result is
      // converted by QueryTransform::finish like every inner distance).
      return Euclidean{}(a, b, d);
  }
}

// ------------------------------------------------------------------ search

SearchResponse MutableIndex::knn_search(const SearchRequest& request) const {
  Snapshot s;
  index_t dim = 0;
  bool built = false;
  {
    std::shared_lock lock(mutex_);
    built = built_;
    dim = dim_;
    s = {main_, delta_, tombs_};
  }
  if (!built)  // always throws (uniform unbuilt-index message)
    validate_knn(request, dim, 0, false, name_.c_str(), options_.metric);

  const std::vector<index_t>& main_ids = s.main->ids;
  std::vector<index_t> dead;  // tombstoned ids present in the main structure
  std::set_intersection(s.tombs->begin(), s.tombs->end(), main_ids.begin(),
                        main_ids.end(), std::back_inserter(dead));
  const index_t main_n = static_cast<index_t>(main_ids.size());
  const index_t dead_n = static_cast<index_t>(dead.size());
  const index_t main_live = main_n - dead_n;
  const index_t delta_n = static_cast<index_t>(s.delta->ids.size());
  validate_knn(request, dim, main_live + delta_n, true, name_.c_str(),
               options_.metric);

  const index_t nq = request.queries->rows();
  const index_t k = request.k;
  metric::QueryTransform qt(kind_, *request.queries);
  const Matrix<float>& tq = qt.queries();

  // Over-fetch k + |dead| from the inner structure: even if every tombstoned
  // row lands in the top of the inner answer, k live main candidates remain
  // (clamped to the structure size).
  SearchResponse inner_resp;
  const bool have_inner = s.main->inner != nullptr && main_live > 0;
  index_t k_inner = 0;
  if (have_inner) {
    k_inner = std::min<index_t>(k + dead_n, main_n);
    SearchRequest inner_request;
    inner_request.queries = &tq;
    inner_request.k = k_inner;
    inner_request.options.collect_stats = request.options.collect_stats;
    inner_resp = s.main->inner->knn_search(inner_request);
  }

  SearchResponse response;
  response.knn = KnnResult(nq, k);
  parallel_for_dynamic(0, nq, [&](index_t qi) {
    // Main stream: drop tombstoned rows, remap local -> global. The remap is
    // monotone (ids_ ascending), so the stream stays sorted under the global
    // (distance, id) order.
    std::vector<dist_t> main_d;
    std::vector<index_t> main_i;
    if (have_inner) {
      main_d.reserve(k);
      main_i.reserve(k);
      const dist_t* dists = inner_resp.knn.dists.row(qi);
      const index_t* ids = inner_resp.knn.ids.row(qi);
      for (index_t j = 0;
           j < k_inner && static_cast<index_t>(main_i.size()) < k; ++j) {
        // Approximate inners (rbc-oneshot) pad under-filled rows with
        // kInvalidIndex at +inf; skip the padding instead of remapping it.
        if (ids[j] == kInvalidIndex) continue;
        const index_t gid = main_ids[ids[j]];
        if (contains(dead, gid)) continue;
        main_d.push_back(dists[j]);
        main_i.push_back(gid);
      }
    }
    // Delta stream: brute-force top-k over the write buffer.
    const index_t k_delta = std::min(k, delta_n);
    std::vector<dist_t> delta_d(k_delta);
    std::vector<index_t> delta_i(k_delta);
    if (k_delta > 0) {
      TopK top(k_delta);
      const float* q = tq.row(qi);
      for (index_t j = 0; j < delta_n; ++j)
        top.push(delta_distance(q, s.delta->rows.row(j), dim),
                 s.delta->ids[j]);
      top.extract_sorted(delta_d.data(), delta_i.data());
    }
    const std::array<shard::MergeCursorInput, 2> streams{{
        {.dists = main_d.data(),
         .ids = main_i.data(),
         .k = static_cast<index_t>(main_i.size()),
         .global_ids = nullptr},
        {.dists = delta_d.data(),
         .ids = delta_i.data(),
         .k = k_delta,
         .global_ids = nullptr},
    }};
    shard::merge_topk_row(k, streams, response.knn.dists.row(qi),
                          response.knn.ids.row(qi));
  });
  qt.finish(response.knn.dists);

  if (request.options.collect_stats) {
    response.stats = inner_resp.stats;
    response.stats.queries = nq;
    response.stats.list_dist_evals +=
        static_cast<std::uint64_t>(nq) * static_cast<std::uint64_t>(delta_n);
  }
  return response;
}

RangeResponse MutableIndex::range_search(const RangeRequest& request) const {
  if (!probe_->info().supports_range)
    return Index::range_search(request);  // uniform unsupported-capability throw

  Snapshot s;
  index_t dim = 0;
  bool built = false;
  {
    std::shared_lock lock(mutex_);
    built = built_;
    dim = dim_;
    s = {main_, delta_, tombs_};
  }
  validate_range(request, dim, built, name_.c_str(), options_.metric);

  const std::vector<index_t>& main_ids = s.main->ids;
  std::vector<index_t> dead;
  std::set_intersection(s.tombs->begin(), s.tombs->end(), main_ids.begin(),
                        main_ids.end(), std::back_inserter(dead));
  const index_t main_live =
      static_cast<index_t>(main_ids.size() - dead.size());
  const index_t delta_n = static_cast<index_t>(s.delta->ids.size());

  const index_t nq = request.queries->rows();
  metric::QueryTransform qt(kind_, *request.queries);
  const Matrix<float>& tq = qt.queries();
  const dist_t radius = qt.radius(request.radius);

  RangeResponse inner_resp;
  const bool have_inner = s.main->inner != nullptr && main_live > 0;
  if (have_inner) {
    RangeRequest inner_request;
    inner_request.queries = &tq;
    inner_request.radius = radius;
    inner_request.options.collect_stats = request.options.collect_stats;
    inner_resp = s.main->inner->range_search(inner_request);
  }

  RangeResponse response;
  response.ids.resize(nq);
  parallel_for_dynamic(0, nq, [&](index_t qi) {
    std::vector<index_t> main_hits;  // ascending: monotone remap of a sorted row
    if (have_inner) {
      for (const index_t local : inner_resp.ids[qi]) {
        const index_t gid = main_ids[local];
        if (!contains(dead, gid)) main_hits.push_back(gid);
      }
    }
    std::vector<index_t> delta_hits;
    const float* q = tq.row(qi);
    for (index_t j = 0; j < delta_n; ++j)
      if (delta_distance(q, s.delta->rows.row(j), dim) <= radius)
        delta_hits.push_back(s.delta->ids[j]);
    // Disjoint (delta ids never live in main) and both ascending.
    response.ids[qi].resize(main_hits.size() + delta_hits.size());
    std::merge(main_hits.begin(), main_hits.end(), delta_hits.begin(),
               delta_hits.end(), response.ids[qi].begin());
  });

  if (request.options.collect_stats) {
    response.stats = inner_resp.stats;
    response.stats.queries = nq;
    response.stats.list_dist_evals +=
        static_cast<std::uint64_t>(nq) * static_cast<std::uint64_t>(delta_n);
  }
  return response;
}

// ---------------------------------------------------------------- mutation

void MutableIndex::insert(const Matrix<float>& rows,
                          std::span<const index_t> ids) {
  MergeJob job;
  bool trigger = false;
  {
    std::unique_lock lock(mutex_);
    if (!built_) fail(name_, "insert on an unbuilt index (call build first)");
    if (rows.cols() != dim_)
      fail(name_, "insert row dimension " + std::to_string(rows.cols()) +
                      " != index dimension " + std::to_string(dim_));
    if (ids.size() != static_cast<std::size_t>(rows.rows()))
      fail(name_, "insert id count " + std::to_string(ids.size()) +
                      " != row count " + std::to_string(rows.rows()));
    if (rows.rows() == 0) return;

    // (id, caller-row) pairs sorted by id: validates the batch and drives
    // the sorted merge into the new delta below.
    std::vector<std::pair<index_t, index_t>> batch(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i)
      batch[i] = {ids[i], static_cast<index_t>(i)};
    std::sort(batch.begin(), batch.end());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const index_t id = batch[i].first;
      if (id == kInvalidIndex)
        fail(name_, "insert ids contain the reserved invalid id");
      if (i > 0 && id == batch[i - 1].first)
        fail(name_, "insert ids contain duplicate id " + std::to_string(id));
      const bool in_delta = contains(delta_->ids, id);
      const bool in_main_live =
          contains(main_->ids, id) && !contains(*tombs_, id);
      if (in_delta || in_main_live)
        fail(name_, "insert id " + std::to_string(id) +
                        " is already live (remove it first)");
    }

    // Copy-on-write: a fresh DeltaState sorted by id. Rows enter transform
    // space here — normalized exactly once under cosine, never again.
    const DeltaState& old = *delta_;
    const index_t old_n = static_cast<index_t>(old.ids.size());
    const index_t add_n = static_cast<index_t>(batch.size());
    auto next = std::make_shared<DeltaState>();
    next->ids.reserve(old_n + add_n);
    next->rows = Matrix<float>(old_n + add_n, dim_);
    index_t a = 0;
    index_t b = 0;
    for (index_t out = 0; out < old_n + add_n; ++out) {
      const bool take_old =
          b >= add_n || (a < old_n && old.ids[a] < batch[b].first);
      if (take_old) {
        next->ids.push_back(old.ids[a]);
        next->rows.copy_row_from(old.rows, a, out);
        ++a;
      } else {
        next->ids.push_back(batch[b].first);
        next->rows.copy_row_from(rows, batch[b].second, out);
        if (kind_ == metric::Kind::kCosine)
          metric::normalize(next->rows.row(out), dim_);
        ++b;
      }
    }
    delta_ = std::move(next);

    if (!merging_ &&
        static_cast<index_t>(delta_->ids.size()) >= options_.max_delta) {
      job = freeze_locked();
      trigger = true;
    }
  }
  if (trigger) launch_merge(std::move(job));
}

index_t MutableIndex::remove(std::span<const index_t> ids) {
  std::unique_lock lock(mutex_);
  if (!built_) fail(name_, "remove on an unbuilt index (call build first)");

  // Dedupe the request: removing an id twice in one call is one removal.
  std::vector<index_t> request(ids.begin(), ids.end());
  std::sort(request.begin(), request.end());
  request.erase(std::unique(request.begin(), request.end()), request.end());

  std::vector<index_t> drop_delta;  // delta positions to drop (ascending)
  std::vector<index_t> new_tombs;   // ids to tombstone (ascending)
  index_t count = 0;
  for (const index_t id : request) {
    if (id == kInvalidIndex) continue;  // never live
    const index_t delta_pos = position_of(delta_->ids, id);
    const bool in_delta = delta_pos != kInvalidIndex;
    const bool in_main = contains(main_->ids, id);
    const bool tombed = contains(*tombs_, id);
    if (!in_delta && !(in_main && !tombed)) continue;  // not live: ignored
    ++count;
    if (in_delta) drop_delta.push_back(delta_pos);
    // Tombstone when dropping the delta row alone cannot mask the id: it
    // lives in the current main structure, or in the frozen set an
    // in-flight merge is building the next main from.
    if (!tombed && (in_main || (merging_ && contains(frozen_ids_, id))))
      new_tombs.push_back(id);
  }
  if (count == 0) return 0;

  if (!new_tombs.empty()) {
    auto next = std::make_shared<std::vector<index_t>>(tombs_->size() +
                                                       new_tombs.size());
    std::merge(tombs_->begin(), tombs_->end(), new_tombs.begin(),
               new_tombs.end(), next->begin());
    tombs_ = std::move(next);
  }
  if (!drop_delta.empty()) {
    const DeltaState& old = *delta_;
    auto next = std::make_shared<DeltaState>();
    const index_t keep_n =
        static_cast<index_t>(old.ids.size() - drop_delta.size());
    next->ids.reserve(keep_n);
    next->rows = Matrix<float>(keep_n, dim_);
    index_t out = 0;
    for (index_t j = 0; j < static_cast<index_t>(old.ids.size()); ++j) {
      if (contains(drop_delta, j)) continue;
      next->ids.push_back(old.ids[j]);
      next->rows.copy_row_from(old.rows, j, out);
      ++out;
    }
    delta_ = std::move(next);
  }
  return count;
}

MutableIndex::MergeJob MutableIndex::freeze_locked() {
  MergeJob job;
  job.snap = {main_, delta_, tombs_};
  std::vector<index_t> main_live;
  std::set_difference(main_->ids.begin(), main_->ids.end(), tombs_->begin(),
                      tombs_->end(), std::back_inserter(main_live));
  job.frozen.resize(main_live.size() + delta_->ids.size());
  std::merge(main_live.begin(), main_live.end(), delta_->ids.begin(),
             delta_->ids.end(), job.frozen.begin());
  merging_ = true;
  frozen_ids_ = job.frozen;
  return job;
}

void MutableIndex::launch_merge(MergeJob job) {
  if (!options_.background_merge) {
    merge_once(job);
    return;
  }
  std::lock_guard<std::mutex> guard(thread_mutex_);
  if (merge_thread_.joinable()) merge_thread_.join();  // previous merge done
  merge_thread_ =
      std::thread([this, job = std::move(job)] { merge_once(job); });
}

void MutableIndex::merge_once(const MergeJob& job) {
  const std::vector<index_t>& frozen = job.frozen;
  const index_t n = static_cast<index_t>(frozen.size());
  const MainState& old_main = *job.snap.main;
  const DeltaState& old_delta = *job.snap.delta;

  // The next main set, sorted by global id — exactly the row order a
  // scratch build_with_ids over the live set would see, which is what makes
  // a merged index bit-comparable to a rebuilt one (even for the seeded
  // probabilistic one-shot structure).
  Matrix<float> rows(n, dim_);
  for (index_t i = 0; i < n; ++i) {
    const index_t id = frozen[i];
    // Delta wins: an id in both holds a dead main copy (delta∩main ⊆ tombs).
    const index_t dpos = position_of(old_delta.ids, id);
    if (dpos != kInvalidIndex) {
      rows.copy_row_from(old_delta.rows, dpos, i);
    } else {
      rows.copy_row_from(old_main.rows, position_of(old_main.ids, id), i);
    }
  }
  std::unique_ptr<Index> inner;
  if (n > 0) {
    inner = create_(inner_options_);
    inner->build(rows);  // the expensive part: runs outside every lock
  }
  auto next_main = std::make_shared<MainState>();
  next_main->inner = std::move(inner);
  next_main->rows = std::move(rows);
  next_main->ids = frozen;

  std::unique_lock lock(mutex_);
  // Reconcile mutations that landed while the structure was building:
  // tombstones against the new main set persist (rows removed mid-merge stay
  // masked); delta entries the new main absorbed — same id, not
  // re-tombstoned — drop out; everything else (fresh inserts, removed-then-
  // reinserted rows) stays buffered.
  auto next_tombs = std::make_shared<std::vector<index_t>>();
  std::set_intersection(tombs_->begin(), tombs_->end(), frozen.begin(),
                        frozen.end(), std::back_inserter(*next_tombs));
  const DeltaState& cur = *delta_;
  std::vector<index_t> keep;
  for (index_t j = 0; j < static_cast<index_t>(cur.ids.size()); ++j) {
    const index_t id = cur.ids[j];
    if (!contains(frozen, id) || contains(*next_tombs, id)) keep.push_back(j);
  }
  auto next_delta = std::make_shared<DeltaState>();
  next_delta->ids.reserve(keep.size());
  next_delta->rows = Matrix<float>(static_cast<index_t>(keep.size()), dim_);
  for (index_t o = 0; o < static_cast<index_t>(keep.size()); ++o) {
    next_delta->ids.push_back(cur.ids[keep[o]]);
    next_delta->rows.copy_row_from(cur.rows, keep[o], o);
  }
  main_ = std::move(next_main);
  delta_ = std::move(next_delta);
  tombs_ = std::move(next_tombs);
  merging_ = false;
  frozen_ids_.clear();
}

void MutableIndex::compact() {
  for (;;) {
    join_merge_thread();
    MergeJob job;
    {
      std::unique_lock lock(mutex_);
      if (!built_)
        fail(name_, "compact on an unbuilt index (call build first)");
      if (merging_) {
        // An inline merge (background_merge == false) may be running on
        // another mutator's thread with nothing to join; yield, re-check.
        lock.unlock();
        std::this_thread::yield();
        continue;
      }
      if (delta_->ids.empty() && tombs_->empty()) return;
      job = freeze_locked();
    }
    merge_once(job);  // synchronous by design, even with background_merge
  }
}

std::vector<index_t> MutableIndex::live_ids() const {
  Snapshot s;
  bool built = false;
  {
    std::shared_lock lock(mutex_);
    built = built_;
    s = {main_, delta_, tombs_};
  }
  if (!built) return {};
  std::vector<index_t> main_live;
  std::set_difference(s.main->ids.begin(), s.main->ids.end(),
                      s.tombs->begin(), s.tombs->end(),
                      std::back_inserter(main_live));
  std::vector<index_t> live(main_live.size() + s.delta->ids.size());
  std::merge(main_live.begin(), main_live.end(), s.delta->ids.begin(),
             s.delta->ids.end(), live.begin());
  return live;
}

// --------------------------------------------------------------- metadata

IndexInfo MutableIndex::info() const {
  Snapshot s;
  bool built = false;
  index_t dim = 0;
  {
    std::shared_lock lock(mutex_);
    built = built_;
    dim = dim_;
    s = {main_, delta_, tombs_};
  }
  IndexInfo out = built && s.main->inner != nullptr ? s.main->inner->info()
                                                    : probe_->info();
  out.backend = name_;
  out.metric = options_.metric;  // the inner may run the mapped (l2) metric
  out.supports_mutation = true;
  if (built) {
    std::vector<index_t> dead;
    std::set_intersection(s.tombs->begin(), s.tombs->end(),
                          s.main->ids.begin(), s.main->ids.end(),
                          std::back_inserter(dead));
    out.size = static_cast<index_t>(s.main->ids.size() - dead.size() +
                                    s.delta->ids.size());
    out.dim = dim;
    out.delta_rows = static_cast<index_t>(s.delta->ids.size());
    out.tombstones = static_cast<index_t>(dead.size());
    out.memory_bytes += s.main->rows.size() * sizeof(float) +
                        s.main->ids.size() * sizeof(index_t) +
                        s.delta->rows.size() * sizeof(float) +
                        s.delta->ids.size() * sizeof(index_t) +
                        s.tombs->size() * sizeof(index_t);
  }
  return out;
}

// ------------------------------------------------------------ persistence

void MutableIndex::save(std::ostream& os) const {
  if (!probe_->info().supports_save || magic_ == 0) {
    Index::save(os);  // uniform unsupported-capability throw
    return;
  }
  Snapshot s;
  bool built = false;
  index_t dim = 0;
  {
    std::shared_lock lock(mutex_);
    built = built_;
    dim = dim_;
    s = {main_, delta_, tombs_};
  }
  if (!built) fail(name_, "save on an unbuilt index (call build first)");

  io::write_pod(os, magic_);
  // float32 keeps the version-3 byte layout; compressed builds write the
  // version-5 header (v3 plus the storage tag) so a reload re-quantizes the
  // rebuilt inner structure the same way.
  const bool storage_tagged = options_.storage != "float32";
  io::write_pod(os, storage_tagged ? io::kFormatVersionMutableStorage
                                   : io::kFormatVersionMutable);
  io::write_string(os, options_.metric);
  if (storage_tagged) io::write_string(os, options_.storage);
  // Build knobs: everything needed to rebuild the raw structure
  // deterministically at load time (fields written individually — the
  // params struct has padding).
  const RbcParams& p = options_.rbc;
  io::write_pod(os, p.num_reps);
  io::write_pod(os, p.points_per_rep);
  io::write_pod(os, p.seed);
  io::write_pod(os, static_cast<std::uint8_t>(p.sampling));
  io::write_pod(os, static_cast<std::uint8_t>(p.use_overlap_rule));
  io::write_pod(os, static_cast<std::uint8_t>(p.use_lemma_rule));
  io::write_pod(os, static_cast<std::uint8_t>(p.use_early_exit));
  io::write_pod(os, static_cast<std::uint8_t>(p.use_annulus_bound));
  io::write_pod(os, p.approx_eps);
  io::write_pod(os, p.num_probes);
  io::write_pod(os, options_.leaf_size);
  io::write_pod(os, options_.seed);
  io::write_pod(os, dim);
  // State: transform-space rows with explicit global ids. Only tombstones
  // that mask main rows are persisted (a transient merge-frozen extra means
  // nothing to a fresh load).
  std::vector<index_t> dead;
  std::set_intersection(s.tombs->begin(), s.tombs->end(), s.main->ids.begin(),
                        s.main->ids.end(), std::back_inserter(dead));
  io::write_vec(os, s.main->ids);
  io::write_matrix(os, s.main->rows);
  io::write_vec(os, s.delta->ids);
  io::write_matrix(os, s.delta->rows);
  io::write_vec(os, dead);
}

std::unique_ptr<Index> MutableIndex::load(std::istream& is,
                                          const std::string& raw_name,
                                          const Factory& create,
                                          std::uint32_t magic) {
  io::expect_pod(is, magic, "format magic");
  std::uint32_t version = 0;
  io::read_pod(is, version);
  if (version != io::kFormatVersionMutable &&
      version != io::kFormatVersionMutableStorage)
    corrupt("unknown format version " + std::to_string(version));
  IndexOptions options;
  options.metric = io::read_string(is);
  metric::Kind kind;
  if (!metric::lookup(options.metric, kind))
    corrupt("unknown metric tag '" + options.metric + "'");
  if (version == io::kFormatVersionMutableStorage) {
    options.storage = io::read_string(is);
    quant::Storage storage{};
    if (!quant::lookup(options.storage, storage))
      corrupt("unknown storage tag '" + options.storage + "'");
  }
  RbcParams& p = options.rbc;
  io::read_pod(is, p.num_reps);
  io::read_pod(is, p.points_per_rep);
  io::read_pod(is, p.seed);
  std::uint8_t sampling = 0;
  io::read_pod(is, sampling);
  if (sampling > static_cast<std::uint8_t>(Sampling::kBernoulli))
    corrupt("unknown sampling mode");
  p.sampling = static_cast<Sampling>(sampling);
  std::uint8_t flag = 0;
  io::read_pod(is, flag);
  p.use_overlap_rule = flag != 0;
  io::read_pod(is, flag);
  p.use_lemma_rule = flag != 0;
  io::read_pod(is, flag);
  p.use_early_exit = flag != 0;
  io::read_pod(is, flag);
  p.use_annulus_bound = flag != 0;
  io::read_pod(is, p.approx_eps);
  io::read_pod(is, p.num_probes);
  io::read_pod(is, options.leaf_size);
  io::read_pod(is, options.seed);
  index_t dim = 0;
  io::read_pod(is, dim);

  std::vector<index_t> main_ids;
  io::read_vec(is, main_ids);
  Matrix<float> main_rows = io::read_matrix(is);
  std::vector<index_t> delta_ids;
  io::read_vec(is, delta_ids);
  Matrix<float> delta_rows = io::read_matrix(is);
  std::vector<index_t> tombs;
  io::read_vec(is, tombs);

  if (main_ids.size() != static_cast<std::size_t>(main_rows.rows()))
    corrupt("main id/row count mismatch");
  if (delta_ids.size() != static_cast<std::size_t>(delta_rows.rows()))
    corrupt("delta id/row count mismatch");
  if (main_rows.rows() > 0 && main_rows.cols() != dim)
    corrupt("main row dimension mismatch");
  if (delta_rows.rows() > 0 && delta_rows.cols() != dim)
    corrupt("delta row dimension mismatch");
  check_ascending_unique(main_ids, "main");
  check_ascending_unique(delta_ids, "delta");
  check_ascending_unique(tombs, "tombstone");
  if (!std::includes(main_ids.begin(), main_ids.end(), tombs.begin(),
                     tombs.end()))
    corrupt("tombstone for an id not in the main structure");
  for (const index_t id : delta_ids)
    if (contains(main_ids, id) && !contains(tombs, id))
      corrupt("id live in both the delta shard and the main structure");

  std::unique_ptr<MutableIndex> index;
  try {
    index = std::make_unique<MutableIndex>(raw_name, options, create, magic);
  } catch (const std::invalid_argument& e) {
    corrupt(e.what());  // e.g. a metric this backend cannot serve
  }
  std::unique_ptr<Index> inner;
  if (main_rows.rows() > 0) {
    inner = index->create_(index->inner_options_);
    inner->build(main_rows);  // deterministic: same rows, same knobs, same seed
  }
  auto main = std::make_shared<MainState>();
  main->inner = std::move(inner);
  main->rows = std::move(main_rows);
  main->ids = std::move(main_ids);
  auto delta = std::make_shared<DeltaState>();
  delta->ids = std::move(delta_ids);
  delta->rows = std::move(delta_rows);

  index->built_ = true;
  index->dim_ = dim;
  index->main_ = std::move(main);
  index->delta_ = std::move(delta);
  index->tombs_ = std::make_shared<std::vector<index_t>>(std::move(tombs));
  return index;
}

}  // namespace rbc::mutate
