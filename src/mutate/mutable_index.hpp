// Streaming mutability for the unified index API: a delta-shard +
// tombstone + background-merge wrapper around any raw backend.
//
// The paper's construction-cost argument is what makes this design viable:
// RBC builds are "simply a call to BF(X, R)" (§4), cheap enough that the
// main structure can be *rebuilt* wholesale when enough writes accumulate,
// instead of being patched incrementally. The same pattern as the "Bigger
// Buffer k-d Trees" line of work: keep the optimized structure immutable,
// buffer mutations in a small brute-force delta, merge off the hot path.
//
//   writes  ──► delta shard (brute-force scanned, <= max_delta rows)
//   deletes ──► tombstones  (mask main-structure rows at merge time)
//   search  ──► snapshot {main, delta, tombs}; inner top-(k + dead) +
//               delta top-k ──► shard::merge_topk_row (exact, ties incl.)
//   merge   ──► background thread rebuilds the raw structure over the live
//               set, swaps it in under the lock (shared_ptr snapshots), so
//               in-flight searches never block and never see a torn state.
//
// Exactness: every returned (distance, id) pair is a scalar re-measured
// value, independent of which structure produced the candidate — so for
// exact raw backends, a mutated index answers bit-identically (ids, dists,
// tie order) to an index rebuilt from scratch over the same logical rows,
// at *every* point in the mutation schedule. The conformance suite's
// mutate-then-search matrix enforces this per backend x metric x shard
// count.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/index.hpp"
#include "api/metrics.hpp"
#include "api/registry.hpp"
#include "common/matrix.hpp"

namespace rbc::mutate {

/// Wraps a raw backend registration with the mutable delta-shard adapter:
/// `create` builds a MutableIndex around the raw factory (transparent —
/// info().backend stays the raw name), and `load` dispatches on the format
/// version: the raw backend's own v1/v2 streams load through the raw
/// loader (read-only legacy instances), version-3 mutable streams restore
/// the full delta/tombstone state. The backend TUs in src/api/backends/
/// call this at registration time.
BackendEntry wrap(BackendEntry raw);

/// The delta-shard adapter. Constructed unbuilt (like every backend);
/// mutation entry points appear after build()/build_with_ids().
///
/// Concurrency contract: const searches (knn/range/info/live_ids/save) may
/// run from any number of threads, concurrently with mutators and with the
/// background merge — they snapshot three shared_ptrs under a brief shared
/// lock and never wait on structure builds. Mutators (insert/remove/
/// compact/build) are serialized against each other internally.
class MutableIndex final : public Index {
 public:
  using Factory = std::function<std::unique_ptr<Index>(const IndexOptions&)>;

  /// `raw_name` / `create` are the wrapped backend's registry identity;
  /// `magic` its serialization magic (0 = raw backend not serializable).
  MutableIndex(std::string raw_name, const IndexOptions& options,
               Factory create, std::uint32_t magic);
  ~MutableIndex() override;

  void build(const Matrix<float>& X) override;
  void build_with_ids(const Matrix<float>& X,
                      std::span<const index_t> ids) override;

  SearchResponse knn_search(const SearchRequest& request) const override;
  RangeResponse range_search(const RangeRequest& request) const override;

  void insert(const Matrix<float>& rows,
              std::span<const index_t> ids) override;
  index_t remove(std::span<const index_t> ids) override;
  void compact() override;
  std::vector<index_t> live_ids() const override;

  void save(std::ostream& os) const override;
  IndexInfo info() const override;

  /// Restores a version-3 stream written by save(). The stream must start
  /// at the magic. Corruption throws std::runtime_error.
  static std::unique_ptr<Index> load(std::istream& is,
                                     const std::string& raw_name,
                                     const Factory& create,
                                     std::uint32_t magic);

 private:
  /// The immutable main structure: the raw inner index plus the
  /// transform-space rows and ascending global ids it was built over
  /// (inner is null when the main set is empty — some raw backends do not
  /// build over zero rows).
  struct MainState {
    std::unique_ptr<Index> inner;
    Matrix<float> rows;
    std::vector<index_t> ids;
  };
  /// The mutable write buffer, copy-on-write: ids ascending, rows in the
  /// matching order, already in transform space (normalized when cosine).
  struct DeltaState {
    std::vector<index_t> ids;
    Matrix<float> rows;
  };
  /// One consistent view of the index (what a search operates on).
  struct Snapshot {
    std::shared_ptr<const MainState> main;
    std::shared_ptr<const DeltaState> delta;
    std::shared_ptr<const std::vector<index_t>> tombs;
  };
  /// Everything a merge needs, captured at freeze time.
  struct MergeJob {
    Snapshot snap;
    std::vector<index_t> frozen;  ///< live ids at freeze = the new main set
  };

  Snapshot snapshot() const;
  void build_internal(const Matrix<float>& X, std::vector<index_t> ids);
  dist_t delta_distance(const float* a, const float* b, index_t d) const;
  /// Freezes the current live set for a merge; caller holds the unique
  /// lock and checked !merging_. Sets merging_.
  MergeJob freeze_locked();
  /// Rebuilds the main structure over job.frozen and swaps it in,
  /// reconciling mutations that landed while the build ran. Clears
  /// merging_.
  void merge_once(const MergeJob& job);
  void join_merge_thread();
  /// Launches merge_once on the background thread (or inline when
  /// background_merge is false).
  void launch_merge(MergeJob job);

  std::string name_;
  IndexOptions options_;        // as given (metric = user metric)
  IndexOptions inner_options_;  // metric mapped (cosine -> l2)
  Factory create_;
  std::uint32_t magic_ = 0;
  metric::Kind kind_ = metric::Kind::kL2;
  std::unique_ptr<Index> probe_;  // unbuilt raw instance: capability info

  mutable std::shared_mutex mutex_;  // guards everything below
  bool built_ = false;
  index_t dim_ = 0;
  std::shared_ptr<const MainState> main_;
  std::shared_ptr<const DeltaState> delta_;
  std::shared_ptr<const std::vector<index_t>> tombs_;
  bool merging_ = false;
  std::vector<index_t> frozen_ids_;  // the in-flight merge's new main set

  std::mutex thread_mutex_;  // guards merge_thread_ join/assign only
  std::thread merge_thread_;
};

}  // namespace rbc::mutate
