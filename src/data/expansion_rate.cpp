#include "data/expansion_rate.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "common/counters.hpp"
#include "common/rng.hpp"
#include "parallel/parallel_for.hpp"

namespace rbc::data {

double ExpansionEstimate::intrinsic_dim() const {
  return c_q90 > 0.0 ? std::log2(c_q90) : 0.0;
}

namespace {

template <class M>
ExpansionEstimate estimate_impl(const Matrix<float>& X, index_t num_centers,
                                std::uint64_t seed, index_t min_ball,
                                M metric) {
  const index_t n = X.rows();
  if (n == 0 || num_centers == 0) return {};
  num_centers = std::min(num_centers, n);

  Rng rng(seed);
  std::vector<index_t> centers(num_centers);
  for (index_t i = 0; i < num_centers; ++i)
    centers[i] = rng.uniform_index(n);

  std::vector<double> ratios;
  std::mutex ratios_mutex;

  parallel_for_dynamic(0, num_centers, [&](index_t ci) {
    const float* c = X.row(centers[ci]);
    std::vector<float> dists(n);
    for (index_t j = 0; j < n; ++j) dists[j] = metric(c, X.row(j), X.cols());
    counters::add_dist_evals(n);
    std::sort(dists.begin(), dists.end());

    // Geometric ladder of ball sizes: |B| = min_ball, 2*min_ball, ... n/2.
    // For each, r = distance of the |B|-th neighbor; the growth ratio is the
    // count within 2r over the count within r.
    std::vector<double> local;
    for (index_t b = min_ball; b <= n / 2; b *= 2) {
      const float r = dists[b - 1];
      if (r <= 0.0f) continue;  // degenerate (duplicates); skip
      const auto inner = static_cast<double>(
          std::upper_bound(dists.begin(), dists.end(), r) - dists.begin());
      const auto outer = static_cast<double>(
          std::upper_bound(dists.begin(), dists.end(), 2.0f * r) -
          dists.begin());
      local.push_back(outer / inner);
    }
    std::lock_guard lock(ratios_mutex);
    ratios.insert(ratios.end(), local.begin(), local.end());
  });

  ExpansionEstimate est;
  if (ratios.empty()) return est;
  std::sort(ratios.begin(), ratios.end());
  est.c_max = ratios.back();
  est.c_q90 = ratios[static_cast<std::size_t>(0.9 * (ratios.size() - 1))];
  est.c_median = ratios[ratios.size() / 2];
  return est;
}

}  // namespace

ExpansionEstimate estimate_expansion_rate(const Matrix<float>& X,
                                          index_t num_centers,
                                          std::uint64_t seed,
                                          index_t min_ball) {
  return estimate_impl(X, num_centers, seed, min_ball, Euclidean{});
}

ExpansionEstimate estimate_expansion_rate_l1(const Matrix<float>& X,
                                             index_t num_centers,
                                             std::uint64_t seed,
                                             index_t min_ball) {
  return estimate_impl(X, num_centers, seed, min_ball, L1{});
}

}  // namespace rbc::data
