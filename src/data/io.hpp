// Matrix persistence: binary (exact round-trip) and CSV (interop).
#pragma once

#include <string>

#include "common/matrix.hpp"

namespace rbc::data {

/// Writes rows x cols header plus row payloads (no padding) to `path`.
void save_matrix(const Matrix<float>& m, const std::string& path);

/// Reads a matrix written by save_matrix. Throws std::runtime_error on
/// malformed files.
Matrix<float> load_matrix(const std::string& path);

/// Plain CSV, one point per line, '.' decimal, no header.
void save_csv(const Matrix<float>& m, const std::string& path);
Matrix<float> load_csv(const std::string& path);

}  // namespace rbc::data
