#include "data/random_projection.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "parallel/parallel_for.hpp"

namespace rbc::data {

namespace {

Matrix<float> apply_projection(const Matrix<float>& X,
                               const Matrix<float>& proj) {
  // proj is d_out x d_in; output row = proj * x.
  const index_t d_in = X.cols();
  const index_t d_out = proj.rows();
  Matrix<float> out(X.rows(), d_out);
  parallel_for_blocked(0, X.rows(), 1024, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) {
      const float* x = X.row(i);
      for (index_t o = 0; o < d_out; ++o) {
        const float* p = proj.row(o);
        float acc = 0.0f;
        for (index_t j = 0; j < d_in; ++j) acc += p[j] * x[j];
        out.at(i, o) = acc;
      }
    }
  });
  return out;
}

}  // namespace

Matrix<float> random_projection(const Matrix<float>& X, index_t d_out,
                                std::uint64_t seed) {
  Rng rng(seed);
  Matrix<float> proj(d_out, X.cols());
  const float sigma = 1.0f / std::sqrt(static_cast<float>(d_out));
  for (index_t o = 0; o < d_out; ++o)
    for (index_t j = 0; j < X.cols(); ++j)
      proj.at(o, j) = rng.normal_float(0.0f, sigma);
  return apply_projection(X, proj);
}

Matrix<float> random_projection_sparse(const Matrix<float>& X, index_t d_out,
                                       std::uint64_t seed) {
  Rng rng(seed);
  Matrix<float> proj(d_out, X.cols());
  const float value = std::sqrt(3.0f / static_cast<float>(d_out));
  for (index_t o = 0; o < d_out; ++o)
    for (index_t j = 0; j < X.cols(); ++j) {
      const double u = rng.uniform();
      proj.at(o, j) = u < 1.0 / 6 ? value : (u < 2.0 / 6 ? -value : 0.0f);
    }
  return apply_projection(X, proj);
}

}  // namespace rbc::data
