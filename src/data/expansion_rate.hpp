// Empirical estimator of the expansion rate (growth dimension) of a point
// set — Definition 1 of the paper (Karger–Ruhl):
//
//     a finite metric space has expansion rate c if for all x, r:
//         |B(x, 2r)| <= c * |B(x, r)|.
//
// The exact c is a max over all points and radii, which is both expensive
// and brittle (a single outlier pair dominates); the estimator samples
// centers and radii and reports max / upper-quantile / median growth ratios.
// log2(c) is the intrinsic dimensionality (the paper's grid example: c = 2^d
// under L1).
#pragma once

#include <cstdint>

#include "common/matrix.hpp"
#include "distance/metrics.hpp"

namespace rbc::data {

struct ExpansionEstimate {
  double c_max = 0.0;     // max observed |B(x,2r)| / |B(x,r)|
  double c_q90 = 0.0;     // 90th percentile of observed ratios
  double c_median = 0.0;  // median of observed ratios
  /// log2 of c_q90: the headline "intrinsic dimensionality" figure.
  double intrinsic_dim() const;
};

/// Samples `num_centers` points of X; for each, computes distances to all of
/// X and evaluates the growth ratio at a geometric ladder of radii (balls
/// smaller than `min_ball` points are skipped as noise). Deterministic in
/// `seed`.
ExpansionEstimate estimate_expansion_rate(const Matrix<float>& X,
                                          index_t num_centers,
                                          std::uint64_t seed,
                                          index_t min_ball = 8);

/// L1-metric variant (used by the grid test mirroring the paper's example).
ExpansionEstimate estimate_expansion_rate_l1(const Matrix<float>& X,
                                             index_t num_centers,
                                             std::uint64_t seed,
                                             index_t min_ball = 8);

}  // namespace rbc::data
