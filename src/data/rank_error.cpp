#include "data/rank_error.hpp"

#include "api/metrics.hpp"
#include "parallel/parallel_for.hpp"

namespace rbc::data {

std::vector<index_t> ranks_of(const Matrix<float>& Q, const Matrix<float>& X,
                              const KnnResult& result,
                              std::string_view metric_name) {
  const index_t nq = Q.rows();
  const index_t n = X.rows();
  const index_t d = Q.cols();
  std::vector<index_t> ranks(nq, 0);
  // Score under the metric the index searched with; an unknown name (no
  // registry row) falls back to l2, the pre-metric behavior. Cosine is
  // scored as Euclidean over rows normalized ONCE here — same bits as the
  // per-pair reference_distance (shared normalize()), without re-normalizing
  // every row n times inside the O(nq * n) scan; ranks compare distances,
  // so the monotone d^2/2 conversion is unnecessary.
  metric::Kind kind = metric::Kind::kL2;
  (void)metric::lookup(metric_name, kind);
  Matrix<float> qn, xn;
  const Matrix<float>* q_rows = &Q;
  const Matrix<float>* x_rows = &X;
  if (kind == metric::Kind::kCosine) {
    qn = metric::normalized_clone(Q);
    xn = metric::normalized_clone(X);
    q_rows = &qn;
    x_rows = &xn;
    kind = metric::Kind::kL2;
  }

  parallel_for_dynamic(0, nq, [&](index_t qi) {
    const index_t id = result.ids.at(qi, 0);
    if (id == kInvalidIndex) {
      ranks[qi] = n;
      return;
    }
    const float* q = q_rows->row(qi);
    const dist_t returned =
        metric::reference_distance(kind, q, x_rows->row(id), d);
    index_t closer = 0;
    for (index_t j = 0; j < n; ++j)
      if (metric::reference_distance(kind, q, x_rows->row(j), d) < returned)
        ++closer;
    counters::add_dist_evals(n + 1);
    ranks[qi] = closer;
  });
  return ranks;
}

double mean_rank(const Matrix<float>& Q, const Matrix<float>& X,
                 const KnnResult& result, std::string_view metric_name) {
  const std::vector<index_t> ranks = ranks_of(Q, X, result, metric_name);
  if (ranks.empty()) return 0.0;
  double sum = 0.0;
  for (const index_t r : ranks) sum += static_cast<double>(r);
  return sum / static_cast<double>(ranks.size());
}

double recall_at_1(const Matrix<float>& Q, const Matrix<float>& X,
                   const KnnResult& result, std::string_view metric_name) {
  const std::vector<index_t> ranks = ranks_of(Q, X, result, metric_name);
  if (ranks.empty()) return 1.0;
  index_t hits = 0;
  for (const index_t r : ranks)
    if (r == 0) ++hits;
  return static_cast<double>(hits) / static_cast<double>(ranks.size());
}

}  // namespace rbc::data
