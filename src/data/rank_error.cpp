#include "data/rank_error.hpp"

#include "distance/metrics.hpp"
#include "parallel/parallel_for.hpp"

namespace rbc::data {

std::vector<index_t> ranks_of(const Matrix<float>& Q, const Matrix<float>& X,
                              const KnnResult& result) {
  const index_t nq = Q.rows();
  const index_t n = X.rows();
  const index_t d = Q.cols();
  std::vector<index_t> ranks(nq, 0);
  const Euclidean metric{};

  parallel_for_dynamic(0, nq, [&](index_t qi) {
    const index_t id = result.ids.at(qi, 0);
    if (id == kInvalidIndex) {
      ranks[qi] = n;
      return;
    }
    const float* q = Q.row(qi);
    const dist_t returned = metric(q, X.row(id), d);
    index_t closer = 0;
    for (index_t j = 0; j < n; ++j)
      if (metric(q, X.row(j), d) < returned) ++closer;
    counters::add_dist_evals(n + 1);
    ranks[qi] = closer;
  });
  return ranks;
}

double mean_rank(const Matrix<float>& Q, const Matrix<float>& X,
                 const KnnResult& result) {
  const std::vector<index_t> ranks = ranks_of(Q, X, result);
  if (ranks.empty()) return 0.0;
  double sum = 0.0;
  for (const index_t r : ranks) sum += static_cast<double>(r);
  return sum / static_cast<double>(ranks.size());
}

double recall_at_1(const Matrix<float>& Q, const Matrix<float>& X,
                   const KnnResult& result) {
  const std::vector<index_t> ranks = ranks_of(Q, X, result);
  if (ranks.empty()) return 1.0;
  index_t hits = 0;
  for (const index_t r : ranks)
    if (r == 0) ++hits;
  return static_cast<double>(hits) / static_cast<double>(ranks.size());
}

}  // namespace rbc::data
