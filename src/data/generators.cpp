#include "data/generators.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/rng.hpp"
#include "parallel/parallel_for.hpp"

namespace rbc::data {

Matrix<float> make_uniform_cube(index_t n, index_t d, std::uint64_t seed) {
  Matrix<float> X(n, d);
  Rng root(seed);
  parallel_for_blocked(0, n, 4096, [&](index_t lo, index_t hi) {
    Rng rng = root.split(lo);
    for (index_t i = lo; i < hi; ++i)
      for (index_t j = 0; j < d; ++j) X.at(i, j) = rng.uniform_float();
  });
  return X;
}

Matrix<float> make_gaussian_mixture(index_t n, index_t d, index_t clusters,
                                    float sigma, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<float> centers(clusters, d);
  for (index_t c = 0; c < clusters; ++c)
    for (index_t j = 0; j < d; ++j)
      centers.at(c, j) = rng.uniform_float(0.0f, 10.0f);

  Matrix<float> X(n, d);
  Rng root(seed + 1);
  parallel_for_blocked(0, n, 4096, [&](index_t lo, index_t hi) {
    Rng local = root.split(lo);
    for (index_t i = lo; i < hi; ++i) {
      const index_t c = local.uniform_index(clusters);
      for (index_t j = 0; j < d; ++j)
        X.at(i, j) = centers.at(c, j) + local.normal_float(0.0f, sigma);
    }
  });
  return X;
}

Matrix<float> make_subspace_clusters(index_t n, index_t d, index_t clusters,
                                     index_t intrinsic_d, float noise,
                                     std::uint64_t seed) {
  if (intrinsic_d > d)
    throw std::invalid_argument("intrinsic_d must not exceed ambient d");
  Rng rng(seed);

  // Per-cluster: a center and a random d x intrinsic_d basis (not
  // orthonormalized; a random Gaussian frame spans a uniformly random
  // subspace, which is all that matters for intrinsic dimensionality).
  Matrix<float> centers(clusters, d);
  std::vector<Matrix<float>> bases;
  bases.reserve(clusters);
  for (index_t c = 0; c < clusters; ++c) {
    for (index_t j = 0; j < d; ++j)
      centers.at(c, j) = rng.uniform_float(0.0f, 10.0f);
    Matrix<float> basis(d, intrinsic_d);
    const float scale = 1.0f / std::sqrt(static_cast<float>(intrinsic_d));
    for (index_t j = 0; j < d; ++j)
      for (index_t l = 0; l < intrinsic_d; ++l)
        basis.at(j, l) = rng.normal_float(0.0f, scale);
    bases.push_back(std::move(basis));
  }

  Matrix<float> X(n, d);
  Rng root(seed + 1);
  parallel_for_blocked(0, n, 4096, [&](index_t lo, index_t hi) {
    Rng local = root.split(lo);
    std::vector<float> z(intrinsic_d);
    for (index_t i = lo; i < hi; ++i) {
      const index_t c = local.uniform_index(clusters);
      for (index_t l = 0; l < intrinsic_d; ++l) z[l] = local.normal_float();
      const Matrix<float>& basis = bases[c];
      for (index_t j = 0; j < d; ++j) {
        float v = centers.at(c, j);
        for (index_t l = 0; l < intrinsic_d; ++l)
          v += basis.at(j, l) * z[l];
        X.at(i, j) = v + local.normal_float(0.0f, noise);
      }
    }
  });
  return X;
}

Matrix<float> make_grid(index_t side, index_t d) {
  index_t n = 1;
  for (index_t j = 0; j < d; ++j) n *= side;
  Matrix<float> X(n, d);
  for (index_t i = 0; i < n; ++i) {
    index_t rest = i;
    for (index_t j = 0; j < d; ++j) {
      X.at(i, j) = static_cast<float>(rest % side);
      rest /= side;
    }
  }
  return X;
}

Matrix<float> make_swiss_roll(index_t n, index_t d, float noise,
                              std::uint64_t seed) {
  if (d < 3) throw std::invalid_argument("swiss roll needs d >= 3");
  Matrix<float> X(n, d);
  Rng root(seed);
  parallel_for_blocked(0, n, 4096, [&](index_t lo, index_t hi) {
    Rng local = root.split(lo);
    for (index_t i = lo; i < hi; ++i) {
      const float t = 1.5f * std::numbers::pi_v<float> *
                      (1.0f + 2.0f * local.uniform_float());
      const float height = 21.0f * local.uniform_float();
      X.at(i, 0) = t * std::cos(t) + local.normal_float(0.0f, noise);
      X.at(i, 1) = height + local.normal_float(0.0f, noise);
      X.at(i, 2) = t * std::sin(t) + local.normal_float(0.0f, noise);
      for (index_t j = 3; j < d; ++j)
        X.at(i, j) = local.normal_float(0.0f, noise);
    }
  });
  return X;
}

Matrix<float> make_robot_arm(index_t n, std::uint64_t seed,
                             index_t points_per_traj) {
  constexpr index_t kJoints = 7;
  constexpr index_t kDim = 3 * kJoints;  // [q, qdot, qddot] == 21, Table 1
  constexpr index_t kHarmonics = 3;

  Matrix<float> X(n, kDim);
  Rng root(seed);
  const index_t num_traj = (n + points_per_traj - 1) / points_per_traj;

  parallel_for(0, num_traj, [&](index_t traj) {
    Rng local = root.split(traj);
    // Per-joint sinusoid parameters: amplitude, angular frequency, phase.
    float amp[kJoints][kHarmonics], omega[kJoints][kHarmonics],
        phase[kJoints][kHarmonics];
    for (index_t j = 0; j < kJoints; ++j)
      for (index_t h = 0; h < kHarmonics; ++h) {
        amp[j][h] = local.uniform_float(0.1f, 1.2f);
        omega[j][h] = local.uniform_float(0.3f, 2.5f);
        phase[j][h] = local.uniform_float(0.0f, 2.0f * std::numbers::pi_v<float>);
      }
    const index_t lo = traj * points_per_traj;
    const index_t hi = std::min<index_t>(lo + points_per_traj, n);
    const float dt = 0.02f;  // 50 Hz sampling, typical for arm control
    for (index_t i = lo; i < hi; ++i) {
      const float t = static_cast<float>(i - lo) * dt;
      for (index_t j = 0; j < kJoints; ++j) {
        float q = 0.0f, qd = 0.0f, qdd = 0.0f;
        for (index_t h = 0; h < kHarmonics; ++h) {
          const float arg = omega[j][h] * t + phase[j][h];
          q += amp[j][h] * std::sin(arg);
          qd += amp[j][h] * omega[j][h] * std::cos(arg);
          qdd -= amp[j][h] * omega[j][h] * omega[j][h] * std::sin(arg);
        }
        X.at(i, j) = q;
        X.at(i, kJoints + j) = qd;
        X.at(i, 2 * kJoints + j) = qdd;
      }
    }
  });
  return X;
}

namespace {

/// Fixed random two-layer tanh network R^latent -> R^128: a smooth embedding
/// whose image is a latent_d-dimensional manifold.
Matrix<float> descriptor_manifold(index_t n, index_t latent_d,
                                  std::uint64_t seed) {
  constexpr index_t kHidden = 64;
  constexpr index_t kRaw = 128;
  Rng rng(seed);
  Matrix<float> w1(kHidden, latent_d);
  Matrix<float> w2(kRaw, kHidden);
  for (index_t i = 0; i < kHidden; ++i)
    for (index_t j = 0; j < latent_d; ++j)
      w1.at(i, j) = rng.normal_float(0.0f, 1.5f);
  for (index_t i = 0; i < kRaw; ++i)
    for (index_t j = 0; j < kHidden; ++j)
      w2.at(i, j) =
          rng.normal_float(0.0f, 1.0f / std::sqrt(static_cast<float>(kHidden)));

  Matrix<float> raw(n, kRaw);
  Rng root(seed + 7);
  parallel_for_blocked(0, n, 2048, [&](index_t lo, index_t hi) {
    Rng local = root.split(lo);
    std::vector<float> z(latent_d), h(kHidden);
    for (index_t i = lo; i < hi; ++i) {
      for (index_t j = 0; j < latent_d; ++j)
        z[j] = local.uniform_float(-1.0f, 1.0f);
      for (index_t u = 0; u < kHidden; ++u) {
        float acc = 0.0f;
        for (index_t j = 0; j < latent_d; ++j) acc += w1.at(u, j) * z[j];
        h[u] = std::tanh(acc);
      }
      for (index_t v = 0; v < kRaw; ++v) {
        float acc = 0.0f;
        for (index_t u = 0; u < kHidden; ++u) acc += w2.at(v, u) * h[u];
        raw.at(i, v) = std::tanh(acc) + local.normal_float(0.0f, 0.01f);
      }
    }
  });
  return raw;
}

}  // namespace

Matrix<float> make_image_descriptors(index_t n, index_t d_out,
                                     std::uint64_t seed, index_t latent_d) {
  const Matrix<float> raw = descriptor_manifold(n, latent_d, seed);
  // Random projection to d_out — the paper's own preprocessing (§7.1 fn 3).
  // Inlined here (rather than calling data::random_projection) to keep the
  // generator self-contained and seed-stable.
  Rng rng(seed + 13);
  const index_t d_raw = raw.cols();
  Matrix<float> proj(d_out, d_raw);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_out));
  for (index_t i = 0; i < d_out; ++i)
    for (index_t j = 0; j < d_raw; ++j)
      proj.at(i, j) = rng.normal_float(0.0f, scale);

  Matrix<float> X(n, d_out);
  parallel_for_blocked(0, n, 2048, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i)
      for (index_t o = 0; o < d_out; ++o) {
        float acc = 0.0f;
        for (index_t j = 0; j < d_raw; ++j)
          acc += proj.at(o, j) * raw.at(i, j);
        X.at(i, o) = acc;
      }
  });
  return X;
}

const std::vector<DatasetSpec>& paper_datasets() {
  static const std::vector<DatasetSpec> specs = {
      {"bio", 200'000, 74, 12, "UCI KDD04 protein homology (Bio)"},
      {"cov", 500'000, 54, 4, "UCI Covertype"},
      {"phy", 100'000, 78, 15, "UCI KDD04 quantum physics (Physics)"},
      {"robot", 2'000'000, 21, 7, "Barrett WAM inverse dynamics [22]"},
      {"tiny4", 10'000'000, 4, 4, "TinyImages descriptors, RP to d=4 [28]"},
      {"tiny8", 10'000'000, 8, 8, "TinyImages descriptors, RP to d=8"},
      {"tiny16", 10'000'000, 16, 8, "TinyImages descriptors, RP to d=16"},
      {"tiny32", 10'000'000, 32, 8, "TinyImages descriptors, RP to d=32"},
  };
  return specs;
}

const DatasetSpec& dataset_by_name(const std::string& name) {
  for (const DatasetSpec& spec : paper_datasets())
    if (spec.name == name) return spec;
  throw std::invalid_argument("unknown dataset: " + name);
}

Matrix<float> make_dataset(const DatasetSpec& spec, index_t n,
                           std::uint64_t seed) {
  if (spec.name == "bio")
    return make_subspace_clusters(n, spec.dim, 50, spec.intrinsic_d, 0.05f,
                                  seed);
  if (spec.name == "cov")
    return make_subspace_clusters(n, spec.dim, 12, spec.intrinsic_d, 0.03f,
                                  seed);
  if (spec.name == "phy")
    return make_subspace_clusters(n, spec.dim, 30, spec.intrinsic_d, 0.08f,
                                  seed);
  if (spec.name == "robot") return make_robot_arm(n, seed);
  if (spec.name.rfind("tiny", 0) == 0)
    return make_image_descriptors(n, spec.dim, seed);
  throw std::invalid_argument("unknown dataset: " + spec.name);
}

DataSplit make_benchmark_data(const DatasetSpec& spec, index_t n_database,
                              index_t n_queries, std::uint64_t seed) {
  Matrix<float> all = make_dataset(spec, n_database + n_queries, seed);
  // Held-out split by random permutation: a tail split would carve off
  // structurally distinct rows for generators with sequential structure
  // (robot trajectories), making queries out-of-distribution.
  const index_t total = n_database + n_queries;
  std::vector<index_t> perm(total);
  for (index_t i = 0; i < total; ++i) perm[i] = i;
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (index_t i = total; i > 1; --i) {
    const index_t j = rng.uniform_index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  DataSplit split;
  split.database = Matrix<float>(n_database, all.cols());
  split.queries = Matrix<float>(n_queries, all.cols());
  for (index_t i = 0; i < n_database; ++i)
    split.database.copy_row_from(all, perm[i], i);
  for (index_t i = 0; i < n_queries; ++i)
    split.queries.copy_row_from(all, perm[n_database + i], i);
  return split;
}

}  // namespace rbc::data
