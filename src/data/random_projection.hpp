// Random projection (Johnson–Lindenstrauss) dimensionality reduction — the
// preprocessor the paper applies to the TinyImages descriptors (§7.1
// footnote 3): "this dimensionality reduction technique approximately
// preserves the lengths of vectors, and hence is a useful preprocessor for
// NN search".
#pragma once

#include "common/matrix.hpp"
#include "common/types.hpp"

namespace rbc::data {

/// Dense Gaussian projection: rows of the output are X rows multiplied by a
/// d_in x d_out matrix with i.i.d. N(0, 1/d_out) entries, so expected
/// squared norms are preserved (E||Px||^2 = ||x||^2).
Matrix<float> random_projection(const Matrix<float>& X, index_t d_out,
                                std::uint64_t seed);

/// Achlioptas sparse projection: entries are +-sqrt(3/d_out) with
/// probability 1/6 each and 0 otherwise. Same JL guarantee, ~3x less work.
Matrix<float> random_projection_sparse(const Matrix<float>& X, index_t d_out,
                                       std::uint64_t seed);

}  // namespace rbc::data
