#include "data/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "rbc/serialize_io.hpp"

namespace rbc::data {

void save_matrix(const Matrix<float>& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  io::write_matrix(os, m);
}

Matrix<float> load_matrix(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return io::read_matrix(is);
}

void save_csv(const Matrix<float>& m, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  for (index_t i = 0; i < m.rows(); ++i) {
    for (index_t j = 0; j < m.cols(); ++j) {
      if (j > 0) os << ',';
      os << m.at(i, j);
    }
    os << '\n';
  }
}

Matrix<float> load_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  std::vector<std::vector<float>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<float> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) row.push_back(std::stof(cell));
    if (!rows.empty() && row.size() != rows.front().size())
      throw std::runtime_error("ragged CSV: " + path);
    rows.push_back(std::move(row));
  }
  const index_t n = static_cast<index_t>(rows.size());
  const index_t d = n == 0 ? 0 : static_cast<index_t>(rows.front().size());
  Matrix<float> m(n, d);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < d; ++j) m.at(i, j) = rows[i][j];
  return m;
}

}  // namespace rbc::data
