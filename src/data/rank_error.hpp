// Rank error of approximate NN answers — the paper's quality measure for the
// one-shot algorithm (§7.2): "A standard error measure is the rank of the
// returned point: i.e., the number of database points closer to the query
// than the returned point. A rank of 0 denotes the exact NN."
#pragma once

#include <string_view>
#include <vector>

#include "bruteforce/bf.hpp"
#include "common/matrix.hpp"

namespace rbc::data {

/// Rank of each query's *first* returned neighbor: the number of database
/// points strictly closer to the query under `metric` (a registry name
/// from api/metrics.hpp — results from a non-l2 index must be scored
/// under the metric they were searched with). Computed by a full scan per
/// query (exact, no index involved). result.ids.row(i)[0] == kInvalidIndex
/// yields rank n (worst possible).
std::vector<index_t> ranks_of(const Matrix<float>& Q, const Matrix<float>& X,
                              const KnnResult& result,
                              std::string_view metric = "l2");

/// Mean rank over queries — the x-axis of the paper's Figure 1.
double mean_rank(const Matrix<float>& Q, const Matrix<float>& X,
                 const KnnResult& result, std::string_view metric = "l2");

/// Fraction of queries whose returned first neighbor is an exact NN
/// (rank 0). 1 - recall is the one-shot failure probability delta of
/// Theorem 2.
double recall_at_1(const Matrix<float>& Q, const Matrix<float>& X,
                   const KnnResult& result, std::string_view metric = "l2");

}  // namespace rbc::data
