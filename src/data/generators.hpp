// Synthetic dataset generators, including surrogates for the five benchmark
// datasets of the paper (Table 1). See DESIGN.md §2 for the substitution
// rationale: each surrogate matches the paper's (n, d) and has a controlled
// low intrinsic dimensionality, which is the property the RBC's performance
// depends on.
#pragma once

#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"

namespace rbc::data {

// ------------------------------------------------------ basic generators ---

/// n points uniform in the unit cube [0,1]^d. High intrinsic dimension (= d):
/// the hard case for any metric index.
Matrix<float> make_uniform_cube(index_t n, index_t d, std::uint64_t seed);

/// Isotropic Gaussian mixture: `clusters` centers uniform in [0,10]^d, each
/// point = center + sigma * N(0, I_d).
Matrix<float> make_gaussian_mixture(index_t n, index_t d, index_t clusters,
                                    float sigma, std::uint64_t seed);

/// Low-intrinsic-dimension cluster data: each cluster spans a random
/// `intrinsic_d`-dimensional affine subspace of R^d, plus isotropic noise.
/// The workhorse surrogate for the UCI datasets (Bio / Covertype / Physics):
/// ambient dimension matches the real data, intrinsic dimension is the knob.
Matrix<float> make_subspace_clusters(index_t n, index_t d, index_t clusters,
                                     index_t intrinsic_d, float noise,
                                     std::uint64_t seed);

/// Regular grid: side^d lattice points with unit spacing (row-major order).
/// Under the L1 metric its expansion rate is 2^d — the paper's §6 example;
/// used by the expansion-rate estimator tests.
Matrix<float> make_grid(index_t side, index_t d);

/// Swiss-roll style 2-manifold embedded in R^d (d >= 3): intrinsic dimension
/// 2 regardless of d.
Matrix<float> make_swiss_roll(index_t n, index_t d, float noise,
                              std::uint64_t seed);

// ----------------------------------------------------- paper surrogates ---

/// Robot surrogate (paper: Barrett WAM arm data, n=2M, d=21 [22]).
/// Simulates smooth 7-DOF joint trajectories q_j(t) = sum of 3 sinusoids and
/// emits rows [q, dq/dt, d2q/dt2] (7 * 3 = 21 features), `points_per_traj`
/// consecutive samples per trajectory. Low intrinsic dimensionality comes
/// from the small number of trajectory parameters, mimicking real
/// inverse-dynamics data.
Matrix<float> make_robot_arm(index_t n, std::uint64_t seed,
                             index_t points_per_traj = 256);

/// TinyImages surrogate (paper: image descriptors from [28], n=10M, reduced
/// by random projection to d in {4,8,16,32}).
/// Generates descriptors on a smooth `latent_d`-dimensional manifold:
/// z ~ U[-1,1]^latent_d pushed through a fixed random 2-layer tanh network
/// into R^128 plus small noise, then random-projected to d_out (the paper's
/// own preprocessing step, §7.1 footnote 3).
Matrix<float> make_image_descriptors(index_t n, index_t d_out,
                                     std::uint64_t seed,
                                     index_t latent_d = 8);

// ------------------------------------------------- named dataset access ---

/// A row of the paper's Table 1.
struct DatasetSpec {
  std::string name;     // bio, cov, phy, robot, tiny4, tiny8, tiny16, tiny32
  index_t paper_n;      // size used in the paper
  index_t dim;          // ambient dimensionality (matches the paper exactly)
  index_t intrinsic_d;  // intrinsic dimensionality of our surrogate
  std::string provenance;  // what the paper used
};

/// The eight dataset configurations of the paper's evaluation.
const std::vector<DatasetSpec>& paper_datasets();

/// Builds the surrogate named by `spec` with `n` points (pass
/// spec.paper_n / scale for a machine-sized instance). Deterministic in
/// `seed`.
Matrix<float> make_dataset(const DatasetSpec& spec, index_t n,
                           std::uint64_t seed);

/// Lookup by name; throws std::invalid_argument for unknown names.
const DatasetSpec& dataset_by_name(const std::string& name);

/// Database + query split drawn from the same distribution (the standard
/// evaluation protocol; the paper uses 10k held-out queries, §7.4).
struct DataSplit {
  Matrix<float> database;
  Matrix<float> queries;
};

DataSplit make_benchmark_data(const DatasetSpec& spec, index_t n_database,
                              index_t n_queries, std::uint64_t seed);

}  // namespace rbc::data
