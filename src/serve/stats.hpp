// Per-service observability for the batched search service.
//
// The serving layer's whole reason to exist is a throughput/latency trade
// (paper §3: BF over a large query block has the structure of matrix-matrix
// multiply; singleton queries waste that structure). These counters make the
// trade visible: how large the coalesced batches actually were, how long
// queries waited end-to-end, and how deep the submission queue ran.
//
// Distance-evaluation work is accounted by the existing machine-independent
// facility in src/common/counters.hpp; a ServiceStats snapshot reports the
// delta since the service started, so benchmarks can put "work per query"
// next to wall-clock numbers exactly like the paper-figure harnesses do.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace rbc::serve {

/// Immutable snapshot of a SearchService's counters (see
/// SearchService::stats()). All values cover the service's lifetime up to the
/// snapshot moment; latency percentiles are computed over a bounded window of
/// the most recent completions (kLatencyWindow).
struct ServiceStats {
  /// Power-of-two batch-size histogram: bucket b counts dispatched batches
  /// with 2^b <= rows < 2^(b+1) (last bucket is open-ended). Bucket 0 is the
  /// singleton-batch count — a healthy batching service keeps it small.
  static constexpr std::size_t kHistBuckets = 12;  // 1 .. 2048+

  std::uint64_t submitted = 0;   ///< queries accepted by submit/submit_batch
  std::uint64_t completed = 0;   ///< queries whose future was fulfilled
  std::uint64_t failed = 0;      ///< queries whose future got an exception
  /// Queries refused by try_submit_batch admission control (queue full or
  /// service stopped) — the network server's reject-with-retry-after path.
  /// Rejected queries are never counted as submitted.
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;     ///< SearchRequests dispatched to the backend
  std::size_t queue_depth = 0;   ///< queries pending or in flight right now
  std::size_t max_queue_depth = 0;  ///< high-water mark of queue_depth

  std::array<std::uint64_t, kHistBuckets> batch_hist{};

  /// End-to-end latency (submit -> future fulfilled) over the most recent
  /// kLatencyWindow completions, milliseconds. Zero until first completion.
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  double wall_seconds = 0.0;     ///< service lifetime so far
  double throughput_qps = 0.0;   ///< completed / wall_seconds
  std::uint64_t dist_evals = 0;  ///< counters::total_dist_evals delta since
                                 ///< service start (process-wide facility:
                                 ///< includes any concurrent non-service
                                 ///< searches in the same process)
  /// counters::total_metric_cost delta since service start — the per-metric
  /// work of payload indexes (DP cells for "edit", relaxed edges for
  /// "graph-sp"; unit in IndexInfo::cost_unit). 0 for dense services, whose
  /// unit of work is the distance evaluation above.
  std::uint64_t metric_cost = 0;

  /// Mean rows per dispatched batch (0 before the first dispatch).
  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(completed + failed) /
                              static_cast<double>(batches);
  }
};

/// Thread-safe accumulator behind ServiceStats. Writers record at batch
/// granularity (one lock per dispatched batch, not per query), so the hot
/// path cost is negligible next to the backend search itself.
class StatsRecorder {
 public:
  /// Latency percentiles are computed over this many most-recent samples.
  static constexpr std::size_t kLatencyWindow = 8192;

  StatsRecorder();

  void record_submitted(std::size_t queries);
  /// Records queries turned away by admission control (ServiceStats::
  /// rejected).
  void record_rejected(std::size_t queries);
  /// Records one dispatched batch: its row count and, per query, the
  /// end-to-end latency. `failed` marks the whole batch as failed.
  void record_batch(std::size_t rows,
                    const std::vector<double>& latencies_ms, bool failed);
  void set_queue_depth(std::size_t depth);

  /// Consistent snapshot; percentiles are computed here (snapshot time), not
  /// on the hot path.
  ServiceStats snapshot() const;

 private:
  mutable std::mutex mutex_;
  ServiceStats base_;                  // counters (percentile fields unused)
  std::vector<double> latency_ring_;   // most recent latencies, ms
  std::size_t ring_next_ = 0;
  std::uint64_t dist_evals_start_ = 0;
  std::uint64_t metric_cost_start_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// Per-connection counters kept by the network server (serve/net/server.*)
/// and surfaced through the protocol's INFO op. Plain data, single-writer:
/// only the server's event loop mutates a connection's counters, and INFO
/// responses are encoded on that same thread, so no synchronization is
/// needed.
struct ConnCounters {
  std::uint64_t requests = 0;   ///< data frames admitted to the service
  std::uint64_t rejected = 0;   ///< frames refused by admission control
  std::uint64_t errors = 0;     ///< error frames sent (malformed/bad/internal)
  std::uint64_t bytes_in = 0;   ///< wire bytes read from this connection
  std::uint64_t bytes_out = 0;  ///< wire bytes written to this connection
};

}  // namespace rbc::serve
