// Batched concurrent search service — the serving layer of the library.
//
// The paper's central observation (§3) is that nearest-neighbor search
// becomes hardware-friendly when many queries are processed together:
// BF(Q, X) over a large query block has "virtually the same structure as
// matrix-matrix multiply", while one query at a time degenerates to
// bandwidth-bound vector work. A live service, however, receives queries one
// at a time from many independent callers. SearchService closes that gap: it
// owns any rbc::Index, accepts asynchronous submissions from any number of
// client threads, and a batching dispatcher coalesces whatever is pending
// into one large SearchRequest per dispatch (bounded by max_batch rows and
// max_wait_us of added latency), so the backend always sees paper-style
// query blocks.
//
//   auto index = rbc::make_index("rbc-exact");
//   index->build(database);
//   rbc::serve::SearchService service(std::move(index), {.max_batch = 256});
//
//   // any thread, any time:
//   std::future<rbc::serve::QueryResult> f = service.submit(query_span, k);
//   ...
//   rbc::serve::QueryResult r = f.get();   // ids/dists, ascending
//
// Threading model: submitters enqueue under a mutex and return immediately
// with a future; one dispatcher thread forms batches; `workers` executor
// threads run Index::knn_search on assembled batches (the Index contract —
// immutable after build, concurrent const queries safe — is what makes
// multiple executors sound). Intra-batch parallelism belongs to the backend
// (src/parallel/ OpenMP loops); the worker pool provides inter-batch
// concurrency, so keep `workers` small for CPU backends that already use
// every core, or set `backend_threads` to partition cores between workers.
//
// See docs/ARCHITECTURE.md for the full request lifecycle and
// bench/serve_throughput.cpp for the measured batched-vs-singleton win.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/index.hpp"
#include "serve/stats.hpp"

namespace rbc::serve {

/// Tuning knobs of a SearchService. Defaults favor throughput on a CPU
/// backend whose own OpenMP loops use every core.
struct ServiceOptions {
  /// Maximum query rows coalesced into one backend SearchRequest. 1 disables
  /// batching (every submission dispatches alone — the baseline
  /// bench/serve_throughput.cpp measures against). A single submit_batch
  /// larger than max_batch is never split: it dispatches as one oversized
  /// request.
  index_t max_batch = 256;

  /// How long the oldest pending query may wait for co-riders before its
  /// batch dispatches anyway — the latency price of batching. 0 dispatches
  /// immediately (still coalescing whatever is already pending).
  std::uint32_t max_wait_us = 200;

  /// Batch-executor threads. Values < 1 clamp to 1. More workers overlap
  /// independent batches; for backends that parallelize internally, 1–2 is
  /// usually right (see backend_threads).
  int workers = 1;

  /// Backpressure bound: submit()/submit_batch() block while more than this
  /// many query rows are pending or in flight. Bounds service memory under
  /// overload instead of growing the queue without limit.
  std::size_t max_queue = 65536;

  /// If > 0, each worker restricts the backend's parallel runtime
  /// (rbc::set_num_threads) to this many threads, partitioning cores between
  /// workers (e.g. workers = 4, backend_threads = cores / 4). 0 leaves the
  /// runtime default untouched.
  int backend_threads = 0;
};

/// Answer to a single-query submission: the query's k neighbors in
/// ascending (distance, id) order.
struct QueryResult {
  std::vector<index_t> ids;
  std::vector<dist_t> dists;
};

/// Outcome of a non-blocking submission attempt (try_submit_batch).
enum class Admission : std::uint8_t {
  kAccepted = 0,    ///< job queued; the out-future resolves it
  kOverloaded = 1,  ///< queue full — caller should retry later
  kStopped = 2,     ///< service stopped — no further submissions possible
};

/// A search service over one built index. Construction spawns the
/// dispatcher and worker threads; destruction (or stop()) drains every
/// accepted query and joins them. All public methods are thread-safe.
class SearchService {
 public:
  /// Takes ownership of a *built* index. Throws std::invalid_argument if
  /// `index` is null or unbuilt (info().dim == 0 and not payload-built).
  explicit SearchService(std::unique_ptr<Index> index,
                         ServiceOptions options = {});

  /// Equivalent to stop(): drains accepted queries, joins threads.
  ~SearchService();

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Submits one query (dim floats, copied before returning). The future
  /// yields the k nearest neighbors, or rethrows the backend's error.
  /// Throws std::invalid_argument immediately on a malformed submission
  /// (wrong dimension, k == 0, k > database size — the same contract as
  /// Index::knn_search) and std::runtime_error after stop().
  /// Blocks while the queue holds more than options.max_queue rows.
  std::future<QueryResult> submit(std::span<const float> query, index_t k);

  /// Submits a query block (rows copied before returning; `queries` need not
  /// outlive the call). The block is never split across backend requests,
  /// but may be coalesced with other pending submissions of the same k.
  /// Error contract matches submit(). A zero-row block completes
  /// immediately with an empty result.
  std::future<KnnResult> submit_batch(const Matrix<float>& queries, index_t k);

  /// Non-blocking, admission-controlled variant of submit_batch for callers
  /// that must never block (the network server's event loop). Instead of
  /// waiting out backpressure it returns kOverloaded — recording the
  /// rejection in stats().rejected — when admitting the block would push
  /// pending + in-flight rows past options.max_queue, and kStopped after
  /// stop(). On kAccepted, `out` receives the future. Malformed submissions
  /// throw std::invalid_argument exactly like submit_batch; a zero-row block
  /// is accepted immediately with an empty result.
  Admission try_submit_batch(const Matrix<float>& queries, index_t k,
                             std::future<KnnResult>& out);

  /// Payload counterparts of submit / submit_batch / try_submit_batch, live
  /// when the owned index is payload-built (info().payload; strings under
  /// "edit", 8-byte node ids under "graph-sp", ...). Payloads are copied
  /// before returning; batching, backpressure, admission control, and the
  /// error contract are identical to the dense paths — including synchronous
  /// std::invalid_argument on k == 0 / k > database size, and on calling
  /// these on a dense service (or the dense entry points on a payload one).
  /// Per-metric payload validity (e.g. a graph node id out of range) is the
  /// backend's check and surfaces through the future.
  std::future<QueryResult> submit_payload(std::string_view query, index_t k);
  std::future<KnnResult> submit_payload_batch(
      const std::vector<std::string>& queries, index_t k);
  Admission try_submit_payload_batch(const std::vector<std::string>& queries,
                                     index_t k, std::future<KnnResult>& out);

  /// Forwards an insert to the owned index (Index::insert contract: new
  /// unique ids, rows copied). Mutation-capable backends apply it without
  /// blocking in-flight searches — a search dispatched before the insert
  /// answers over the old snapshot, one dispatched after sees the new rows.
  /// Throws the index's own error for incapable backends or invalid batches;
  /// the admission bound (k vs database size) tracks the new size.
  /// Thread-safe against searches and against other mutators.
  void insert(const Matrix<float>& rows, std::span<const index_t> ids);

  /// Forwards a remove to the owned index; returns how many ids were live.
  /// After the call, submissions validate k against the shrunken size
  /// (a search already in flight may still race the shrink and fail with
  /// the backend's k-exceeds-size error through its future).
  index_t remove(std::span<const index_t> ids);

  /// Forwards Index::compact(): blocks until the index has no pending
  /// delta rows or tombstones. Searches keep being served meanwhile.
  void compact();

  /// Blocks until every query accepted so far has completed. Submissions
  /// from other threads may keep arriving; drain() returns once the queue is
  /// momentarily empty.
  void drain();

  /// Stops accepting new submissions (further submits throw
  /// std::runtime_error; try_submit_batch returns kStopped), completes
  /// everything already accepted, and joins the dispatcher and workers.
  /// Idempotent, and race-free against concurrent submitters — the
  /// server's drain path (drain(), then stop(), while connections may
  /// still be submitting) relies on this contract: a submission racing
  /// with stop() either lands before the cutoff and completes normally,
  /// or observes the stop and fails with the clean "submit after stop()"
  /// error — never an assert, a lost future, or a torn queue.
  void stop();

  /// Counter snapshot (see serve/stats.hpp). Cheap; callable any time.
  ServiceStats stats() const { return recorder_.snapshot(); }

  /// The owned index (for ground-truth comparison and info()).
  const Index& index() const { return *index_; }

  /// Metric of the owned index ("l2", "l1", "cosine", "ip") — what the
  /// distances in every QueryResult mean. Stamped onto each dispatched
  /// batch, so a metric disagreement fails loudly instead of silently
  /// misranking.
  const std::string& metric() const { return metric_; }

  const ServiceOptions& options() const { return options_; }

 private:
  // One submission: a packed row block (dense) or a payload list, plus the
  // promise that resolves it. A service's jobs are all one kind — the index
  // is either dense- or payload-built — so batches never mix.
  struct Job {
    std::vector<float> data;  // nq * dim, tightly packed row-major (dense)
    std::vector<std::string> payloads;  // nq payload strings (payload mode)
    index_t nq = 0;
    index_t k = 0;
    std::chrono::steady_clock::time_point enqueued;
    bool single = false;
    std::promise<QueryResult> single_promise;  // used when single
    std::promise<KnnResult> block_promise;     // used when !single
  };

  struct Batch {
    std::vector<Job> jobs;
    index_t rows = 0;
    index_t k = 0;
  };

  void enqueue(Job job);
  // Queues `job` under the lock without blocking; the Admission result says
  // whether it was taken (kOverloaded/kStopped leave `job` untouched).
  Admission enqueue_try(Job& job);
  void dispatch_loop();
  void worker_loop();
  void execute(Batch& batch);
  // Total rows of pending jobs with this k (what the next batch could hold).
  index_t matching_rows_locked(index_t k) const;
  void validate_submission(index_t nq, index_t cols, index_t k) const;
  void validate_payload_submission(index_t nq, index_t k) const;

  std::unique_ptr<Index> index_;
  ServiceOptions options_;
  index_t dim_ = 0;
  bool payload_ = false;  // payload-built index: payload entry points live
  /// Live row count, refreshed by the mutation entry points; atomic because
  /// validate_submission reads it without taking the queue mutex.
  std::atomic<index_t> db_size_{0};
  std::string metric_;  // index metric, stamped onto every dispatched batch

  /// Serializes the mutation entry points with each other (the index's own
  /// locks already serialize them against searches), so the db_size_
  /// refresh can't interleave across two mutators.
  std::mutex mutate_mutex_;

  std::mutex stop_mutex_;  // serializes stop() (see service.cpp)
  mutable std::mutex mutex_;
  std::condition_variable cv_pending_;  // dispatcher <- submitters
  std::condition_variable cv_ready_;    // workers <- dispatcher
  std::condition_variable cv_done_;     // drain()/backpressure <- workers
  std::deque<Job> pending_;
  // Pending rows per k, maintained incrementally so the dispatcher's
  // batching predicate is O(1) under a deep queue (pending_ itself can hold
  // tens of thousands of jobs at max_queue depth).
  std::unordered_map<index_t, std::size_t> pending_rows_;
  std::deque<Batch> ready_;
  std::size_t outstanding_ = 0;  // rows accepted, future not yet fulfilled
  bool stopping_ = false;
  bool dispatcher_done_ = false;

  StatsRecorder recorder_;
  std::thread dispatcher_;
  std::vector<std::thread> workers_;
};

}  // namespace rbc::serve
