#include "serve/net/protocol.hpp"

#include <cstdio>
#include <cstring>

namespace rbc::serve::net {

namespace {

// --- little-endian byte writer -------------------------------------------
// Payloads are assembled into a plain byte vector; the frame header is
// prepended at the end (encode_frame), so each encoder allocates once.

struct Writer {
  std::vector<std::uint8_t> buf;

  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf.insert(buf.end(), p, p + n);
  }
  template <class T>
  void pod(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(&value, sizeof(T));
  }
  void str(const std::string& s) {
    pod(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
};

// --- bounds-checked reader -----------------------------------------------
// Every get() validates against the bytes actually present before touching
// them — the in-memory analogue of io::require_bytes. done() additionally
// rejects trailing bytes: a payload that decodes but is longer than its
// message is a framing bug on the peer, not something to silently accept.

struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;
  const char* what;  // message name for error text

  void require(std::size_t n, const char* field) const {
    if (bytes.size() - pos < n)
      throw ProtocolError(std::string("rbc::net: truncated ") + what +
                          " payload reading " + field + " (" +
                          std::to_string(n) + " bytes claimed, " +
                          std::to_string(bytes.size() - pos) + " left)");
  }
  template <class T>
  T pod(const char* field) {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T), field);
    T value;
    std::memcpy(&value, bytes.data() + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }
  std::string str(const char* field) {
    const auto len = pod<std::uint32_t>(field);
    if (len > kMaxStringLen)
      throw ProtocolError(std::string("rbc::net: implausible ") + what + " " +
                          field + " length " + std::to_string(len));
    require(len, field);
    std::string s(reinterpret_cast<const char*>(bytes.data() + pos), len);
    pos += len;
    return s;
  }
  void done() const {
    if (pos != bytes.size())
      throw ProtocolError(std::string("rbc::net: ") + what + " payload has " +
                          std::to_string(bytes.size() - pos) +
                          " trailing bytes");
  }
};

/// Decoders can be handed a version byte directly (tests, future callers),
/// not only one that already passed parse_header — so they re-check it.
void require_version(std::uint8_t version, const char* what) {
  if (version < kNetVersionMin || version > kNetVersion)
    throw ProtocolError(std::string("rbc::net: ") + what +
                        " under unsupported protocol version " +
                        std::to_string(version));
}

/// Validates a (rows, dim) pair against the caps and the remaining payload,
/// then reads the packed row-major float block into a Matrix.
Matrix<float> read_rows(Reader& r, std::uint32_t nq, std::uint32_t dim) {
  if (nq > kMaxRowsPerFrame)
    throw ProtocolError("rbc::net: implausible row count " +
                        std::to_string(nq));
  if (dim == 0 || dim > kMaxDimPerFrame)
    throw ProtocolError("rbc::net: implausible dimension " +
                        std::to_string(dim));
  const std::uint64_t floats =
      static_cast<std::uint64_t>(nq) * static_cast<std::uint64_t>(dim);
  r.require(static_cast<std::size_t>(floats) * sizeof(float), "rows");
  Matrix<float> m(static_cast<index_t>(nq), static_cast<index_t>(dim));
  for (std::uint32_t i = 0; i < nq; ++i) {
    std::memcpy(m.row(i), r.bytes.data() + r.pos, dim * sizeof(float));
    r.pos += dim * sizeof(float);
  }
  return m;
}

void write_rows(Writer& w, const Matrix<float>& m) {
  for (index_t i = 0; i < m.rows(); ++i)
    w.raw(m.row(i), m.cols() * sizeof(float));
}

/// v2 response trailer. Coverage counts are shard counts, so the row cap is
/// a generous plausibility bound.
void write_coverage(Writer& w, Coverage coverage) {
  w.pod<std::uint32_t>(coverage.covered);
  w.pod<std::uint32_t>(coverage.total);
}

/// A version-1 frame has no coverage trailer: silently dropping a partial
/// coverage would upgrade a degraded answer to a full one on the wire.
void require_expressible(Coverage coverage, std::uint8_t version,
                         const char* what) {
  if (version < 2 && !coverage.full())
    throw ProtocolError(std::string("rbc::net: partial coverage on a ") +
                        what + " cannot be expressed in a version-1 frame");
}

Coverage read_coverage(Reader& r) {
  Coverage c;
  c.covered = r.pod<std::uint32_t>("covered shards");
  c.total = r.pod<std::uint32_t>("total shards");
  if (c.total == 0 || c.total > kMaxRowsPerFrame)
    throw ProtocolError("rbc::net: implausible total shard count " +
                        std::to_string(c.total));
  if (c.covered > c.total)
    throw ProtocolError("rbc::net: coverage " + std::to_string(c.covered) +
                        "/" + std::to_string(c.total) + " exceeds total");
  return c;
}

}  // namespace

std::optional<FrameHeader> parse_header(std::span<const std::uint8_t> bytes,
                                        std::uint32_t max_payload) {
  if (bytes.size() < kHeaderSize) return std::nullopt;
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), 4);
  if (magic != kNetMagic)
    throw ProtocolError("rbc::net: bad frame magic 0x" + [magic] {
      char hex[9];
      std::snprintf(hex, sizeof hex, "%08x", magic);
      return std::string(hex);
    }());
  FrameHeader h;
  h.version = bytes[4];
  if (h.version < kNetVersionMin || h.version > kNetVersion)
    throw ProtocolError("rbc::net: unsupported protocol version " +
                        std::to_string(h.version));
  const std::uint8_t op = bytes[5];
  if (op < static_cast<std::uint8_t>(Op::kKnnRequest) ||
      op > static_cast<std::uint8_t>(Op::kKnnPayloadRequest))
    throw ProtocolError("rbc::net: unknown opcode " + std::to_string(op));
  h.op = static_cast<Op>(op);
  // Opcodes introduced by a later version are malformed under an earlier
  // one: a v2 frame claiming the v3 payload op cannot have a valid layout.
  if (h.op == Op::kKnnPayloadRequest && h.version < 3)
    throw ProtocolError(
        "rbc::net: payload request opcode in a version-" +
        std::to_string(h.version) + " frame (payload queries need v3)");
  std::uint16_t flags = 0;
  std::memcpy(&flags, bytes.data() + 6, 2);
  if (flags != 0)
    throw ProtocolError("rbc::net: nonzero reserved flags " +
                        std::to_string(flags));
  std::memcpy(&h.request_id, bytes.data() + 8, 8);
  std::memcpy(&h.payload_len, bytes.data() + 16, 4);
  if (h.payload_len > max_payload)
    throw ProtocolError("rbc::net: frame payload " +
                        std::to_string(h.payload_len) +
                        " bytes exceeds the limit of " +
                        std::to_string(max_payload));
  return h;
}

std::vector<std::uint8_t> encode_frame(Op op, std::uint64_t request_id,
                                       std::span<const std::uint8_t> payload,
                                       std::uint8_t version) {
  // A frame stamped with an out-of-band version could never be parsed back;
  // catch the caller bug at the source.
  require_version(version, "encoding frame");
  std::vector<std::uint8_t> frame(kHeaderSize + payload.size());
  const std::uint32_t magic = kNetMagic;
  std::memcpy(frame.data(), &magic, 4);
  frame[4] = version;
  frame[5] = static_cast<std::uint8_t>(op);
  frame[6] = 0;  // flags
  frame[7] = 0;
  std::memcpy(frame.data() + 8, &request_id, 8);
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(frame.data() + 16, &len, 4);
  if (!payload.empty())
    std::memcpy(frame.data() + kHeaderSize, payload.data(), payload.size());
  return frame;
}

// ----------------------------------------------------------------- knn ----

std::vector<std::uint8_t> encode_knn_request(std::uint64_t request_id,
                                             const Matrix<float>& queries,
                                             index_t k,
                                             std::uint32_t deadline_ms,
                                             std::uint8_t version) {
  require_version(version, "encoding knn request");
  Writer w;
  w.pod<std::uint32_t>(k);
  if (version >= 2) w.pod<std::uint32_t>(deadline_ms);
  w.pod<std::uint32_t>(queries.rows());
  w.pod<std::uint32_t>(queries.cols());
  write_rows(w, queries);
  return encode_frame(Op::kKnnRequest, request_id, w.buf, version);
}

KnnRequestMsg decode_knn_request(std::span<const std::uint8_t> payload,
                                 std::uint8_t version) {
  require_version(version, "decoding knn request");
  Reader r{payload, 0, "knn request"};
  KnnRequestMsg msg;
  const auto k = r.pod<std::uint32_t>("k");
  if (k == 0 || k > kMaxKPerFrame)
    throw ProtocolError("rbc::net: implausible k " + std::to_string(k));
  msg.k = static_cast<index_t>(k);
  if (version >= 2) msg.deadline_ms = r.pod<std::uint32_t>("deadline_ms");
  const auto nq = r.pod<std::uint32_t>("nq");
  const auto dim = r.pod<std::uint32_t>("dim");
  msg.queries = read_rows(r, nq, dim);
  r.done();
  return msg;
}

std::vector<std::uint8_t> encode_knn_response(std::uint64_t request_id,
                                              const KnnResult& result,
                                              Coverage coverage,
                                              std::uint8_t version) {
  require_version(version, "encoding knn response");
  require_expressible(coverage, version, "knn response");
  Writer w;
  w.pod<std::uint32_t>(result.ids.rows());
  w.pod<std::uint32_t>(result.ids.cols());
  for (index_t i = 0; i < result.ids.rows(); ++i)
    w.raw(result.ids.row(i), result.ids.cols() * sizeof(index_t));
  for (index_t i = 0; i < result.dists.rows(); ++i)
    w.raw(result.dists.row(i), result.dists.cols() * sizeof(dist_t));
  if (version >= 2) write_coverage(w, coverage);
  return encode_frame(Op::kKnnResponse, request_id, w.buf, version);
}

KnnResponseMsg decode_knn_response(std::span<const std::uint8_t> payload,
                                   std::uint8_t version) {
  require_version(version, "decoding knn response");
  Reader r{payload, 0, "knn response"};
  const auto nq = r.pod<std::uint32_t>("nq");
  const auto k = r.pod<std::uint32_t>("k");
  if (nq > kMaxRowsPerFrame)
    throw ProtocolError("rbc::net: implausible row count " +
                        std::to_string(nq));
  if (k > kMaxKPerFrame)
    throw ProtocolError("rbc::net: implausible k " + std::to_string(k));
  const std::uint64_t cells =
      static_cast<std::uint64_t>(nq) * static_cast<std::uint64_t>(k);
  r.require(static_cast<std::size_t>(cells) *
                (sizeof(index_t) + sizeof(dist_t)),
            "neighbor rows");
  KnnResponseMsg msg;
  msg.result = KnnResult(static_cast<index_t>(nq), static_cast<index_t>(k));
  for (std::uint32_t i = 0; i < nq; ++i) {
    std::memcpy(msg.result.ids.row(i), r.bytes.data() + r.pos,
                k * sizeof(index_t));
    r.pos += k * sizeof(index_t);
  }
  for (std::uint32_t i = 0; i < nq; ++i) {
    std::memcpy(msg.result.dists.row(i), r.bytes.data() + r.pos,
                k * sizeof(dist_t));
    r.pos += k * sizeof(dist_t);
  }
  if (version >= 2) msg.coverage = read_coverage(r);
  r.done();
  return msg;
}

// ------------------------------------------------------- knn (payload) ----

std::vector<std::uint8_t> encode_knn_payload_request(
    std::uint64_t request_id, const std::vector<std::string>& queries,
    index_t k, std::uint32_t deadline_ms, std::uint8_t version) {
  require_version(version, "encoding knn payload request");
  if (version < 3)
    throw ProtocolError(
        "rbc::net: payload queries cannot be expressed in a version-" +
        std::to_string(version) + " frame");
  for (const std::string& q : queries)
    if (q.size() > kMaxStringLen)
      throw ProtocolError("rbc::net: payload query of " +
                          std::to_string(q.size()) +
                          " bytes exceeds the per-query limit of " +
                          std::to_string(kMaxStringLen));
  Writer w;
  w.pod<std::uint32_t>(k);
  w.pod<std::uint32_t>(deadline_ms);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(queries.size()));
  for (const std::string& q : queries) w.str(q);
  return encode_frame(Op::kKnnPayloadRequest, request_id, w.buf, version);
}

KnnPayloadRequestMsg decode_knn_payload_request(
    std::span<const std::uint8_t> payload, std::uint8_t version) {
  require_version(version, "decoding knn payload request");
  if (version < 3)
    throw ProtocolError(
        "rbc::net: knn payload request under protocol version " +
        std::to_string(version) + " (payload queries need v3)");
  Reader r{payload, 0, "knn payload request"};
  KnnPayloadRequestMsg msg;
  const auto k = r.pod<std::uint32_t>("k");
  if (k == 0 || k > kMaxKPerFrame)
    throw ProtocolError("rbc::net: implausible k " + std::to_string(k));
  msg.k = static_cast<index_t>(k);
  msg.deadline_ms = r.pod<std::uint32_t>("deadline_ms");
  const auto nq = r.pod<std::uint32_t>("nq");
  if (nq > kMaxRowsPerFrame)
    throw ProtocolError("rbc::net: implausible row count " +
                        std::to_string(nq));
  // Reader::str caps each query at kMaxStringLen and validates the claimed
  // length against the bytes present before allocating, so total decode
  // allocation is bounded by the payload actually received.
  msg.queries.reserve(nq);
  for (std::uint32_t i = 0; i < nq; ++i)
    msg.queries.push_back(r.str("query"));
  r.done();
  return msg;
}

// --------------------------------------------------------------- range ----

std::vector<std::uint8_t> encode_range_request(std::uint64_t request_id,
                                               const Matrix<float>& queries,
                                               dist_t radius,
                                               std::uint32_t deadline_ms,
                                               std::uint8_t version) {
  require_version(version, "encoding range request");
  Writer w;
  w.pod<dist_t>(radius);
  if (version >= 2) w.pod<std::uint32_t>(deadline_ms);
  w.pod<std::uint32_t>(queries.rows());
  w.pod<std::uint32_t>(queries.cols());
  write_rows(w, queries);
  return encode_frame(Op::kRangeRequest, request_id, w.buf, version);
}

RangeRequestMsg decode_range_request(std::span<const std::uint8_t> payload,
                                     std::uint8_t version) {
  require_version(version, "decoding range request");
  Reader r{payload, 0, "range request"};
  RangeRequestMsg msg;
  msg.radius = r.pod<dist_t>("radius");
  if (version >= 2) msg.deadline_ms = r.pod<std::uint32_t>("deadline_ms");
  const auto nq = r.pod<std::uint32_t>("nq");
  const auto dim = r.pod<std::uint32_t>("dim");
  msg.queries = read_rows(r, nq, dim);
  r.done();
  return msg;
}

std::vector<std::uint8_t> encode_range_response(
    std::uint64_t request_id, const std::vector<std::vector<index_t>>& ids,
    Coverage coverage, std::uint8_t version) {
  require_version(version, "encoding range response");
  require_expressible(coverage, version, "range response");
  Writer w;
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(ids.size()));
  for (const std::vector<index_t>& row : ids) {
    w.pod<std::uint32_t>(static_cast<std::uint32_t>(row.size()));
    w.raw(row.data(), row.size() * sizeof(index_t));
  }
  if (version >= 2) write_coverage(w, coverage);
  return encode_frame(Op::kRangeResponse, request_id, w.buf, version);
}

RangeResponseMsg decode_range_response(std::span<const std::uint8_t> payload,
                                       std::uint8_t version) {
  require_version(version, "decoding range response");
  Reader r{payload, 0, "range response"};
  const auto nq = r.pod<std::uint32_t>("nq");
  if (nq > kMaxRowsPerFrame)
    throw ProtocolError("rbc::net: implausible row count " +
                        std::to_string(nq));
  RangeResponseMsg msg;
  msg.ids.resize(nq);
  for (std::uint32_t i = 0; i < nq; ++i) {
    const auto count = r.pod<std::uint32_t>("hit count");
    // 4 bytes/hit must still be present — checked before the allocation.
    r.require(static_cast<std::size_t>(count) * sizeof(index_t), "hit ids");
    if (count == 0) continue;  // empty row; data() may be null, skip memcpy
    msg.ids[i].resize(count);
    std::memcpy(msg.ids[i].data(), r.bytes.data() + r.pos,
                count * sizeof(index_t));
    r.pos += count * sizeof(index_t);
  }
  if (version >= 2) msg.coverage = read_coverage(r);
  r.done();
  return msg;
}

// ---------------------------------------------------------------- info ----

std::vector<std::uint8_t> encode_info_request(std::uint64_t request_id,
                                              std::uint8_t version) {
  require_version(version, "encoding info request");
  return encode_frame(Op::kInfoRequest, request_id, {}, version);
}

std::vector<std::uint8_t> encode_info_response(std::uint64_t request_id,
                                               const InfoMsg& info,
                                               std::uint8_t version) {
  require_version(version, "encoding info response");
  Writer w;
  w.str(info.backend);
  w.str(info.metric);
  w.pod<std::uint32_t>(info.size);
  w.pod<std::uint32_t>(info.dim);
  w.pod<std::uint64_t>(info.completed);
  w.pod<std::uint64_t>(info.rejected);
  w.pod<double>(info.p50_ms);
  w.pod<double>(info.p99_ms);
  w.pod<std::uint64_t>(info.conn_requests);
  w.pod<std::uint64_t>(info.conn_rejected);
  w.pod<std::uint64_t>(info.conn_bytes_in);
  w.pod<std::uint64_t>(info.conn_bytes_out);
  if (version >= 3) {
    w.str(info.cost_unit);
    w.pod<std::uint64_t>(info.metric_cost);
  }
  return encode_frame(Op::kInfoResponse, request_id, w.buf, version);
}

InfoMsg decode_info_response(std::span<const std::uint8_t> payload,
                             std::uint8_t version) {
  require_version(version, "decoding info response");
  Reader r{payload, 0, "info response"};
  InfoMsg info;
  info.backend = r.str("backend");
  info.metric = r.str("metric");
  info.size = r.pod<std::uint32_t>("size");
  info.dim = r.pod<std::uint32_t>("dim");
  info.completed = r.pod<std::uint64_t>("completed");
  info.rejected = r.pod<std::uint64_t>("rejected");
  info.p50_ms = r.pod<double>("p50_ms");
  info.p99_ms = r.pod<double>("p99_ms");
  info.conn_requests = r.pod<std::uint64_t>("conn_requests");
  info.conn_rejected = r.pod<std::uint64_t>("conn_rejected");
  info.conn_bytes_in = r.pod<std::uint64_t>("conn_bytes_in");
  info.conn_bytes_out = r.pod<std::uint64_t>("conn_bytes_out");
  if (version >= 3) {
    info.cost_unit = r.str("cost_unit");
    info.metric_cost = r.pod<std::uint64_t>("metric_cost");
  }
  r.done();
  return info;
}

// -------------------------------------------------------------- reload ----

std::vector<std::uint8_t> encode_reload_request(std::uint64_t request_id,
                                                const std::string& path,
                                                std::uint8_t version) {
  require_version(version, "encoding reload request");
  Writer w;
  w.str(path);
  return encode_frame(Op::kReloadRequest, request_id, w.buf, version);
}

std::string decode_reload_request(std::span<const std::uint8_t> payload) {
  Reader r{payload, 0, "reload request"};
  std::string path = r.str("path");
  r.done();
  return path;
}

std::vector<std::uint8_t> encode_reload_response(std::uint64_t request_id,
                                                 std::uint8_t version) {
  require_version(version, "encoding reload response");
  return encode_frame(Op::kReloadResponse, request_id, {}, version);
}

// --------------------------------------------------------------- error ----

std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       const ErrorMsg& error,
                                       std::uint8_t version) {
  require_version(version, "encoding error");
  Writer w;
  w.pod<std::uint16_t>(static_cast<std::uint16_t>(error.code));
  w.pod<std::uint32_t>(error.retry_after_ms);
  w.str(error.message);
  return encode_frame(Op::kError, request_id, w.buf, version);
}

ErrorMsg decode_error(std::span<const std::uint8_t> payload) {
  Reader r{payload, 0, "error"};
  ErrorMsg error;
  const auto code = r.pod<std::uint16_t>("code");
  if (code < static_cast<std::uint16_t>(ErrorCode::kBadRequest) ||
      code > static_cast<std::uint16_t>(ErrorCode::kDeadlineExceeded))
    throw ProtocolError("rbc::net: unknown error code " +
                        std::to_string(code));
  error.code = static_cast<ErrorCode>(code);
  error.retry_after_ms = r.pod<std::uint32_t>("retry_after_ms");
  error.message = r.str("message");
  r.done();
  return error;
}

}  // namespace rbc::serve::net
