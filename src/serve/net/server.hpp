// RbcServer: the network front door of the serving stack.
//
// An epoll-driven, single-event-loop TCP server speaking the framed binary
// protocol of serve/net/protocol.hpp. Decoded KNN requests feed straight
// into the owned SearchService's coalescing dispatcher via the non-blocking
// try_submit_batch seam, so many independent network clients become the
// large BF(Q, X) query blocks the paper's batching argument rewards —
// exactly like in-process submitters, but across process and machine
// boundaries.
//
//   auto index = rbc::load_index(file);
//   rbc::serve::net::RbcServer server(std::move(index), {.port = 9172});
//   ... server.port(), server.wait(), server.stop() ...
//
// Robustness properties (all tested in tests/test_net_server.cpp):
//   * Admission control: when the service's bounded queue is full the
//     request is answered with an kOverloaded error frame carrying a
//     retry_after_ms hint — the event loop never blocks on backpressure.
//   * Malformed-frame hardening: undecodable bytes get an error frame and
//     the connection is closed; the server survives arbitrary garbage.
//   * Per-connection timeouts: a stalled partial frame (slow-loris) or a
//     stalled response flush closes the connection after
//     read_timeout_ms / write_timeout_ms.
//   * Deadline shedding: a v2 request carrying deadline_ms is answered
//     with kDeadlineExceeded once its budget expires — range work is shed
//     before execution, knn replies are shed at completion — so a client
//     that already timed out never costs encode/send work ("The Tail at
//     Scale" discipline: finishing a dead request helps nobody).
//   * Graceful drain: stop() — or a write to stop_fd(), which is
//     async-signal-safe and what SIGTERM handlers should use — closes the
//     listener, answers new data frames with kShuttingDown, finishes every
//     in-flight request, flushes outboxes, then drains the service.
//   * Zero-downtime reload: a kReloadRequest loads the index file on a
//     completer thread, builds a fresh SearchService, atomically swaps it
//     in, and drains the old one — queries in flight on the old snapshot
//     finish normally; new arrivals land on the new one. Serving never
//     pauses.
//
// Threading model: one event loop thread owns every socket and all
// connection state; `completers` threads wait on search futures, execute
// range queries and reloads, and hand encoded replies back to the loop
// through a wakeup eventfd. Connection counters (serve/stats.hpp
// ConnCounters) are therefore single-writer by construction.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/index.hpp"
#include "serve/net/protocol.hpp"
#include "serve/service.hpp"
#include "serve/stats.hpp"

namespace rbc::serve::net {

struct ServerOptions {
  std::string host = "127.0.0.1";  ///< bind address
  std::uint16_t port = 0;          ///< 0 = OS-assigned; read back via port()
  int backlog = 128;
  std::uint32_t max_payload = kDefaultMaxPayload;
  /// Close a connection whose partial frame makes no progress for this long.
  std::uint32_t read_timeout_ms = 30'000;
  /// Close a connection whose pending response bytes make no progress for
  /// this long.
  std::uint32_t write_timeout_ms = 30'000;
  /// Hint stamped into kOverloaded error frames.
  std::uint32_t retry_after_ms = 50;
  /// Completer threads (future waiters / range executors / reload workers).
  int completers = 2;
  std::size_t max_connections = 1024;
};

/// Aggregate server counters (wire-level; the query-level counters live in
/// the SearchService's ServiceStats).
struct NetServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t timeouts = 0;         ///< connections closed by a timeout
  std::uint64_t protocol_errors = 0;  ///< malformed frames seen
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t requests = 0;  ///< data frames admitted to the service
  std::uint64_t rejected = 0;  ///< frames refused by admission control
  std::uint64_t reloads = 0;   ///< successful index reloads
  /// Requests shed because their deadline_ms budget expired before the
  /// reply could be sent (answered with kDeadlineExceeded).
  std::uint64_t deadline_exceeded = 0;
  /// accept4 failed with fd/buffer exhaustion (EMFILE/ENFILE/ENOBUFS/
  /// ENOMEM); the listener backs off briefly when this happens.
  std::uint64_t accept_failures = 0;
  std::size_t connections_open = 0;
};

class RbcServer {
 public:
  /// Takes ownership of a *built* index, wraps it in a SearchService with
  /// `service_options`, binds and listens, and starts the event loop.
  /// Throws std::system_error on socket failures and the SearchService's
  /// std::invalid_argument for a null/unbuilt index.
  explicit RbcServer(std::unique_ptr<Index> index, ServerOptions options = {},
                     ServiceOptions service_options = {});

  /// Equivalent to stop().
  ~RbcServer();

  RbcServer(const RbcServer&) = delete;
  RbcServer& operator=(const RbcServer&) = delete;

  /// The bound port (the OS-assigned one when options.port was 0).
  std::uint16_t port() const { return port_; }

  /// An eventfd; writing any 8-byte value requests a graceful drain.
  /// write() is async-signal-safe, so SIGTERM/SIGINT handlers may use this
  /// directly (see examples/serve_demo.cpp).
  int stop_fd() const { return stop_event_fd_; }

  /// Blocks until the event loop has fully drained and exited (either via
  /// stop() or a stop_fd() write). Does not itself request the stop.
  void wait();

  /// Requests a graceful drain and joins every thread. Idempotent and
  /// callable from any (non-signal) context.
  void stop();

  /// Wire-level counter snapshot. Thread-safe, callable any time.
  NetServerStats stats() const;

  /// The current service snapshot (swaps on reload). Never null.
  std::shared_ptr<SearchService> service() const;

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> in;  // unparsed bytes; consumed from in_off
    std::size_t in_off = 0;
    std::deque<std::vector<std::uint8_t>> out;
    std::size_t out_off = 0;  // progress into out.front()
    bool want_write = false;  // EPOLLOUT currently registered
    bool closing = false;     // flush outbox, then close
    // Fatal socket error seen by flush(). flush() never destroys the
    // connection itself — frames up the stack may still hold it by
    // reference — so it sets this flag and the top-level call sites
    // (event loop / conn_readable / drain_replies) close via
    // should_close().
    bool dead = false;
    std::chrono::steady_clock::time_point read_progress;
    std::chrono::steady_clock::time_point write_progress;
    ConnCounters counters;
  };

  // A reply produced off-loop (completer threads), routed back by conn id —
  // the connection may be gone by delivery time, in which case it's dropped.
  struct Reply {
    std::uint64_t conn_id = 0;
    std::vector<std::uint8_t> frame;
    bool in_flight_done = false;  // decrements the drain counter
  };

  void event_loop();
  void accept_ready();
  void conn_readable(Connection& conn);
  void conn_writable(Connection& conn);
  // Handles one complete frame; returns false when the connection must
  // close (unrecoverable framing error).
  bool handle_frame(Connection& conn, const FrameHeader& header,
                    std::span<const std::uint8_t> payload);
  void send_reply(Connection& conn, std::vector<std::uint8_t> frame);
  void send_error(Connection& conn, std::uint64_t request_id, ErrorCode code,
                  const std::string& message,
                  std::uint8_t version = kNetVersion);
  // Writes out as much of the outbox as the socket accepts. Never calls
  // close_conn(): on a fatal send error it marks the connection dead and
  // returns, leaving destruction to the top-level caller (see
  // Connection::dead).
  void flush(Connection& conn);
  // True when the connection must be destroyed: a fatal socket error, or a
  // flush-close whose outbox has fully drained.
  static bool should_close(const Connection& conn) {
    return conn.dead || (conn.closing && conn.out.empty());
  }
  void close_conn(std::uint64_t conn_id, bool timed_out);
  void sweep_timeouts();
  void drain_replies();
  void update_epoll(Connection& conn);

  // Completer-side helpers.
  void post_task(std::function<void()> task);
  void completer_loop();
  void post_reply(std::uint64_t conn_id, std::vector<std::uint8_t> frame,
                  bool in_flight_done);
  InfoMsg make_info(const Connection& conn) const;

  // Deadline helpers: a v2 request's deadline_ms (remaining budget at send
  // time, 0 = none) becomes an absolute steady_clock point at decode.
  static std::optional<std::chrono::steady_clock::time_point>
  request_deadline(std::uint32_t deadline_ms) {
    if (deadline_ms == 0) return std::nullopt;
    return std::chrono::steady_clock::now() +
           std::chrono::milliseconds(deadline_ms);
  }
  // Counts the shed and encodes the kDeadlineExceeded reply (thread-safe;
  // called from completer threads).
  std::vector<std::uint8_t> deadline_error(std::uint64_t request_id,
                                           std::uint8_t version);

  ServerOptions options_;
  ServiceOptions service_options_;
  std::uint16_t port_ = 0;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int stop_event_fd_ = -1;   // external stop requests (signal-safe)
  int wake_event_fd_ = -1;   // completer -> loop reply notifications

  mutable std::mutex service_mutex_;
  std::shared_ptr<SearchService> service_;

  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  // epoll events carry the connection id in data.u64; ids 0..2 are reserved
  // as the listen/stop/wake sentinel tags, so real connections start above.
  std::uint64_t next_conn_id_ = 3;
  std::uint64_t in_flight_ = 0;  // admitted requests not yet answered
  bool draining_ = false;
  // Set when accept4 hit fd/buffer exhaustion: the listener is unregistered
  // from epoll (retrying immediately would busy-spin on the level-triggered
  // fd) and re-armed by the event loop once the deadline passes.
  bool accept_paused_ = false;
  std::chrono::steady_clock::time_point accept_paused_until_{};

  std::mutex replies_mutex_;
  std::vector<Reply> replies_;

  std::mutex tasks_mutex_;
  std::condition_variable tasks_cv_;
  std::deque<std::function<void()>> tasks_;
  bool tasks_stop_ = false;

  mutable std::mutex stats_mutex_;
  NetServerStats stats_;

  std::mutex lifecycle_mutex_;  // serializes stop() (incl. the destructor)
  bool loop_done_ = false;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;

  std::thread loop_thread_;
  std::vector<std::thread> completer_threads_;
};

}  // namespace rbc::serve::net
