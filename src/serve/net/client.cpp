#include "serve/net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace rbc::serve::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Sentinel for "no deadline": poll() blocks indefinitely.
constexpr Clock::time_point kNoDeadline = Clock::time_point::min();

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("rbc::net::RbcClient: " + what + " (" +
                           std::strerror(errno) + ")");
}

/// Remaining milliseconds until `deadline` as a poll() timeout argument:
/// -1 for unbounded, clamped at 0 once past due.
int poll_timeout(Clock::time_point deadline) {
  if (deadline == kNoDeadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::max<std::int64_t>(0, left.count()));
}

}  // namespace

RbcClient::RbcClient(const std::string& host, std::uint16_t port,
                     ClientOptions options)
    : options_(options) {
  // Non-blocking from birth: connect() below returns EINPROGRESS and the
  // poll bounds the handshake by timeout_ms, so a blackholed endpoint
  // (filtered port, dead host) fails fast instead of riding out the
  // kernel's minutes-long SYN retry schedule. The socket then stays
  // non-blocking; all later waits go through poll() with per-call budgets.
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd_ < 0) fail("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd_);
    fd_ = -1;
    throw std::runtime_error("rbc::net::RbcClient: bad address '" + host +
                             "' (numeric IPv4 expected)");
  }

  const std::string where = host + ":" + std::to_string(port);
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 &&
      errno != EINPROGRESS) {
    const int saved = errno;
    close(fd_);
    fd_ = -1;
    errno = saved;
    fail("connect to " + where);
  }
  try {
    wait_ready(POLLOUT, call_deadline(0), ("connect to " + where).c_str());
  } catch (...) {
    close(fd_);
    fd_ = -1;
    throw;
  }
  int soerr = 0;
  socklen_t len = sizeof soerr;
  if (getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 || soerr != 0) {
    close(fd_);
    fd_ = -1;
    errno = soerr != 0 ? soerr : errno;
    fail("connect to " + where);
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

RbcClient::~RbcClient() {
  if (fd_ >= 0) close(fd_);
}

RbcClient::RbcClient(RbcClient&& other) noexcept
    : options_(other.options_), fd_(other.fd_),
      next_request_id_(other.next_request_id_), in_(std::move(other.in_)) {
  other.fd_ = -1;
}

Clock::time_point RbcClient::call_deadline(std::uint32_t budget_ms) const {
  std::uint32_t ms = options_.timeout_ms;
  if (budget_ms > 0) ms = ms > 0 ? std::min(ms, budget_ms) : budget_ms;
  if (ms == 0) return kNoDeadline;
  return Clock::now() + std::chrono::milliseconds(ms);
}

void RbcClient::wait_ready(short events, Clock::time_point deadline,
                           const char* what) {
  for (;;) {
    pollfd pfd{fd_, events, 0};
    const int n = poll(&pfd, 1, poll_timeout(deadline));
    if (n > 0) {
      // POLLERR/POLLHUP fall through: the pending recv/send/getsockopt
      // reports the specific error.
      return;
    }
    if (n == 0)
      throw std::runtime_error(std::string("rbc::net::RbcClient: ") + what +
                               " timed out");
    if (errno == EINTR) continue;
    fail(what);
  }
}

void RbcClient::send_all(std::span<const std::uint8_t> bytes,
                         Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(POLLOUT, deadline, "send");
      continue;
    }
    fail("send");
  }
}

void RbcClient::recv_some(Clock::time_point deadline) {
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      in_.insert(in_.end(), chunk, chunk + n);
      return;
    }
    if (n == 0)
      throw std::runtime_error(
          "rbc::net::RbcClient: server closed the connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_ready(POLLIN, deadline, "recv");
      continue;
    }
    fail("recv");
  }
}

RbcClient::Response RbcClient::roundtrip(std::span<const std::uint8_t> frame,
                                         std::uint64_t request_id,
                                         Op expected_op,
                                         std::uint32_t budget_ms) {
  const Clock::time_point deadline = call_deadline(budget_ms);
  send_all(frame, deadline);
  for (;;) {
    const auto header = parse_header(in_, options_.max_payload);
    if (!header || in_.size() < kHeaderSize + header->payload_len) {
      recv_some(deadline);
      continue;
    }
    Response response;
    response.version = header->version;
    response.payload.assign(
        in_.begin() + kHeaderSize,
        in_.begin() + static_cast<std::ptrdiff_t>(kHeaderSize +
                                                  header->payload_len));
    in_.erase(in_.begin(),
              in_.begin() + static_cast<std::ptrdiff_t>(kHeaderSize +
                                                        header->payload_len));
    // A synchronous client never has more than one request outstanding, so
    // a mismatched id means a server bug — fail loudly rather than hang.
    if (header->request_id != request_id)
      throw ProtocolError("rbc::net::RbcClient: response id " +
                          std::to_string(header->request_id) +
                          " does not match request id " +
                          std::to_string(request_id));
    if (header->op == Op::kError) {
      const ErrorMsg error = decode_error(response.payload);
      throw RemoteError(error.code, error.retry_after_ms, error.message);
    }
    if (header->op != expected_op)
      throw ProtocolError("rbc::net::RbcClient: unexpected response opcode " +
                          std::to_string(static_cast<int>(header->op)));
    return response;
  }
}

// Data calls pick the frame version from the deadline: no deadline means a
// version-1 frame byte-identical to the pre-v2 protocol (old servers keep
// working), a deadline needs the v2 layout that carries it. The server
// echoes whatever version it was asked in, so the response decodes under
// response.version either way.

KnnResult RbcClient::knn(const Matrix<float>& queries, index_t k,
                         std::uint32_t deadline_ms) {
  const std::uint64_t id = next_request_id_++;
  const std::uint8_t version =
      deadline_ms > 0 ? kNetVersion : kNetVersionMin;
  Response response =
      roundtrip(encode_knn_request(id, queries, k, deadline_ms, version), id,
                Op::kKnnResponse, deadline_ms);
  return std::move(
      decode_knn_response(response.payload, response.version).result);
}

KnnResult RbcClient::knn_payload(const std::vector<std::string>& queries,
                                 index_t k, std::uint32_t deadline_ms) {
  const std::uint64_t id = next_request_id_++;
  // Payload queries exist only in the v3 layout; there is no older frame to
  // fall back to, so this call always requires a v3 server.
  Response response = roundtrip(
      encode_knn_payload_request(id, queries, k, deadline_ms, kNetVersion),
      id, Op::kKnnResponse, deadline_ms);
  return std::move(
      decode_knn_response(response.payload, response.version).result);
}

std::vector<std::vector<index_t>> RbcClient::range(
    const Matrix<float>& queries, dist_t radius, std::uint32_t deadline_ms) {
  const std::uint64_t id = next_request_id_++;
  const std::uint8_t version =
      deadline_ms > 0 ? kNetVersion : kNetVersionMin;
  Response response = roundtrip(
      encode_range_request(id, queries, radius, deadline_ms, version), id,
      Op::kRangeResponse, deadline_ms);
  return std::move(
      decode_range_response(response.payload, response.version).ids);
}

InfoMsg RbcClient::info() {
  const std::uint64_t id = next_request_id_++;
  // Ask under the current version to receive the v3 tail (cost_unit,
  // metric_cost); the server echoes the request's version, so the response
  // decodes under response.version either way.
  Response response = roundtrip(encode_info_request(id, kNetVersion), id,
                                Op::kInfoResponse, 0);
  return decode_info_response(response.payload, response.version);
}

void RbcClient::reload(const std::string& path) {
  const std::uint64_t id = next_request_id_++;
  roundtrip(encode_reload_request(id, path, kNetVersionMin), id,
            Op::kReloadResponse, 0);
}

}  // namespace rbc::serve::net
