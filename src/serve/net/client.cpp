#include "serve/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rbc::serve::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("rbc::net::RbcClient: " + what + " (" +
                           std::strerror(errno) + ")");
}

}  // namespace

RbcClient::RbcClient(const std::string& host, std::uint16_t port,
                     ClientOptions options)
    : options_(options) {
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) fail("socket");

  if (options_.timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(options_.timeout_ms % 1000) * 1000;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd_);
    fd_ = -1;
    throw std::runtime_error("rbc::net::RbcClient: bad address '" + host +
                             "' (numeric IPv4 expected)");
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    close(fd_);
    fd_ = -1;
    errno = saved;
    fail("connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

RbcClient::~RbcClient() {
  if (fd_ >= 0) close(fd_);
}

RbcClient::RbcClient(RbcClient&& other) noexcept
    : options_(other.options_), fd_(other.fd_),
      next_request_id_(other.next_request_id_), in_(std::move(other.in_)) {
  other.fd_ = -1;
}

void RbcClient::send_all(std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      fail("send timed out");
    fail("send");
  }
}

void RbcClient::recv_some() {
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      in_.insert(in_.end(), chunk, chunk + n);
      return;
    }
    if (n == 0)
      throw std::runtime_error(
          "rbc::net::RbcClient: server closed the connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) fail("recv timed out");
    fail("recv");
  }
}

std::vector<std::uint8_t> RbcClient::roundtrip(
    std::span<const std::uint8_t> frame, std::uint64_t request_id,
    Op expected_op) {
  send_all(frame);
  for (;;) {
    const auto header = parse_header(in_, options_.max_payload);
    if (!header || in_.size() < kHeaderSize + header->payload_len) {
      recv_some();
      continue;
    }
    std::vector<std::uint8_t> payload(
        in_.begin() + kHeaderSize,
        in_.begin() + static_cast<std::ptrdiff_t>(kHeaderSize +
                                                  header->payload_len));
    in_.erase(in_.begin(),
              in_.begin() + static_cast<std::ptrdiff_t>(kHeaderSize +
                                                        header->payload_len));
    // A synchronous client never has more than one request outstanding, so
    // a mismatched id means a server bug — fail loudly rather than hang.
    if (header->request_id != request_id)
      throw ProtocolError("rbc::net::RbcClient: response id " +
                          std::to_string(header->request_id) +
                          " does not match request id " +
                          std::to_string(request_id));
    if (header->op == Op::kError) {
      const ErrorMsg error = decode_error(payload);
      throw RemoteError(error.code, error.retry_after_ms, error.message);
    }
    if (header->op != expected_op)
      throw ProtocolError("rbc::net::RbcClient: unexpected response opcode " +
                          std::to_string(static_cast<int>(header->op)));
    return payload;
  }
}

KnnResult RbcClient::knn(const Matrix<float>& queries, index_t k) {
  const std::uint64_t id = next_request_id_++;
  return decode_knn_response(
      roundtrip(encode_knn_request(id, queries, k), id, Op::kKnnResponse));
}

std::vector<std::vector<index_t>> RbcClient::range(
    const Matrix<float>& queries, dist_t radius) {
  const std::uint64_t id = next_request_id_++;
  return decode_range_response(roundtrip(
      encode_range_request(id, queries, radius), id, Op::kRangeResponse));
}

InfoMsg RbcClient::info() {
  const std::uint64_t id = next_request_id_++;
  return decode_info_response(
      roundtrip(encode_info_request(id), id, Op::kInfoResponse));
}

void RbcClient::reload(const std::string& path) {
  const std::uint64_t id = next_request_id_++;
  roundtrip(encode_reload_request(id, path), id, Op::kReloadResponse);
}

}  // namespace rbc::serve::net
