// Wire protocol of the network serving layer: length-prefixed binary frames
// over a byte stream (TCP), versioned, with explicit error frames.
//
// Every frame is a fixed 20-byte header followed by payload_len payload
// bytes, all little-endian host layout (the same portability stance as the
// index serialization format in rbc/serialize_io.hpp):
//
//   offset  size  field
//        0     4  magic        0x5242434E ("RBCN" in the io-magic style)
//        4     1  version      kNetVersionMin..kNetVersion, per frame
//        5     1  opcode       Op below
//        6     2  flags        reserved, must be 0
//        8     8  request_id   caller-chosen, echoed on the response
//       16     4  payload_len  payload bytes following the header
//
// Versioning is per-frame, not per-connection: there is no handshake. A
// peer that never uses the v2 features emits byte-identical v1 frames, so
// new clients interoperate with old servers (and vice versa) without
// negotiation. A server echoes the request's version on its response so
// each side only ever parses layouts it asked for. Version 2 adds:
//   * deadline_ms on knn/range requests — the caller's remaining latency
//     budget in milliseconds (0 = none); servers shed work past it and
//     answer kError{kDeadlineExceeded}.
//   * a shard-coverage trailer on knn/range responses — {covered, total}
//     shard counts backing the answer, so routers can report partial
//     results instead of failing closed. A single-shard server reports
//     {1, 1}.
// Version 3 adds:
//   * kKnnPayloadRequest — length-prefixed payload queries (strings under
//     "edit", 8-byte node ids under "graph-sp", ...) against a
//     payload-built index (src/metricspace/). Answered by an ordinary
//     kKnnResponse; v3 frames only (a v1/v2 frame with this opcode is
//     malformed).
//   * cost_unit + metric_cost on kInfoResponse — the per-metric work
//     counter of payload indexes (IndexInfo::cost_unit names the unit).
//     Absent from v1/v2 info frames.
//
// Codec hardening is first-class: every decode validates claimed counts
// against the bytes actually present *before* allocating (the same
// discipline io::require_bytes applies to index files), rejects frames whose
// payload disagrees with its own length field, and bounds row/dim/k counts
// so a garbage frame can never drive a giant allocation. Malformed input
// throws ProtocolError — the server answers with an error frame and drops
// the connection; it never crashes.
//
// Request/response pairs (client -> server unless noted; [v2] fields are
// absent from version-1 frames):
//   kKnnRequest   {k, [v2] deadline_ms, nq, dim, rows}
//       -> kKnnResponse {nq, k, ids, dists, [v2] covered, total}
//   kKnnPayloadRequest [v3] {k, deadline_ms, nq, nq x (len, bytes)}
//       -> kKnnResponse (same layout as above)
//   kRangeRequest {radius, [v2] deadline_ms, nq, dim, rows}
//       -> kRangeResponse {per-query ids, [v2] covered, total}
//   kInfoRequest  {}                        -> kInfoResponse {InfoMsg}
//   kReloadRequest {path}                   -> kReloadResponse {}
//   any request may instead be answered by kError {code, retry_after, text}
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bruteforce/bf.hpp"
#include "common/matrix.hpp"
#include "common/types.hpp"

namespace rbc::serve::net {

inline constexpr std::uint32_t kNetMagic = 0x5242434E;  // "RBCN"
inline constexpr std::uint8_t kNetVersion = 3;
inline constexpr std::uint8_t kNetVersionMin = 1;
inline constexpr std::size_t kHeaderSize = 20;

/// Default ceiling on a frame's payload. A query block of 1M rows x 64 dims
/// fits; anything larger should be split by the caller.
inline constexpr std::uint32_t kDefaultMaxPayload = 256u << 20;

// Plausibility caps applied by the decoders before any allocation: a frame
// whose counts exceed these is malformed by definition (and, combined with
// the count-vs-payload checks, they make decode allocation proportional to
// bytes actually received, never to claimed sizes).
inline constexpr std::uint32_t kMaxRowsPerFrame = 1u << 20;
inline constexpr std::uint32_t kMaxDimPerFrame = 1u << 16;
inline constexpr std::uint32_t kMaxKPerFrame = 1u << 20;
inline constexpr std::uint32_t kMaxStringLen = 1u << 16;

enum class Op : std::uint8_t {
  kKnnRequest = 1,
  kKnnResponse = 2,
  kRangeRequest = 3,
  kRangeResponse = 4,
  kInfoRequest = 5,
  kInfoResponse = 6,
  kReloadRequest = 7,
  kReloadResponse = 8,
  kError = 9,
  kKnnPayloadRequest = 10,  ///< v3: payload queries; answered by kKnnResponse
};

/// Machine-readable failure classes carried by kError frames.
enum class ErrorCode : std::uint16_t {
  kBadRequest = 1,        ///< request invalid for this index (dim/k mismatch)
  kOverloaded = 2,        ///< admission queue full; honor retry_after_ms
  kShuttingDown = 3,      ///< server draining; reconnect elsewhere/later
  kInternal = 4,          ///< backend failure while executing the request
  kMalformedFrame = 5,    ///< undecodable payload; connection will close
  kDeadlineExceeded = 6,  ///< v2: request's deadline_ms budget expired
};

/// Thrown by every decoder on malformed input (truncation, garbage counts,
/// trailing bytes, cap violations). Deliberately a std::runtime_error
/// subclass: network corruption is the same failure class as file
/// corruption (rbc::io), not a caller bug.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FrameHeader {
  std::uint8_t version = kNetVersion;
  Op op = Op::kError;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
};

/// Parses a frame header from the front of `bytes`. Returns nullopt when
/// fewer than kHeaderSize bytes are available (caller: read more). Throws
/// ProtocolError on bad magic, a version outside
/// [kNetVersionMin, kNetVersion], unknown opcode, nonzero flags, or a
/// payload_len over `max_payload` — all conditions where the byte stream
/// cannot be resynchronized and the connection must close.
std::optional<FrameHeader> parse_header(
    std::span<const std::uint8_t> bytes,
    std::uint32_t max_payload = kDefaultMaxPayload);

/// One complete frame: header + payload, ready to write to a socket.
/// `version` is stamped into the header byte; the payload must have been
/// encoded under the same version.
std::vector<std::uint8_t> encode_frame(Op op, std::uint64_t request_id,
                                       std::span<const std::uint8_t> payload,
                                       std::uint8_t version = kNetVersion);

// ------------------------------------------------------------- messages ---

struct KnnRequestMsg {
  index_t k = 0;
  std::uint32_t deadline_ms = 0;  ///< v2: remaining budget; 0 = no deadline
  Matrix<float> queries;
};

/// v3: payload queries against a payload-built index. The codec bounds each
/// query at kMaxStringLen bytes (matching metricspace's kMaxPayloadBytes
/// dataset cap) and validates per-query lengths against the bytes actually
/// present before allocating.
struct KnnPayloadRequestMsg {
  index_t k = 0;
  std::uint32_t deadline_ms = 0;  ///< remaining budget; 0 = no deadline
  std::vector<std::string> queries;
};

struct RangeRequestMsg {
  dist_t radius = 0.0f;
  std::uint32_t deadline_ms = 0;  ///< v2: remaining budget; 0 = no deadline
  Matrix<float> queries;
};

/// v2 response trailer: how many of the shards behind this answer actually
/// contributed. A single-process server is its own single shard ({1, 1});
/// a router in allow_partial mode may forward covered < total. Version-1
/// responses carry no trailer and decode as full coverage.
struct Coverage {
  std::uint32_t covered = 1;
  std::uint32_t total = 1;

  bool full() const { return covered == total; }
  friend bool operator==(const Coverage&, const Coverage&) = default;
};

struct KnnResponseMsg {
  KnnResult result{0, 0};
  Coverage coverage;
};

struct RangeResponseMsg {
  std::vector<std::vector<index_t>> ids;
  Coverage coverage;
};

struct ErrorMsg {
  ErrorCode code = ErrorCode::kInternal;
  std::uint32_t retry_after_ms = 0;  ///< meaningful for kOverloaded
  std::string message;
};

/// INFO response: index identity plus service-level and per-connection
/// serving counters (the per-connection half of serve/stats.hpp's
/// ConnCounters, as observed for the asking connection).
struct InfoMsg {
  std::string backend;
  std::string metric;
  std::uint32_t size = 0;
  std::uint32_t dim = 0;
  std::uint64_t completed = 0;  ///< service-lifetime queries completed
  std::uint64_t rejected = 0;   ///< service-lifetime admission rejections
  double p50_ms = 0.0;          ///< service latency percentiles
  double p99_ms = 0.0;
  std::uint64_t conn_requests = 0;  ///< this connection's admitted frames
  std::uint64_t conn_rejected = 0;  ///< this connection's rejections
  std::uint64_t conn_bytes_in = 0;
  std::uint64_t conn_bytes_out = 0;
  /// v3: per-metric work accounting of payload indexes. cost_unit names
  /// the unit ("chars_compared", "edges_relaxed"; empty for dense indexes),
  /// metric_cost is the service-lifetime total. Absent from v1/v2 frames
  /// (decode leaves the defaults).
  std::string cost_unit;
  std::uint64_t metric_cost = 0;
};

// Encoders return a complete frame (header included). Decoders take the
// payload alone (header already parsed/validated) plus the header's version
// byte, and throw ProtocolError on any inconsistency, including unconsumed
// trailing bytes. Encoding under version 1 emits frames byte-identical to
// the pre-v2 protocol (and therefore cannot carry a deadline or a partial
// coverage trailer).

std::vector<std::uint8_t> encode_knn_request(std::uint64_t request_id,
                                             const Matrix<float>& queries,
                                             index_t k,
                                             std::uint32_t deadline_ms = 0,
                                             std::uint8_t version =
                                                 kNetVersion);
KnnRequestMsg decode_knn_request(std::span<const std::uint8_t> payload,
                                 std::uint8_t version = kNetVersion);

std::vector<std::uint8_t> encode_knn_response(std::uint64_t request_id,
                                              const KnnResult& result,
                                              Coverage coverage = {},
                                              std::uint8_t version =
                                                  kNetVersion);
KnnResponseMsg decode_knn_response(std::span<const std::uint8_t> payload,
                                   std::uint8_t version = kNetVersion);

// v3-only: both encoder and decoder throw ProtocolError under version < 3
// (there is no older layout to fall back to — an old server cannot serve
// payload queries at all).
std::vector<std::uint8_t> encode_knn_payload_request(
    std::uint64_t request_id, const std::vector<std::string>& queries,
    index_t k, std::uint32_t deadline_ms = 0,
    std::uint8_t version = kNetVersion);
KnnPayloadRequestMsg decode_knn_payload_request(
    std::span<const std::uint8_t> payload, std::uint8_t version = kNetVersion);

std::vector<std::uint8_t> encode_range_request(std::uint64_t request_id,
                                               const Matrix<float>& queries,
                                               dist_t radius,
                                               std::uint32_t deadline_ms = 0,
                                               std::uint8_t version =
                                                   kNetVersion);
RangeRequestMsg decode_range_request(std::span<const std::uint8_t> payload,
                                     std::uint8_t version = kNetVersion);

std::vector<std::uint8_t> encode_range_response(
    std::uint64_t request_id, const std::vector<std::vector<index_t>>& ids,
    Coverage coverage = {}, std::uint8_t version = kNetVersion);
RangeResponseMsg decode_range_response(std::span<const std::uint8_t> payload,
                                       std::uint8_t version = kNetVersion);

// Reload/error payloads are identical across versions; the version
// parameter only stamps the frame header (a server echoes the request's
// version, a client talking to an old server sends version 1). Info
// responses gained a v3 tail (cost_unit, metric_cost): v1/v2 frames omit
// it, and the decoder leaves the InfoMsg defaults.

std::vector<std::uint8_t> encode_info_request(std::uint64_t request_id,
                                              std::uint8_t version =
                                                  kNetVersion);
std::vector<std::uint8_t> encode_info_response(std::uint64_t request_id,
                                               const InfoMsg& info,
                                               std::uint8_t version =
                                                   kNetVersion);
InfoMsg decode_info_response(std::span<const std::uint8_t> payload,
                             std::uint8_t version = kNetVersion);

std::vector<std::uint8_t> encode_reload_request(std::uint64_t request_id,
                                                const std::string& path,
                                                std::uint8_t version =
                                                    kNetVersion);
std::string decode_reload_request(std::span<const std::uint8_t> payload);
std::vector<std::uint8_t> encode_reload_response(std::uint64_t request_id,
                                                 std::uint8_t version =
                                                     kNetVersion);

std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       const ErrorMsg& error,
                                       std::uint8_t version = kNetVersion);
ErrorMsg decode_error(std::span<const std::uint8_t> payload);

}  // namespace rbc::serve::net
