// RbcClient: blocking client for the RbcServer wire protocol.
//
// One client owns one TCP connection and is intentionally synchronous —
// request, wait, response — because the interesting concurrency lives on
// the server side (many clients' singleton requests coalesce into paper-
// style query blocks there). Concurrency on the client side is "run more
// clients" (see bench/serve_throughput.cpp's closed-loop sweep). A client
// is NOT thread-safe; give each thread its own.
//
//   rbc::serve::net::RbcClient client("127.0.0.1", port);
//   KnnResult r = client.knn(queries, /*k=*/5);
//
// Every blocking point is bounded: connect() is non-blocking + poll under
// options.timeout_ms (a blackholed endpoint fails the constructor instead
// of hanging in SYN retries), and each call's sends/receives share one
// budget — min(options.timeout_ms, the call's deadline_ms) — measured
// against a single absolute deadline, so a server that trickles bytes
// cannot stretch the wait past it.
//
// A nonzero deadline_ms additionally rides the wire (protocol v2): the
// server sheds the request and answers kDeadlineExceeded once the budget
// expires. Calls without a deadline emit version-1 frames byte-identical
// to the pre-v2 protocol, so this client interoperates with old servers as
// long as deadlines stay off.
//
// Server-reported failures surface as RemoteError carrying the protocol
// ErrorCode — notably kOverloaded with a retry_after_ms hint, which callers
// should honor (sleep, retry) rather than hammering a loaded server.
// Transport failures (connect/read/write/timeout) throw std::runtime_error.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/net/protocol.hpp"

namespace rbc::serve::net {

/// A server-side failure, decoded from an kError frame. code() and
/// retry_after_ms() let callers distinguish backpressure (retry later) from
/// real errors (give up).
class RemoteError : public std::runtime_error {
 public:
  RemoteError(ErrorCode code, std::uint32_t retry_after_ms,
              const std::string& message)
      : std::runtime_error(message), code_(code),
        retry_after_ms_(retry_after_ms) {}

  ErrorCode code() const { return code_; }
  std::uint32_t retry_after_ms() const { return retry_after_ms_; }

 private:
  ErrorCode code_;
  std::uint32_t retry_after_ms_;
};

struct ClientOptions {
  /// Budget for connect() and for each call's combined socket waits; any
  /// call stalling past it fails. 0 = no timeout.
  std::uint32_t timeout_ms = 30'000;
  std::uint32_t max_payload = kDefaultMaxPayload;
};

class RbcClient {
 public:
  /// Connects immediately (bounded by options.timeout_ms); throws
  /// std::runtime_error on failure or timeout.
  RbcClient(const std::string& host, std::uint16_t port,
            ClientOptions options = {});
  ~RbcClient();

  RbcClient(const RbcClient&) = delete;
  RbcClient& operator=(const RbcClient&) = delete;
  RbcClient(RbcClient&& other) noexcept;
  RbcClient& operator=(RbcClient&&) = delete;

  /// k nearest neighbors of each query row, ascending (distance, id) —
  /// bit-identical to calling knn_search on the server's index directly
  /// (modulo the service's batching, which does not change answers).
  /// `deadline_ms` > 0 caps the wait AND travels to the server, which sheds
  /// the request past budget (RemoteError{kDeadlineExceeded}).
  KnnResult knn(const Matrix<float>& queries, index_t k,
                std::uint32_t deadline_ms = 0);

  /// Payload-query counterpart of knn() for servers whose index is
  /// payload-built (strings under "edit", 8-byte node ids under
  /// "graph-sp"). Always emits a v3 frame — payload queries have no older
  /// wire layout — so it requires a v3 server. A dense-built server answers
  /// RemoteError{kBadRequest}.
  KnnResult knn_payload(const std::vector<std::string>& queries, index_t k,
                        std::uint32_t deadline_ms = 0);

  /// All database ids within `radius` of each query, ascending by id.
  std::vector<std::vector<index_t>> range(const Matrix<float>& queries,
                                          dist_t radius,
                                          std::uint32_t deadline_ms = 0);

  /// Index identity + serving counters, including this connection's own
  /// ConnCounters as the server sees them.
  InfoMsg info();

  /// Asks the server to hot-swap its index from `path` (a server-side
  /// filesystem path). Returns when the swap is complete.
  void reload(const std::string& path);

 private:
  struct Response {
    std::uint8_t version = kNetVersion;  // decode responses under this
    std::vector<std::uint8_t> payload;
  };

  // Writes one frame, then reads frames until the response for `request_id`
  // arrives; decodes kError into RemoteError. `budget_ms` bounds the whole
  // exchange (0 = options.timeout_ms alone applies).
  Response roundtrip(std::span<const std::uint8_t> frame,
                     std::uint64_t request_id, Op expected_op,
                     std::uint32_t budget_ms);
  // The call-level budget: min of the option timeout and the request
  // deadline (0 entries ignored), as an absolute poll deadline. Negative
  // steady_clock::time_point is the "unbounded" sentinel.
  std::chrono::steady_clock::time_point call_deadline(
      std::uint32_t budget_ms) const;
  void send_all(std::span<const std::uint8_t> bytes,
                std::chrono::steady_clock::time_point deadline);
  void recv_some(std::chrono::steady_clock::time_point deadline);
  // poll() for `events` until the deadline; throws on timeout/error.
  void wait_ready(short events,
                  std::chrono::steady_clock::time_point deadline,
                  const char* what);

  ClientOptions options_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::uint8_t> in_;  // buffered unparsed bytes
};

}  // namespace rbc::serve::net
