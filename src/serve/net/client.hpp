// RbcClient: blocking client for the RbcServer wire protocol.
//
// One client owns one TCP connection and is intentionally synchronous —
// request, wait, response — because the interesting concurrency lives on
// the server side (many clients' singleton requests coalesce into paper-
// style query blocks there). Concurrency on the client side is "run more
// clients" (see bench/serve_throughput.cpp's closed-loop sweep). A client
// is NOT thread-safe; give each thread its own.
//
//   rbc::serve::net::RbcClient client("127.0.0.1", port);
//   KnnResult r = client.knn(queries, /*k=*/5);
//
// Server-reported failures surface as RemoteError carrying the protocol
// ErrorCode — notably kOverloaded with a retry_after_ms hint, which callers
// should honor (sleep, retry) rather than hammering a loaded server.
// Transport failures (connect/read/write/timeout) throw std::runtime_error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/net/protocol.hpp"

namespace rbc::serve::net {

/// A server-side failure, decoded from an kError frame. code() and
/// retry_after_ms() let callers distinguish backpressure (retry later) from
/// real errors (give up).
class RemoteError : public std::runtime_error {
 public:
  RemoteError(ErrorCode code, std::uint32_t retry_after_ms,
              const std::string& message)
      : std::runtime_error(message), code_(code),
        retry_after_ms_(retry_after_ms) {}

  ErrorCode code() const { return code_; }
  std::uint32_t retry_after_ms() const { return retry_after_ms_; }

 private:
  ErrorCode code_;
  std::uint32_t retry_after_ms_;
};

struct ClientOptions {
  /// SO_RCVTIMEO / SO_SNDTIMEO on the socket: any single read/write stalling
  /// this long fails the call. 0 = no timeout.
  std::uint32_t timeout_ms = 30'000;
  std::uint32_t max_payload = kDefaultMaxPayload;
};

class RbcClient {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  RbcClient(const std::string& host, std::uint16_t port,
            ClientOptions options = {});
  ~RbcClient();

  RbcClient(const RbcClient&) = delete;
  RbcClient& operator=(const RbcClient&) = delete;
  RbcClient(RbcClient&& other) noexcept;
  RbcClient& operator=(RbcClient&&) = delete;

  /// k nearest neighbors of each query row, ascending (distance, id) —
  /// bit-identical to calling knn_search on the server's index directly
  /// (modulo the service's batching, which does not change answers).
  KnnResult knn(const Matrix<float>& queries, index_t k);

  /// All database ids within `radius` of each query, ascending by id.
  std::vector<std::vector<index_t>> range(const Matrix<float>& queries,
                                          dist_t radius);

  /// Index identity + serving counters, including this connection's own
  /// ConnCounters as the server sees them.
  InfoMsg info();

  /// Asks the server to hot-swap its index from `path` (a server-side
  /// filesystem path). Returns when the swap is complete.
  void reload(const std::string& path);

 private:
  // Writes one frame, then reads frames until the response for `request_id`
  // arrives; decodes kError into RemoteError.
  std::vector<std::uint8_t> roundtrip(std::span<const std::uint8_t> frame,
                                      std::uint64_t request_id,
                                      Op expected_op);
  void send_all(std::span<const std::uint8_t> bytes);
  void recv_some();

  ClientOptions options_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::uint8_t> in_;  // buffered unparsed bytes
};

}  // namespace rbc::serve::net
