#include "serve/net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <future>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "api/registry.hpp"

namespace rbc::serve::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(),
                          std::string("rbc::net::RbcServer: ") + what);
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

}  // namespace

RbcServer::RbcServer(std::unique_ptr<Index> index, ServerOptions options,
                     ServiceOptions service_options)
    : options_(options), service_options_(service_options) {
  if (options_.completers < 1) options_.completers = 1;
  service_ =
      std::make_shared<SearchService>(std::move(index), service_options_);

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    throw std::invalid_argument("rbc::net::RbcServer: bad bind address '" +
                                options_.host + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    close(listen_fd_);
    errno = saved;
    throw_errno("bind");
  }
  if (listen(listen_fd_, options_.backlog) < 0) {
    const int saved = errno;
    close(listen_fd_);
    errno = saved;
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  stop_event_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  wake_event_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);

  // No threads are running yet, and a throwing constructor skips the
  // destructor — close whatever was created before propagating.
  auto fail = [this](const char* what) {
    const int saved = errno;
    for (int* fd : {&listen_fd_, &epoll_fd_, &stop_event_fd_, &wake_event_fd_})
      if (*fd >= 0) {
        close(*fd);
        *fd = -1;
      }
    errno = saved;
    throw_errno(what);
  };
  if (epoll_fd_ < 0 || stop_event_fd_ < 0 || wake_event_fd_ < 0)
    fail("epoll_create1/eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // listen fd sentinel
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0)
    fail("epoll_ctl(ADD listen fd)");
  ev.data.u64 = 1;  // stop eventfd sentinel
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, stop_event_fd_, &ev) < 0)
    fail("epoll_ctl(ADD stop eventfd)");
  ev.data.u64 = 2;  // wake eventfd sentinel
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_event_fd_, &ev) < 0)
    fail("epoll_ctl(ADD wake eventfd)");

  completer_threads_.reserve(static_cast<std::size_t>(options_.completers));
  for (int c = 0; c < options_.completers; ++c)
    completer_threads_.emplace_back([this] { completer_loop(); });
  loop_thread_ = std::thread([this] { event_loop(); });
}

RbcServer::~RbcServer() {
  stop();
  // All threads are joined once stop() returns, so no signal handler race
  // remains within the object's lifetime: the eventfd can finally go.
  if (stop_event_fd_ >= 0) {
    close(stop_event_fd_);
    stop_event_fd_ = -1;
  }
}

std::shared_ptr<SearchService> RbcServer::service() const {
  std::lock_guard<std::mutex> lock(service_mutex_);
  return service_;
}

NetServerStats RbcServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void RbcServer::wait() {
  std::unique_lock<std::mutex> lock(done_mutex_);
  done_cv_.wait(lock, [this] { return loop_done_; });
}

void RbcServer::stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (loop_thread_.joinable()) {
    const std::uint64_t one = 1;
    // A full pipe is impossible for an eventfd counter; ignore the result
    // (the loop may already be exiting).
    [[maybe_unused]] ssize_t n = write(stop_event_fd_, &one, sizeof one);
    loop_thread_.join();
  }
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_stop_ = true;
  }
  tasks_cv_.notify_all();
  for (std::thread& t : completer_threads_)
    if (t.joinable()) t.join();
  completer_threads_.clear();
  if (listen_fd_ >= 0) { close(listen_fd_); listen_fd_ = -1; }
  if (epoll_fd_ >= 0) { close(epoll_fd_); epoll_fd_ = -1; }
  if (wake_event_fd_ >= 0) { close(wake_event_fd_); wake_event_fd_ = -1; }
  // stop_event_fd_ stays open until destruction: a signal handler may still
  // hold the fd value (writes to it are harmless once the loop exited). The
  // destructor closes it after this returns.
}

// ------------------------------------------------------------ event loop ---

void RbcServer::event_loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool stop_requested = false;

  for (;;) {
    // Exit once draining and nothing is left to deliver: no admitted
    // request is unanswered and every outbox has flushed (connections with
    // pending bytes are bounded by the write timeout).
    if (stop_requested && draining_) {
      bool outboxes_empty = true;
      for (const auto& [id, conn] : conns_)
        if (!conn->out.empty()) outboxes_empty = false;
      if (in_flight_ == 0 && outboxes_empty) break;
    }

    // Re-arm a listener paused by fd exhaustion once the backoff elapsed
    // (the 100ms epoll timeout bounds how long the pause can overshoot).
    if (accept_paused_ && listen_fd_ >= 0 &&
        std::chrono::steady_clock::now() >= accept_paused_until_) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = 0;
      if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0)
        accept_paused_ = false;
    }

    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable; shut down
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        accept_ready();
      } else if (tag == 1) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            read(stop_event_fd_, &drained, sizeof drained);
        stop_requested = true;
        if (!draining_) {
          draining_ = true;
          // Close the front door; everything already accepted finishes.
          epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          close(listen_fd_);
          listen_fd_ = -1;
        }
      } else if (tag == 2) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            read(wake_event_fd_, &drained, sizeof drained);
        drain_replies();
      } else {
        auto it = conns_.find(tag);
        if (it == conns_.end()) continue;  // closed earlier this wakeup
        Connection& conn = *it->second;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          close_conn(conn.id, /*timed_out=*/false);
          continue;
        }
        if (events[i].events & EPOLLOUT) conn_writable(conn);
        // conn_writable may close on fatal write errors — re-check.
        if (conns_.find(tag) == conns_.end()) continue;
        if (events[i].events & EPOLLIN) conn_readable(conn);
      }
    }
    drain_replies();
    sweep_timeouts();
  }

  // Drain leftovers: answer nothing further, drop pending replies, close
  // every connection, and let the service finish anything still queued.
  drain_replies();
  std::vector<std::uint64_t> open;
  open.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) open.push_back(id);
  for (std::uint64_t id : open) close_conn(id, /*timed_out=*/false);

  std::shared_ptr<SearchService> svc = service();
  svc->drain();
  svc->stop();

  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    loop_done_ = true;
  }
  done_cv_.notify_all();
}

void RbcServer::accept_ready() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // The peer aborted between queueing and accept: not our exhaustion,
      // keep draining the backlog.
      if (errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of fds/buffers: accepting cannot succeed until something
        // frees up, and the level-triggered listen fd would wake the loop
        // immediately again. Unregister it and let the event loop re-arm
        // after a short backoff.
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.accept_failures += 1;
        }
        epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        accept_paused_ = true;
        accept_paused_until_ =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
        return;
      }
      return;  // EAGAIN/EWOULDBLOCK: backlog drained
    }
    if (conns_.size() >= options_.max_connections) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->read_progress = conn->write_progress =
        std::chrono::steady_clock::now();

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      close(fd);
      continue;
    }
    conns_.emplace(conn->id, std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.connections_accepted += 1;
    stats_.connections_open = conns_.size();
  }
}

void RbcServer::conn_readable(Connection& conn) {
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = recv(conn.fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      conn.in.insert(conn.in.end(), chunk, chunk + n);
      conn.read_progress = std::chrono::steady_clock::now();
      conn.counters.bytes_in += static_cast<std::uint64_t>(n);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.bytes_in += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n == 0) {  // peer closed
      close_conn(conn.id, /*timed_out=*/false);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(conn.id, /*timed_out=*/false);
    return;
  }

  // Extract complete frames. A framing error (bad magic/version/oversize)
  // is unrecoverable on a byte stream: answer with one error frame and
  // flush-close. A send failure inside handle_frame marks the connection
  // dead (never frees it — we hold `conn` across iterations), ending the
  // loop.
  while (!conn.closing && !conn.dead) {
    const std::span<const std::uint8_t> avail(conn.in.data() + conn.in_off,
                                              conn.in.size() - conn.in_off);
    FrameHeader header;
    try {
      const auto parsed = parse_header(avail, options_.max_payload);
      if (!parsed) break;  // need more bytes
      header = *parsed;
    } catch (const ProtocolError& e) {
      conn.counters.errors += 1;
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.protocol_errors += 1;
      }
      // The header never parsed, so the peer's version is unknown: answer
      // under the oldest version — every peer can decode it.
      send_reply(conn,
                 encode_error(0, {ErrorCode::kMalformedFrame, 0, e.what()},
                              kNetVersionMin));
      conn.closing = true;
      break;
    }
    if (avail.size() < kHeaderSize + header.payload_len) break;  // partial
    conn.in_off += kHeaderSize;
    const std::span<const std::uint8_t> payload(conn.in.data() + conn.in_off,
                                                header.payload_len);
    conn.in_off += header.payload_len;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.frames_in += 1;
    }
    if (!handle_frame(conn, header, payload)) {
      conn.closing = true;
      break;
    }
  }

  // Compact the consumed prefix once it dominates the buffer.
  if (conn.in_off == conn.in.size()) {
    conn.in.clear();
    conn.in_off = 0;
  } else if (conn.in_off > (1u << 20)) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(conn.in_off));
    conn.in_off = 0;
  }

  if (should_close(conn)) close_conn(conn.id, /*timed_out=*/false);
}

bool RbcServer::handle_frame(Connection& conn, const FrameHeader& header,
                             std::span<const std::uint8_t> payload) {
  const std::uint64_t id = header.request_id;
  const std::uint64_t conn_id = conn.id;
  // Responses are encoded under the request's version: a v1 peer never
  // sees a v2 layout (or the v2-only kDeadlineExceeded code), a v2 peer
  // gets the coverage trailer it expects.
  const std::uint8_t version = header.version;
  std::shared_ptr<SearchService> svc = service();

  try {
    switch (header.op) {
      case Op::kKnnRequest: {
        KnnRequestMsg msg = decode_knn_request(payload, version);
        if (draining_) {
          send_error(conn, id, ErrorCode::kShuttingDown, "server draining",
                     version);
          return true;
        }
        std::future<KnnResult> future;
        const Admission admission =
            svc->try_submit_batch(msg.queries, msg.k, future);
        if (admission == Admission::kOverloaded) {
          conn.counters.rejected += 1;
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            stats_.rejected += 1;
          }
          send_reply(conn, encode_error(id,
                                        {ErrorCode::kOverloaded,
                                         options_.retry_after_ms,
                                         "admission queue full"},
                                        version));
          return true;
        }
        if (admission == Admission::kStopped) {
          send_error(conn, id, ErrorCode::kShuttingDown, "service stopped",
                     version);
          return true;
        }
        conn.counters.requests += 1;
        in_flight_ += 1;
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.requests += 1;
        }
        const auto deadline = request_deadline(msg.deadline_ms);
        // shared_ptr because std::function requires a copyable target and
        // futures are move-only.
        auto shared_future =
            std::make_shared<std::future<KnnResult>>(std::move(future));
        post_task([this, conn_id, id, version, deadline, shared_future] {
          std::vector<std::uint8_t> frame;
          try {
            KnnResult result = shared_future->get();
            // Shed at completion: the dispatcher already ran the batch (it
            // cannot un-coalesce one member), but a peer past its budget
            // has stopped listening — tell it so instead of shipping a
            // payload it will discard.
            if (deadline && std::chrono::steady_clock::now() > *deadline)
              frame = deadline_error(id, version);
            else
              frame = encode_knn_response(id, result, {1, 1}, version);
          } catch (const std::exception& e) {
            frame = encode_error(id, {ErrorCode::kInternal, 0, e.what()},
                                 version);
          }
          post_reply(conn_id, std::move(frame), /*in_flight_done=*/true);
        });
        return true;
      }

      case Op::kKnnPayloadRequest: {
        // v3 payload queries. The service's payload validator rejects this
        // on a dense-built index with invalid_argument -> kBadRequest below;
        // the admission/deadline/coverage handling mirrors kKnnRequest
        // exactly (the response is an ordinary kKnnResponse).
        KnnPayloadRequestMsg msg = decode_knn_payload_request(payload,
                                                              version);
        if (draining_) {
          send_error(conn, id, ErrorCode::kShuttingDown, "server draining",
                     version);
          return true;
        }
        std::future<KnnResult> future;
        const Admission admission =
            svc->try_submit_payload_batch(msg.queries, msg.k, future);
        if (admission == Admission::kOverloaded) {
          conn.counters.rejected += 1;
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            stats_.rejected += 1;
          }
          send_reply(conn, encode_error(id,
                                        {ErrorCode::kOverloaded,
                                         options_.retry_after_ms,
                                         "admission queue full"},
                                        version));
          return true;
        }
        if (admission == Admission::kStopped) {
          send_error(conn, id, ErrorCode::kShuttingDown, "service stopped",
                     version);
          return true;
        }
        conn.counters.requests += 1;
        in_flight_ += 1;
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.requests += 1;
        }
        const auto deadline = request_deadline(msg.deadline_ms);
        auto shared_future =
            std::make_shared<std::future<KnnResult>>(std::move(future));
        post_task([this, conn_id, id, version, deadline, shared_future] {
          std::vector<std::uint8_t> frame;
          try {
            KnnResult result = shared_future->get();
            if (deadline && std::chrono::steady_clock::now() > *deadline)
              frame = deadline_error(id, version);
            else
              frame = encode_knn_response(id, result, {1, 1}, version);
          } catch (const std::exception& e) {
            frame = encode_error(id, {ErrorCode::kInternal, 0, e.what()},
                                 version);
          }
          post_reply(conn_id, std::move(frame), /*in_flight_done=*/true);
        });
        return true;
      }

      case Op::kRangeRequest: {
        RangeRequestMsg msg = decode_range_request(payload, version);
        if (draining_) {
          send_error(conn, id, ErrorCode::kShuttingDown, "server draining",
                     version);
          return true;
        }
        // Range queries bypass the coalescing dispatcher (no range batch
        // path exists yet); they run directly against the index snapshot on
        // a completer thread. The captured service shared_ptr keeps that
        // snapshot alive across a concurrent reload.
        conn.counters.requests += 1;
        in_flight_ += 1;
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.requests += 1;
        }
        const auto deadline = request_deadline(msg.deadline_ms);
        auto shared_msg =
            std::make_shared<RangeRequestMsg>(std::move(msg));  // Matrix is
                                                                // move-only
        post_task([this, conn_id, id, version, deadline, svc, shared_msg] {
          std::vector<std::uint8_t> frame;
          try {
            // Shed before execution: unlike knn (already coalesced into a
            // batch), the range scan has not started — skipping it frees
            // the completer for requests that can still make their budget.
            if (deadline && std::chrono::steady_clock::now() > *deadline) {
              frame = deadline_error(id, version);
            } else {
              RangeRequest request{.queries = &shared_msg->queries,
                                   .radius = shared_msg->radius,
                                   .options = {}};
              frame = encode_range_response(
                  id, svc->index().range_search(request).ids, {1, 1},
                  version);
            }
          } catch (const std::invalid_argument& e) {
            frame = encode_error(id, {ErrorCode::kBadRequest, 0, e.what()},
                                 version);
          } catch (const std::exception& e) {
            frame = encode_error(id, {ErrorCode::kInternal, 0, e.what()},
                                 version);
          }
          post_reply(conn_id, std::move(frame), /*in_flight_done=*/true);
        });
        return true;
      }

      case Op::kInfoRequest:
        send_reply(conn, encode_info_response(id, make_info(conn), version));
        return true;

      case Op::kReloadRequest: {
        const std::string path = decode_reload_request(payload);
        in_flight_ += 1;
        post_task([this, conn_id, id, version, path] {
          std::vector<std::uint8_t> frame;
          try {
            std::ifstream is(path, std::ios::binary);
            if (!is)
              throw std::runtime_error("cannot open index file '" + path +
                                       "'");
            auto fresh = std::make_shared<SearchService>(rbc::load_index(is),
                                                         service_options_);
            std::shared_ptr<SearchService> old;
            {
              std::lock_guard<std::mutex> lock(service_mutex_);
              old = std::move(service_);
              service_ = std::move(fresh);
            }
            // New arrivals already land on the fresh snapshot; finish
            // whatever the old one accepted, then let it die with the last
            // shared_ptr (completer tasks may still hold one).
            old->drain();
            old->stop();
            {
              std::lock_guard<std::mutex> lock(stats_mutex_);
              stats_.reloads += 1;
            }
            frame = encode_reload_response(id, version);
          } catch (const std::exception& e) {
            frame = encode_error(id, {ErrorCode::kInternal, 0, e.what()},
                                 version);
          }
          post_reply(conn_id, std::move(frame), /*in_flight_done=*/true);
        });
        return true;
      }

      default:
        // A response opcode arriving at the server is a peer bug.
        send_error(conn, id, ErrorCode::kBadRequest,
                   "unexpected response opcode", version);
        return true;
    }
  } catch (const ProtocolError& e) {
    conn.counters.errors += 1;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.protocol_errors += 1;
    }
    send_reply(conn, encode_error(
                         id, {ErrorCode::kMalformedFrame, 0, e.what()},
                         version));
    return false;  // undecodable payload: close after flush
  } catch (const std::invalid_argument& e) {
    // Well-formed frame, invalid request for this index (dim/k mismatch):
    // the connection survives.
    send_error(conn, id, ErrorCode::kBadRequest, e.what(), version);
    return true;
  } catch (const std::exception& e) {
    send_error(conn, id, ErrorCode::kInternal, e.what(), version);
    return true;
  }
}

InfoMsg RbcServer::make_info(const Connection& conn) const {
  std::shared_ptr<SearchService> svc = service();
  const IndexInfo index_info = svc->index().info();
  const ServiceStats service_stats = svc->stats();
  InfoMsg info;
  info.backend = index_info.backend;
  info.metric = index_info.metric;
  info.size = index_info.size;
  info.dim = index_info.dim;
  info.completed = service_stats.completed;
  info.rejected = service_stats.rejected;
  info.p50_ms = service_stats.latency_p50_ms;
  info.p99_ms = service_stats.latency_p99_ms;
  info.conn_requests = conn.counters.requests;
  info.conn_rejected = conn.counters.rejected;
  info.conn_bytes_in = conn.counters.bytes_in;
  info.conn_bytes_out = conn.counters.bytes_out;
  info.cost_unit = index_info.cost_unit;
  info.metric_cost = service_stats.metric_cost;
  return info;
}

void RbcServer::send_error(Connection& conn, std::uint64_t request_id,
                           ErrorCode code, const std::string& message,
                           std::uint8_t version) {
  conn.counters.errors += 1;
  send_reply(conn, encode_error(request_id, {code, 0, message}, version));
}

std::vector<std::uint8_t> RbcServer::deadline_error(std::uint64_t request_id,
                                                    std::uint8_t version) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.deadline_exceeded += 1;
  }
  return encode_error(request_id,
                      {ErrorCode::kDeadlineExceeded, 0,
                       "deadline_ms budget expired before the reply"},
                      version);
}

void RbcServer::send_reply(Connection& conn,
                           std::vector<std::uint8_t> frame) {
  conn.out.push_back(std::move(frame));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.frames_out += 1;
  }
  flush(conn);
}

void RbcServer::flush(Connection& conn) {
  while (!conn.out.empty()) {
    const std::vector<std::uint8_t>& front = conn.out.front();
    const ssize_t n = send(conn.fd, front.data() + conn.out_off,
                           front.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      conn.write_progress = std::chrono::steady_clock::now();
      conn.counters.bytes_out += static_cast<std::uint64_t>(n);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.bytes_out += static_cast<std::uint64_t>(n);
      }
      if (conn.out_off == front.size()) {
        conn.out.pop_front();
        conn.out_off = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Fatal send error (peer reset -> ECONNRESET/EPIPE, ...). Closing here
    // would free the Connection while handle_frame / conn_readable's frame
    // loop still hold it by reference; mark it dead instead and let the
    // top-level call sites destroy it via should_close().
    conn.dead = true;
    conn.out.clear();
    conn.out_off = 0;
    return;
  }
  update_epoll(conn);
}

void RbcServer::conn_writable(Connection& conn) {
  flush(conn);
  if (should_close(conn)) close_conn(conn.id, /*timed_out=*/false);
}

void RbcServer::update_epoll(Connection& conn) {
  const bool want = !conn.out.empty();
  if (want == conn.want_write) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0)
    conn.want_write = want;
}

void RbcServer::close_conn(std::uint64_t conn_id, bool timed_out) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  close(it->second->fd);
  conns_.erase(it);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.connections_closed += 1;
  if (timed_out) stats_.timeouts += 1;
  stats_.connections_open = conns_.size();
}

void RbcServer::sweep_timeouts() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> victims;
  for (const auto& [id, conn] : conns_) {
    const bool partial_frame = conn->in.size() > conn->in_off;
    if (partial_frame &&
        now - conn->read_progress >
            std::chrono::milliseconds(options_.read_timeout_ms))
      victims.push_back(id);
    else if (!conn->out.empty() &&
             now - conn->write_progress >
                 std::chrono::milliseconds(options_.write_timeout_ms))
      victims.push_back(id);
  }
  for (std::uint64_t id : victims) close_conn(id, /*timed_out=*/true);
}

void RbcServer::drain_replies() {
  std::vector<Reply> batch;
  {
    std::lock_guard<std::mutex> lock(replies_mutex_);
    batch.swap(replies_);
  }
  for (Reply& reply : batch) {
    if (reply.in_flight_done) in_flight_ -= 1;
    auto it = conns_.find(reply.conn_id);
    if (it == conns_.end()) continue;  // connection gone: drop the reply
    Connection& conn = *it->second;
    send_reply(conn, std::move(reply.frame));
    if (should_close(conn)) close_conn(conn.id, /*timed_out=*/false);
  }
}

// ------------------------------------------------------------ completers ---

void RbcServer::post_task(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.push_back(std::move(task));
  }
  tasks_cv_.notify_one();
}

void RbcServer::completer_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(tasks_mutex_);
      tasks_cv_.wait(lock, [this] { return tasks_stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // tasks_stop_ and everything ran
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void RbcServer::post_reply(std::uint64_t conn_id,
                           std::vector<std::uint8_t> frame,
                           bool in_flight_done) {
  {
    std::lock_guard<std::mutex> lock(replies_mutex_);
    replies_.push_back({conn_id, std::move(frame), in_flight_done});
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_event_fd_, &one, sizeof one);
}

}  // namespace rbc::serve::net
