#include "serve/stats.hpp"

#include <algorithm>
#include <bit>

#include "common/counters.hpp"

namespace rbc::serve {

namespace {

/// Percentile over an unsorted sample copy (nearest-rank). Snapshot-time
/// only, so the copy + nth_element cost is off the hot path.
double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return samples[rank];
}

std::size_t hist_bucket(std::size_t rows) {
  if (rows == 0) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(rows)) - 1;
  return std::min(b, ServiceStats::kHistBuckets - 1);
}

}  // namespace

StatsRecorder::StatsRecorder()
    : dist_evals_start_(counters::total_dist_evals()),
      metric_cost_start_(counters::total_metric_cost()),
      start_(std::chrono::steady_clock::now()) {
  latency_ring_.reserve(kLatencyWindow);
}

void StatsRecorder::record_submitted(std::size_t queries) {
  std::lock_guard<std::mutex> lock(mutex_);
  base_.submitted += queries;
}

void StatsRecorder::record_rejected(std::size_t queries) {
  std::lock_guard<std::mutex> lock(mutex_);
  base_.rejected += queries;
}

void StatsRecorder::record_batch(std::size_t rows,
                                 const std::vector<double>& latencies_ms,
                                 bool failed) {
  std::lock_guard<std::mutex> lock(mutex_);
  base_.batches += 1;
  base_.batch_hist[hist_bucket(rows)] += 1;
  (failed ? base_.failed : base_.completed) += rows;
  for (double ms : latencies_ms) {
    if (latency_ring_.size() < kLatencyWindow) {
      latency_ring_.push_back(ms);
    } else {
      latency_ring_[ring_next_] = ms;
      ring_next_ = (ring_next_ + 1) % kLatencyWindow;
    }
  }
}

void StatsRecorder::set_queue_depth(std::size_t depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  base_.queue_depth = depth;
  base_.max_queue_depth = std::max(base_.max_queue_depth, depth);
}

ServiceStats StatsRecorder::snapshot() const {
  ServiceStats out;
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = base_;
    window = latency_ring_;
  }
  out.latency_p50_ms = percentile(window, 0.50);
  out.latency_p99_ms = percentile(window, 0.99);
  out.latency_max_ms =
      window.empty() ? 0.0 : *std::max_element(window.begin(), window.end());
  out.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
  out.throughput_qps = out.wall_seconds > 0.0
                           ? static_cast<double>(out.completed) /
                                 out.wall_seconds
                           : 0.0;
  out.dist_evals = counters::total_dist_evals() - dist_evals_start_;
  out.metric_cost = counters::total_metric_cost() - metric_cost_start_;
  return out;
}

}  // namespace rbc::serve
