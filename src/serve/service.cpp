#include "serve/service.hpp"

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "parallel/runtime.hpp"

namespace rbc::serve {

SearchService::SearchService(std::unique_ptr<Index> index,
                             ServiceOptions options)
    : index_(std::move(index)), options_(options) {
  if (!index_)
    throw std::invalid_argument("rbc::serve::SearchService: index is null");
  const IndexInfo info = index_->info();
  dim_ = info.dim;
  db_size_ = info.size;
  metric_ = info.metric;
  payload_ = info.payload;
  if (dim_ == 0 && !payload_)
    throw std::invalid_argument(
        "rbc::serve::SearchService: index is unbuilt (info().dim == 0); "
        "build it before constructing the service");
  if (options_.max_batch < 1) options_.max_batch = 1;
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_queue < 1) options_.max_queue = 1;

  dispatcher_ = std::thread([this] { dispatch_loop(); });
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

SearchService::~SearchService() { stop(); }

void SearchService::validate_submission(index_t nq, index_t cols,
                                        index_t k) const {
  // Same contract as Index::knn_search, but raised synchronously at submit
  // time: a malformed submission is a caller bug, not a backend condition,
  // so it should not cost a queue round-trip to discover.
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("rbc::serve::SearchService: " + what);
  };
  if (payload_ && nq > 0)
    fail("index is payload-built (use submit_payload / "
         "submit_payload_batch)");
  if (cols != dim_ && nq > 0)
    fail("query dimension " + std::to_string(cols) + " != index dimension " +
         std::to_string(dim_));
  if (k == 0) fail("k must be >= 1");
  const index_t db_size = db_size_.load(std::memory_order_relaxed);
  if (k > db_size)
    fail("k = " + std::to_string(k) + " exceeds database size " +
         std::to_string(db_size));
}

void SearchService::validate_payload_submission(index_t nq, index_t k) const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("rbc::serve::SearchService: " + what);
  };
  if (!payload_ && nq > 0)
    fail("index is dense-built (use submit / submit_batch)");
  if (k == 0) fail("k must be >= 1");
  const index_t db_size = db_size_.load(std::memory_order_relaxed);
  if (k > db_size)
    fail("k = " + std::to_string(k) + " exceeds database size " +
         std::to_string(db_size));
}

void SearchService::insert(const Matrix<float>& rows,
                           std::span<const index_t> ids) {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  index_->insert(rows, ids);  // the index's own locking orders this
                              // against in-flight worker searches
  db_size_.store(index_->info().size, std::memory_order_relaxed);
}

index_t SearchService::remove(std::span<const index_t> ids) {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  const index_t removed = index_->remove(ids);
  db_size_.store(index_->info().size, std::memory_order_relaxed);
  return removed;
}

void SearchService::compact() {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  index_->compact();
}

std::future<QueryResult> SearchService::submit(std::span<const float> query,
                                               index_t k) {
  validate_submission(1, static_cast<index_t>(query.size()), k);
  Job job;
  job.data.assign(query.begin(), query.end());
  job.nq = 1;
  job.k = k;
  job.single = true;
  std::future<QueryResult> future = job.single_promise.get_future();
  enqueue(std::move(job));
  return future;
}

std::future<KnnResult> SearchService::submit_batch(
    const Matrix<float>& queries, index_t k) {
  validate_submission(queries.rows(), queries.cols(), k);
  if (queries.rows() == 0) {
    std::promise<KnnResult> done;
    done.set_value(KnnResult(0, k));
    return done.get_future();
  }
  Job job;
  job.data.resize(static_cast<std::size_t>(queries.rows()) * dim_);
  for (index_t i = 0; i < queries.rows(); ++i)
    std::memcpy(job.data.data() + static_cast<std::size_t>(i) * dim_,
                queries.row(i), sizeof(float) * dim_);
  job.nq = queries.rows();
  job.k = k;
  job.single = false;
  std::future<KnnResult> future = job.block_promise.get_future();
  enqueue(std::move(job));
  return future;
}

Admission SearchService::try_submit_batch(const Matrix<float>& queries,
                                          index_t k,
                                          std::future<KnnResult>& out) {
  validate_submission(queries.rows(), queries.cols(), k);
  if (queries.rows() == 0) {
    std::promise<KnnResult> done;
    done.set_value(KnnResult(0, k));
    out = done.get_future();
    return Admission::kAccepted;
  }
  Job job;
  job.data.resize(static_cast<std::size_t>(queries.rows()) * dim_);
  for (index_t i = 0; i < queries.rows(); ++i)
    std::memcpy(job.data.data() + static_cast<std::size_t>(i) * dim_,
                queries.row(i), sizeof(float) * dim_);
  job.nq = queries.rows();
  job.k = k;
  job.single = false;
  std::future<KnnResult> future = job.block_promise.get_future();
  const std::size_t rows = job.nq;
  const Admission admission = enqueue_try(job);
  if (admission == Admission::kAccepted) {
    out = std::move(future);
    recorder_.record_submitted(rows);
    cv_pending_.notify_one();
  } else {
    recorder_.record_rejected(rows);
  }
  return admission;
}

std::future<QueryResult> SearchService::submit_payload(std::string_view query,
                                                       index_t k) {
  validate_payload_submission(1, k);
  Job job;
  job.payloads.emplace_back(query);
  job.nq = 1;
  job.k = k;
  job.single = true;
  std::future<QueryResult> future = job.single_promise.get_future();
  enqueue(std::move(job));
  return future;
}

std::future<KnnResult> SearchService::submit_payload_batch(
    const std::vector<std::string>& queries, index_t k) {
  validate_payload_submission(static_cast<index_t>(queries.size()), k);
  if (queries.empty()) {
    std::promise<KnnResult> done;
    done.set_value(KnnResult(0, k));
    return done.get_future();
  }
  Job job;
  job.payloads = queries;
  job.nq = static_cast<index_t>(queries.size());
  job.k = k;
  job.single = false;
  std::future<KnnResult> future = job.block_promise.get_future();
  enqueue(std::move(job));
  return future;
}

Admission SearchService::try_submit_payload_batch(
    const std::vector<std::string>& queries, index_t k,
    std::future<KnnResult>& out) {
  validate_payload_submission(static_cast<index_t>(queries.size()), k);
  if (queries.empty()) {
    std::promise<KnnResult> done;
    done.set_value(KnnResult(0, k));
    out = done.get_future();
    return Admission::kAccepted;
  }
  Job job;
  job.payloads = queries;
  job.nq = static_cast<index_t>(queries.size());
  job.k = k;
  job.single = false;
  std::future<KnnResult> future = job.block_promise.get_future();
  const std::size_t rows = job.nq;
  const Admission admission = enqueue_try(job);
  if (admission == Admission::kAccepted) {
    out = std::move(future);
    recorder_.record_submitted(rows);
    cv_pending_.notify_one();
  } else {
    recorder_.record_rejected(rows);
  }
  return admission;
}

Admission SearchService::enqueue_try(Job& job) {
  const std::size_t rows = job.nq;
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return Admission::kStopped;
  // Same backpressure bound as the blocking path (an oversized block is
  // admitted alone rather than being unserveable), but expressed as an
  // immediate answer: the caller translates kOverloaded into a
  // retry-after rejection instead of parking a thread here.
  if (outstanding_ != 0 && outstanding_ + rows > options_.max_queue)
    return Admission::kOverloaded;
  job.enqueued = std::chrono::steady_clock::now();
  outstanding_ += rows;
  pending_rows_[job.k] += rows;
  pending_.push_back(std::move(job));
  recorder_.set_queue_depth(outstanding_);
  return Admission::kAccepted;
}

void SearchService::enqueue(Job job) {
  const std::size_t rows = job.nq;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Backpressure: hold the submitter until the service catches up (an
    // oversized block is admitted alone rather than deadlocking).
    cv_done_.wait(lock, [&] {
      return stopping_ || outstanding_ == 0 ||
             outstanding_ + rows <= options_.max_queue;
    });
    if (stopping_)
      throw std::runtime_error(
          "rbc::serve::SearchService: submit after stop()");
    job.enqueued = std::chrono::steady_clock::now();
    outstanding_ += rows;
    pending_rows_[job.k] += rows;
    pending_.push_back(std::move(job));
    recorder_.set_queue_depth(outstanding_);
  }
  recorder_.record_submitted(rows);
  cv_pending_.notify_one();
}

index_t SearchService::matching_rows_locked(index_t k) const {
  const auto it = pending_rows_.find(k);
  return it == pending_rows_.end() ? 0 : static_cast<index_t>(it->second);
}

void SearchService::dispatch_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_pending_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
    if (pending_.empty()) break;  // stopping_ && nothing left to flush

    // Don't chop the queue into stale mini-batches while every worker is
    // busy: hold off until a dispatched batch would start promptly, letting
    // pending_ accumulate into the largest batch the backlog allows — this
    // is where the batching win comes from under load.
    cv_pending_.wait(lock, [&] {
      return stopping_ ||
             ready_.size() < static_cast<std::size_t>(options_.workers);
    });

    // Batching window: give the front query's batch up to max_wait_us to
    // fill with co-riders of the same k. A stop() flushes immediately.
    const index_t k = pending_.front().k;
    if (options_.max_wait_us > 0 &&
        matching_rows_locked(k) < options_.max_batch) {
      const auto deadline = pending_.front().enqueued +
                            std::chrono::microseconds(options_.max_wait_us);
      cv_pending_.wait_until(lock, deadline, [&] {
        return stopping_ || matching_rows_locked(k) >= options_.max_batch;
      });
    }

    // Form one batch: FIFO over jobs of the front k, never splitting a job,
    // never exceeding max_batch rows (except a lone oversized block).
    Batch batch;
    batch.k = k;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->k != k) {
        ++it;
        continue;
      }
      if (!batch.jobs.empty() && batch.rows + it->nq > options_.max_batch)
        break;
      batch.rows += it->nq;
      batch.jobs.push_back(std::move(*it));
      it = pending_.erase(it);
      if (batch.rows >= options_.max_batch) break;
    }
    const auto pending_k = pending_rows_.find(k);
    if (pending_k->second <= batch.rows)
      pending_rows_.erase(pending_k);
    else
      pending_k->second -= batch.rows;
    ready_.push_back(std::move(batch));
    cv_ready_.notify_one();
  }
  dispatcher_done_ = true;
  cv_ready_.notify_all();
}

void SearchService::worker_loop() {
  if (options_.backend_threads > 0) set_num_threads(options_.backend_threads);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_ready_.wait(lock, [&] { return dispatcher_done_ || !ready_.empty(); });
    if (ready_.empty()) break;  // dispatcher exited and everything ran
    Batch batch = std::move(ready_.front());
    ready_.pop_front();
    cv_pending_.notify_one();  // a worker slot freed: dispatcher may proceed
    lock.unlock();

    execute(batch);

    lock.lock();
    outstanding_ -= batch.rows;
    recorder_.set_queue_depth(outstanding_);
    cv_done_.notify_all();
  }
}

void SearchService::execute(Batch& batch) {
  // Assemble the coalesced query block. A service's jobs are all one kind
  // (the index is either dense- or payload-built), so the batch is too:
  // payload jobs concatenate into one string vector, dense jobs into one
  // Matrix (which zero-initializes padding lanes, so a plain per-row memcpy
  // of the logical columns is enough).
  Matrix<float> block(payload_ ? 0 : batch.rows, dim_);
  std::vector<std::string> payload_block;
  index_t row = 0;
  if (payload_) {
    payload_block.reserve(batch.rows);
    for (Job& job : batch.jobs)
      for (std::string& q : job.payloads) payload_block.push_back(std::move(q));
  } else {
    for (const Job& job : batch.jobs) {
      for (index_t i = 0; i < job.nq; ++i, ++row)
        std::memcpy(block.row(row),
                    job.data.data() + static_cast<std::size_t>(i) * dim_,
                    sizeof(float) * dim_);
    }
  }

  // Stamp the batch with the index's metric: the shared validator then
  // enforces end-to-end that the dispatcher and backend agree on what the
  // returned distances mean.
  SearchRequest request{.queries = &block, .k = batch.k, .options = {}};
  request.options.metric = metric_;
  PayloadSearchRequest payload_request{
      .queries = &payload_block, .k = batch.k, .options = {}};
  payload_request.options.metric = metric_;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(batch.jobs.size());
  const auto finish_time = [&latencies_ms](const Job& job) {
    latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - job.enqueued)
                               .count());
  };

  SearchResponse response;
  std::exception_ptr error;
  try {
    response = payload_ ? index_->knn_search_payload(payload_request)
                        : index_->knn_search(request);
  } catch (...) {
    error = std::current_exception();
  }

  // Stats are recorded BEFORE any promise resolves: a client that joins on
  // its futures and then reads stats() must see those queries counted.
  for (const Job& job : batch.jobs) finish_time(job);
  recorder_.record_batch(batch.rows, latencies_ms, /*failed=*/error != nullptr);

  row = 0;
  for (Job& job : batch.jobs) {
    if (error) {
      if (job.single)
        job.single_promise.set_exception(error);
      else
        job.block_promise.set_exception(error);
    } else if (job.single) {
      QueryResult result;
      result.ids.assign(response.knn.ids.row(row),
                        response.knn.ids.row(row) + batch.k);
      result.dists.assign(response.knn.dists.row(row),
                          response.knn.dists.row(row) + batch.k);
      job.single_promise.set_value(std::move(result));
    } else {
      KnnResult result(job.nq, batch.k);
      for (index_t i = 0; i < job.nq; ++i) {
        result.ids.copy_row_from(response.knn.ids, row + i, i);
        result.dists.copy_row_from(response.knn.dists, row + i, i);
      }
      job.block_promise.set_value(std::move(result));
    }
    row += job.nq;
  }
}

void SearchService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return outstanding_ == 0; });
}

void SearchService::stop() {
  // Serializes concurrent stop() calls (including the destructor's) so the
  // thread joins below run exactly once.
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_pending_.notify_all();
  cv_done_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  cv_ready_.notify_all();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
}

}  // namespace rbc::serve
