// RAII buffer with cache-line/SIMD-friendly alignment.
//
// All bulk numeric storage in the library lives in AlignedBuffer so that
// vector kernels can use aligned loads and rows never straddle cache lines
// unnecessarily (Core Guidelines Per.19: access memory predictably).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace rbc {

/// Byte alignment for all numeric buffers: one x86 cache line, which is also
/// sufficient for any AVX-512 load should the kernels grow wider.
inline constexpr std::size_t kAlignment = 64;

/// Owning, aligned, non-resizable array of trivially-destructible T.
///
/// Unlike std::vector this guarantees 64-byte alignment and never
/// value-initializes on allocation unless asked, so multi-GB datasets are not
/// touched twice. Move-only.
template <class T>
class AlignedBuffer {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer only supports trivially destructible types");

 public:
  AlignedBuffer() = default;

  /// Allocates `count` elements. If `zero` is true the storage is
  /// zero-initialized (used by Matrix to guarantee zero padding lanes).
  explicit AlignedBuffer(std::size_t count, bool zero = false) : size_(count) {
    if (count == 0) return;
    const std::size_t bytes = round_up(count * sizeof(T));
    void* p = std::aligned_alloc(kAlignment, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    data_ = static_cast<T*>(p);
    if (zero) std::memset(data_, 0, bytes);
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { release(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }

  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace rbc
