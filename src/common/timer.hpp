// Wall-clock timing for benchmark harnesses.
#pragma once

#include <chrono>

namespace rbc {

/// Monotonic wall-clock stopwatch. Construction starts it.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace rbc
