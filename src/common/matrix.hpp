// Row-major, padded, aligned 2-D container: the canonical representation of a
// point set (database, query batch, representative set) throughout the library.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstring>
#include <span>

#include "common/aligned.hpp"
#include "common/types.hpp"

namespace rbc {

/// Dense row-major matrix of T with rows padded to a multiple of 16 elements.
///
/// Invariants:
///  * every row starts at a 64-byte aligned address;
///  * padding lanes (columns in [cols, stride)) are zero and stay zero, so
///    SIMD distance kernels may read full stride-width rows without masking
///    (|0-0| contributes nothing to any shipped metric).
///
/// Rows are points, columns are features, matching the paper's BF(Q, X)
/// convention where both arguments are point sets.
template <class T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(index_t rows, index_t cols)
      : rows_(rows),
        cols_(cols),
        stride_(pad(cols)),
        data_(static_cast<std::size_t>(rows) * pad(cols), /*zero=*/true) {}

  /// Number of points.
  index_t rows() const noexcept { return rows_; }
  /// Number of features per point.
  index_t cols() const noexcept { return cols_; }
  /// Allocated row width in elements (>= cols, multiple of 16).
  index_t stride() const noexcept { return stride_; }
  bool empty() const noexcept { return rows_ == 0; }

  T* row(index_t i) noexcept {
    assert(i < rows_);
    return data_.data() + static_cast<std::size_t>(i) * stride_;
  }
  const T* row(index_t i) const noexcept {
    assert(i < rows_);
    return data_.data() + static_cast<std::size_t>(i) * stride_;
  }

  /// Logical view of row i: exactly cols() elements, no padding.
  std::span<T> row_span(index_t i) noexcept { return {row(i), cols_}; }
  std::span<const T> row_span(index_t i) const noexcept {
    return {row(i), cols_};
  }

  T& at(index_t i, index_t j) noexcept {
    assert(j < cols_);
    return row(i)[j];
  }
  const T& at(index_t i, index_t j) const noexcept {
    assert(j < cols_);
    return row(i)[j];
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }
  /// Total allocated elements (rows * stride).
  std::size_t size() const noexcept { return data_.size(); }

  /// Copies the logical part of row `src` of `from` into row `dst` of *this.
  /// Column counts must match; padding stays zero.
  void copy_row_from(const Matrix& from, index_t src, index_t dst) {
    assert(from.cols() == cols_);
    std::memcpy(row(dst), from.row(src), sizeof(T) * cols_);
  }

  /// Deep copy (Matrix is move-only by default to prevent accidental
  /// multi-GB copies; cloning is explicit).
  Matrix clone() const {
    Matrix out(rows_, cols_);
    std::memcpy(out.data(), data(), sizeof(T) * data_.size());
    return out;
  }

  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;
  Matrix(const Matrix&) = delete;
  Matrix& operator=(const Matrix&) = delete;

 private:
  static index_t pad(index_t cols) {
    constexpr index_t kPad = 16;  // 64 bytes of float
    return (cols + kPad - 1) / kPad * kPad;
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t stride_ = 0;
  AlignedBuffer<T> data_;
};

}  // namespace rbc
