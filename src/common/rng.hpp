// Deterministic, seedable random number generation.
//
// xoshiro256** — fast, high quality, and trivially splittable so that
// parallel generators never share state (Core Guidelines CP.3: minimize
// sharing). No global RNG exists anywhere in the library.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/types.hpp"

namespace rbc {

/// splitmix64: used to expand a user seed into xoshiro state and to derive
/// independent per-thread / per-object streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent generator; stream `i` is reproducible for a given
  /// parent seed. Used to hand one RNG to each worker thread.
  Rng split(std::uint64_t i) const {
    std::uint64_t sm = state_[0] ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    std::uint64_t seed = splitmix64(sm);
    return Rng(seed);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform_float(float lo = 0.0f, float hi = 1.0f) noexcept {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). n must be > 0.
  index_t uniform_index(index_t n) noexcept {
    // Lemire's multiply-shift; bias is negligible for n << 2^64.
    return static_cast<index_t>((static_cast<unsigned __int128>((*this)()) *
                                 static_cast<unsigned __int128>(n)) >>
                                64);
  }

  /// Standard normal via Box–Muller (cached second value).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_ = radius * std::sin(angle);
    has_cached_ = true;
    return radius * std::cos(angle);
  }

  float normal_float(float mean = 0.0f, float stddev = 1.0f) noexcept {
    return mean + stddev * static_cast<float>(normal());
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace rbc
