// Environment-variable configuration used by the benchmark harnesses
// (e.g. RBC_BENCH_SCALE to shrink/grow dataset sizes on small machines).
#pragma once

#include <cstdint>
#include <string>

namespace rbc {

/// Returns the integer value of environment variable `name`, or `fallback`
/// if unset or unparsable.
std::int64_t env_or(const char* name, std::int64_t fallback);

/// Returns the floating value of environment variable `name`, or `fallback`.
double env_or(const char* name, double fallback);

/// Returns the string value of environment variable `name`, or `fallback`.
std::string env_or(const char* name, const std::string& fallback);

}  // namespace rbc
