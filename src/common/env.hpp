// Environment-variable configuration used by the benchmark harnesses
// (e.g. RBC_BENCH_SCALE to shrink/grow dataset sizes on small machines).
#pragma once

#include <cstdint>
#include <string>

namespace rbc {

/// Returns the integer value of environment variable `name`, or `fallback`
/// if unset or unparsable. Trailing non-numeric characters and out-of-range
/// magnitudes count as unparsable (a one-time warning is printed to stderr)
/// — "2x" must not silently configure 2.
std::int64_t env_or(const char* name, std::int64_t fallback);

/// Returns the floating value of environment variable `name`, or `fallback`;
/// same strictness as the integer overload.
double env_or(const char* name, double fallback);

/// Returns the string value of environment variable `name`, or `fallback`.
std::string env_or(const char* name, const std::string& fallback);

}  // namespace rbc
