// Machine-independent work accounting.
//
// The theory in the paper bounds the *number of distance evaluations*; every
// benchmark harness reports it next to wall-clock time so that results remain
// meaningful on machines with very different core counts from the paper's
// testbeds (see DESIGN.md §2). Counting happens at bulk granularity (a tile of
// the pairwise computation adds rows*cols once), so the hot loops carry no
// per-element instrumentation cost.
//
// Each thread accumulates into its own cache-line-padded slot (CP.2/CP.3: no
// data races, no false sharing); totals are summed on demand.
#pragma once

#include <cstdint>

namespace rbc::counters {

/// Adds `n` distance evaluations to the calling thread's counter.
void add_dist_evals(std::uint64_t n) noexcept;

/// Sum of distance evaluations over all threads since the last reset().
std::uint64_t total_dist_evals() noexcept;

/// Adds `n` units of metric-specific work (DP cells filled under edit
/// distance, edges relaxed under graph shortest-path, ...) to the calling
/// thread's counter. Generic metric spaces report cost in their own unit
/// (IndexInfo::cost_unit) because "one distance evaluation" says nothing
/// about work when a single evaluation can be an O(|a||b|) dynamic program
/// or a whole Dijkstra pass.
void add_metric_cost(std::uint64_t n) noexcept;

/// Sum of metric-cost units over all threads since the last reset().
std::uint64_t total_metric_cost() noexcept;

/// Zeroes every thread's counters (distance evals and metric cost). Call
/// only while worker threads are quiescent (between benchmark phases).
void reset() noexcept;

/// RAII helper: records the counter at construction; delta() gives evals
/// since then. Composes with nested scopes.
class Scope {
 public:
  Scope() : start_(total_dist_evals()) {}
  std::uint64_t delta() const noexcept { return total_dist_evals() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace rbc::counters
