#include "common/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <utility>

namespace rbc {

namespace {

/// Warns once per (variable, value) pair on stderr when a set variable is
/// unparsable and the fallback is used instead. Silently falling back hides
/// typos like RBC_BENCH_SCALE=2x, which then "works" with the wrong value
/// for an entire benchmark run.
void warn_bad_value(const char* name, const char* raw) {
  static std::mutex mutex;
  static std::set<std::pair<std::string, std::string>> warned;
  std::lock_guard<std::mutex> lock(mutex);
  if (!warned.emplace(name, raw).second) return;
  std::fprintf(stderr,
               "rbc: ignoring %s='%s' (not a valid number); using the "
               "built-in default\n",
               name, raw);
}

}  // namespace

std::int64_t env_or(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  // Trailing non-numeric characters ("2x") and overflow (ERANGE clamps the
  // result to LLONG_MIN/MAX) are both misconfigurations, not values.
  if (end == raw || *end != '\0' || errno == ERANGE) {
    warn_bad_value(name, raw);
    return fallback;
  }
  return static_cast<std::int64_t>(parsed);
}

double env_or(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || errno == ERANGE) {
    warn_bad_value(name, raw);
    return fallback;
  }
  return parsed;
}

std::string env_or(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::string(raw);
}

}  // namespace rbc
