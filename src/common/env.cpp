#include "common/env.hpp"

#include <cstdlib>

namespace rbc {

std::int64_t env_or(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(parsed);
}

double env_or(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return parsed;
}

std::string env_or(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::string(raw);
}

}  // namespace rbc
