// Core scalar types and constants shared across every rbc subsystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace rbc {

/// Index into a database or query set. 32 bits: the largest configuration the
/// paper evaluates is 10M points (TinyIm), far below the 4.29B limit, and the
/// narrower type halves the memory traffic of id arrays on the hot path.
using index_t = std::uint32_t;

/// Sentinel for "no point" (e.g. padding in fixed-width k-NN result rows when
/// the database has fewer than k points).
inline constexpr index_t kInvalidIndex = std::numeric_limits<index_t>::max();

/// Distances are single precision throughout, matching the paper's C/CUDA
/// implementation. Accumulation happens in float with FMA; see DESIGN.md §8.
using dist_t = float;

/// "Infinite" distance used to initialize running minima.
inline constexpr dist_t kInfDist = std::numeric_limits<dist_t>::infinity();

}  // namespace rbc
