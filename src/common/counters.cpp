#include "common/counters.hpp"

#include <atomic>
#include <mutex>
#include <vector>

namespace rbc::counters {
namespace {

// One cache line per thread slot to avoid false sharing between workers.
struct alignas(64) Slot {
  std::atomic<std::uint64_t> value{0};
  std::atomic<std::uint64_t> metric_cost{0};
};

// Registry of every thread's slot. Slots are never removed: a thread that
// exits leaves its (final) count behind, which keeps total_dist_evals()
// correct across OpenMP team teardowns.
std::mutex g_registry_mutex;
std::vector<Slot*>& registry() {
  // Never destroyed: slots must outlive every thread (including detached
  // OpenMP workers that may touch their slot during teardown), and keeping
  // the vector reachable at exit is what tells LeakSanitizer the
  // intentionally-immortal slots are not leaks.
  static auto* r = new std::vector<Slot*>();
  return *r;
}

Slot& local_slot() {
  thread_local Slot* slot = [] {
    auto* fresh = new Slot();  // intentionally leaked; see registry comment
    std::lock_guard lock(g_registry_mutex);
    registry().push_back(fresh);
    return fresh;
  }();
  return *slot;
}

}  // namespace

void add_dist_evals(std::uint64_t n) noexcept {
  local_slot().value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t total_dist_evals() noexcept {
  std::lock_guard lock(g_registry_mutex);
  std::uint64_t sum = 0;
  for (const Slot* slot : registry())
    sum += slot->value.load(std::memory_order_relaxed);
  return sum;
}

void add_metric_cost(std::uint64_t n) noexcept {
  local_slot().metric_cost.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t total_metric_cost() noexcept {
  std::lock_guard lock(g_registry_mutex);
  std::uint64_t sum = 0;
  for (const Slot* slot : registry())
    sum += slot->metric_cost.load(std::memory_order_relaxed);
  return sum;
}

void reset() noexcept {
  std::lock_guard lock(g_registry_mutex);
  for (Slot* slot : registry()) {
    slot->value.store(0, std::memory_order_relaxed);
    slot->metric_cost.store(0, std::memory_order_relaxed);
  }
}

}  // namespace rbc::counters
