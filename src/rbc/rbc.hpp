// Umbrella header: the public API of the Random Ball Cover library.
//
//   #include "rbc/rbc.hpp"
//
//   rbc::Matrix<float> db = ...;            // n x d database
//   rbc::RbcExactIndex<> exact;             // Euclidean metric by default
//   exact.build(db);
//   rbc::KnnResult nn = exact.search(queries, /*k=*/1);
//
// See examples/quickstart.cpp for a complete program.
#pragma once

#include "bruteforce/bf.hpp"
#include "bruteforce/bf_generic.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "distance/metrics.hpp"
#include "rbc/params.hpp"
#include "rbc/rbc_exact.hpp"
#include "rbc/rbc_generic.hpp"
#include "rbc/rbc_oneshot.hpp"
#include "rbc/stats.hpp"
