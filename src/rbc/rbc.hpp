// Umbrella header: the public API of the Random Ball Cover library.
//
//   #include "rbc/rbc.hpp"
//
// Unified API (any backend through one interface; see src/api/):
//
//   rbc::Matrix<float> db = ...;                    // n x d database
//   auto index = rbc::make_index("rbc-exact");      // or "bruteforce",
//   index->build(db);                               // "kdtree", ... (see
//   rbc::SearchResponse r =                         //  registered_backends())
//       index->knn_search({.queries = &queries, .k = 5});
//
//   index->save(stream);                            // persist ...
//   auto restored = rbc::load_index(stream);        // ... backend auto-detected
//
// Concrete classes (zero-overhead, metric-templated direct use):
//
//   rbc::RbcExactIndex<> exact;                     // Euclidean by default
//   exact.build(db);
//   rbc::KnnResult nn = exact.search(queries, /*k=*/1);
//
// See examples/quickstart.cpp for a complete program and README.md for the
// backend table.
#pragma once

#include "api/api.hpp"
#include "bruteforce/bf.hpp"
#include "bruteforce/bf_generic.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "distance/metrics.hpp"
#include "rbc/params.hpp"
#include "rbc/rbc_exact.hpp"
#include "rbc/rbc_generic.hpp"
#include "rbc/rbc_oneshot.hpp"
#include "rbc/stats.hpp"
