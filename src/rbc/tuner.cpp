#include "rbc/tuner.hpp"

#include <algorithm>
#include <cmath>

#include "bruteforce/bf.hpp"
#include "rbc/rbc_exact.hpp"
#include "rbc/rbc_oneshot.hpp"

namespace rbc {

namespace {

std::vector<index_t> default_ladder(index_t n) {
  const double root = std::sqrt(static_cast<double>(n));
  std::vector<index_t> ladder;
  for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const auto candidate =
        static_cast<index_t>(std::max(2.0, factor * root));
    if (candidate <= n &&
        (ladder.empty() || candidate != ladder.back()))
      ladder.push_back(candidate);
  }
  return ladder;
}

}  // namespace

TuneResult tune_exact_num_reps(const Matrix<float>& X,
                               const Matrix<float>& sample_queries, index_t k,
                               RbcParams base,
                               std::vector<index_t> candidates) {
  if (candidates.empty()) candidates = default_ladder(X.rows());

  TuneResult result;
  double best = std::numeric_limits<double>::infinity();
  for (const index_t nr : candidates) {
    RbcParams params = base;
    params.num_reps = nr;
    RbcExactIndex<Euclidean> index;
    index.build(X, params);
    SearchStats stats;
    (void)index.search(sample_queries, k, &stats);
    const double work = stats.dist_evals_per_query();
    result.sweep.emplace_back(nr, work);
    if (work < best) {
      best = work;
      result.num_reps = nr;
      result.objective = work;
    }
  }
  return result;
}

TuneResult tune_oneshot_params(const Matrix<float>& X,
                               const Matrix<float>& sample_queries,
                               double target_recall, RbcParams base,
                               std::vector<index_t> candidates) {
  if (candidates.empty()) candidates = default_ladder(X.rows());
  std::sort(candidates.begin(), candidates.end());

  // Ground truth once for the sample.
  const KnnResult truth = bf_knn(sample_queries, X, 1);

  TuneResult result;
  double best_recall = -1.0;
  for (const index_t param : candidates) {
    RbcParams params = base;
    params.num_reps = param;
    params.points_per_rep = param;
    RbcOneShotIndex<Euclidean> index;
    index.build(X, params);
    const KnnResult got = index.search(sample_queries, 1);
    index_t hits = 0;
    for (index_t qi = 0; qi < sample_queries.rows(); ++qi)
      if (got.dists.at(qi, 0) == truth.dists.at(qi, 0)) ++hits;
    const double recall =
        sample_queries.rows() == 0
            ? 1.0
            : static_cast<double>(hits) / sample_queries.rows();
    result.sweep.emplace_back(param, recall);
    if (recall > best_recall) {
      best_recall = recall;
      result.num_reps = param;
      result.objective = recall;
    }
    if (recall >= target_recall) {
      // Candidates are ascending: this is the smallest setting that hits
      // the target.
      result.num_reps = param;
      result.objective = recall;
      break;
    }
  }
  return result;
}

}  // namespace rbc
