// Search-time work statistics.
//
// The paper's complexity claims are about counts (reps examined, points
// examined); these statistics let the benchmarks and tests check them
// directly — e.g. that the exact search examines ~ c^3 n / nr points
// (Theorem 1) and that pruning never discards the true NN's owner.
#pragma once

#include <cstdint>

namespace rbc {

struct SearchStats {
  std::uint64_t queries = 0;
  /// Distances computed against representatives (first BF call).
  std::uint64_t rep_dist_evals = 0;
  /// Distances computed against ownership-list members (second BF call).
  std::uint64_t list_dist_evals = 0;
  /// Representatives discarded by rule (1) / rule (2) at filter time.
  std::uint64_t reps_pruned_overlap = 0;
  std::uint64_t reps_pruned_lemma = 0;
  /// Representatives whose lists were (at least partially) scanned.
  std::uint64_t reps_scanned = 0;
  /// List members skipped by the sorted-list early exit (Claim 2).
  std::uint64_t points_skipped_early_exit = 0;
  /// List members skipped by the annulus lower bound (extension).
  std::uint64_t points_skipped_annulus = 0;

  /// Total distance evaluations.
  std::uint64_t dist_evals() const { return rep_dist_evals + list_dist_evals; }

  /// Mean distance evaluations per query.
  double dist_evals_per_query() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(dist_evals()) /
                              static_cast<double>(queries);
  }

  void merge(const SearchStats& other);
};

}  // namespace rbc
