// RBC over arbitrary metric spaces (strings under edit distance, graph nodes
// under shortest-path distance, ...). Paper §6: the expansion rate "is
// defined for arbitrary metric spaces", and the RBC algorithms only ever
// touch the metric through distance evaluations — these index variants make
// that generality concrete.
//
// The generic indexes trade the dense fast path (SIMD kernels, packed row
// copies) for full generality: they store ids only and call
// Space::distance(). The algorithms — build via BF, prune rules (1) and (2),
// sorted lists with early exit — are identical to the dense implementation.
#pragma once

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "bruteforce/bf_generic.hpp"
#include "parallel/parallel_for.hpp"
#include "rbc/params.hpp"
#include "rbc/sampling.hpp"
#include "rbc/stats.hpp"

namespace rbc {

/// Exact RBC over a generic metric space. distance() must satisfy the
/// metric axioms; every returned k-set equals brute force (ties included).
template <MetricSpace S>
class RbcGenericExact {
 public:
  void build(const S& space, RbcParams params = {}) {
    space_ = &space;
    params_ = params;
    const index_t n = space.size();

    rep_ids_ = choose_representatives(n, params);
    const index_t nr = static_cast<index_t>(rep_ids_.size());

    // BF(X, R): owner of every point.
    std::vector<index_t> owner(n);
    std::vector<double> owner_dist(n);
    parallel_for(0, n, [&](index_t x) {
      double best = std::numeric_limits<double>::infinity();
      index_t best_rep = 0;
      for (index_t r = 0; r < nr; ++r) {
        const double d = space.distance(space[x], space[rep_ids_[r]]);
        if (d < best) {
          best = d;
          best_rep = r;
        }
      }
      owner[x] = best_rep;
      owner_dist[x] = best;
    });
    counters::add_dist_evals(static_cast<std::uint64_t>(n) * nr);

    offsets_.assign(nr + 1, 0);
    for (index_t x = 0; x < n; ++x) ++offsets_[owner[x] + 1];
    for (index_t r = 0; r < nr; ++r) offsets_[r + 1] += offsets_[r];

    member_ids_.resize(n);
    member_dists_.resize(n);
    std::vector<index_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (index_t x = 0; x < n; ++x) {
      const index_t slot = cursor[owner[x]]++;
      member_ids_[slot] = x;
      member_dists_[slot] = owner_dist[x];
    }
    for (index_t r = 0; r < nr; ++r) {
      const index_t lo = offsets_[r], hi = offsets_[r + 1];
      std::vector<std::pair<double, index_t>> items;
      items.reserve(hi - lo);
      for (index_t p = lo; p < hi; ++p)
        items.emplace_back(member_dists_[p], member_ids_[p]);
      std::sort(items.begin(), items.end());
      for (index_t p = lo; p < hi; ++p) {
        member_dists_[p] = items[p - lo].first;
        member_ids_[p] = items[p - lo].second;
      }
    }

    psi_.resize(nr);
    for (index_t r = 0; r < nr; ++r)
      psi_[r] =
          offsets_[r + 1] > offsets_[r] ? member_dists_[offsets_[r + 1] - 1] : 0.0;
  }

  /// k-NN of `query`; ascending (distance, id); exact.
  std::vector<GenericNeighbor> search(const typename S::Point& query,
                                      index_t k,
                                      SearchStats* stats = nullptr) const {
    const S& space = *space_;
    const index_t nr = static_cast<index_t>(rep_ids_.size());

    SearchStats local;
    local.queries = 1;

    // Stage 1: distances to all representatives.
    std::vector<double> rep_dists(nr);
    double gamma1 = std::numeric_limits<double>::infinity();
    for (index_t r = 0; r < nr; ++r) {
      rep_dists[r] = space.distance(query, space[rep_ids_[r]]);
      gamma1 = std::min(gamma1, rep_dists[r]);
    }
    counters::add_dist_evals(nr);
    local.rep_dist_evals = nr;

    // Upper bound on the k-th NN distance from the representatives alone.
    std::vector<double> sorted_rep(rep_dists);
    const index_t kth = std::min<index_t>(k, nr) - 1;
    std::nth_element(sorted_rep.begin(), sorted_rep.begin() + kth,
                     sorted_rep.end());
    const double rep_bound = nr >= k
                                 ? sorted_rep[kth]
                                 : std::numeric_limits<double>::infinity();

    // Stage 2 + 3: filter and scan (strict comparisons; see rbc_exact.hpp).
    std::vector<index_t> survivors;
    for (index_t r = 0; r < nr; ++r) {
      if (params_.use_overlap_rule && rep_dists[r] > rep_bound + psi_[r]) {
        ++local.reps_pruned_overlap;
        continue;
      }
      if (params_.use_lemma_rule && rep_dists[r] > 2 * rep_bound + gamma1) {
        ++local.reps_pruned_lemma;
        continue;
      }
      survivors.push_back(r);
    }
    std::sort(survivors.begin(), survivors.end(), [&](index_t a, index_t b) {
      return rep_dists[a] < rep_dists[b] ||
             (rep_dists[a] == rep_dists[b] && a < b);
    });

    std::vector<GenericNeighbor> best;  // kept sorted, size <= k
    const auto bound = [&] {
      const double heap_bound = best.size() == k
                                    ? best.back().dist
                                    : std::numeric_limits<double>::infinity();
      return std::min(rep_bound, heap_bound);
    };
    const auto offer = [&](double d, index_t id) {
      const GenericNeighbor cand{d, id};
      if (best.size() == k && !(cand < best.back())) return;
      const auto pos = std::lower_bound(best.begin(), best.end(), cand);
      best.insert(pos, cand);
      if (best.size() > k) best.pop_back();
    };

    for (const index_t r : survivors) {
      const double b = bound();
      if (params_.use_overlap_rule && rep_dists[r] > b + psi_[r]) {
        ++local.reps_pruned_overlap;
        continue;
      }
      if (params_.use_lemma_rule && rep_dists[r] > 2 * b + gamma1) {
        ++local.reps_pruned_lemma;
        continue;
      }
      ++local.reps_scanned;
      const index_t lo = offsets_[r], hi = offsets_[r + 1];
      std::uint64_t computed = 0;
      for (index_t p = lo; p < hi; ++p) {
        const double bb = bound();
        if (params_.use_early_exit && member_dists_[p] > rep_dists[r] + bb) {
          local.points_skipped_early_exit += hi - p;
          break;
        }
        if (params_.use_annulus_bound && member_dists_[p] < rep_dists[r] - bb) {
          ++local.points_skipped_annulus;
          continue;
        }
        // Bounded spaces measure only up to the current bound. A clamped
        // value d' > bb >= T (the true kth distance; rep_bound >= T when
        // nr >= k, and bb is infinite otherwise) can transiently sit in
        // `best` while it is not yet full, but the >= k true neighbors all
        // arrive exact (their d <= T <= band) and displace it, so the final
        // k-set — ties included — matches the unbounded scan.
        if constexpr (BoundedMetricSpace<S>) {
          offer(space.distance_bounded(query, space[member_ids_[p]], bb),
                member_ids_[p]);
        } else {
          offer(space.distance(query, space[member_ids_[p]]), member_ids_[p]);
        }
        ++computed;
      }
      counters::add_dist_evals(computed);
      local.list_dist_evals += computed;
    }

    if (stats != nullptr) stats->merge(local);
    return best;
  }

  index_t num_reps() const { return static_cast<index_t>(rep_ids_.size()); }
  const std::vector<index_t>& rep_ids() const { return rep_ids_; }

 private:
  const S* space_ = nullptr;
  RbcParams params_{};
  std::vector<index_t> rep_ids_;
  std::vector<double> psi_;
  std::vector<index_t> offsets_;
  std::vector<index_t> member_ids_;
  std::vector<double> member_dists_;
};

/// One-shot RBC over a generic metric space: probabilistic answers, one list
/// scanned per probe.
template <MetricSpace S>
class RbcGenericOneShot {
 public:
  void build(const S& space, RbcParams params = {}) {
    space_ = &space;
    params_ = params;
    const index_t n = space.size();
    s_ = params.resolve_points_per_rep(n);

    rep_ids_ = choose_representatives(n, params);
    const index_t nr = static_cast<index_t>(rep_ids_.size());

    member_ids_.assign(static_cast<std::size_t>(nr) * s_, kInvalidIndex);
    member_dists_.assign(static_cast<std::size_t>(nr) * s_,
                         std::numeric_limits<double>::infinity());
    psi_.assign(nr, 0.0);

    std::vector<index_t> all(n);
    for (index_t i = 0; i < n; ++i) all[i] = i;

    parallel_for_dynamic(0, nr, [&](index_t r) {
      const auto nns = generic_knn_subset(space, space[rep_ids_[r]], all, s_);
      const std::size_t base = static_cast<std::size_t>(r) * s_;
      for (std::size_t j = 0; j < nns.size(); ++j) {
        member_ids_[base + j] = nns[j].id;
        member_dists_[base + j] = nns[j].dist;
      }
      psi_[r] = nns.empty() ? 0.0 : nns.back().dist;
    });
  }

  std::vector<GenericNeighbor> search(const typename S::Point& query,
                                      index_t k,
                                      SearchStats* stats = nullptr) const {
    const S& space = *space_;
    const index_t nr = static_cast<index_t>(rep_ids_.size());
    const index_t probes = std::min<index_t>(
        params_.num_probes == 0 ? 1 : params_.num_probes, nr);

    SearchStats local;
    local.queries = 1;

    std::vector<GenericNeighbor> rep_order(nr);
    for (index_t r = 0; r < nr; ++r)
      rep_order[r] = {space.distance(query, space[rep_ids_[r]]), r};
    counters::add_dist_evals(nr);
    local.rep_dist_evals = nr;
    std::partial_sort(rep_order.begin(), rep_order.begin() + probes,
                      rep_order.end());

    std::vector<index_t> candidates;
    for (index_t pi = 0; pi < probes; ++pi) {
      const std::size_t base =
          static_cast<std::size_t>(rep_order[pi].id) * s_;
      for (index_t j = 0; j < s_; ++j)
        if (member_ids_[base + j] != kInvalidIndex)
          candidates.push_back(member_ids_[base + j]);
      ++local.reps_scanned;
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    auto result = generic_knn_subset_pruned(space, query, candidates, k);
    local.list_dist_evals = candidates.size();
    if (stats != nullptr) stats->merge(local);
    return result;
  }

  index_t num_reps() const { return static_cast<index_t>(rep_ids_.size()); }
  index_t points_per_rep() const { return s_; }

 private:
  const S* space_ = nullptr;
  RbcParams params_{};
  index_t s_ = 0;
  std::vector<index_t> rep_ids_;
  std::vector<double> psi_;
  std::vector<index_t> member_ids_;
  std::vector<double> member_dists_;
};

}  // namespace rbc
