#include "rbc/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rbc {

index_t RbcParams::resolve_num_reps(index_t n) const {
  if (n == 0) return 0;
  index_t nr = num_reps;
  if (nr == 0)
    nr = static_cast<index_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  return std::clamp<index_t>(nr, 1, n);
}

index_t RbcParams::resolve_points_per_rep(index_t n) const {
  if (n == 0) return 0;
  index_t s = points_per_rep;
  if (s == 0) s = resolve_num_reps(n);  // the paper's nr = s setting
  return std::clamp<index_t>(s, 1, n);
}

index_t oneshot_theory_params(index_t n, double c, double delta) {
  if (n == 0) return 0;
  const double value =
      c * std::sqrt(static_cast<double>(n) * std::log(1.0 / delta));
  const auto rounded = static_cast<index_t>(std::ceil(value));
  return std::clamp<index_t>(rounded, 1, n);
}

std::vector<index_t> sample_without_replacement(index_t n, index_t count,
                                                Rng& rng) {
  count = std::min(count, n);
  std::vector<index_t> result;
  result.reserve(count);
  // Floyd's algorithm: uniform subset of size `count` with O(count) draws.
  std::unordered_set<index_t> chosen;
  chosen.reserve(count * 2);
  for (index_t j = n - count; j < n; ++j) {
    const index_t t = rng.uniform_index(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<index_t> sample_bernoulli(index_t n, double p, Rng& rng) {
  std::vector<index_t> result;
  result.reserve(static_cast<std::size_t>(p * n * 1.2) + 8);
  for (index_t i = 0; i < n; ++i)
    if (rng.bernoulli(p)) result.push_back(i);
  return result;  // generated in order, already sorted
}

std::vector<index_t> choose_representatives(index_t n,
                                            const RbcParams& params) {
  Rng rng(params.seed);
  const index_t nr = params.resolve_num_reps(n);
  std::vector<index_t> reps;
  switch (params.sampling) {
    case Sampling::kExactCount:
      reps = sample_without_replacement(n, nr, rng);
      break;
    case Sampling::kBernoulli:
      reps = sample_bernoulli(
          n, static_cast<double>(nr) / static_cast<double>(n), rng);
      break;
  }
  if (reps.empty() && n > 0) reps.push_back(rng.uniform_index(n));
  return reps;
}

}  // namespace rbc
