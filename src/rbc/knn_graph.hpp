// k-NN graph construction — the batch workload behind the manifold-learning
// methods the paper's introduction motivates (LLE [26], Isomap [27] both
// start from the k-NN graph of the dataset).
//
// Implemented as a self-query of the exact index: build once, search with
// Q = X, drop each point's trivial self-match. Exact by construction.
#pragma once

#include "bruteforce/bf.hpp"
#include "common/matrix.hpp"
#include "rbc/params.hpp"
#include "rbc/rbc_exact.hpp"

namespace rbc {

/// The k-NN graph of X: row i lists the k nearest *other* points of X to
/// point i (ascending by (distance, id)), padded with kInvalidIndex when
/// n - 1 < k.
template <DenseMetric M = Euclidean>
KnnResult build_knn_graph(const Matrix<float>& X, index_t k,
                          RbcParams params = {}, M metric = {}) {
  RbcExactIndex<M> index;
  index.build(X, params, metric);

  // Query with k+1 and strip the self-match. A point's nearest neighbor is
  // itself at distance 0 (ties by id put the query point first among exact
  // duplicates of itself).
  const KnnResult raw = index.search(X, k + 1);
  KnnResult graph(X.rows(), k);
  for (index_t i = 0; i < X.rows(); ++i) {
    index_t out = 0;
    for (index_t j = 0; j < k + 1 && out < k; ++j) {
      if (raw.ids.at(i, j) == i) continue;  // the self-match
      graph.ids.at(i, out) = raw.ids.at(i, j);
      graph.dists.at(i, out) = raw.dists.at(i, j);
      ++out;
    }
    for (; out < k; ++out) {
      graph.ids.at(i, out) = kInvalidIndex;
      graph.dists.at(i, out) = kInfDist;
    }
  }
  return graph;
}

/// Symmetrized edge list of the k-NN graph: undirected (u, v, distance)
/// triples with u < v, deduplicated, sorted. The adjacency most
/// manifold-learning pipelines consume.
struct KnnEdge {
  index_t u;
  index_t v;
  dist_t dist;

  friend bool operator<(const KnnEdge& a, const KnnEdge& b) {
    return a.u < b.u || (a.u == b.u && a.v < b.v);
  }
  friend bool operator==(const KnnEdge& a, const KnnEdge& b) {
    return a.u == b.u && a.v == b.v;
  }
};

std::vector<KnnEdge> symmetrize_knn_graph(const KnnResult& graph);

}  // namespace rbc
