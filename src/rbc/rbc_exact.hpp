// Random Ball Cover — exact search variant (paper §4, §5.2, §6.1).
//
// Build: BF(X, R) assigns every database point to its nearest representative;
// ownership lists partition the database, each list stored sorted by distance
// to its representative, with radius psi_r = max_{x in L_r} rho(x, r).
//
// Search (1-NN, generalized here to k-NN and range):
//   1. brute-force scan of the representatives -> distances rho(q, r), the
//      bound gamma (distance to nearest rep; for k-NN, gamma_k = k-th
//      smallest rep distance is the upper bound on the k-th NN distance);
//   2. prune representatives with rule (1) rho(q,r) > gamma + psi_r and
//      rule (2) rho(q,r) > 3 gamma (k-NN: rho(q,r) > 2 gamma_k + gamma_1);
//   3. brute-force scan of the surviving ownership lists, visiting closest
//      representatives first, with the Claim-2 sorted-list early exit.
//
// Exactness contract: for every query the returned k-set equals the
// brute-force k-set under the (distance, id) order — ties included. All
// pruning comparisons are strict, so a point is only ever skipped when it is
// *strictly* worse than the k-th best (see comments at each prune site).
//
// The index owns a permuted copy of the database (rows grouped by owner,
// sorted by distance-to-owner), so the second-stage scan is a contiguous
// streaming pass — the memory layout the paper's GPU implementation uses.
#pragma once

#include <algorithm>
#include <cassert>
#include <istream>
#include <mutex>
#include <ostream>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "bruteforce/bf.hpp"
#include "bruteforce/kernel_scan.hpp"
#include "bruteforce/topk.hpp"
#include "common/matrix.hpp"
#include "distance/dispatch.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/runtime.hpp"
#include "rbc/params.hpp"
#include "rbc/sampling.hpp"
#include "rbc/serialize_io.hpp"
#include "rbc/stats.hpp"

namespace rbc {

template <DenseMetric M = Euclidean>
class RbcExactIndex {
  static_assert(M::is_true_metric,
                "RBC exact search prunes with the triangle inequality and "
                "therefore requires a true metric (use Euclidean, not "
                "SqEuclidean)");

 public:
  /// Per-thread scratch for search_one; reusable across queries so the hot
  /// path never allocates (Per.15).
  struct Scratch {
    std::vector<dist_t> rep_dists;
    std::vector<index_t> survivors;
  };

  RbcExactIndex() = default;

  /// Builds the index over X. X must outlive nothing — the index copies the
  /// rows it needs (representatives + permuted database).
  void build(const Matrix<float>& X, RbcParams params = {}, M metric = {}) {
    metric_ = metric;
    params_ = params;
    n_ = X.rows();
    dim_ = X.cols();

    rep_ids_ = choose_representatives(n_, params);
    const index_t nr = static_cast<index_t>(rep_ids_.size());

    reps_ = Matrix<float>(nr, dim_);
    for (index_t r = 0; r < nr; ++r) reps_.copy_row_from(X, rep_ids_[r], r);

    // BF(X, R): nearest representative of every database point (paper §4:
    // "this routine is simply a call to BF(X, R)"). Parallel over X.
    std::vector<index_t> owner(n_);
    std::vector<dist_t> owner_dist(n_);
    parallel_for(0, n_, [&](index_t x) {
      const float* px = X.row(x);
      dist_t best = kInfDist;
      index_t best_rep = 0;
      for (index_t r = 0; r < nr; ++r) {
        const dist_t d = metric_(px, reps_.row(r), dim_);
        if (d < best) {  // ties resolve to the lowest rep index (scan order)
          best = d;
          best_rep = r;
        }
      }
      owner[x] = best_rep;
      owner_dist[x] = best;
    });
    counters::add_dist_evals(static_cast<std::uint64_t>(n_) * nr);

    // CSR layout: offsets_[r] .. offsets_[r+1] delimit L_r in the packed
    // arrays. Counting sort by owner, then per-list sort by (distance, id).
    offsets_.assign(nr + 1, 0);
    for (index_t x = 0; x < n_; ++x) ++offsets_[owner[x] + 1];
    for (index_t r = 0; r < nr; ++r) offsets_[r + 1] += offsets_[r];

    packed_ids_.resize(n_);
    packed_dist_.resize(n_);
    {
      std::vector<index_t> cursor(offsets_.begin(), offsets_.end() - 1);
      for (index_t x = 0; x < n_; ++x) {
        const index_t slot = cursor[owner[x]]++;
        packed_ids_[slot] = x;
        packed_dist_[slot] = owner_dist[x];
      }
    }

    parallel_for(0, nr, [&](index_t r) {
      const index_t lo = offsets_[r], hi = offsets_[r + 1];
      // Sort members by (distance to rep, id); enables the Claim-2 early
      // exit and makes the layout deterministic.
      std::vector<std::pair<dist_t, index_t>> items;
      items.reserve(hi - lo);
      for (index_t p = lo; p < hi; ++p)
        items.emplace_back(packed_dist_[p], packed_ids_[p]);
      std::sort(items.begin(), items.end());
      for (index_t p = lo; p < hi; ++p) {
        packed_dist_[p] = items[p - lo].first;
        packed_ids_[p] = items[p - lo].second;
      }
    });

    psi_.resize(nr);
    for (index_t r = 0; r < nr; ++r)
      psi_[r] = offsets_[r + 1] > offsets_[r] ? packed_dist_[offsets_[r + 1] - 1]
                                              : dist_t{0};

    packed_ = Matrix<float>(n_, dim_);
    parallel_for(0, n_, [&](index_t p) {
      packed_.copy_row_from(X, packed_ids_[p], p);
    });
    // Cached squared row norms: the rank-1 corrections of the §3 GEMM
    // formulation, which the blocked batch path's tile_gemm kernel consumes
    // (the max feeds the conservative lane-skip threshold).
    packed_sq_norms_ = detail::kernel_row_sq_norms(packed_);
    packed_sq_max_ = packed_sq_norms_.empty()
                         ? 0.0f
                         : *std::max_element(packed_sq_norms_.begin(),
                                             packed_sq_norms_.end());

    next_id_ = n_;
    erased_count_ = 0;
    erased_.assign(n_, 0);
    overflow_data_.clear();
    overflow_ids_.clear();
    overflow_dist_.clear();
    overflow_of_rep_.assign(nr, {});

    // Compressed scan tier: quantize the packed rows once at build. The
    // float packed_ stays resident — it is the re-measure source that keeps
    // results bit-identical (kernel_scan.hpp, quantized scans).
    if (storage_req_ != quant::Storage::kFloat32)
      qstore_ = quant::quantize(storage_req_, packed_);
    else
      qstore_ = {};
  }

  // ----------------------------------------------------- compressed tier ---

  /// Requests a compressed row store ("fp16"/"int8") for the hot list
  /// scans; takes effect at the next build()/rebuild(). Euclidean only
  /// (quantized_metric) — callers gate before requesting.
  void set_storage(quant::Storage mode) { storage_req_ = mode; }

  /// The storage mode the scans currently read (kFloat32 when no store is
  /// active — including after a mutation invalidated it).
  quant::Storage storage() const {
    return qstore_.active() ? qstore_.mode : quant::Storage::kFloat32;
  }

  const quant::QuantizedStore& quantized_store() const { return qstore_; }

  /// Installs a deserialized store (loader path). Throws when its shape
  /// disagrees with the built index — a corrupt or mismatched file.
  void adopt_quantized_store(quant::QuantizedStore store) {
    if (store.rows != packed_.rows() || store.cols != dim_)
      throw std::runtime_error(
          "rbc::io: corrupt quantized store (shape disagrees with index)");
    storage_req_ = store.mode;
    qstore_ = std::move(store);
  }

  // ------------------------------------------------------ dynamic updates ---
  //
  // The paper's structure is static; these updates make the index usable in
  // online settings without a rebuild. Inserted points go to their nearest
  // representative's *overflow* list (unsorted, scanned without the
  // early-exit), and psi_r grows to keep prune rule (1) valid. Erasures are
  // tombstones. Exactness over the live set is preserved (tested); heavy
  // churn degrades the constant factors until rebuild() compacts.
  // Not thread-safe against concurrent searches.

  /// Inserts a point (copied); returns its id (original build points keep
  /// ids [0, n); inserts continue from there). Requires a built index.
  index_t insert(const float* point) {
    const index_t nr = reps_.rows();
    dist_t best = kInfDist;
    index_t best_rep = 0;
    for (index_t r = 0; r < nr; ++r) {
      const dist_t d = metric_(point, reps_.row(r), dim_);
      if (d < best) {
        best = d;
        best_rep = r;
      }
    }
    counters::add_dist_evals(nr);

    // Mutations invalidate the compressed store (overflow rows and
    // tombstones are not represented in it); scans fall back to the float
    // rows — still exact, just uncompressed — until rebuild().
    qstore_ = {};

    const index_t id = next_id_++;
    erased_.push_back(0);
    const std::size_t stride = reps_.stride();
    overflow_data_.resize(overflow_data_.size() + stride, 0.0f);
    float* row =
        overflow_data_.data() + overflow_ids_.size() * stride;
    std::memcpy(row, point, sizeof(float) * dim_);
    overflow_of_rep_[best_rep].push_back(
        static_cast<index_t>(overflow_ids_.size()));
    overflow_ids_.push_back(id);
    overflow_dist_.push_back(best);
    // Rule (1) validity: psi_r must stay an upper bound over all members.
    psi_[best_rep] = std::max(psi_[best_rep], best);
    return id;
  }

  /// Tombstones a point. Returns false if the id is unknown or already
  /// erased. Erasing a representative's point removes it from results but
  /// keeps it as a routing point (valid: the prune rules only need
  /// representatives as reference points; the k-th-NN bound is computed
  /// over live representatives only).
  bool erase(index_t id) {
    if (id >= next_id_ || erased_[id]) return false;
    erased_[id] = 1;
    ++erased_count_;
    qstore_ = {};  // see insert(): the store has no tombstone filter
    return true;
  }

  /// Number of live (non-erased) points.
  index_t num_active() const {
    return next_id_ - erased_count_;
  }

  /// Number of points sitting in unsorted overflow lists (rebuild to
  /// re-pack them).
  index_t overflow_size() const {
    return static_cast<index_t>(overflow_ids_.size());
  }

  /// Compacts the index: gathers all live rows and rebuilds from scratch
  /// with fresh representatives. Point ids are remapped densely in
  /// ascending old-id order; the mapping old-id -> new-id is returned
  /// (erased points map to kInvalidIndex).
  std::vector<index_t> rebuild() {
    const index_t live = num_active();
    Matrix<float> rows(live, dim_);
    std::vector<index_t> remap(next_id_, kInvalidIndex);
    index_t cursor = 0;
    // Original build points live in packed_ (permuted); inserts in overflow.
    // Gather in ascending old-id order for a deterministic remap.
    std::vector<const float*> row_of(next_id_, nullptr);
    for (index_t p = 0; p < packed_.rows(); ++p)
      row_of[packed_ids_[p]] = packed_.row(p);
    const std::size_t stride = reps_.stride();
    for (std::size_t ov = 0; ov < overflow_ids_.size(); ++ov)
      row_of[overflow_ids_[ov]] = overflow_data_.data() + ov * stride;
    for (index_t id = 0; id < next_id_; ++id) {
      if (erased_[id]) continue;
      std::memcpy(rows.row(cursor), row_of[id], sizeof(float) * dim_);
      remap[id] = cursor++;
    }
    build(rows, params_, metric_);
    return remap;
  }

  // ------------------------------------------------------------- queries ---

  /// Query-count threshold above which search() switches to the query-tile
  /// blocked path (Euclidean metric + SIMD-dispatched host only). One full
  /// tile is enough now that the per-query path itself runs the dispatched
  /// row-block kernel: the tile path's remaining edge is 16-way row reuse,
  /// which any full tile gets.
  static constexpr index_t kBlockedMinBatch = dispatch::kTile;

  /// List/overflow segments shorter than this stay on the adaptive scalar
  /// loop — below it, kernel-call setup outweighs the vector win.
  static constexpr index_t kKernelMinSegment = 16;

  /// k-NN for a batch of queries; parallel across queries. Batches of at
  /// least kBlockedMinBatch Euclidean queries additionally use the
  /// multi-query blocked kernel (see search_blocked) — same results, the
  /// paper's §3 BF-as-GEMM structure on the hot loop. If `stats` is
  /// non-null the aggregated work statistics are added to it.
  KnnResult search(const Matrix<float>& Q, index_t k,
                   SearchStats* stats = nullptr) const {
    assert(Q.cols() == dim_);
    if (use_blocked_path(Q.rows())) return search_blocked(Q, k, stats);
    KnnResult result(Q.rows(), k);
    const int nt = max_threads();
    std::vector<Scratch> scratch(static_cast<std::size_t>(nt));
    std::vector<SearchStats> tstats(static_cast<std::size_t>(nt));
    std::vector<TopK> heaps(static_cast<std::size_t>(nt), TopK(k));

    parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
      const auto tid = static_cast<std::size_t>(thread_id());
      TopK& top = heaps[tid];
      top.reset();
      search_one(Q.row(qi), k, top, scratch[tid], &tstats[tid]);
      top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
    });

    if (stats != nullptr)
      for (const SearchStats& s : tstats) stats->merge(s);
    return result;
  }

  /// True when search() will take the blocked batch path for nq queries.
  /// Consults the runtime dispatcher, so the decision tracks the ISA
  /// actually selected (including an RBC_FORCE_ISA override), not a
  /// configure-time probe. The blocked path parallelizes over tiles, so a
  /// batch must either fill the thread pool with tiles or be large enough
  /// (the pre-dispatch 64-query threshold) that per-rep sharing pays even
  /// with idle cores — otherwise the per-query path's finer-grained
  /// parallelism wins on multi-core hosts.
  bool use_blocked_path(index_t nq) const {
    if constexpr (!std::is_same_v<M, Euclidean>) {
      return false;  // the kernel computes squared L2 only
    } else {
      // With a compressed store the per-query path's quantized list scans
      // are the memory-bandwidth win; the blocked path would stream the
      // float rows through tile_gemm instead.
      if (qstore_.active()) return false;
      const index_t tiles = (nq + dispatch::kTile - 1) / dispatch::kTile;
      return nq >= kBlockedMinBatch &&
             (nq >= 64 || tiles >= static_cast<index_t>(max_threads())) &&
             dispatch::fast_kernel();
    }
  }

  /// Batched k-NN via query-tile blocking — the paper's §3 observation made
  /// literal on CPU: the dominant stage-3 list scans run through the
  /// runtime-dispatched multi-query GEMM-form kernel (distance/dispatch.hpp,
  /// tile_gemm with the norms cached at build), one ownership-list segment
  /// for dispatch::kTile queries at a time, instead of one (query, point)
  /// distance at a time.
  ///
  /// Results are IDENTICAL to the per-query path, ties included:
  ///  * stage 1 and the prune rules use the same scalar-exact distances and
  ///    the same strict comparisons;
  ///  * bounds are refreshed per representative instead of per point, which
  ///    loosens pruning only in the safe direction (extra candidates
  ///    examined, none dropped — the k best of any candidate superset that
  ///    contains the true k-set is the true k-set under the (distance, id)
  ///    order);
  ///  * the blocked kernel is a prefilter: any candidate within the
  ///    (margin-inflated) heap bound is re-measured with the scalar metric
  ///    before pushing, so the heap only ever orders bit-identical values.
  KnnResult search_blocked(const Matrix<float>& Q, index_t k,
                           SearchStats* stats = nullptr) const {
    assert(Q.cols() == dim_);
    const index_t nq = Q.rows();
    const index_t nr = reps_.rows();
    KnnResult result(nq, k);
    const float inv = 1.0f / (1.0f + params_.approx_eps);
    // Prefilter tolerances for the GEMM-form tile kernel: a relative part
    // for association-order rounding plus an absolute part scaled by the
    // norm magnitudes (the cancellation error of ||q||^2+||x||^2-2q.x).
    const float mrel = 1.0f + dispatch::tile_margin(dim_);
    const float mabs = dispatch::gemm_margin_scale(dim_);

    // ---- stage 1, whole batch: BF(Q, R) with exact scalar distances
    // (they feed pruning bounds, which must match the per-query path).
    Matrix<dist_t> rep_d(nq, nr);
    std::vector<dist_t> gamma1(nq), bound_k(nq);
    std::vector<index_t> nearest_rep(nq);
    parallel_for_dynamic(0, nq, [&](index_t qi) {
      const float* q = Q.row(qi);
      dist_t* row = rep_d.row(qi);
      TopK rep_top(k);
      dist_t g1 = kInfDist;
      index_t g1_rep = 0;
      for (index_t r = 0; r < nr; ++r) {
        const dist_t d = metric_(q, reps_.row(r), dim_);
        row[r] = d;
        if (!erased_[rep_ids_[r]]) rep_top.push(d, r);
        if (d < g1) {
          g1 = d;
          g1_rep = r;
        }
      }
      gamma1[qi] = g1;
      bound_k[qi] = rep_top.worst();
      nearest_rep[qi] = g1_rep;
    });
    counters::add_dist_evals(static_cast<std::uint64_t>(nq) * nr);

    // Tile assignment: queries routed to the same representative share
    // surviving lists, which is what fills the kernel's lanes usefully.
    std::vector<index_t> order(nq);
    for (index_t i = 0; i < nq; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
      return nearest_rep[a] < nearest_rep[b];
    });

    const index_t tiles =
        (nq + dispatch::kTile - 1) / dispatch::kTile;
    const int nt = max_threads();
    std::vector<SearchStats> tstats(static_cast<std::size_t>(nt));

    parallel_for_dynamic(0, tiles, [&](index_t tile) {
      SearchStats& local = tstats[static_cast<std::size_t>(thread_id())];
      const index_t t_lo = tile * dispatch::kTile;
      const index_t m = std::min<index_t>(dispatch::kTile, nq - t_lo);

      const float* qrows[dispatch::kTile];
      for (index_t t = 0; t < m; ++t) qrows[t] = Q.row(order[t_lo + t]);
      for (index_t t = m; t < dispatch::kTile; ++t) qrows[t] = qrows[0];
      std::vector<float> qt(static_cast<std::size_t>(dim_) * dispatch::kTile);
      dispatch::pack_tile(qrows, m, dim_, qt.data());
      float q_sq[dispatch::kTile];  // per-lane norms for the GEMM form
      for (index_t t = 0; t < dispatch::kTile; ++t)
        q_sq[t] = kernels::dot(qrows[t], qrows[t], dim_);

      std::vector<TopK> tops;
      tops.reserve(m);
      for (index_t t = 0; t < m; ++t) tops.emplace_back(k);
      local.queries += m;
      local.rep_dist_evals += static_cast<std::uint64_t>(m) * nr;

      // ---- stage 2 per lane, then a rep -> lanes map for the tile.
      // survivors_of[t] mirrors search_one's filter pass (initial bound).
      struct RepGroup {
        dist_t min_dr;
        index_t rep;
        std::uint32_t lanes = 0;  // bitmask over tile lanes
      };
      std::vector<RepGroup> groups;
      std::vector<index_t> group_of(nr, kInvalidIndex);
      for (index_t t = 0; t < m; ++t) {
        const index_t qi = order[t_lo + t];
        const dist_t* row = rep_d.row(qi);
        for (index_t r = 0; r < nr; ++r) {
          const dist_t dr = row[r];
          if (params_.use_overlap_rule && dr > bound_k[qi] + psi_[r]) {
            ++local.reps_pruned_overlap;
            continue;
          }
          if (params_.use_lemma_rule && dr > 2 * bound_k[qi] + gamma1[qi]) {
            ++local.reps_pruned_lemma;
            continue;
          }
          if (group_of[r] == kInvalidIndex) {
            group_of[r] = static_cast<index_t>(groups.size());
            groups.push_back({dr, r, 0});
          }
          RepGroup& g = groups[group_of[r]];
          g.lanes |= 1u << t;
          g.min_dr = std::min(g.min_dr, dr);
        }
      }
      // Nearest groups first so the per-lane bounds tighten early, exactly
      // like search_one's sorted survivor order.
      std::sort(groups.begin(), groups.end(),
                [](const RepGroup& a, const RepGroup& b) {
                  return a.min_dr < b.min_dr ||
                         (a.min_dr == b.min_dr && a.rep < b.rep);
                });

      std::vector<float> buf;
      const dist_t* pd = packed_dist_.data();
      for (const RepGroup& g : groups) {
        const index_t r = g.rep;
        const index_t list_lo = offsets_[r], list_hi = offsets_[r + 1];

        // Re-check the prune rules per lane against the live bound and
        // derive each lane's frozen scan segment from the sorted member
        // distances (identical sets to the adaptive early-exit/annulus
        // skips under the same bound).
        index_t active[dispatch::kTile];
        index_t seg_lo[dispatch::kTile], seg_hi[dispatch::kTile];
        dist_t lane_dr[dispatch::kTile];
        index_t num_active = 0;
        index_t ulo = list_hi, uhi = list_lo;
        std::uint64_t sum_len = 0;
        for (index_t t = 0; t < m; ++t) {
          if ((g.lanes & (1u << t)) == 0) continue;
          const index_t qi = order[t_lo + t];
          const dist_t dr = rep_d.at(qi, r);
          const dist_t b =
              std::min(bound_k[qi], tops[t].worst() * inv);
          if (params_.use_overlap_rule && dr > b + psi_[r]) {
            ++local.reps_pruned_overlap;
            continue;
          }
          if (params_.use_lemma_rule && dr > 2 * b + gamma1[qi]) {
            ++local.reps_pruned_lemma;
            continue;
          }
          ++local.reps_scanned;
          index_t hi = list_hi;
          if (params_.use_early_exit) {
            hi = static_cast<index_t>(
                std::upper_bound(pd + list_lo, pd + list_hi, dr + b) - pd);
            local.points_skipped_early_exit += list_hi - hi;
          }
          index_t lo = list_lo;
          if (params_.use_annulus_bound) {
            lo = static_cast<index_t>(
                std::lower_bound(pd + list_lo, pd + hi, dr - b) - pd);
            local.points_skipped_annulus += lo - list_lo;
          }
          active[num_active] = t;
          seg_lo[num_active] = lo;
          seg_hi[num_active] = hi;
          lane_dr[num_active] = dr;
          ++num_active;
          ulo = std::min(ulo, lo);
          uhi = std::max(uhi, hi);
          sum_len += hi - lo;
        }
        if (num_active == 0) continue;
        if (sum_len == 0) {
          // No packed member falls in any lane's window, but a surviving
          // representative's overflow list must still be scanned — the
          // per-query path always does (scan_rep_list), and an inserted
          // point there can be the true neighbor.
          std::uint64_t total = 0;
          for (index_t a = 0; a < num_active; ++a) {
            const index_t t = active[a];
            const index_t qi = order[t_lo + t];
            const std::uint64_t computed = scan_overflow(
                qrows[t], r, lane_dr[a], bound_k[qi], inv, tops[t], local);
            local.list_dist_evals += computed;
            total += computed;
          }
          counters::add_dist_evals(total);
          continue;
        }

        // Tile-kernel cost is per-row regardless of lane count; fall back
        // to the per-lane scan (itself kernelized — scan_rep_list_kernel)
        // when the lanes' segments overlap too little to pay for it. With
        // the per-lane minimum skip in both branches the crossover sits
        // near occupancy 3 (measured on bench_serve_throughput's clustered
        // workload).
        if (3 * static_cast<std::uint64_t>(uhi - ulo) >= sum_len) {
          for (index_t a = 0; a < num_active; ++a) {
            const index_t t = active[a];
            const index_t qi = order[t_lo + t];
            scan_rep_list(qrows[t], r, lane_dr[a], bound_k[qi], inv,
                          tops[t], local);
          }
          continue;
        }

        buf.resize(static_cast<std::size_t>(uhi - ulo) * dispatch::kTile);
        float lane_min[dispatch::kTile];
        dispatch::ops().tile_gemm(qt.data(), q_sq, dim_, packed_.data(),
                                  packed_.stride(), packed_sq_norms_.data(),
                                  ulo, uhi, buf.data(), lane_min);
        std::uint64_t computed[dispatch::kTile] = {};
        // Lane-major filter pass: a lane whose kernel minimum over the
        // whole union range already misses its (margin-inflated, max-norm)
        // bound has no candidate anywhere in its window — skip its filter
        // loop entirely. Per-lane heaps are independent, so lane-major
        // visits push the same sequence per lane as the row-major order.
        for (index_t a = 0; a < num_active; ++a) {
          const index_t t = active[a];
          // Eval accounting excludes tombstoned rows whether or not the
          // lane-min skip fires, so stats don't depend on heap warm-up.
          computed[a] = seg_hi[a] - seg_lo[a];
          if (erased_count_ != 0)
            for (index_t p = seg_lo[a]; p < seg_hi[a]; ++p)
              if (erased_[packed_ids_[p]]) --computed[a];
          const dist_t w0 = tops[t].worst();
          if (lane_min[t] >
              w0 * w0 * mrel + mabs * (q_sq[t] + packed_sq_max_))
            continue;
          for (index_t p = seg_lo[a]; p < seg_hi[a]; ++p) {
            if (erased_count_ != 0 && erased_[packed_ids_[p]]) continue;
            const float v =
                buf[static_cast<std::size_t>(p - ulo) * dispatch::kTile + t];
            const dist_t w = tops[t].worst();
            if (v > w * w * mrel + mabs * (q_sq[t] + packed_sq_norms_[p]))
              continue;
            // Candidate: re-measure with the scalar metric so the heap
            // orders the same bits as every other path.
            tops[t].push(metric_(qrows[t], packed_.row(p), dim_),
                         packed_ids_[p]);
          }
        }
        std::uint64_t total = 0;
        for (index_t a = 0; a < num_active; ++a) {
          const index_t t = active[a];
          const index_t qi = order[t_lo + t];
          computed[a] += scan_overflow(qrows[t], r, lane_dr[a], bound_k[qi],
                                       inv, tops[t], local);
          local.list_dist_evals += computed[a];
          total += computed[a];
        }
        counters::add_dist_evals(total);
      }

      for (index_t t = 0; t < m; ++t) {
        const index_t qi = order[t_lo + t];
        tops[t].extract_sorted(result.dists.row(qi), result.ids.row(qi));
      }
    });

    if (stats != nullptr)
      for (const SearchStats& s : tstats) stats->merge(s);
    return result;
  }

  /// k-NN for a single query into a caller-provided heap (hot path; no
  /// allocation beyond first use of the scratch).
  void search_one(const float* q, index_t k, TopK& out, Scratch& scratch,
                  SearchStats* stats = nullptr) const {
    const index_t nr = reps_.rows();
    scratch.rep_dists.resize(nr);

    // (1+eps)-approximation: the *candidate-driven* bound is shrunk by this
    // factor. A point pruned under the shrunken bound has distance
    // > worst/(1+eps), so any missed true j-th neighbor d_j satisfies
    // returned_j <= worst < (1+eps) * d_j. The representative-derived bound
    // is never shrunk: while the heap is filling, pruning stays exact-safe,
    // which guarantees the search always returns min(k, n) results no
    // matter how large eps is. inv == 1 is the exact algorithm.
    const float inv = 1.0f / (1.0f + params_.approx_eps);

    // ---- stage 1: BF(q, R) -------------------------------------------
    // gamma_1 = distance to the nearest representative; rep_bound = k-th
    // smallest representative distance (an upper bound on the k-th NN
    // distance, since representatives are database points).
    TopK rep_top(k);
    dist_t gamma1 = kInfDist;
    for (index_t r = 0; r < nr; ++r) {
      const dist_t d = metric_(q, reps_.row(r), dim_);
      scratch.rep_dists[r] = d;
      // rep_bound must be a k-th distance among *live* database points, so
      // erased representatives do not feed it; gamma1 is a routing quantity
      // and may use every representative.
      if (!erased_[rep_ids_[r]]) rep_top.push(d, r);
      if (d < gamma1) gamma1 = d;
    }
    counters::add_dist_evals(nr);
    const dist_t rep_bound = rep_top.worst();

    SearchStats local;
    local.queries = 1;
    local.rep_dist_evals = nr;

    // ---- stage 2: prune representatives ------------------------------
    // All comparisons are strict: a representative (or point) is discarded
    // only when every member is *strictly* worse than the current k-th
    // best, so ties at the boundary are preserved and the result matches
    // brute force exactly.
    scratch.survivors.clear();
    for (index_t r = 0; r < nr; ++r) {
      const dist_t dr = scratch.rep_dists[r];
      if (params_.use_overlap_rule && dr > rep_bound + psi_[r]) {
        ++local.reps_pruned_overlap;  // rule (1)
        continue;
      }
      if (params_.use_lemma_rule && dr > 2 * rep_bound + gamma1) {
        ++local.reps_pruned_lemma;  // rule (2), k-NN form
        continue;
      }
      scratch.survivors.push_back(r);
    }

    // Visit nearest representatives first so the bound tightens early.
    std::sort(scratch.survivors.begin(), scratch.survivors.end(),
              [&](index_t a, index_t b) {
                const dist_t da = scratch.rep_dists[a];
                const dist_t db = scratch.rep_dists[b];
                return da < db || (da == db && a < b);
              });

    // ---- stage 3: BF(q, X[L_1 u ... u L_t]) ---------------------------
    for (const index_t r : scratch.survivors) {
      const dist_t dr = scratch.rep_dists[r];
      // Re-check the prune rules against the *current* bound, which may
      // have tightened since the filter pass. min(rep_bound, out.worst())
      // is always an upper bound on the true k-th NN distance.
      const dist_t bound = std::min(rep_bound, out.worst() * inv);
      if (params_.use_overlap_rule && dr > bound + psi_[r]) {
        ++local.reps_pruned_overlap;
        continue;
      }
      if (params_.use_lemma_rule && dr > 2 * bound + gamma1) {
        ++local.reps_pruned_lemma;
        continue;
      }
      ++local.reps_scanned;
      scan_rep_list(q, r, dr, rep_bound, inv, out, local);
    }

    if (stats != nullptr) stats->merge(local);
  }

  /// Scan of L_r for one query: packed segment with the Claim-2 early exit
  /// and annulus bound, then the unsorted overflow members. Shared by
  /// search_one and the sparse-lane fallback of the blocked batch path.
  /// Euclidean segments of at least kKernelMinSegment rows run the
  /// dispatched row-block kernel (scan_rep_list_kernel below); anything
  /// else takes the adaptive per-point loop.
  void scan_rep_list(const float* q, index_t r, dist_t dr, dist_t rep_bound,
                     float inv, TopK& out, SearchStats& local) const {
    const index_t lo = offsets_[r], hi = offsets_[r + 1];
    if constexpr (kernel_metric<M>) {
      if (hi - lo >= kKernelMinSegment) {
        scan_rep_list_kernel(q, r, dr, rep_bound, inv, out, local);
        return;
      }
    }
    std::uint64_t computed = 0;
    for (index_t p = lo; p < hi; ++p) {
      const dist_t b = std::min(rep_bound, out.worst() * inv);
      // Claim 2 / footnote 2: members are sorted by rho(x, r); once
      // rho(x,r) > rho(q,r) + b, the triangle inequality gives
      // rho(q,x) >= rho(x,r) - rho(q,r) > b for this and all later
      // members — stop scanning this list.
      if (params_.use_early_exit && packed_dist_[p] > dr + b) {
        local.points_skipped_early_exit += hi - p;
        break;
      }
      // Annulus lower bound (extension): rho(q,x) >= rho(q,r) - rho(x,r).
      if (params_.use_annulus_bound && packed_dist_[p] < dr - b) {
        ++local.points_skipped_annulus;
        continue;
      }
      if (erased_count_ != 0 && erased_[packed_ids_[p]]) continue;
      out.push(metric_(q, packed_.row(p), dim_), packed_ids_[p]);
      ++computed;
    }
    computed += scan_overflow(q, r, dr, rep_bound, inv, out, local);
    counters::add_dist_evals(computed);
    local.list_dist_evals += computed;
  }

  /// Kernelized scan_rep_list: the early-exit / annulus window is frozen
  /// from the bound at entry (binary search over the sorted member
  /// distances — the same segment derivation as the blocked batch path),
  /// the window runs through the dispatched row-block kernel, and
  /// survivors of the margin-inflated heap bound are re-measured with the
  /// scalar metric. Identical results to the adaptive loop: freezing the
  /// bound only loosens the window (a candidate superset preserves the
  /// unique (distance, id) k-set), and the heap orders re-measured values
  /// only.
  void scan_rep_list_kernel(const float* q, index_t r, dist_t dr,
                            dist_t rep_bound, float inv, TopK& out,
                            SearchStats& local) const
    requires(kernel_metric<M>)
  {
    const index_t lo = offsets_[r], hi = offsets_[r + 1];
    const dist_t b = std::min(rep_bound, out.worst() * inv);
    const dist_t* pd = packed_dist_.data();
    index_t seg_hi = hi, seg_lo = lo;
    if (params_.use_early_exit) {
      seg_hi = static_cast<index_t>(
          std::upper_bound(pd + lo, pd + hi, dr + b) - pd);
      local.points_skipped_early_exit += hi - seg_hi;
    }
    if (params_.use_annulus_bound) {
      seg_lo = static_cast<index_t>(
          std::lower_bound(pd + lo, pd + seg_hi, dr - b) - pd);
      local.points_skipped_annulus += seg_lo - lo;
    }

    // Compressed tier: the window scans fp16/int8 codes with the
    // error-inflated bound and re-measures survivors against the float
    // rows — identical results (see kernel_scan.hpp). The store is only
    // ever active on an unmutated index (no tombstones, no overflow), so
    // no erased filter is needed here.
    if constexpr (quantized_metric<M>) {
      if (qstore_.active()) {
        quantized_scan_rows(q, packed_, qstore_, seg_lo, seg_hi, metric_,
                            out,
                            [this](index_t p) { return packed_ids_[p]; });
        std::uint64_t computed = seg_hi - seg_lo;
        computed += scan_overflow(q, r, dr, rep_bound, inv, out, local);
        counters::add_dist_evals(computed);
        local.list_dist_evals += computed;
        return;
      }
    }

    constexpr index_t kChunk = 512;
    float buf[kChunk];
    const dispatch::KernelOps& ops = dispatch::ops();
    for (index_t c = seg_lo; c < seg_hi; c += kChunk) {
      const index_t ce = std::min<index_t>(seg_hi, c + kChunk);
      const float chunk_min = ScanTraits<M>::rows(
          ops, q, dim_, packed_.data(), packed_.stride(), c, ce, buf);
      // Whole chunk misses the (entry) bound: nothing to offer the heap.
      if (chunk_min > scan_bound<M>(out.worst(), dim_)) continue;
      for (index_t p = c; p < ce; ++p) {
        if (erased_count_ != 0 && erased_[packed_ids_[p]]) continue;
        if (buf[p - c] > scan_bound<M>(out.worst(), dim_)) continue;
        out.push(metric_(q, packed_.row(p), dim_), packed_ids_[p]);
      }
    }
    std::uint64_t computed = seg_hi - seg_lo;
    computed += scan_overflow(q, r, dr, rep_bound, inv, out, local);
    counters::add_dist_evals(computed);
    local.list_dist_evals += computed;
  }

  /// Overflow members (dynamic inserts): unsorted, so no early exit; the
  /// annulus bound applies on both sides. Long Euclidean lists batch the
  /// annulus survivors through the dispatched gather kernel; short ones
  /// take the per-point loop. Returns distances computed (caller accounts
  /// them).
  std::uint64_t scan_overflow(const float* q, index_t r, dist_t dr,
                              dist_t rep_bound, float inv, TopK& out,
                              SearchStats& local) const {
    if constexpr (kernel_metric<M>) {
      if (overflow_of_rep_[r].size() >= kKernelMinSegment)
        return scan_overflow_kernel(q, r, dr, rep_bound, inv, out, local);
    }
    std::uint64_t computed = 0;
    for (const index_t ov : overflow_of_rep_[r]) {
      if (erased_[overflow_ids_[ov]]) continue;
      const dist_t b = std::min(rep_bound, out.worst() * inv);
      const dist_t member = overflow_dist_[ov];
      if (params_.use_annulus_bound &&
          (member < dr - b || member > dr + b)) {
        ++local.points_skipped_annulus;
        continue;
      }
      out.push(metric_(q, overflow_row(ov), dim_), overflow_ids_[ov]);
      ++computed;
    }
    return computed;
  }

  /// Gather-kernel form of scan_overflow: annulus-filter the (unsorted)
  /// members with the bound frozen at entry, batch the survivors through
  /// the dispatched gather kernel, re-measure prefilter survivors with the
  /// scalar metric. Frozen bound => candidate superset => identical
  /// results, as everywhere else.
  std::uint64_t scan_overflow_kernel(const float* q, index_t r, dist_t dr,
                                     dist_t rep_bound, float inv, TopK& out,
                                     SearchStats& local) const
    requires(kernel_metric<M>)
  {
    const dist_t b = std::min(rep_bound, out.worst() * inv);
    std::vector<index_t> cand;
    cand.reserve(overflow_of_rep_[r].size());
    for (const index_t ov : overflow_of_rep_[r]) {
      if (erased_[overflow_ids_[ov]]) continue;
      const dist_t member = overflow_dist_[ov];
      if (params_.use_annulus_bound &&
          (member < dr - b || member > dr + b)) {
        ++local.points_skipped_annulus;
        continue;
      }
      cand.push_back(ov);
    }
    kernel_scan_gather(
        q, dim_, overflow_data_.data(), reps_.stride(), cand.data(),
        static_cast<index_t>(cand.size()), metric_, out,
        [this](index_t ov) { return overflow_ids_[ov]; });
    return cand.size();
  }

  /// Exact range search: returns the ids of all points x with
  /// rho(q, x) <= radius, sorted ascending by id.
  std::vector<index_t> range_search(const float* q, dist_t radius) const {
    const index_t nr = reps_.rows();
    std::vector<index_t> hits;
    for (index_t r = 0; r < nr; ++r) {
      const dist_t dr = metric_(q, reps_.row(r), dim_);
      counters::add_dist_evals(1);
      // Every member of L_r is within psi_r of r, so the closest any member
      // can be to q is dr - psi_r.
      if (dr > radius + psi_[r]) continue;
      const index_t lo = offsets_[r], hi = offsets_[r + 1];
      std::uint64_t computed = 0;
      for (index_t p = lo; p < hi; ++p) {
        if (packed_dist_[p] > dr + radius) break;  // sorted-list early exit
        if (erased_count_ != 0 && erased_[packed_ids_[p]]) continue;
        const dist_t d = metric_(q, packed_.row(p), dim_);
        ++computed;
        if (d <= radius) hits.push_back(packed_ids_[p]);
      }
      for (const index_t ov : overflow_of_rep_[r]) {
        if (erased_[overflow_ids_[ov]]) continue;
        const dist_t d = metric_(q, overflow_row(ov), dim_);
        ++computed;
        if (d <= radius) hits.push_back(overflow_ids_[ov]);
      }
      counters::add_dist_evals(computed);
    }
    std::sort(hits.begin(), hits.end());
    return hits;
  }

  // ------------------------------------------------------ introspection ---

  index_t size() const { return n_; }
  index_t dim() const { return dim_; }
  index_t num_reps() const { return reps_.rows(); }
  const RbcParams& params() const { return params_; }
  const std::vector<index_t>& rep_ids() const { return rep_ids_; }
  dist_t psi(index_t r) const { return psi_[r]; }

  /// Original-database ids of the members of L_r (sorted by distance to r).
  std::span<const index_t> list_ids(index_t r) const {
    return {packed_ids_.data() + offsets_[r],
            static_cast<std::size_t>(offsets_[r + 1] - offsets_[r])};
  }
  /// Distances rho(x, r) matching list_ids(r).
  std::span<const dist_t> list_dists(index_t r) const {
    return {packed_dist_.data() + offsets_[r],
            static_cast<std::size_t>(offsets_[r + 1] - offsets_[r])};
  }

  /// Memory footprint of the index in bytes (excluding the caller's X).
  std::size_t memory_bytes() const {
    return packed_.size() * sizeof(float) + reps_.size() * sizeof(float) +
           packed_ids_.size() * sizeof(index_t) +
           packed_dist_.size() * sizeof(dist_t) +
           offsets_.size() * sizeof(index_t) + psi_.size() * sizeof(dist_t) +
           rep_ids_.size() * sizeof(index_t) +
           packed_sq_norms_.size() * sizeof(float) + qstore_.memory_bytes();
  }

  // ------------------------------------------------------- serialization ---

  void save(std::ostream& os) const {
    io::write_pod(os, io::kMagicExact);
    io::write_pod(os, io::kFormatVersion);
    io::write_string(os, M::name());
    io::write_pod(os, n_);
    io::write_pod(os, dim_);
    io::write_pod(os, params_);
    io::write_vec(os, rep_ids_);
    io::write_vec(os, psi_);
    io::write_vec(os, offsets_);
    io::write_vec(os, packed_ids_);
    io::write_vec(os, packed_dist_);
    io::write_matrix(os, reps_);
    io::write_matrix(os, packed_);
    // Dynamic state (empty vectors for a freshly built index).
    io::write_pod(os, next_id_);
    io::write_pod(os, erased_count_);
    io::write_vec(os, erased_);
    io::write_vec(os, overflow_data_);
    io::write_vec(os, overflow_ids_);
    io::write_vec(os, overflow_dist_);
    io::write_pod(os, static_cast<std::uint64_t>(overflow_of_rep_.size()));
    for (const auto& list : overflow_of_rep_) io::write_vec(os, list);
  }

  static RbcExactIndex load(std::istream& is, M metric = {}) {
    RbcExactIndex idx;
    idx.metric_ = metric;
    io::expect_pod(is, io::kMagicExact, "RbcExactIndex magic");
    io::expect_pod(is, io::kFormatVersion, "RbcExactIndex version");
    io::expect_string(is, M::name(), "RbcExactIndex metric");
    io::read_pod(is, idx.n_);
    io::read_pod(is, idx.dim_);
    io::read_pod(is, idx.params_);
    io::read_vec(is, idx.rep_ids_);
    io::read_vec(is, idx.psi_);
    io::read_vec(is, idx.offsets_);
    io::read_vec(is, idx.packed_ids_);
    io::read_vec(is, idx.packed_dist_);
    idx.reps_ = io::read_matrix(is);
    idx.packed_ = io::read_matrix(is);
    // Derived, not serialized (keeps the format stable across versions).
    idx.packed_sq_norms_ = detail::kernel_row_sq_norms(idx.packed_);
    idx.packed_sq_max_ = idx.packed_sq_norms_.empty()
                             ? 0.0f
                             : *std::max_element(idx.packed_sq_norms_.begin(),
                                                 idx.packed_sq_norms_.end());
    io::read_pod(is, idx.next_id_);
    io::read_pod(is, idx.erased_count_);
    io::read_vec(is, idx.erased_);
    io::read_vec(is, idx.overflow_data_);
    io::read_vec(is, idx.overflow_ids_);
    io::read_vec(is, idx.overflow_dist_);
    std::uint64_t lists = 0;
    io::read_pod(is, lists);
    idx.overflow_of_rep_.resize(lists);
    for (auto& list : idx.overflow_of_rep_) io::read_vec(is, list);
    return idx;
  }

 private:
  const float* overflow_row(std::size_t ov) const {
    return overflow_data_.data() + ov * reps_.stride();
  }

  M metric_{};
  RbcParams params_{};
  index_t n_ = 0;
  index_t dim_ = 0;

  Matrix<float> reps_;              // nr x d copies of representative rows
  std::vector<index_t> rep_ids_;    // original ids of representatives
  std::vector<dist_t> psi_;         // list radii
  std::vector<index_t> offsets_;    // CSR: nr + 1
  Matrix<float> packed_;            // n x d rows grouped by owner
  std::vector<index_t> packed_ids_;  // original id of each packed row
  std::vector<dist_t> packed_dist_;  // rho(x, owner(x)), sorted per list
  std::vector<float> packed_sq_norms_;  // ||row||^2 cache (GEMM-form kernel)
  float packed_sq_max_ = 0.0f;          // max norm (lane-skip threshold)

  // ---- compressed scan tier (see "compressed tier" section above) ----
  quant::Storage storage_req_ = quant::Storage::kFloat32;  // build request
  quant::QuantizedStore qstore_;  // active when built compressed + unmutated

  // ---- dynamic-update state (see "dynamic updates" section above) ----
  index_t next_id_ = 0;       // ids handed out so far (build + inserts)
  index_t erased_count_ = 0;  // live tombstones
  std::vector<std::uint8_t> erased_;      // by id; 1 = tombstoned
  std::vector<float> overflow_data_;      // inserted rows, reps_.stride() wide
  std::vector<index_t> overflow_ids_;     // id per overflow row
  std::vector<dist_t> overflow_dist_;     // rho(x, owner) per overflow row
  std::vector<std::vector<index_t>> overflow_of_rep_;  // per-rep row indices
};

}  // namespace rbc
