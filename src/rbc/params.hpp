// Tunable parameters of the Random Ball Cover (paper §4-§6).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace rbc {

/// How the random representative subset R is drawn (paper §4: "built by
/// choosing each element of the database independently at random with
/// probability nr/n").
enum class Sampling : std::uint8_t {
  /// Exactly num_reps distinct points, uniformly without replacement.
  /// The practical default: deterministic memory footprint.
  kExactCount,
  /// i.i.d. Bernoulli(nr/n) per point — the paper's model, matched by the
  /// theory; |R| is then only nr in expectation.
  kBernoulli,
};

/// Build- and search-time knobs shared by both RBC variants.
///
/// The "standard parameter setting" of the paper is nr = O(c^{3/2} sqrt(n))
/// for exact search (Theorem 1) and nr = s = c sqrt(n ln(1/delta)) for
/// one-shot (Theorem 2); num_reps == 0 defaults to ceil(sqrt(n)), the
/// c-agnostic baseline the experiments sweep around (Fig. 3, Appendix C).
struct RbcParams {
  /// Expected number of representatives nr. 0 = auto (ceil(sqrt(n))).
  index_t num_reps = 0;

  /// One-shot only: list length s (number of points owned per
  /// representative). 0 = auto (equal to the resolved num_reps, the paper's
  /// nr = s choice in §7.2).
  index_t points_per_rep = 0;

  /// Seed for representative selection; fixed seed => reproducible index.
  std::uint64_t seed = 0x5eed;

  Sampling sampling = Sampling::kExactCount;

  // ---- exact-search pruning controls (§5.2; ablation_pruning bench) ----

  /// Rule (1): discard r when rho(q,r) > gamma + psi_r (ball overlap test).
  bool use_overlap_rule = true;

  /// Rule (2): discard r when rho(q,r) > 3*gamma (Lemma 1). Generalized to
  /// k-NN as rho(q,r) > 2*gamma_k + gamma_1.
  bool use_lemma_rule = true;

  /// Claim 2 refinement: ownership lists are stored sorted by distance to
  /// their representative, and a list scan stops at the first member with
  /// rho(x,r) > rho(q,r) + gamma (no later member can improve).
  bool use_early_exit = true;

  /// Extension (not in the paper's algorithm, implied by the same triangle
  /// bound): skip an individual member without computing its distance when
  /// rho(x,r) < rho(q,r) - gamma. Off by default to match the paper.
  bool use_annulus_bound = false;

  /// (1+eps)-approximate exact search (paper §5, footnote 1: the exact
  /// algorithm "can be easily modified so that it only guarantees an
  /// approximate nearest neighbor, which reduces search time").
  /// 0 = exact. With eps > 0 every pruning bound is tightened by 1/(1+eps);
  /// the returned j-th distance is guaranteed <= (1+eps) * the true j-th
  /// distance. Applies to the exact index's k-NN search only.
  float approx_eps = 0.0f;

  // ---- one-shot search controls ----

  /// Extension: scan the ownership lists of this many nearest
  /// representatives instead of just the single nearest (trades time for
  /// recall, like IVF nprobe). 1 = the paper's algorithm.
  index_t num_probes = 1;

  /// Resolves num_reps for a database of n points.
  index_t resolve_num_reps(index_t n) const;

  /// Resolves the one-shot list length s for a database of n points.
  index_t resolve_points_per_rep(index_t n) const;
};

/// Theorem 2 parameter rule: nr = s = c * sqrt(n * ln(1/delta)); returns the
/// value clamped to [1, n]. Useful when an expansion-rate estimate is
/// available (see data/expansion_rate.hpp).
index_t oneshot_theory_params(index_t n, double c, double delta);

}  // namespace rbc
