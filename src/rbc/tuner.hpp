// Parameter auto-tuning.
//
// The paper sets nr analytically from the (unknown in practice) expansion
// rate, and observes empirically that performance is stable over a wide
// range (Appendix C). This tuner does what a practitioner actually does:
// sweep a geometric ladder of candidate settings on a sample of queries and
// pick the best measured configuration — work (distance evaluations) for
// the exact index, the smallest setting hitting a recall target for the
// one-shot index.
#pragma once

#include <utility>
#include <vector>

#include "common/matrix.hpp"
#include "rbc/params.hpp"

namespace rbc {

/// Outcome of a tuning sweep.
struct TuneResult {
  /// The chosen number of representatives (for one-shot: nr = s).
  index_t num_reps = 0;
  /// Measured objective at the chosen setting: distance evaluations per
  /// query (exact) or recall@1 (one-shot).
  double objective = 0.0;
  /// The full sweep: (candidate, objective) pairs, for inspection/plots.
  std::vector<std::pair<index_t, double>> sweep;
};

/// Picks num_reps for the exact index by minimizing measured distance
/// evaluations per query over `sample_queries` (k-NN at the given k).
/// Candidates default to a geometric ladder 2^i * sqrt(n)/4 .. 8 sqrt(n).
/// The returned setting can be fed into RbcParams::num_reps.
TuneResult tune_exact_num_reps(const Matrix<float>& X,
                               const Matrix<float>& sample_queries, index_t k,
                               RbcParams base = {},
                               std::vector<index_t> candidates = {});

/// Picks the smallest nr = s whose measured recall@1 over `sample_queries`
/// reaches `target_recall` (ground truth computed by brute force on the
/// sample). Falls back to the best-recall candidate if none reaches the
/// target; check TuneResult::objective.
TuneResult tune_oneshot_params(const Matrix<float>& X,
                               const Matrix<float>& sample_queries,
                               double target_recall, RbcParams base = {},
                               std::vector<index_t> candidates = {});

}  // namespace rbc
