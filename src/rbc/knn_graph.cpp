#include "rbc/knn_graph.hpp"

#include <algorithm>

namespace rbc {

std::vector<KnnEdge> symmetrize_knn_graph(const KnnResult& graph) {
  std::vector<KnnEdge> edges;
  edges.reserve(static_cast<std::size_t>(graph.ids.rows()) *
                graph.ids.cols());
  for (index_t i = 0; i < graph.ids.rows(); ++i)
    for (index_t j = 0; j < graph.ids.cols(); ++j) {
      const index_t neighbor = graph.ids.at(i, j);
      if (neighbor == kInvalidIndex) continue;
      const index_t u = std::min(i, neighbor);
      const index_t v = std::max(i, neighbor);
      if (u == v) continue;
      edges.push_back({u, v, graph.dists.at(i, j)});
    }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace rbc
