// Binary (de)serialization helpers for index persistence.
//
// Format: little-endian host layout, guarded by magic + version + metric
// name. Indexes round-trip bit-exactly (tested); files are not portable
// across architectures with different endianness, which is documented in the
// README.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"
#include "distance/quantized.hpp"

namespace rbc::io {

// Every serializable index format leads with one of these magics; the
// unified rbc::load_index() dispatches on them (see api/registry.hpp).
inline constexpr std::uint32_t kMagicExact = 0x52424358;      // "RBCX"
inline constexpr std::uint32_t kMagicOneShot = 0x52424331;    // "RBC1"
inline constexpr std::uint32_t kMagicBruteForce = 0x52424342;  // "RBCB"
inline constexpr std::uint32_t kMagicKdTree = 0x5242434B;      // "RBCK"
inline constexpr std::uint32_t kMagicBallTree = 0x52424354;    // "RBCT"
inline constexpr std::uint32_t kMagicCoverTree = 0x52424343;   // "RBCC"
inline constexpr std::uint32_t kMagicSharded = 0x52424353;     // "RBCS"
inline constexpr std::uint32_t kFormatVersion = 1;
/// Format version 2: identical to 1 except a metric-name tag follows the
/// version field. The unified backends write it (write_metric_header) so a
/// file remembers which metric it was built for; version-1 files (written
/// before metrics were runtime-selectable) load as "l2".
inline constexpr std::uint32_t kFormatVersionMetric = 2;
/// Format version 3: the mutable-index format (mutate/mutable_index.hpp) —
/// metric tag, raw-backend build knobs, then explicit global ids + rows for
/// the main structure, the delta shard, and the tombstone set. Only the
/// mutation-capable wrappers write or read it; raw backend loaders (and
/// read_metric_header) keep rejecting version >= 3 as unknown.
inline constexpr std::uint32_t kFormatVersionMutable = 3;
/// Format version 4: version 2 plus a storage tag (distance/quantized.hpp
/// registry name) after the metric tag. Raw backends write it ONLY when
/// built with compressed storage — float32 streams keep the version-2 byte
/// layout, so every pre-storage file and reader stays compatible. The
/// compressed code store itself follows the backend's concrete payload
/// (write_quantized_store below).
inline constexpr std::uint32_t kFormatVersionStorage = 4;
/// Format version 5: the mutable-index format (version 3) plus a storage
/// tag after the metric tag — again written only when storage != float32.
inline constexpr std::uint32_t kFormatVersionMutableStorage = 5;
/// Payload-dataset index files (metricspace/: strings, graphs, user blobs)
/// lead with their own magic — they carry a dataset, not a matrix, so no
/// dense loader could misread one. Layout (version 6): magic, version,
/// backend tag, metric-space tag, RbcParams, serialized dataset; search
/// structures are rebuilt deterministically from the params on load.
inline constexpr std::uint32_t kMagicPayload = 0x52424350;  // "RBCP"
inline constexpr std::uint32_t kFormatVersionPayload = 6;

/// Bytes between the current read position and the end of the stream, or
/// -1 when the stream is not seekable. Loaders use this to reject a
/// corrupt length field *before* allocating for it: a truncated or
/// bit-flipped file must fail with a clear error, never a multi-gigabyte
/// allocation (or worse) driven by garbage bytes.
inline std::int64_t remaining_bytes(std::istream& is) {
  const std::istream::pos_type here = is.tellg();
  if (here == std::istream::pos_type(-1)) return -1;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(here);
  if (end == std::istream::pos_type(-1) || !is) {
    is.clear();
    is.seekg(here);
    return -1;
  }
  return static_cast<std::int64_t>(end - here);
}

/// Throws unless the stream still holds `payload` bytes (no-op on
/// non-seekable streams, which cannot be measured).
inline void require_bytes(std::istream& is, std::uint64_t payload,
                          const char* what) {
  const std::int64_t left = remaining_bytes(is);
  if (left >= 0 && static_cast<std::uint64_t>(left) < payload)
    throw std::runtime_error(
        std::string("rbc::io: truncated or corrupt stream reading ") + what +
        " (" + std::to_string(payload) + " bytes claimed, " +
        std::to_string(left) + " left)");
}

template <class T>
void write_pod(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <class T>
void read_pod(std::istream& is, T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("rbc::io: truncated stream");
}

template <class T>
void expect_pod(std::istream& is, const T& expected, const char* what) {
  T actual{};
  read_pod(is, actual);
  if (actual != expected)
    throw std::runtime_error(std::string("rbc::io: mismatch reading ") + what);
}

inline void write_string(std::ostream& os, const std::string& s) {
  write_pod(os, static_cast<std::uint64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string read_string(std::istream& is) {
  std::uint64_t len = 0;
  read_pod(is, len);
  require_bytes(is, len, "string");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is) throw std::runtime_error("rbc::io: truncated string");
  return s;
}

inline void expect_string(std::istream& is, const std::string& expected,
                          const char* what) {
  if (read_string(is) != expected)
    throw std::runtime_error(std::string("rbc::io: mismatch reading ") + what);
}

/// Writes the version-2 header tail (version + metric tag). Call right
/// after the format magic.
inline void write_metric_header(std::ostream& os, const std::string& metric) {
  write_pod(os, kFormatVersionMetric);
  write_string(os, metric);
}

/// Writes the header tail for a backend with a storage mode: the version-2
/// bytes for float32 (compatibility — see kFormatVersionStorage), the
/// version-4 tail (version + metric tag + storage tag) otherwise.
inline void write_storage_header(std::ostream& os, const std::string& metric,
                                 const std::string& storage) {
  if (storage == "float32") {
    write_metric_header(os, metric);
    return;
  }
  write_pod(os, kFormatVersionStorage);
  write_string(os, metric);
  write_string(os, storage);
}

/// Reads the version field written after a magic and returns the file's
/// metric name: version 1 (pre-metric format) => "l2"; version 2 => the
/// stored tag; version 4 => metric + storage tags (rejected unless the
/// caller passed `storage` — a loader that cannot carry a storage mode
/// must not silently drop it). Any other version is a corrupt/unknown
/// file (std::runtime_error). `legacy`, when non-null, reports whether the
/// stream was version 1 (loaders whose v1 payload differs structurally
/// from v2 — the rbc wrappers — branch on it). Callers still validate the
/// returned names against the metric/storage registries — a garbage tag is
/// corruption, not a caller error.
inline std::string read_metric_header(std::istream& is, const char* what,
                                      bool* legacy = nullptr,
                                      std::string* storage = nullptr) {
  std::uint32_t version = 0;
  read_pod(is, version);
  if (legacy != nullptr) *legacy = version == kFormatVersion;
  if (storage != nullptr) *storage = "float32";
  if (version == kFormatVersion) return "l2";
  if (version == kFormatVersionStorage && storage != nullptr) {
    std::string metric = read_string(is);
    *storage = read_string(is);
    return metric;
  }
  if (version != kFormatVersionMetric)
    throw std::runtime_error(
        std::string("rbc::io: unsupported format version ") +
        std::to_string(version) + " reading " + what);
  return read_string(is);
}

template <class T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <class T>
void read_vec(std::istream& is, std::vector<T>& v) {
  std::uint64_t size = 0;
  read_pod(is, size);
  require_bytes(is, size, "vector");  // 1 byte/element: overflow-proof gate
  require_bytes(is, size * sizeof(T), "vector");
  v.resize(size);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  if (!is) throw std::runtime_error("rbc::io: truncated vector");
}

/// Writes only the logical (unpadded) payload; the padded stride is
/// reconstructed on read, so files are layout-independent.
inline void write_matrix(std::ostream& os, const Matrix<float>& m) {
  write_pod(os, m.rows());
  write_pod(os, m.cols());
  for (index_t i = 0; i < m.rows(); ++i)
    os.write(reinterpret_cast<const char*>(m.row(i)),
             static_cast<std::streamsize>(m.cols() * sizeof(float)));
}

inline Matrix<float> read_matrix(std::istream& is) {
  index_t rows = 0, cols = 0;
  read_pod(is, rows);
  read_pod(is, cols);
  const std::uint64_t cells =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
  require_bytes(is, cells, "matrix");  // 1 byte/cell: overflow-proof gate
  require_bytes(is, cells * sizeof(float), "matrix");
  Matrix<float> m(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    is.read(reinterpret_cast<char*>(m.row(i)),
            static_cast<std::streamsize>(cols * sizeof(float)));
  }
  if (!is) throw std::runtime_error("rbc::io: truncated matrix");
  return m;
}

/// Compressed row store (distance/quantized.hpp), appended after a
/// version-4 backend's concrete payload. Persisting the codes (rather than
/// re-quantizing on load) keeps a saved index byte-stable: quantize() is
/// deterministic today, but the saved file must not depend on that.
inline void write_quantized_store(std::ostream& os,
                                  const quant::QuantizedStore& store) {
  write_pod(os, static_cast<std::uint32_t>(store.mode));
  write_pod(os, store.rows);
  write_pod(os, store.cols);
  write_vec(os, store.fp16);
  write_vec(os, store.int8);
  write_vec(os, store.scale);
  write_vec(os, store.offset);
  write_vec(os, store.err);
  write_pod(os, store.err_max);
  write_vec(os, store.amp);
  write_pod(os, store.amp_max);
}

inline quant::QuantizedStore read_quantized_store(std::istream& is) {
  quant::QuantizedStore store;
  std::uint32_t mode = 0;
  read_pod(is, mode);
  if (mode != static_cast<std::uint32_t>(quant::Storage::kFp16) &&
      mode != static_cast<std::uint32_t>(quant::Storage::kInt8))
    throw std::runtime_error(
        "rbc::io: corrupt quantized store (unknown storage mode " +
        std::to_string(mode) + ")");
  store.mode = static_cast<quant::Storage>(mode);
  read_pod(is, store.rows);
  read_pod(is, store.cols);
  read_vec(is, store.fp16);
  read_vec(is, store.int8);
  read_vec(is, store.scale);
  read_vec(is, store.offset);
  read_vec(is, store.err);
  read_pod(is, store.err_max);
  read_vec(is, store.amp);
  read_pod(is, store.amp_max);
  const std::uint64_t cells = static_cast<std::uint64_t>(store.rows) *
                              static_cast<std::uint64_t>(store.cols);
  const std::uint64_t n = static_cast<std::uint64_t>(store.rows);
  const bool codes_ok = store.mode == quant::Storage::kFp16
                            ? store.fp16.size() == cells &&
                                  store.int8.empty() && store.scale.empty() &&
                                  store.offset.empty() && store.amp.empty()
                            : store.int8.size() == cells &&
                                  store.fp16.empty() &&
                                  store.scale.size() == n &&
                                  store.offset.size() == n &&
                                  store.amp.size() == n;
  if (!codes_ok || store.err.size() != n)
    throw std::runtime_error(
        "rbc::io: corrupt quantized store (size fields disagree with "
        "payload)");
  return store;
}

}  // namespace rbc::io
