// Random Ball Cover — one-shot search variant (paper §4, §5.1, §6.2).
//
// Build: BF(R, X) gives each representative the s nearest database points as
// its (overlapping) ownership list; psi_r is the distance to the s-th.
//
// Search: BF(q, R) finds the nearest representative r*, then BF(q, X[L_r*])
// answers from that single list. "Almost absurdly simple" (§5.1) — and with
// nr = s = c sqrt(n ln 1/delta) it returns the true NN with probability
// >= 1 - delta (Theorem 2).
//
// Extensions beyond the paper (both off by default):
//  * k-NN: the final scan keeps a k-heap instead of a running min;
//  * multi-probe (params.num_probes > 1): scan the lists of the p nearest
//    representatives, deduplicating the overlap — trades time for recall.
#pragma once

#include <cassert>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bruteforce/bf.hpp"
#include "bruteforce/kernel_scan.hpp"
#include "bruteforce/topk.hpp"
#include "common/matrix.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/runtime.hpp"
#include "rbc/params.hpp"
#include "rbc/sampling.hpp"
#include "rbc/serialize_io.hpp"
#include "rbc/stats.hpp"

namespace rbc {

template <DenseMetric M = Euclidean>
class RbcOneShotIndex {
 public:
  /// Per-thread scratch (reused across queries; allocation-free hot path).
  struct Scratch {
    TopK probes{1};
    std::unordered_set<index_t> seen;
    std::vector<dist_t> probe_dists;
    std::vector<index_t> probe_reps;
  };

  RbcOneShotIndex() = default;

  /// Builds the index: samples representatives and runs BF(R, X) to collect
  /// each representative's s nearest database points.
  void build(const Matrix<float>& X, RbcParams params = {}, M metric = {}) {
    metric_ = metric;
    params_ = params;
    n_ = X.rows();
    dim_ = X.cols();
    s_ = params.resolve_points_per_rep(n_);

    rep_ids_ = choose_representatives(n_, params);
    const index_t nr = static_cast<index_t>(rep_ids_.size());

    reps_ = Matrix<float>(nr, dim_);
    for (index_t r = 0; r < nr; ++r) reps_.copy_row_from(X, rep_ids_[r], r);

    // BF(R, X) with k = s (paper §4: "this procedure is simply a call to
    // BF(R, X)"). One independent k-NN per representative, parallelized
    // across representatives.
    packed_ = Matrix<float>(nr * s_, dim_);
    packed_ids_.assign(static_cast<std::size_t>(nr) * s_, kInvalidIndex);
    packed_dist_.assign(static_cast<std::size_t>(nr) * s_, kInfDist);
    psi_.assign(nr, 0.0f);

    const int nt = max_threads();
    std::vector<TopK> heaps(static_cast<std::size_t>(nt), TopK(s_));
    parallel_for_dynamic(0, nr, [&](index_t r) {
      TopK& top = heaps[static_cast<std::size_t>(thread_id())];
      top.reset();
      bf_scan_rows(reps_.row(r), X, 0, n_, metric_, top);
      const std::size_t base = static_cast<std::size_t>(r) * s_;
      top.extract_sorted(packed_dist_.data() + base, packed_ids_.data() + base);
      // s_ <= n, so the list is always full; psi is the distance to the
      // furthest (s-th) member.
      psi_[r] = packed_dist_[base + s_ - 1];
      for (index_t j = 0; j < s_; ++j)
        packed_.copy_row_from(X, packed_ids_[base + j],
                              static_cast<index_t>(base + j));
    });

    // Compressed scan tier: quantize the packed lists once at build. The
    // one-shot tier is already probabilistic, so the quantized store is
    // used as a standalone approximate mode — stage 2 ranks by the
    // quantized distances directly, no float re-measure (kernel_scan.hpp,
    // quantized_scan_rows_approx).
    if (storage_req_ != quant::Storage::kFloat32)
      qstore_ = quant::quantize(storage_req_, packed_);
    else
      qstore_ = {};
  }

  // ----------------------------------------------------- compressed tier ---

  /// Requests a compressed row store ("fp16"/"int8") for the stage-2 list
  /// scans; takes effect at the next build(). Euclidean only
  /// (quantized_metric) — callers gate before requesting. Unlike the exact
  /// index, searches then rank by quantized distances (approximate).
  void set_storage(quant::Storage mode) { storage_req_ = mode; }

  quant::Storage storage() const {
    return qstore_.active() ? qstore_.mode : quant::Storage::kFloat32;
  }

  const quant::QuantizedStore& quantized_store() const { return qstore_; }

  /// Installs a deserialized store (loader path); throws on a shape
  /// mismatch (corrupt or mismatched file).
  void adopt_quantized_store(quant::QuantizedStore store) {
    if (store.rows != packed_.rows() || store.cols != dim_)
      throw std::runtime_error(
          "rbc::io: corrupt quantized store (shape disagrees with index)");
    storage_req_ = store.mode;
    qstore_ = std::move(store);
  }

  // ------------------------------------------------------------- queries ---

  /// k-NN for a batch of queries; parallel across queries.
  KnnResult search(const Matrix<float>& Q, index_t k,
                   SearchStats* stats = nullptr) const {
    assert(Q.cols() == dim_);
    KnnResult result(Q.rows(), k);
    const int nt = max_threads();
    std::vector<Scratch> scratch(static_cast<std::size_t>(nt));
    std::vector<SearchStats> tstats(static_cast<std::size_t>(nt));
    std::vector<TopK> heaps(static_cast<std::size_t>(nt), TopK(k));

    parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
      const auto tid = static_cast<std::size_t>(thread_id());
      TopK& top = heaps[tid];
      top.reset();
      search_one(Q.row(qi), k, top, scratch[tid], &tstats[tid]);
      top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
    });

    if (stats != nullptr)
      for (const SearchStats& s : tstats) stats->merge(s);
    return result;
  }

  /// k-NN for a single query. Results land in `out` (caller resets).
  void search_one(const float* q, index_t k, TopK& out, Scratch& scratch,
                  SearchStats* stats = nullptr) const {
    (void)k;  // capacity lives in `out`; parameter kept for API symmetry
    const index_t nr = reps_.rows();
    const index_t probes = std::min<index_t>(
        params_.num_probes == 0 ? 1 : params_.num_probes, nr);

    SearchStats local;
    local.queries = 1;

    // Stage 1: BF(q, R) — nearest `probes` representatives, through the
    // dispatched row-block kernel for kernel metrics (prefilter + scalar
    // re-measure => identical probe selection; see kernel_scan.hpp).
    if (scratch.probes.k() != probes) scratch.probes = TopK(probes);
    scratch.probes.reset();
    // InnerProduct is excluded: its kernel prefilter needs a norm-scaled
    // absolute slack this index does not cache (the functor loop stays
    // exact; see kernel_scan.hpp).
    if constexpr (kernel_metric<M> && !std::is_same_v<M, InnerProduct>) {
      kernel_scan_rows(q, reps_, 0, nr, metric_, scratch.probes);
      counters::add_dist_evals(nr);
    } else {
      bf_scan_rows(q, reps_, 0, nr, metric_, scratch.probes);
    }
    local.rep_dist_evals = nr;

    scratch.probe_dists.resize(probes);
    scratch.probe_reps.resize(probes);
    auto& probe_dists = scratch.probe_dists;
    auto& probe_reps = scratch.probe_reps;
    scratch.probes.extract_sorted(probe_dists.data(), probe_reps.data());

    // Stage 2: BF(q, X[L_r]) over the chosen list(s). The single-probe
    // case — the paper's algorithm — is a contiguous packed-row scan and
    // runs the dispatched row-block kernel; the multi-probe extension keeps
    // the per-point loop because its dedup accounting skips duplicate
    // evaluations entirely.
    const bool dedup = probes > 1;
    if (dedup) scratch.seen.clear();
    for (index_t pi = 0; pi < probes; ++pi) {
      const index_t r = probe_reps[pi];
      if (r == kInvalidIndex) break;
      ++local.reps_scanned;
      const std::size_t base = static_cast<std::size_t>(r) * s_;
      // Compressed tier, single probe: rank by the quantized distances
      // (approximate — this tier's contract is recall, not exactness; the
      // store shaves another 2x/4x off the already-sublinear scan's memory
      // traffic). Multi-probe keeps the float loop: its dedup must skip
      // duplicate ids before they reach the heap.
      if constexpr (quantized_metric<M>) {
        if (!dedup && qstore_.active()) {
          quantized_scan_rows_approx<M>(
              q, dim_, qstore_, static_cast<index_t>(base),
              static_cast<index_t>(base + s_), out,
              [this](index_t p) { return packed_ids_[p]; });
          counters::add_dist_evals(s_);
          local.list_dist_evals += s_;
          continue;
        }
      }
      if constexpr (kernel_metric<M> && !std::is_same_v<M, InnerProduct>) {
        if (!dedup) {
          kernel_scan_rows(
              q, packed_, static_cast<index_t>(base),
              static_cast<index_t>(base + s_), metric_, out,
              [this](index_t p) { return packed_ids_[p]; });
          counters::add_dist_evals(s_);
          local.list_dist_evals += s_;
          continue;
        }
      }
      std::uint64_t computed = 0;
      for (index_t j = 0; j < s_; ++j) {
        const index_t id = packed_ids_[base + j];
        if (dedup && !scratch.seen.insert(id).second) continue;
        out.push(metric_(q, packed_.row(static_cast<index_t>(base + j)), dim_),
                 id);
        ++computed;
      }
      counters::add_dist_evals(computed);
      local.list_dist_evals += computed;
    }

    if (stats != nullptr) stats->merge(local);
  }

  // ------------------------------------------------------ introspection ---

  index_t size() const { return n_; }
  index_t dim() const { return dim_; }
  index_t num_reps() const { return reps_.rows(); }
  index_t points_per_rep() const { return s_; }
  const RbcParams& params() const { return params_; }
  const std::vector<index_t>& rep_ids() const { return rep_ids_; }
  dist_t psi(index_t r) const { return psi_[r]; }

  /// Original ids of L_r, ascending by (distance to r, id).
  std::span<const index_t> list_ids(index_t r) const {
    return {packed_ids_.data() + static_cast<std::size_t>(r) * s_, s_};
  }
  std::span<const dist_t> list_dists(index_t r) const {
    return {packed_dist_.data() + static_cast<std::size_t>(r) * s_, s_};
  }

  /// Copies the representative rows and packed list rows into caller-owned
  /// matrices (nr x d and nr*s x d respectively). Used by accelerator
  /// backends (gpu::GpuRbcOneShot) to upload the index without reaching
  /// into its internals.
  void export_rows(Matrix<float>& reps_out, Matrix<float>& packed_out) const {
    assert(reps_out.rows() == reps_.rows() && reps_out.cols() == dim_);
    assert(packed_out.rows() == packed_.rows() && packed_out.cols() == dim_);
    for (index_t r = 0; r < reps_.rows(); ++r)
      reps_out.copy_row_from(reps_, r, r);
    for (index_t p = 0; p < packed_.rows(); ++p)
      packed_out.copy_row_from(packed_, p, p);
  }

  std::size_t memory_bytes() const {
    return packed_.size() * sizeof(float) + reps_.size() * sizeof(float) +
           packed_ids_.size() * sizeof(index_t) +
           packed_dist_.size() * sizeof(dist_t) + psi_.size() * sizeof(dist_t) +
           rep_ids_.size() * sizeof(index_t) + qstore_.memory_bytes();
  }

  // ------------------------------------------------------- serialization ---

  void save(std::ostream& os) const {
    io::write_pod(os, io::kMagicOneShot);
    io::write_pod(os, io::kFormatVersion);
    io::write_string(os, M::name());
    io::write_pod(os, n_);
    io::write_pod(os, dim_);
    io::write_pod(os, s_);
    io::write_pod(os, params_);
    io::write_vec(os, rep_ids_);
    io::write_vec(os, psi_);
    io::write_vec(os, packed_ids_);
    io::write_vec(os, packed_dist_);
    io::write_matrix(os, reps_);
    io::write_matrix(os, packed_);
  }

  static RbcOneShotIndex load(std::istream& is, M metric = {}) {
    RbcOneShotIndex idx;
    idx.metric_ = metric;
    io::expect_pod(is, io::kMagicOneShot, "RbcOneShotIndex magic");
    io::expect_pod(is, io::kFormatVersion, "RbcOneShotIndex version");
    io::expect_string(is, M::name(), "RbcOneShotIndex metric");
    io::read_pod(is, idx.n_);
    io::read_pod(is, idx.dim_);
    io::read_pod(is, idx.s_);
    io::read_pod(is, idx.params_);
    io::read_vec(is, idx.rep_ids_);
    io::read_vec(is, idx.psi_);
    io::read_vec(is, idx.packed_ids_);
    io::read_vec(is, idx.packed_dist_);
    idx.reps_ = io::read_matrix(is);
    idx.packed_ = io::read_matrix(is);
    return idx;
  }

 private:
  M metric_{};
  RbcParams params_{};
  index_t n_ = 0;
  index_t dim_ = 0;
  index_t s_ = 0;  // points per representative

  Matrix<float> reps_;
  std::vector<index_t> rep_ids_;
  std::vector<dist_t> psi_;
  Matrix<float> packed_;             // (nr * s) x d; row r*s+j = j-th NN of rep r
  std::vector<index_t> packed_ids_;  // original ids, per-list ascending dist
  std::vector<dist_t> packed_dist_;  // rho(x, r) per packed row

  // ---- compressed scan tier (see "compressed tier" section above) ----
  quant::Storage storage_req_ = quant::Storage::kFloat32;
  quant::QuantizedStore qstore_;
};

}  // namespace rbc
