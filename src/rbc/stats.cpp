#include "rbc/stats.hpp"

namespace rbc {

void SearchStats::merge(const SearchStats& other) {
  queries += other.queries;
  rep_dist_evals += other.rep_dist_evals;
  list_dist_evals += other.list_dist_evals;
  reps_pruned_overlap += other.reps_pruned_overlap;
  reps_pruned_lemma += other.reps_pruned_lemma;
  reps_scanned += other.reps_scanned;
  points_skipped_early_exit += other.points_skipped_early_exit;
  points_skipped_annulus += other.points_skipped_annulus;
}

}  // namespace rbc
