// Random representative selection (paper §4).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "rbc/params.hpp"

namespace rbc {

/// Draws the representative id set for a database of n points according to
/// `params` (exact-count or Bernoulli sampling). Result is sorted,
/// duplicate-free, non-empty (at least one representative is always chosen
/// so search is well defined).
std::vector<index_t> choose_representatives(index_t n, const RbcParams& params);

/// Exactly `count` distinct uniform draws from [0, n), sorted.
/// Floyd's algorithm: O(count) expected work independent of n.
std::vector<index_t> sample_without_replacement(index_t n, index_t count,
                                                Rng& rng);

/// Each element of [0, n) independently with probability p, sorted.
std::vector<index_t> sample_bernoulli(index_t n, double p, Rng& rng);

}  // namespace rbc
