// Explicit instantiations of the index templates for the shipped metrics so
// downstream binaries (tests, benches, examples) link against one compiled
// copy instead of re-instantiating per translation unit.
#include "rbc/rbc_exact.hpp"
#include "rbc/rbc_oneshot.hpp"

namespace rbc {

template class RbcExactIndex<Euclidean>;
template class RbcExactIndex<L1>;
template class RbcExactIndex<LInf>;

template class RbcOneShotIndex<Euclidean>;
template class RbcOneShotIndex<L1>;
template class RbcOneShotIndex<LInf>;

}  // namespace rbc
