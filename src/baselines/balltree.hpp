// Metric ball tree baseline (Omohundro [23], Yianilos [31]) — the classic
// family the paper's §3 uses as its running example of a structure whose
// "interleaved series of distance computations, bound computations, and
// distance comparisons" parallelizes poorly. Implemented here as a second
// sequential baseline and correctness cross-check.
//
// Construction: pivot pair splitting — pick two far-apart database points,
// partition members by nearer pivot, recurse. Every node stores an actual
// database point as center plus the covering radius, so the structure works
// for any true metric. Queries are exact and deterministic under the
// library-wide (distance, id) order.
#pragma once

#include <utility>
#include <vector>

#include "bruteforce/topk.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "distance/metrics.hpp"

namespace rbc {

template <DenseMetric M = Euclidean>
class BallTree {
  static_assert(M::is_true_metric,
                "ball trees require a true metric (triangle inequality)");

 public:
  BallTree() = default;

  /// Builds over X (non-owning; X must outlive the tree).
  void build(const Matrix<float>& X, index_t leaf_size = 16, M metric = {},
             std::uint64_t seed = 0x5eed);

  /// Exact k-NN under the (distance, id) order.
  void knn(const float* q, index_t k, TopK& out) const;

  std::pair<dist_t, index_t> nn(const float* q) const {
    TopK top(1);
    knn(q, 1, top);
    dist_t d;
    index_t id;
    top.extract_sorted(&d, &id);
    return {d, id};
  }

  index_t size() const { return db_ == nullptr ? 0 : db_->rows(); }
  index_t num_nodes() const { return static_cast<index_t>(nodes_.size()); }

  /// Structural invariants: every member of a node lies within its radius;
  /// children partition the parent's range.
  bool check_invariants() const;

 private:
  struct Node {
    index_t center;         // db row acting as the ball center
    dist_t radius;          // max distance from center to any member
    std::int32_t left = -1;  // < 0: leaf
    std::int32_t right = -1;
    index_t begin = 0;  // members: order_[begin, end)
    index_t end = 0;
    bool leaf() const { return left < 0; }
  };

  std::int32_t build_node(index_t begin, index_t end, index_t leaf_size,
                          Rng& rng);
  void knn_descend(std::int32_t node, dist_t dist_to_center, const float* q,
                   TopK& out) const;

  const Matrix<float>* db_ = nullptr;
  M metric_{};
  std::vector<Node> nodes_;
  std::vector<index_t> order_;
};

}  // namespace rbc

#include "baselines/balltree_impl.hpp"
