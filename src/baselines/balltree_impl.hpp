// Template implementations for balltree.hpp. Include balltree.hpp instead.
#pragma once

#include <algorithm>

#include "common/counters.hpp"

namespace rbc {

template <DenseMetric M>
void BallTree<M>::build(const Matrix<float>& X, index_t leaf_size, M metric,
                        std::uint64_t seed) {
  db_ = &X;
  metric_ = metric;
  nodes_.clear();
  order_.resize(X.rows());
  for (index_t i = 0; i < X.rows(); ++i) order_[i] = i;
  if (X.rows() > 0) {
    Rng rng(seed);
    build_node(0, X.rows(), std::max<index_t>(leaf_size, 1), rng);
  }
}

template <DenseMetric M>
std::int32_t BallTree<M>::build_node(index_t begin, index_t end,
                                     index_t leaf_size, Rng& rng) {
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  const index_t d = db_->cols();
  const index_t count = end - begin;

  // Center: the member closest to the others would be ideal; a cheap
  // proxy — the farthest-point pivot p1 below — serves as the split seed,
  // while the node center is simply the first member (any member works;
  // the radius is computed exactly).
  const index_t center = order_[begin];
  dist_t radius = 0;
  for (index_t i = begin; i < end; ++i)
    radius = std::max(radius,
                      metric_(db_->row(center), db_->row(order_[i]), d));
  counters::add_dist_evals(count);
  nodes_[id].center = center;
  nodes_[id].radius = radius;
  nodes_[id].begin = begin;
  nodes_[id].end = end;

  if (count <= leaf_size || radius == 0) return id;  // leaf (or all dupes)

  // Pivot pair: p1 = farthest from a random seed, p2 = farthest from p1.
  const index_t seed_pt = order_[begin + rng.uniform_index(count)];
  index_t p1 = seed_pt;
  dist_t best = -1;
  for (index_t i = begin; i < end; ++i) {
    const dist_t dist = metric_(db_->row(seed_pt), db_->row(order_[i]), d);
    if (dist > best) {
      best = dist;
      p1 = order_[i];
    }
  }
  index_t p2 = p1;
  best = -1;
  for (index_t i = begin; i < end; ++i) {
    const dist_t dist = metric_(db_->row(p1), db_->row(order_[i]), d);
    if (dist > best) {
      best = dist;
      p2 = order_[i];
    }
  }
  counters::add_dist_evals(2ull * count);

  // Partition by nearer pivot (ties toward p1 for determinism).
  const auto mid_it = std::partition(
      order_.begin() + begin, order_.begin() + end, [&](index_t x) {
        const dist_t d1 = metric_(db_->row(p1), db_->row(x), d);
        const dist_t d2 = metric_(db_->row(p2), db_->row(x), d);
        return d1 <= d2;
      });
  counters::add_dist_evals(2ull * count);
  auto mid = static_cast<index_t>(mid_it - order_.begin());
  // Degenerate split (all points equidistant): force a balanced cut.
  if (mid == begin || mid == end) mid = begin + count / 2;

  const std::int32_t left = build_node(begin, mid, leaf_size, rng);
  const std::int32_t right = build_node(mid, end, leaf_size, rng);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

template <DenseMetric M>
void BallTree<M>::knn(const float* q, index_t k, TopK& out) const {
  (void)k;  // capacity lives in `out`
  if (db_ == nullptr || db_->rows() == 0) return;
  const dist_t d0 = metric_(q, db_->row(nodes_[0].center), db_->cols());
  counters::add_dist_evals(1);
  knn_descend(0, d0, q, out);
}

template <DenseMetric M>
void BallTree<M>::knn_descend(std::int32_t node,
                              dist_t /*dist_to_center: kept for symmetry
                                       with the recursive calls below*/,
                              const float* q, TopK& out) const {
  const Node& x = nodes_[static_cast<std::size_t>(node)];
  const index_t d = db_->cols();

  if (x.leaf()) {
    for (index_t i = x.begin; i < x.end; ++i)
      out.push(metric_(q, db_->row(order_[i]), d), order_[i]);
    counters::add_dist_evals(x.end - x.begin);
    return;
  }

  const Node& l = nodes_[static_cast<std::size_t>(x.left)];
  const Node& r = nodes_[static_cast<std::size_t>(x.right)];
  const dist_t dl = metric_(q, db_->row(l.center), d);
  const dist_t dr = metric_(q, db_->row(r.center), d);
  counters::add_dist_evals(2);

  // Visit the nearer ball first; prune when the ball's lower bound
  // strictly exceeds the current k-th best (ties always visited, keeping
  // results identical to brute force).
  const auto visit = [&](std::int32_t child, dist_t dist) {
    const Node& c = nodes_[static_cast<std::size_t>(child)];
    if (dist - c.radius > out.worst()) return;
    knn_descend(child, dist, q, out);
  };
  if (dl <= dr) {
    visit(x.left, dl);
    visit(x.right, dr);
  } else {
    visit(x.right, dr);
    visit(x.left, dl);
  }
}

template <DenseMetric M>
bool BallTree<M>::check_invariants() const {
  if (nodes_.empty()) return db_ == nullptr || db_->rows() == 0;
  const index_t d = db_->cols();
  for (const Node& node : nodes_) {
    for (index_t i = node.begin; i < node.end; ++i) {
      const dist_t dist =
          metric_(db_->row(node.center), db_->row(order_[i]), d);
      if (dist > node.radius) return false;
    }
    if (!node.leaf()) {
      const Node& l = nodes_[static_cast<std::size_t>(node.left)];
      const Node& r = nodes_[static_cast<std::size_t>(node.right)];
      if (l.begin != node.begin || l.end != r.begin || r.end != node.end)
        return false;
    }
  }
  return true;
}

}  // namespace rbc
