#include "baselines/balltree.hpp"

namespace rbc {

template class BallTree<Euclidean>;
template class BallTree<L1>;

}  // namespace rbc
