#include "baselines/kdtree.hpp"

#include <algorithm>
#include <cmath>

#include "common/counters.hpp"
#include "distance/kernels.hpp"

namespace rbc {

void KdTree::build(const Matrix<float>& X, index_t leaf_size) {
  db_ = &X;
  nodes_.clear();
  order_.resize(X.rows());
  for (index_t i = 0; i < X.rows(); ++i) order_[i] = i;
  if (X.rows() > 0) build_node(0, X.rows(), std::max<index_t>(leaf_size, 1));
}

std::int32_t KdTree::build_node(index_t begin, index_t end,
                                index_t leaf_size) {
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});

  if (end - begin <= leaf_size) {
    nodes_[id].begin = begin;
    nodes_[id].end = end;
    return id;
  }

  // Split on the dimension with the widest spread over this cell.
  const index_t d = db_->cols();
  int best_dim = 0;
  float best_spread = -1.0f;
  for (index_t j = 0; j < d; ++j) {
    float lo = db_->at(order_[begin], j), hi = lo;
    for (index_t i = begin + 1; i < end; ++i) {
      const float v = db_->at(order_[i], j);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_dim = static_cast<int>(j);
    }
  }
  if (best_spread <= 0.0f) {  // all points identical: force a leaf
    nodes_[id].begin = begin;
    nodes_[id].end = end;
    return id;
  }

  // Median split for a balanced tree.
  const index_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](index_t a, index_t b) {
                     const float va = db_->at(a, static_cast<index_t>(best_dim));
                     const float vb = db_->at(b, static_cast<index_t>(best_dim));
                     return va < vb || (va == vb && a < b);
                   });
  const float split_val = db_->at(order_[mid], static_cast<index_t>(best_dim));

  nodes_[id].split_dim = best_dim;
  nodes_[id].split_val = split_val;
  const std::int32_t left = build_node(begin, mid, leaf_size);
  const std::int32_t right = build_node(mid, end, leaf_size);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void KdTree::knn(const float* q, index_t k, TopK& out) const {
  (void)k;  // capacity lives in `out`
  if (db_ == nullptr || db_->rows() == 0) return;
  std::vector<float> plane_dists(db_->cols(), 0.0f);
  knn_descend(0, q, 0.0f, plane_dists, out);
}

void KdTree::knn_descend(std::int32_t node, const float* q,
                         dist_t sq_plane_dist, std::vector<float>& plane_dists,
                         TopK& out) const {
  const Node& x = nodes_[static_cast<std::size_t>(node)];
  const index_t d = db_->cols();

  if (x.leaf()) {
    for (index_t i = x.begin; i < x.end; ++i) {
      const index_t row = order_[i];
      out.push(std::sqrt(kernels::sq_l2(q, db_->row(row), d)), row);
    }
    counters::add_dist_evals(x.end - x.begin);
    return;
  }

  const auto dim = static_cast<index_t>(x.split_dim);
  const float delta = q[dim] - x.split_val;
  const std::int32_t near = delta <= 0.0f ? x.left : x.right;
  const std::int32_t far = delta <= 0.0f ? x.right : x.left;

  knn_descend(near, q, sq_plane_dist, plane_dists, out);

  // Lower bound on any point in the far cell: the accumulated squared
  // distance to the splitting planes crossed so far, with this node's plane
  // replacing any previous contribution of the same dimension.
  const float old = plane_dists[dim];
  const float updated = sq_plane_dist - old * old + delta * delta;
  const dist_t lower = std::sqrt(std::max(0.0f, updated));
  // Strict >: far cells that could tie the current k-th best are visited,
  // keeping results identical to brute force under the (distance, id) order.
  if (lower > out.worst()) return;

  plane_dists[dim] = std::fabs(delta);
  knn_descend(far, q, updated, plane_dists, out);
  plane_dists[dim] = old;
}

}  // namespace rbc
