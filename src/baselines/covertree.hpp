// Cover Tree baseline (Beygelzimer, Kakade & Langford, ICML 2006) — the
// state-of-the-art sequential competitor the paper compares against (§7.4).
//
// This is a from-scratch "simplified / nearest-ancestor" cover tree:
//  * every node stores one database point and an integer level;
//  * covering invariant: every child c of x satisfies
//      rho(x, c) <= covdist(x) = 2^level(x),   level(c) < level(x);
//  * duplicate points (distance exactly 0) are folded into the node they
//    duplicate rather than growing a chain;
//  * after construction each node stores maxdist = the maximum distance from
//    its point to any descendant, which gives the query-time lower bound
//      rho(q, any descendant of c) >= rho(q, c) - maxdist(c).
//
// Queries are exact and deterministic under the library-wide (distance, id)
// order, so tests can require cover-tree results == brute force, ties
// included. Queries run on a single core, exactly how the paper benchmarks
// the cover tree ("we run the Cover Tree only on one core", §7.4).
#pragma once

#include <utility>
#include <vector>

#include "bruteforce/topk.hpp"
#include "common/matrix.hpp"
#include "distance/metrics.hpp"

namespace rbc {

template <DenseMetric M = Euclidean>
class CoverTree {
  static_assert(M::is_true_metric,
                "cover trees require a true metric (triangle inequality)");

 public:
  CoverTree() = default;

  /// Builds by sequential insertion. Keeps a non-owning pointer to X, which
  /// must outlive the tree.
  void build(const Matrix<float>& X, M metric = {});

  /// Exact k-NN of q under the (distance, id) order.
  void knn(const float* q, index_t k, TopK& out) const;

  /// Convenience 1-NN.
  std::pair<dist_t, index_t> nn(const float* q) const {
    TopK top(1);
    knn(q, 1, top);
    dist_t d;
    index_t id;
    top.extract_sorted(&d, &id);
    return {d, id};
  }

  index_t size() const { return size_; }
  bool empty() const { return nodes_.empty(); }
  int root_level() const { return empty() ? 0 : nodes_[root_].level; }

  /// Structural invariant check for tests: covering property and level
  /// monotonicity at every edge, and maxdist correctness.
  bool check_invariants() const;

  /// Number of nodes (== number of distinct points; duplicates fold).
  index_t num_nodes() const { return static_cast<index_t>(nodes_.size()); }

 private:
  struct Node {
    index_t point;                  // row in the database
    int level;                      // covdist = 2^level
    float maxdist;                  // max distance to any descendant point
    index_t parent;                 // node index, kInvalidIndex for root
    std::vector<index_t> children;  // node indices
    std::vector<index_t> duplicates;  // db rows identical to `point`
  };

  static dist_t covdist(int level) { return std::ldexp(1.0f, level); }

  void insert(index_t db_row);
  void compute_maxdist();
  void knn_descend(index_t node, dist_t dist_to_node, const float* q,
                   TopK& out) const;

  const Matrix<float>* db_ = nullptr;
  M metric_{};
  std::vector<Node> nodes_;
  index_t root_ = kInvalidIndex;
  index_t size_ = 0;
};

}  // namespace rbc

#include "baselines/covertree_impl.hpp"
