#include "baselines/covertree.hpp"

namespace rbc {

template class CoverTree<Euclidean>;
template class CoverTree<L1>;

}  // namespace rbc
