// Template implementations for covertree.hpp. Include covertree.hpp instead.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/counters.hpp"

namespace rbc {

template <DenseMetric M>
void CoverTree<M>::build(const Matrix<float>& X, M metric) {
  db_ = &X;
  metric_ = metric;
  nodes_.clear();
  root_ = kInvalidIndex;
  size_ = X.rows();
  nodes_.reserve(X.rows());
  for (index_t i = 0; i < X.rows(); ++i) insert(i);
  compute_maxdist();
}

template <DenseMetric M>
void CoverTree<M>::insert(index_t db_row) {
  const float* p = db_->row(db_row);
  const index_t d = db_->cols();

  if (root_ == kInvalidIndex) {
    nodes_.push_back(Node{db_row, 0, 0.0f, kInvalidIndex, {}, {}});
    root_ = 0;
    return;
  }

  // Raise the root's level until its cover ball contains p. Growing
  // covdist(root) preserves the covering invariant for existing children.
  dist_t d_root = metric_(p, db_->row(nodes_[root_].point), d);
  counters::add_dist_evals(1);
  while (d_root > covdist(nodes_[root_].level)) ++nodes_[root_].level;

  // Descend: follow any child whose cover ball contains p (nearest such
  // child, for a more balanced tree); stop when none does.
  index_t current = root_;
  dist_t d_current = d_root;
  while (true) {
    if (d_current == 0.0f) {  // exact duplicate: fold, no new node
      nodes_[current].duplicates.push_back(db_row);
      return;
    }
    index_t best_child = kInvalidIndex;
    dist_t best_dist = kInfDist;
    for (const index_t c : nodes_[current].children) {
      const dist_t dc = metric_(p, db_->row(nodes_[c].point), d);
      counters::add_dist_evals(1);
      if (dc <= covdist(nodes_[c].level) && dc < best_dist) {
        best_dist = dc;
        best_child = c;
      }
    }
    if (best_child == kInvalidIndex) break;
    current = best_child;
    d_current = best_dist;
  }

  // p becomes a new child of `current`, one level down.
  const auto node_id = static_cast<index_t>(nodes_.size());
  nodes_.push_back(
      Node{db_row, nodes_[current].level - 1, 0.0f, current, {}, {}});
  nodes_[current].children.push_back(node_id);
}

template <DenseMetric M>
void CoverTree<M>::compute_maxdist() {
  const index_t d = db_->cols();
  // For every node, push its point's distance into every ancestor's maxdist.
  // O(n * depth) distance evaluations, done once at build.
  for (index_t v = 0; v < nodes_.size(); ++v) {
    const float* pv = db_->row(nodes_[v].point);
    index_t a = nodes_[v].parent;
    while (a != kInvalidIndex) {
      const dist_t dav = metric_(db_->row(nodes_[a].point), pv, d);
      counters::add_dist_evals(1);
      if (dav > nodes_[a].maxdist) nodes_[a].maxdist = dav;
      a = nodes_[a].parent;
    }
  }
}

template <DenseMetric M>
void CoverTree<M>::knn(const float* q, index_t k, TopK& out) const {
  (void)k;  // capacity lives in `out`; parameter kept for API symmetry
  if (root_ == kInvalidIndex) return;
  const dist_t d_root = metric_(q, db_->row(nodes_[root_].point), db_->cols());
  counters::add_dist_evals(1);
  knn_descend(root_, d_root, q, out);
}

template <DenseMetric M>
void CoverTree<M>::knn_descend(index_t node, dist_t dist_to_node,
                               const float* q, TopK& out) const {
  const Node& x = nodes_[node];
  out.push(dist_to_node, x.point);
  for (const index_t dup : x.duplicates) out.push(dist_to_node, dup);

  if (x.children.empty()) return;

  // Compute child distances once, then visit in ascending order so the
  // bound tightens as early as possible (classic branch-and-bound order).
  struct Visit {
    dist_t dist;
    index_t child;
  };
  std::vector<Visit> visits;
  visits.reserve(x.children.size());
  for (const index_t c : x.children) {
    visits.push_back(
        {metric_(q, db_->row(nodes_[c].point), db_->cols()), c});
  }
  counters::add_dist_evals(x.children.size());
  std::sort(visits.begin(), visits.end(), [](const Visit& a, const Visit& b) {
    return a.dist < b.dist || (a.dist == b.dist && a.child < b.child);
  });

  for (const Visit& v : visits) {
    // Lower bound on any point in c's subtree: rho(q,c) - maxdist(c).
    // Strict >: a subtree that could still tie the current k-th best (and
    // win on id) is always visited, keeping results identical to brute
    // force.
    if (v.dist - nodes_[v.child].maxdist > out.worst()) continue;
    knn_descend(v.child, v.dist, q, out);
  }
}

template <DenseMetric M>
bool CoverTree<M>::check_invariants() const {
  if (root_ == kInvalidIndex) return nodes_.empty();
  const index_t d = db_->cols();
  for (index_t v = 0; v < nodes_.size(); ++v) {
    const Node& x = nodes_[v];
    for (const index_t c : x.children) {
      if (nodes_[c].level >= x.level) return false;  // levels must decrease
      if (nodes_[c].parent != v) return false;
      const dist_t dc = metric_(db_->row(x.point), db_->row(nodes_[c].point), d);
      if (dc > covdist(x.level)) return false;  // covering
      if (dc > x.maxdist) return false;         // maxdist upper-bounds child
    }
    for (const index_t dup : x.duplicates) {
      if (metric_(db_->row(x.point), db_->row(dup), d) != 0.0f) return false;
    }
  }
  return true;
}

}  // namespace rbc
