// kd-tree baseline. The paper notes (§7.1) that "in very low-dimensional
// spaces, basic data structures like kd-trees are extremely effective"; this
// implementation provides that reference point for the low-dimensional
// datasets (tiny4/tiny8) and a correctness cross-check for the test suite.
//
// Euclidean metric only (axis-aligned splitting planes bound L2 distances).
// Exact, deterministic under the (distance, id) order.
#pragma once

#include <utility>
#include <vector>

#include "bruteforce/topk.hpp"
#include "common/matrix.hpp"

namespace rbc {

class KdTree {
 public:
  KdTree() = default;

  /// Builds over X (non-owning; X must outlive the tree).
  /// `leaf_size` points or fewer form a leaf scanned linearly.
  void build(const Matrix<float>& X, index_t leaf_size = 16);

  /// Exact k-NN of q (Euclidean).
  void knn(const float* q, index_t k, TopK& out) const;

  std::pair<dist_t, index_t> nn(const float* q) const {
    TopK top(1);
    knn(q, 1, top);
    dist_t d;
    index_t id;
    top.extract_sorted(&d, &id);
    return {d, id};
  }

  index_t size() const { return db_ == nullptr ? 0 : db_->rows(); }
  index_t num_nodes() const { return static_cast<index_t>(nodes_.size()); }

 private:
  struct Node {
    // Interior: split dimension/value and children. Leaf: child == -1 and
    // [begin, end) indexes into order_.
    int split_dim = -1;
    float split_val = 0.0f;
    std::int32_t left = -1;
    std::int32_t right = -1;
    index_t begin = 0;
    index_t end = 0;
    bool leaf() const { return left < 0; }
  };

  std::int32_t build_node(index_t begin, index_t end, index_t leaf_size);
  void knn_descend(std::int32_t node, const float* q, dist_t sq_plane_dist,
                   std::vector<float>& plane_dists, TopK& out) const;

  const Matrix<float>* db_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<index_t> order_;  // permutation of db rows, partitioned
};

}  // namespace rbc
