// Compressed row storage for the dense scan tier (ROADMAP item 1): fp16 and
// int8 row codes with per-row dequantization parameters, built once at index
// time next to the float matrix the exact re-measure step keeps.
//
// The dense scans are memory-bandwidth-bound at AVX-512 widths, so the next
// raw-speed multiple comes from shrinking bytes-per-vector, not more FLOPs —
// the central lesson of the André fast-scan lineage (PAPERS.md). A quantized
// scan reads 2 (fp16) or 1 (int8) bytes per feature instead of 4 and
// dequantizes in registers, fused into the same squared-L2 accumulate the
// float `rows` kernels run (see the rows_fp16 / rows_int8 entries of
// dispatch::KernelOps).
//
// Exactness contract (the prefilter argument of kernel_scan.hpp, extended):
// the quantized kernel measures d(q, x̂) against the *dequantized* point x̂,
// not x. Per row we store err_r >= ||x_r - x̂_r||, so by the triangle
// inequality any x_r with d(q, x_r) <= B satisfies d(q, x̂_r) <= B + err_r.
// Scans therefore accept every kernel value inside
//   (B + err_r + fp_slack)^2 * (1 + tile_margin(d))
// and re-measure survivors with the scalar float metric — results stay
// bit-identical to the float32 path under every ISA. fp_slack covers the
// kernel's own dequantize-arithmetic rounding (see quantized_scan_rows).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"

namespace rbc::quant {

/// Row-store encodings of the unified API (IndexOptions::storage).
enum class Storage : int { kFloat32 = 0, kFp16 = 1, kInt8 = 2 };

/// Canonical name ("float32", "fp16", "int8").
const char* name(Storage storage) noexcept;

/// Resolves a storage name; returns false (leaving `out` untouched) for an
/// unknown name.
bool lookup(std::string_view name, Storage& out) noexcept;

/// Parses and validates a backend's requested storage mode against the set
/// it supports — the storage twin of metric::require, sharing its uniform
/// std::invalid_argument shape:
///   rbc::Index[<backend>]: unsupported storage '<s>' (supported: ...)
Storage require(const char* backend, std::string_view requested,
                std::span<const Storage> supported);
inline Storage require(const char* backend, std::string_view requested,
                       std::initializer_list<Storage> supported) {
  return require(backend, requested,
                 std::span<const Storage>(supported.begin(), supported.size()));
}

/// The names of `supported`, in the given order — what backends put in
/// IndexInfo::supported_storage.
std::vector<std::string> names(std::span<const Storage> supported);
inline std::vector<std::string> names(
    std::initializer_list<Storage> supported) {
  return names(std::span<const Storage>(supported.begin(), supported.size()));
}

// -------------------------------------------------- software fp16 codec ---
// IEEE binary16 with round-to-nearest-even, the reference the hardware
// converters (F16C VCVTPS2PH, AVX-512 VCVTPH2PS) agree with bit for bit —
// what keeps the scalar table's fp16 kernels byte-compatible with the SIMD
// tables over one shared code buffer.

std::uint16_t fp16_encode(float value) noexcept;
float fp16_decode(std::uint16_t code) noexcept;

// ----------------------------------------------------- quantized row store --

/// Compressed codes for one row-major matrix. Rows are packed contiguously
/// (stride == cols — no padding lanes); the float matrix the codes were
/// built from stays with the owning index for the exact re-measure step.
struct QuantizedStore {
  Storage mode = Storage::kFloat32;
  index_t rows = 0;
  index_t cols = 0;

  /// kFp16: rows * cols binary16 codes.
  std::vector<std::uint16_t> fp16;
  /// kInt8: rows * cols codes in [-127, 127] plus per-row affine dequant
  /// x̂_i = code_i * scale[r] + offset[r] (offset = row midpoint, scale =
  /// row range / 254 — chosen so every row value lands inside the code
  /// range and a constant row encodes exactly with scale 0).
  std::vector<std::int8_t> int8;
  std::vector<float> scale;
  std::vector<float> offset;

  /// Per-row reconstruction error: err[r] >= ||x_r - x̂_r|| (computed in
  /// double, inflated to absorb its own rounding). err_max = max over rows,
  /// the chunk-skip bound.
  std::vector<float> err;
  float err_max = 0.0f;
  /// Per-row magnitude bound for the int8 kernel's fused-dequant rounding
  /// slack (||x̂_r|| + 2 |offset_r| sqrt(d); 0 for fp16 — see
  /// quantized_scan_rows). amp_max = max over rows.
  std::vector<float> amp;
  float amp_max = 0.0f;

  /// True when this store holds codes a quantized scan can run on.
  bool active() const noexcept {
    return mode != Storage::kFloat32 && rows > 0;
  }
  std::size_t memory_bytes() const noexcept {
    return fp16.size() * sizeof(std::uint16_t) + int8.size() +
           (scale.size() + offset.size() + err.size() + amp.size()) *
               sizeof(float);
  }
};

/// Builds the compressed store for X under `mode` (kFloat32 returns an
/// inactive store). Deterministic: a pure function of the float rows, so
/// serialization can persist the tag alone and rebuild codes at load —
/// but the unified API persists the codes too (see io::write_quantized_store)
/// to keep load cost proportional to the stream.
QuantizedStore quantize(Storage mode, const Matrix<float>& X);

}  // namespace rbc::quant
