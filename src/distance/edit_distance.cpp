#include "distance/edit_distance.hpp"

#include <algorithm>

#include "common/counters.hpp"

namespace rbc {

index_t edit_distance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  const std::size_t m = b.size();
  // Cost accounting: one unit per DP cell filled (character comparison).
  counters::add_metric_cost(static_cast<std::uint64_t>(a.size()) * m);
  if (m == 0) return static_cast<index_t>(a.size());

  // Single rolling row of the DP table.
  std::vector<index_t> row(m + 1);
  for (std::size_t j = 0; j <= m; ++j) row[j] = static_cast<index_t>(j);

  for (std::size_t i = 1; i <= a.size(); ++i) {
    index_t prev_diag = row[0];  // DP[i-1][0]
    row[0] = static_cast<index_t>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      const index_t del = row[j] + 1;       // DP[i-1][j] + 1
      const index_t ins = row[j - 1] + 1;   // DP[i][j-1] + 1
      const index_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0u : 1u);
      prev_diag = row[j];
      row[j] = std::min({del, ins, sub});
    }
  }
  return row[m];
}

index_t edit_distance_banded(std::string_view a, std::string_view b,
                             index_t band) {
  if (a.size() < b.size()) std::swap(a, b);
  const std::size_t n = a.size(), m = b.size();
  // Length difference alone forces at least that many edits.
  if (n - m > band) return band + 1;
  if (m == 0) return static_cast<index_t>(n);

  const index_t big = band + 1;  // saturating "out of band" value
  std::vector<index_t> row(m + 1, big);
  for (std::size_t j = 0; j <= std::min<std::size_t>(m, band); ++j)
    row[j] = static_cast<index_t>(j);

  std::uint64_t cells = 0;  // DP cells actually filled (the banded saving)
  for (std::size_t i = 1; i <= n; ++i) {
    // Only cells with |i-j| <= band can hold values <= band.
    const std::size_t lo = i > band ? i - band : 1;
    const std::size_t hi = std::min<std::size_t>(m, i + band);
    cells += hi >= lo ? hi - lo + 1 : 0;
    index_t prev_diag = (lo == 1) ? row[0] : big;
    if (lo > 1) prev_diag = row[lo - 1];
    row[lo - 1] = (lo == 1 && i <= band) ? static_cast<index_t>(i) : big;
    index_t row_min = row[lo - 1];
    for (std::size_t j = lo; j <= hi; ++j) {
      const index_t del = row[j] >= big ? big : row[j] + 1;
      const index_t ins = row[j - 1] >= big ? big : row[j - 1] + 1;
      index_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0u : 1u);
      if (sub > big) sub = big;
      prev_diag = row[j];
      row[j] = std::min({del, ins, sub});
      row_min = std::min(row_min, row[j]);
    }
    if (hi < m) row[hi + 1] = big;  // invalidate stale cell right of the band
    if (row_min >= big) {            // the whole band overflowed: early out
      counters::add_metric_cost(cells);
      return big;
    }
  }
  counters::add_metric_cost(cells);
  return std::min(row[m], big);
}

}  // namespace rbc
