// AVX-512F kernel table. Compiled with -mavx512f when the compiler supports
// it; selected at runtime only when CPUID reports AVX-512F. The 16-lane
// registers make the tile shapes particularly clean: one zmm accumulator
// covers the whole 16-query tile, and the feature-axis kernels use masked
// loads for the tail instead of a scalar epilogue.
#include "distance/isa_tables.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>

#include <cstdint>
#include <cstring>

#include "distance/quantized.hpp"

namespace rbc::dispatch::detail {

namespace {

void tile_avx512(const float* qt, index_t d, const float* x,
                 std::size_t stride, index_t lo, index_t hi, float* out,
                 float* lane_min) {
  __m512 vmin = _mm512_set1_ps(kInfDist);
  for (index_t p = lo; p < hi; ++p) {
    const float* row = x + static_cast<std::size_t>(p) * stride;
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    index_t i = 0;
    // Two rows of the transposed tile per iteration: independent chains.
    for (; i + 2 <= d; i += 2) {
      const float* q = qt + static_cast<std::size_t>(i) * kTile;
      const __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(q),
                                      _mm512_set1_ps(row[i]));
      const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(q + kTile),
                                      _mm512_set1_ps(row[i + 1]));
      acc0 = _mm512_fmadd_ps(d0, d0, acc0);
      acc1 = _mm512_fmadd_ps(d1, d1, acc1);
    }
    if (i < d) {
      const __m512 diff =
          _mm512_sub_ps(_mm512_loadu_ps(qt + static_cast<std::size_t>(i) *
                                        kTile),
                        _mm512_set1_ps(row[i]));
      acc0 = _mm512_fmadd_ps(diff, diff, acc0);
    }
    const __m512 v = _mm512_add_ps(acc0, acc1);
    vmin = _mm512_min_ps(vmin, v);
    _mm512_storeu_ps(out + static_cast<std::size_t>(p - lo) * kTile, v);
  }
  _mm512_storeu_ps(lane_min, vmin);
}

void tile_gemm_avx512(const float* qt, const float* q_sq, index_t d,
                      const float* x, std::size_t stride, const float* x_sq,
                      index_t lo, index_t hi, float* out, float* lane_min) {
  const __m512 qs = _mm512_loadu_ps(q_sq);
  const __m512 zero = _mm512_setzero_ps();
  const __m512 minus2 = _mm512_set1_ps(-2.0f);
  __m512 vmin = _mm512_set1_ps(kInfDist);
  for (index_t p = lo; p < hi; ++p) {
    const float* row = x + static_cast<std::size_t>(p) * stride;
    __m512 dot0 = _mm512_setzero_ps();
    __m512 dot1 = _mm512_setzero_ps();
    index_t i = 0;
    for (; i + 2 <= d; i += 2) {
      const float* q = qt + static_cast<std::size_t>(i) * kTile;
      dot0 = _mm512_fmadd_ps(_mm512_loadu_ps(q), _mm512_set1_ps(row[i]),
                             dot0);
      dot1 = _mm512_fmadd_ps(_mm512_loadu_ps(q + kTile),
                             _mm512_set1_ps(row[i + 1]), dot1);
    }
    if (i < d)
      dot0 = _mm512_fmadd_ps(
          _mm512_loadu_ps(qt + static_cast<std::size_t>(i) * kTile),
          _mm512_set1_ps(row[i]), dot0);
    const __m512 base = _mm512_add_ps(qs, _mm512_set1_ps(x_sq[p]));
    const __m512 v = _mm512_max_ps(
        _mm512_fmadd_ps(minus2, _mm512_add_ps(dot0, dot1), base), zero);
    vmin = _mm512_min_ps(vmin, v);
    _mm512_storeu_ps(out + static_cast<std::size_t>(p - lo) * kTile, v);
  }
  _mm512_storeu_ps(lane_min, vmin);
}

/// One query against one row with a masked tail load (no scalar epilogue).
inline float sq_l2_one(const float* q, const float* row, index_t d) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  index_t i = 0;
  for (; i + 32 <= d; i += 32) {
    const __m512 d0 =
        _mm512_sub_ps(_mm512_loadu_ps(q + i), _mm512_loadu_ps(row + i));
    const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(q + i + 16),
                                    _mm512_loadu_ps(row + i + 16));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 16 <= d; i += 16) {
    const __m512 diff =
        _mm512_sub_ps(_mm512_loadu_ps(q + i), _mm512_loadu_ps(row + i));
    acc0 = _mm512_fmadd_ps(diff, diff, acc0);
  }
  if (i < d) {
    const __mmask16 tail =
        static_cast<__mmask16>((1u << (d - i)) - 1u);
    const __m512 diff = _mm512_sub_ps(_mm512_maskz_loadu_ps(tail, q + i),
                                      _mm512_maskz_loadu_ps(tail, row + i));
    acc1 = _mm512_fmadd_ps(diff, diff, acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float rows_avx512(const float* q, index_t d, const float* x,
                  std::size_t stride, index_t lo, index_t hi, float* out) {
  const __mmask16 tail = d % 16 != 0
                             ? static_cast<__mmask16>((1u << (d % 16)) - 1u)
                             : static_cast<__mmask16>(0xffff);
  float best = kInfDist;
  index_t p = lo;
  for (; p + kRowBlock <= hi; p += kRowBlock) {
    const float* r[kRowBlock];
    for (index_t b = 0; b < kRowBlock; ++b)
      r[b] = x + static_cast<std::size_t>(p + b) * stride;
    __m512 acc[kRowBlock] = {
        _mm512_setzero_ps(), _mm512_setzero_ps(), _mm512_setzero_ps(),
        _mm512_setzero_ps(), _mm512_setzero_ps(), _mm512_setzero_ps(),
        _mm512_setzero_ps(), _mm512_setzero_ps()};
    index_t i = 0;
    for (; i + 16 <= d; i += 16) {
      const __m512 qv = _mm512_loadu_ps(q + i);
      for (index_t b = 0; b < kRowBlock; ++b) {
        const __m512 diff = _mm512_sub_ps(qv, _mm512_loadu_ps(r[b] + i));
        acc[b] = _mm512_fmadd_ps(diff, diff, acc[b]);
      }
    }
    if (i < d) {
      const __m512 qv = _mm512_maskz_loadu_ps(tail, q + i);
      for (index_t b = 0; b < kRowBlock; ++b) {
        const __m512 diff =
            _mm512_sub_ps(qv, _mm512_maskz_loadu_ps(tail, r[b] + i));
        acc[b] = _mm512_fmadd_ps(diff, diff, acc[b]);
      }
    }
    float* o = out + (p - lo);
    for (index_t b = 0; b < kRowBlock; ++b) {
      o[b] = _mm512_reduce_add_ps(acc[b]);
      if (o[b] < best) best = o[b];
    }
  }
  for (; p < hi; ++p) {
    const float v =
        sq_l2_one(q, x + static_cast<std::size_t>(p) * stride, d);
    out[p - lo] = v;
    if (v < best) best = v;
  }
  return best;
}

float gather_avx512(const float* q, index_t d, const float* x,
                    std::size_t stride, const index_t* ids, index_t count,
                    float* out) {
  float best = kInfDist;
  for (index_t j = 0; j < count; ++j) {
    const float v =
        sq_l2_one(q, x + static_cast<std::size_t>(ids[j]) * stride, d);
    out[j] = v;
    if (v < best) best = v;
  }
  return best;
}

inline __m512 abs_ps512(__m512 v) {
  return _mm512_abs_ps(v);
}

/// One query against one row, Manhattan, masked tail.
inline float l1_one(const float* q, const float* row, index_t d) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  index_t i = 0;
  for (; i + 32 <= d; i += 32) {
    acc0 = _mm512_add_ps(
        acc0, abs_ps512(_mm512_sub_ps(_mm512_loadu_ps(q + i),
                                      _mm512_loadu_ps(row + i))));
    acc1 = _mm512_add_ps(
        acc1, abs_ps512(_mm512_sub_ps(_mm512_loadu_ps(q + i + 16),
                                      _mm512_loadu_ps(row + i + 16))));
  }
  for (; i + 16 <= d; i += 16)
    acc0 = _mm512_add_ps(
        acc0, abs_ps512(_mm512_sub_ps(_mm512_loadu_ps(q + i),
                                      _mm512_loadu_ps(row + i))));
  if (i < d) {
    const __mmask16 tail = static_cast<__mmask16>((1u << (d - i)) - 1u);
    acc1 = _mm512_add_ps(
        acc1, abs_ps512(_mm512_sub_ps(_mm512_maskz_loadu_ps(tail, q + i),
                                      _mm512_maskz_loadu_ps(tail, row + i))));
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

/// One query against one row, negated dot, masked tail.
inline float neg_dot_one(const float* q, const float* row, index_t d) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  index_t i = 0;
  for (; i + 32 <= d; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(q + i), _mm512_loadu_ps(row + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(q + i + 16),
                           _mm512_loadu_ps(row + i + 16), acc1);
  }
  for (; i + 16 <= d; i += 16)
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(q + i), _mm512_loadu_ps(row + i),
                           acc0);
  if (i < d) {
    const __mmask16 tail = static_cast<__mmask16>((1u << (d - i)) - 1u);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(tail, q + i),
                           _mm512_maskz_loadu_ps(tail, row + i), acc1);
  }
  return -_mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

/// Shared 8-row blocked skeleton of the metric row shapes (see the AVX2
/// twin): Op supplies the per-lane accumulate, horizontal finish, and
/// single-row remainder kernel; the tail-mask/block/min plumbing is shared.
struct L1LaneOp {
  static __m512 accum(__m512 acc, __m512 qv, __m512 xv) {
    return _mm512_add_ps(acc, abs_ps512(_mm512_sub_ps(qv, xv)));
  }
  static float finish(__m512 acc) { return _mm512_reduce_add_ps(acc); }
  static float one(const float* q, const float* row, index_t d) {
    return l1_one(q, row, d);
  }
};

struct IpLaneOp {
  static __m512 accum(__m512 acc, __m512 qv, __m512 xv) {
    return _mm512_fmadd_ps(qv, xv, acc);
  }
  static float finish(__m512 acc) { return -_mm512_reduce_add_ps(acc); }
  static float one(const float* q, const float* row, index_t d) {
    return neg_dot_one(q, row, d);
  }
};

template <class Op>
float rows_metric_avx512(const float* q, index_t d, const float* x,
                         std::size_t stride, index_t lo, index_t hi,
                         float* out) {
  const __mmask16 tail = d % 16 != 0
                             ? static_cast<__mmask16>((1u << (d % 16)) - 1u)
                             : static_cast<__mmask16>(0xffff);
  float best = kInfDist;
  index_t p = lo;
  for (; p + kRowBlock <= hi; p += kRowBlock) {
    const float* r[kRowBlock];
    for (index_t b = 0; b < kRowBlock; ++b)
      r[b] = x + static_cast<std::size_t>(p + b) * stride;
    __m512 acc[kRowBlock] = {
        _mm512_setzero_ps(), _mm512_setzero_ps(), _mm512_setzero_ps(),
        _mm512_setzero_ps(), _mm512_setzero_ps(), _mm512_setzero_ps(),
        _mm512_setzero_ps(), _mm512_setzero_ps()};
    index_t i = 0;
    for (; i + 16 <= d; i += 16) {
      const __m512 qv = _mm512_loadu_ps(q + i);
      for (index_t b = 0; b < kRowBlock; ++b)
        acc[b] = Op::accum(acc[b], qv, _mm512_loadu_ps(r[b] + i));
    }
    if (i < d) {
      const __m512 qv = _mm512_maskz_loadu_ps(tail, q + i);
      for (index_t b = 0; b < kRowBlock; ++b)
        acc[b] =
            Op::accum(acc[b], qv, _mm512_maskz_loadu_ps(tail, r[b] + i));
    }
    float* o = out + (p - lo);
    for (index_t b = 0; b < kRowBlock; ++b) {
      o[b] = Op::finish(acc[b]);
      if (o[b] < best) best = o[b];
    }
  }
  for (; p < hi; ++p) {
    const float v = Op::one(q, x + static_cast<std::size_t>(p) * stride, d);
    out[p - lo] = v;
    if (v < best) best = v;
  }
  return best;
}

template <class Op>
float gather_metric_avx512(const float* q, index_t d, const float* x,
                           std::size_t stride, const index_t* ids,
                           index_t count, float* out) {
  float best = kInfDist;
  for (index_t j = 0; j < count; ++j) {
    const float v =
        Op::one(q, x + static_cast<std::size_t>(ids[j]) * stride, d);
    out[j] = v;
    if (v < best) best = v;
  }
  return best;
}

// ------------------------------------------------ quantized (fp16 / int8) --

/// Sixteen binary16 codes -> sixteen floats. VCVTPH2PS on zmm is plain
/// AVX-512F (the EVEX form predates AVX512-FP16), so no extra CPUID gate.
inline __m512 load16_fp16(const std::uint16_t* p) {
  return _mm512_cvtph_ps(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}

/// Sixteen int8 codes -> sixteen floats (sign-extend, convert — both exact).
inline __m512 load16_int8(const std::int8_t* p) {
  return _mm512_cvtepi32_ps(
      _mm512_cvtepi8_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))));
}

// Tail handling (d % 16 != 0). Per-element software decodes dominated whole
// scans at the paper's dims (21 and 74 both carry tails), so for d >= 16 the
// tail is one more full-width step over the row's LAST 16 elements — always
// in-bounds — with the lanes the main loop already counted zero-masked.
// Sub-32-bit masked loads would need AVX512BW; the full-window reload plus
// __mmask16 zeroing keeps this TU F-only. Only d < 16, where no full window
// exists, falls back to zero-padded copies.

/// Set in lanes [16 - n, 16), clear below (n in [1, 15]).
inline __mmask16 last_lanes(index_t n) {
  return static_cast<__mmask16>(0xFFFFu << (16 - n));
}

/// Masked diff vector for the tail lanes [i, d) of an fp16 row; squares to
/// the tail's contribution when fed to an FMA.
inline __m512 tail_diff_fp16(const float* q, const std::uint16_t* row,
                             index_t d, index_t i) {
  if (d >= 16) {
    // Already-counted lanes may hold inf codes; maskz clears them to 0.
    return _mm512_maskz_sub_ps(last_lanes(d - i), _mm512_loadu_ps(q + d - 16),
                               load16_fp16(row + d - 16));
  }
  alignas(64) float qbuf[16] = {};
  alignas(32) std::uint16_t xbuf[16] = {};
  std::memcpy(qbuf, q + i, static_cast<std::size_t>(d - i) * sizeof(float));
  std::memcpy(xbuf, row + i,
              static_cast<std::size_t>(d - i) * sizeof(std::uint16_t));
  // Padded lanes: q = 0 and code 0 decodes to +0, so the diff is exactly 0.
  return _mm512_sub_ps(_mm512_load_ps(qbuf), load16_fp16(xbuf));
}

/// Masked diff vector for the tail lanes [i, d) of an int8 row.
inline __m512 tail_diff_int8(const float* q, const std::int8_t* row,
                             index_t d, index_t i, __m512 sv, __m512 ov) {
  if (d >= 16) {
    const __m512 qo = _mm512_sub_ps(_mm512_loadu_ps(q + d - 16), ov);
    return _mm512_maskz_fnmadd_ps(last_lanes(d - i), sv,
                                  load16_int8(row + d - 16), qo);
  }
  alignas(64) float qbuf[16] = {};
  alignas(16) std::int8_t xbuf[16] = {};
  std::memcpy(qbuf, q + i, static_cast<std::size_t>(d - i) * sizeof(float));
  std::memcpy(xbuf, row + i, static_cast<std::size_t>(d - i));
  // Padded lanes dequantize to -offset; maskz forces them back to 0.
  const __mmask16 m = static_cast<__mmask16>((1u << (d - i)) - 1u);
  const __m512 qo = _mm512_sub_ps(_mm512_load_ps(qbuf), ov);
  return _mm512_maskz_fnmadd_ps(m, sv, load16_int8(xbuf), qo);
}

inline float fp16_one(const float* q, const std::uint16_t* row, index_t d) {
  __m512 acc = _mm512_setzero_ps();
  index_t i = 0;
  for (; i + 16 <= d; i += 16) {
    const __m512 diff =
        _mm512_sub_ps(_mm512_loadu_ps(q + i), load16_fp16(row + i));
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  if (i < d) {
    const __m512 t = tail_diff_fp16(q, row, d, i);
    acc = _mm512_fmadd_ps(t, t, acc);
  }
  return _mm512_reduce_add_ps(acc);
}

inline float int8_one(const float* q, const std::int8_t* row, index_t d,
                      float scale, float offset) {
  const __m512 sv = _mm512_set1_ps(scale);
  const __m512 ov = _mm512_set1_ps(offset);
  __m512 acc = _mm512_setzero_ps();
  index_t i = 0;
  for (; i + 16 <= d; i += 16) {
    const __m512 qo = _mm512_sub_ps(_mm512_loadu_ps(q + i), ov);
    const __m512 diff = _mm512_fnmadd_ps(sv, load16_int8(row + i), qo);
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  if (i < d) {
    const __m512 t = tail_diff_int8(q, row, d, i, sv, ov);
    acc = _mm512_fmadd_ps(t, t, acc);
  }
  return _mm512_reduce_add_ps(acc);
}

float rows_fp16_avx512(const float* q, index_t d, const std::uint16_t* x,
                       std::size_t stride, index_t lo, index_t hi,
                       float* out) {
  float best = kInfDist;
  index_t p = lo;
  for (; p + kRowBlock <= hi; p += kRowBlock) {
    const std::uint16_t* r[kRowBlock];
    for (index_t b = 0; b < kRowBlock; ++b)
      r[b] = x + static_cast<std::size_t>(p + b) * stride;
    __m512 acc[kRowBlock] = {
        _mm512_setzero_ps(), _mm512_setzero_ps(), _mm512_setzero_ps(),
        _mm512_setzero_ps(), _mm512_setzero_ps(), _mm512_setzero_ps(),
        _mm512_setzero_ps(), _mm512_setzero_ps()};
    index_t i = 0;
    for (; i + 16 <= d; i += 16) {
      const __m512 qv = _mm512_loadu_ps(q + i);
      for (index_t b = 0; b < kRowBlock; ++b) {
        const __m512 diff = _mm512_sub_ps(qv, load16_fp16(r[b] + i));
        acc[b] = _mm512_fmadd_ps(diff, diff, acc[b]);
      }
    }
    if (i < d) {
      for (index_t b = 0; b < kRowBlock; ++b) {
        const __m512 t = tail_diff_fp16(q, r[b], d, i);
        acc[b] = _mm512_fmadd_ps(t, t, acc[b]);
      }
    }
    float* o = out + (p - lo);
    for (index_t b = 0; b < kRowBlock; ++b) {
      const float v = _mm512_reduce_add_ps(acc[b]);
      o[b] = v;
      if (v < best) best = v;
    }
  }
  for (; p < hi; ++p) {
    const float v = fp16_one(q, x + static_cast<std::size_t>(p) * stride, d);
    out[p - lo] = v;
    if (v < best) best = v;
  }
  return best;
}

float gather_fp16_avx512(const float* q, index_t d, const std::uint16_t* x,
                         std::size_t stride, const index_t* ids,
                         index_t count, float* out) {
  float best = kInfDist;
  for (index_t j = 0; j < count; ++j) {
    const float v =
        fp16_one(q, x + static_cast<std::size_t>(ids[j]) * stride, d);
    out[j] = v;
    if (v < best) best = v;
  }
  return best;
}

float rows_int8_avx512(const float* q, index_t d, const std::int8_t* x,
                       std::size_t stride, const float* scale,
                       const float* offset, index_t lo, index_t hi,
                       float* out) {
  float best = kInfDist;
  index_t p = lo;
  for (; p + kRowBlock <= hi; p += kRowBlock) {
    const std::int8_t* r[kRowBlock];
    __m512 sv[kRowBlock];
    __m512 ov[kRowBlock];
    for (index_t b = 0; b < kRowBlock; ++b) {
      r[b] = x + static_cast<std::size_t>(p + b) * stride;
      sv[b] = _mm512_set1_ps(scale[p + b]);
      ov[b] = _mm512_set1_ps(offset[p + b]);
    }
    __m512 acc[kRowBlock] = {
        _mm512_setzero_ps(), _mm512_setzero_ps(), _mm512_setzero_ps(),
        _mm512_setzero_ps(), _mm512_setzero_ps(), _mm512_setzero_ps(),
        _mm512_setzero_ps(), _mm512_setzero_ps()};
    index_t i = 0;
    for (; i + 16 <= d; i += 16) {
      const __m512 qv = _mm512_loadu_ps(q + i);
      for (index_t b = 0; b < kRowBlock; ++b) {
        const __m512 diff = _mm512_fnmadd_ps(sv[b], load16_int8(r[b] + i),
                                             _mm512_sub_ps(qv, ov[b]));
        acc[b] = _mm512_fmadd_ps(diff, diff, acc[b]);
      }
    }
    if (i < d) {
      for (index_t b = 0; b < kRowBlock; ++b) {
        const __m512 t = tail_diff_int8(q, r[b], d, i, sv[b], ov[b]);
        acc[b] = _mm512_fmadd_ps(t, t, acc[b]);
      }
    }
    float* o = out + (p - lo);
    for (index_t b = 0; b < kRowBlock; ++b) {
      const float v = _mm512_reduce_add_ps(acc[b]);
      o[b] = v;
      if (v < best) best = v;
    }
  }
  for (; p < hi; ++p) {
    const float v = int8_one(q, x + static_cast<std::size_t>(p) * stride, d,
                             scale[p], offset[p]);
    out[p - lo] = v;
    if (v < best) best = v;
  }
  return best;
}

float gather_int8_avx512(const float* q, index_t d, const std::int8_t* x,
                         std::size_t stride, const float* scale,
                         const float* offset, const index_t* ids,
                         index_t count, float* out) {
  float best = kInfDist;
  for (index_t j = 0; j < count; ++j) {
    const index_t p = ids[j];
    const float v = int8_one(q, x + static_cast<std::size_t>(p) * stride, d,
                             scale[p], offset[p]);
    out[j] = v;
    if (v < best) best = v;
  }
  return best;
}

constexpr KernelOps kAvx512Ops = {
    tile_avx512,  tile_gemm_avx512,
    rows_avx512,  gather_avx512,
    rows_metric_avx512<L1LaneOp>, gather_metric_avx512<L1LaneOp>,
    rows_metric_avx512<IpLaneOp>, gather_metric_avx512<IpLaneOp>,
    rows_fp16_avx512, gather_fp16_avx512,
    rows_int8_avx512, gather_int8_avx512};

}  // namespace

const KernelOps* avx512_table() noexcept { return &kAvx512Ops; }

}  // namespace rbc::dispatch::detail

#else  // compiled without AVX-512F — table absent, dispatcher skips it

namespace rbc::dispatch::detail {
const KernelOps* avx512_table() noexcept { return nullptr; }
}  // namespace rbc::dispatch::detail

#endif
