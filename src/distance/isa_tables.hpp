// Internal seam between dispatch.cpp and the per-ISA kernel translation
// units (kernels_scalar.cpp / kernels_avx2.cpp / kernels_avx512.cpp). Each
// TU returns its KernelOps table, or nullptr when it was compiled without
// its target ISA (compiler lacked the flags, or RBC_SIMD=OFF) — the
// dispatcher treats a null table as "not compiled in". Not part of the
// public API; include distance/dispatch.hpp instead.
#pragma once

#include "distance/dispatch.hpp"

namespace rbc::dispatch::detail {

const KernelOps* scalar_table() noexcept;  // never null
const KernelOps* avx2_table() noexcept;
const KernelOps* avx512_table() noexcept;

}  // namespace rbc::dispatch::detail
