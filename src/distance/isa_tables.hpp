// Internal seam between dispatch.cpp and the per-ISA kernel translation
// units (kernels_scalar.cpp / kernels_avx2.cpp / kernels_avx512.cpp). Each
// TU returns its KernelOps table, or nullptr when it was compiled without
// its target ISA (compiler lacked the flags, or RBC_SIMD=OFF) — the
// dispatcher treats a null table as "not compiled in". Not part of the
// public API; include distance/dispatch.hpp instead.
#pragma once

#include "distance/dispatch.hpp"

namespace rbc::dispatch::detail {

const KernelOps* scalar_table() noexcept;  // never null
const KernelOps* avx2_table() noexcept;
const KernelOps* avx512_table() noexcept;

/// True when the AVX2 TU was compiled with -mf16c (its fp16 kernels then
/// emit VCVTPH2PS, so the dispatcher must also require F16C from CPUID
/// before selecting the table; without the flag they use the software
/// codec and plain AVX2 suffices).
bool avx2_table_uses_f16c() noexcept;

}  // namespace rbc::dispatch::detail
