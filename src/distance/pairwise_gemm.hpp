// GEMM formulation of pairwise squared-L2 distances:
//
//     ||q - x||^2 = ||q||^2 + ||x||^2 - 2 <q, x>
//
// which turns the distance computation step of BF(Q, X) into a literal
// matrix-matrix product plus rank-1 corrections — "virtually the same
// structure as matrix-matrix multiply" (paper §3). This is the formulation
// GPU implementations use (one cuBLAS GEMM does the heavy lifting); on CPU
// with our hand-rolled kernels the direct form is competitive, which the
// micro_kernels bench documents.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace rbc {

/// All pairwise squared L2 distances, D[i][j] = ||Q_i - X_j||^2, computed
/// via the norm + dot-product expansion with blocked dot products.
/// Results are clamped at 0 (the expansion can go slightly negative from
/// rounding). Parallel over query tiles.
Matrix<float> pairwise_sq_l2_gemm(const Matrix<float>& Q,
                                  const Matrix<float>& X);

/// Squared norms of every row of A (the rank-1 correction terms).
std::vector<float> row_sq_norms(const Matrix<float>& A);

}  // namespace rbc
