// Low-level distance kernels between two dense float vectors.
//
// Each kernel ships in two forms:
//   *_scalar — portable reference implementation, used by tests as ground
//              truth and by builds without AVX2;
//   the unsuffixed name — AVX2+FMA vectorized when the target supports it
//              (RBC_NATIVE build on this host), otherwise an alias of the
//              scalar form.
//
// Kernels accept arbitrary d (main 8-wide loop + scalar tail); rows handed in
// by Matrix are 64-byte aligned but alignment is not required for
// correctness (loads are unaligned ops).
#pragma once

#include <cmath>
#include <cstddef>

#include "common/types.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#define RBC_HAVE_AVX2 1
#include <immintrin.h>
#else
#define RBC_HAVE_AVX2 0
#endif

namespace rbc::kernels {

// ---------------------------------------------------------------- scalar ---

inline float sq_l2_scalar(const float* a, const float* b, index_t d) {
  float acc = 0.0f;
  for (index_t i = 0; i < d; ++i) {
    const float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

inline float l1_scalar(const float* a, const float* b, index_t d) {
  float acc = 0.0f;
  for (index_t i = 0; i < d; ++i) acc += std::fabs(a[i] - b[i]);
  return acc;
}

inline float linf_scalar(const float* a, const float* b, index_t d) {
  float acc = 0.0f;
  for (index_t i = 0; i < d; ++i) {
    const float diff = std::fabs(a[i] - b[i]);
    if (diff > acc) acc = diff;
  }
  return acc;
}

inline float dot_scalar(const float* a, const float* b, index_t d) {
  float acc = 0.0f;
  for (index_t i = 0; i < d; ++i) acc += a[i] * b[i];
  return acc;
}

// ------------------------------------------------------------------ AVX2 ---

#if RBC_HAVE_AVX2

namespace detail {

/// Horizontal sum of an 8-lane register.
inline float hsum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_hadd_ps(sum, sum);
  sum = _mm_hadd_ps(sum, sum);
  return _mm_cvtss_f32(sum);
}

/// Horizontal max of an 8-lane register.
inline float hmax(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 m = _mm_max_ps(lo, hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  return _mm_cvtss_f32(m);
}

inline __m256 abs_ps(__m256 v) {
  const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  return _mm256_and_ps(v, mask);
}

}  // namespace detail

inline float sq_l2(const float* a, const float* b, index_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 16 <= d; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= d; i += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(diff, diff, acc0);
  }
  float acc = detail::hsum(_mm256_add_ps(acc0, acc1));
  for (; i < d; ++i) {
    const float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

inline float l1(const float* a, const float* b, index_t d) {
  __m256 acc = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, detail::abs_ps(diff));
  }
  float total = detail::hsum(acc);
  for (; i < d; ++i) total += std::fabs(a[i] - b[i]);
  return total;
}

inline float linf(const float* a, const float* b, index_t d) {
  __m256 acc = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_max_ps(acc, detail::abs_ps(diff));
  }
  float total = detail::hmax(acc);
  for (; i < d; ++i) {
    const float diff = std::fabs(a[i] - b[i]);
    if (diff > total) total = diff;
  }
  return total;
}

inline float dot(const float* a, const float* b, index_t d) {
  __m256 acc = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 8 <= d; i += 8)
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
  float total = detail::hsum(acc);
  for (; i < d; ++i) total += a[i] * b[i];
  return total;
}

#else  // !RBC_HAVE_AVX2

inline float sq_l2(const float* a, const float* b, index_t d) {
  return sq_l2_scalar(a, b, d);
}
inline float l1(const float* a, const float* b, index_t d) {
  return l1_scalar(a, b, d);
}
inline float linf(const float* a, const float* b, index_t d) {
  return linf_scalar(a, b, d);
}
inline float dot(const float* a, const float* b, index_t d) {
  return dot_scalar(a, b, d);
}

#endif  // RBC_HAVE_AVX2

}  // namespace rbc::kernels
