// Runtime ISA selection for the distance-kernel layer (see dispatch.hpp).
//
// Detection uses the compiler's CPUID helpers (__builtin_cpu_supports) so a
// binary carrying AVX2/AVX-512 translation units is safe to run on hosts
// without those units — the table is simply never selected. The
// RBC_FORCE_ISA environment variable (read once, at first use) or
// force_isa() pins the selection for parity tests and benches.
#include "distance/dispatch.hpp"

#include <atomic>
#include <string>

#include "common/env.hpp"
#include "distance/isa_tables.hpp"

namespace rbc::dispatch {

namespace {

constexpr int kUninitialized = -2;
constexpr int kNoForce = -1;

/// Forced-ISA state: kUninitialized until the RBC_FORCE_ISA env var has
/// been consulted, then kNoForce or the forced Isa value.
std::atomic<int> g_forced{kUninitialized};

const KernelOps* table_for(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return detail::scalar_table();
    case Isa::kAvx2:
      return detail::avx2_table();
    case Isa::kAvx512:
      return detail::avx512_table();
  }
  return nullptr;
}

bool cpu_supports(Isa isa) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
             (!detail::avx2_table_uses_f16c() ||
              __builtin_cpu_supports("f16c"));
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f");
  }
  return false;
#else
  return isa == Isa::kScalar;
#endif
}

Isa detect() noexcept {
  if (isa_available(Isa::kAvx512)) return Isa::kAvx512;
  if (isa_available(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

/// Parses RBC_FORCE_ISA; kNoForce for unset/unknown/unavailable values.
int parse_env_force() {
  const std::string raw = env_or("RBC_FORCE_ISA", std::string{});
  Isa isa = Isa::kScalar;
  if (raw == "scalar") {
    isa = Isa::kScalar;
  } else if (raw == "avx2") {
    isa = Isa::kAvx2;
  } else if (raw == "avx512") {
    isa = Isa::kAvx512;
  } else {
    return kNoForce;
  }
  return isa_available(isa) ? static_cast<int>(isa) : kNoForce;
}

int forced_state() noexcept {
  int state = g_forced.load(std::memory_order_relaxed);
  if (state == kUninitialized) {
    // Racy but idempotent: every thread parses the same environment.
    state = parse_env_force();
    g_forced.store(state, std::memory_order_relaxed);
  }
  return state;
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool isa_compiled(Isa isa) noexcept { return table_for(isa) != nullptr; }

bool isa_available(Isa isa) noexcept {
  return isa_compiled(isa) && cpu_supports(isa);
}

Isa detected_isa() noexcept {
  static const Isa detected = detect();  // CPUID once
  return detected;
}

Isa active_isa() noexcept {
  const int forced = forced_state();
  return forced >= 0 ? static_cast<Isa>(forced) : detected_isa();
}

Isa force_isa(Isa isa) noexcept {
  if (isa_available(isa))
    g_forced.store(static_cast<int>(isa), std::memory_order_relaxed);
  else if (g_forced.load(std::memory_order_relaxed) == kUninitialized)
    g_forced.store(parse_env_force(), std::memory_order_relaxed);
  return active_isa();
}

void clear_forced_isa() noexcept {
  g_forced.store(kNoForce, std::memory_order_relaxed);
}

const KernelOps& ops() noexcept { return *table_for(active_isa()); }

const KernelOps* ops_for(Isa isa) noexcept { return table_for(isa); }

void pack_tile(const float* const* rows, index_t count, index_t d,
               float* qt) {
  for (index_t i = 0; i < d; ++i)
    for (index_t t = 0; t < kTile; ++t)
      qt[static_cast<std::size_t>(i) * kTile + t] =
          rows[t < count ? t : 0][i];
}

}  // namespace rbc::dispatch
