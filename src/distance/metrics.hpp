// Metric functors over dense float vectors.
//
// A DenseMetric is a stateless functor `float m(const float* a, const float*
// b, index_t d)` plus compile-time traits. The RBC search algorithms require a
// *true* metric (the prune rules are triangle-inequality arguments), which is
// expressed as `is_true_metric` and enforced with static_assert at the index
// boundary. SqEuclidean is provided for brute-force-only contexts where the
// monotone square is cheaper and the ordering is unchanged.
#pragma once

#include <cmath>
#include <concepts>

#include "common/types.hpp"
#include "distance/kernels.hpp"

namespace rbc {

template <class M>
concept DenseMetric = requires(const M m, const float* p, index_t d) {
  { m(p, p, d) } -> std::convertible_to<float>;
  { M::is_true_metric } -> std::convertible_to<bool>;
  { M::name() } -> std::convertible_to<const char*>;
};

/// Euclidean (L2) distance. The default metric everywhere; all of the paper's
/// experiments use it (§7.1).
struct Euclidean {
  static constexpr bool is_true_metric = true;
  static constexpr const char* name() { return "l2"; }
  float operator()(const float* a, const float* b, index_t d) const {
    return std::sqrt(kernels::sq_l2(a, b, d));
  }
};

/// Squared Euclidean distance. NOT a metric (fails the triangle inequality);
/// valid for brute-force k-NN (ordering is preserved) and micro-benchmarks,
/// rejected at compile time by the RBC indexes.
struct SqEuclidean {
  static constexpr bool is_true_metric = false;
  static constexpr const char* name() { return "sq_l2"; }
  float operator()(const float* a, const float* b, index_t d) const {
    return kernels::sq_l2(a, b, d);
  }
};

/// Manhattan (L1) distance — the metric of the paper's grid example for the
/// expansion rate (§6, Definition 1 discussion).
struct L1 {
  static constexpr bool is_true_metric = true;
  static constexpr const char* name() { return "l1"; }
  float operator()(const float* a, const float* b, index_t d) const {
    return kernels::l1(a, b, d);
  }
};

/// Chebyshev (L∞) distance.
struct LInf {
  static constexpr bool is_true_metric = true;
  static constexpr const char* name() { return "linf"; }
  float operator()(const float* a, const float* b, index_t d) const {
    return kernels::linf(a, b, d);
  }
};

/// Minkowski L_p distance with runtime exponent p >= 1 (a true metric by
/// the Minkowski inequality). Scalar implementation — pow() dominates, so
/// there is no SIMD variant; use L1/Euclidean/LInf for the common cases.
struct Lp {
  float p = 2.0f;

  static constexpr bool is_true_metric = true;
  static constexpr const char* name() { return "lp"; }
  float operator()(const float* a, const float* b, index_t d) const {
    float acc = 0.0f;
    for (index_t i = 0; i < d; ++i)
      acc += std::pow(std::fabs(a[i] - b[i]), p);
    return std::pow(acc, 1.0f / p);
  }
};

/// Negated inner product: "distance" = -<a, b>, so the library-wide
/// ascending (distance, id) order ranks the largest inner product first and
/// every selection/merge structure (TopK, sharded k-way merge) works
/// unchanged. Not a metric at all (values can be negative, no triangle
/// inequality): valid for brute-force scans only. The metric-asserting
/// indexes (RbcExactIndex, BallTree, CoverTree) reject it at compile time
/// via their is_true_metric static_assert; RbcOneShotIndex does not assert
/// a true metric (its recall is probabilistic anyway) but excludes
/// InnerProduct from its kernel prefilter paths.
struct InnerProduct {
  static constexpr bool is_true_metric = false;
  static constexpr const char* name() { return "ip"; }
  float operator()(const float* a, const float* b, index_t d) const {
    return -kernels::dot(a, b, d);
  }
};

/// Cosine *distance* (1 - cosine similarity). Not a true metric in general;
/// usable with brute force and the one-shot RBC when inputs are normalized
/// (in which case it is monotone in the true angular metric).
struct Cosine {
  static constexpr bool is_true_metric = false;
  static constexpr const char* name() { return "cosine"; }
  float operator()(const float* a, const float* b, index_t d) const {
    const float ab = kernels::dot(a, b, d);
    const float aa = kernels::dot(a, a, d);
    const float bb = kernels::dot(b, b, d);
    const float denom = std::sqrt(aa) * std::sqrt(bb);
    if (denom == 0.0f) return 1.0f;
    return 1.0f - ab / denom;
  }
};

}  // namespace rbc
