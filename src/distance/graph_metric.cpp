#include "distance/graph_metric.hpp"

#include <limits>
#include <queue>

#include "parallel/parallel_for.hpp"

namespace rbc {

GraphSpace::GraphSpace(index_t num_nodes)
    : num_nodes_(num_nodes), adjacency_(num_nodes) {}

void GraphSpace::add_edge(index_t u, index_t v, float w) {
  adjacency_[u].push_back({v, w});
  adjacency_[v].push_back({u, w});
}

void GraphSpace::finalize() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  table_.assign(static_cast<std::size_t>(num_nodes_) * num_nodes_, kInf);

  // One independent Dijkstra per source node.
  parallel_for(0, num_nodes_, [&](index_t source) {
    using Item = std::pair<double, index_t>;  // (distance, node)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
    double* dist = table_.data() + static_cast<std::size_t>(source) * num_nodes_;
    dist[source] = 0.0;
    frontier.emplace(0.0, source);
    while (!frontier.empty()) {
      const auto [d, u] = frontier.top();
      frontier.pop();
      if (d > dist[u]) continue;  // stale entry
      for (const Edge& e : adjacency_[u]) {
        const double candidate = d + e.weight;
        if (candidate < dist[e.to]) {
          dist[e.to] = candidate;
          frontier.emplace(candidate, e.to);
        }
      }
    }
  });

  connected_ = true;
  for (const double d : table_)
    if (d == kInf) {
      connected_ = false;
      break;
    }
}

}  // namespace rbc
