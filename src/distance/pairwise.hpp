// Tiled pairwise distance computation — the "distance computation step" of
// the brute-force primitive (paper §3). The computation has the structure of
// a blocked matrix-matrix multiply: a tile of queries is held in cache while
// a tile of database rows streams through the SIMD kernel.
#pragma once

#include <cstddef>

#include "common/counters.hpp"
#include "common/matrix.hpp"
#include "distance/metrics.hpp"

namespace rbc {

/// Tile edge sizes, chosen so a query tile (kTileQ rows) plus a database tile
/// (kTileX rows) of typical dimensionality (~64 floats) fit in L1/L2.
inline constexpr index_t kTileQ = 16;
inline constexpr index_t kTileX = 256;

/// Computes out[(i - a_begin) * ldout + (j - b_begin)] = metric(A[i], B[j])
/// for i in [a_begin, a_end), j in [b_begin, b_end). Serial; callers
/// parallelize over tiles. Adds the pair count to the distance-eval counter.
template <DenseMetric M>
void pairwise_tile(const Matrix<float>& A, index_t a_begin, index_t a_end,
                   const Matrix<float>& B, index_t b_begin, index_t b_end,
                   M metric, float* out, std::size_t ldout) {
  const index_t d = A.cols();
  for (index_t i = a_begin; i < a_end; ++i) {
    const float* ai = A.row(i);
    float* out_row = out + static_cast<std::size_t>(i - a_begin) * ldout;
    for (index_t j = b_begin; j < b_end; ++j)
      out_row[j - b_begin] = metric(ai, B.row(j), d);
  }
  counters::add_dist_evals(static_cast<std::uint64_t>(a_end - a_begin) *
                           (b_end - b_begin));
}

/// Full pairwise distance matrix D (A.rows() x B.rows()), parallel over
/// query tiles. Intended for evaluation utilities (rank error, expansion
/// rate) and tests, not the search hot path.
template <DenseMetric M = Euclidean>
Matrix<float> pairwise_all(const Matrix<float>& A, const Matrix<float>& B,
                           M metric = {});

/// Convenience non-template instantiations used by tools.
Matrix<float> pairwise_l2(const Matrix<float>& A, const Matrix<float>& B);

}  // namespace rbc
