// Multi-query blocked distance kernel — the "BF is virtually matrix-matrix
// multiply" inner loop (paper §3), in the register-blocked form that makes
// the claim true on a CPU.
//
// A single-query distance scan is latency-bound: one accumulator chain, one
// horizontal reduction per point, every database row's bytes used for just
// one evaluation. Processing a *tile* of kTile queries against each row
// amortizes the row load kTile ways and runs independent accumulator chains
// that saturate the FMA pipes — the measured per-evaluation win on an AVX2
// host is ~6x (bench/micro_kernels.cpp). This is the kernel that converts
// the serving layer's coalesced query batches into actual throughput; one
// query at a time structurally cannot reach it.
//
// The query tile is stored TRANSPOSED (qt[i * kTile + t] = feature i of tile
// lane t) so the per-feature inner loop is a contiguous SIMD load.
//
// The translation unit is compiled with AVX2+FMA when the build host
// supports it (CMake probes with a run test); otherwise a portable scalar
// form is used and fast_kernel() reports false so callers can keep their
// single-query path instead.
#pragma once

#include "common/matrix.hpp"
#include "common/types.hpp"

namespace rbc::blocked {

/// Queries per tile. 16 = two 8-lane AVX2 accumulators per database row,
/// enough independent chains to hide FMA latency.
inline constexpr index_t kTile = 16;

/// True when the AVX2+FMA kernel is compiled in. When false the blocked
/// form has no advantage over a per-query scan — callers should prefer
/// their single-query path.
bool fast_kernel() noexcept;

/// Squared L2 distances of all kTile tile lanes against rows [lo, hi) of X:
/// out[(p - lo) * kTile + t] = ||q_t - X_p||^2. `qt` is the d x kTile
/// transposed tile (see file comment); `out` must hold (hi - lo) * kTile
/// floats. Values match kernels::sq_l2_scalar up to FMA-contraction rounding
/// (same summation order), so a caller needing bit-exact distances
/// recomputes the few candidates that survive its bound — see the
/// RbcExactIndex batched search.
void sq_l2_tile(const float* qt, index_t d, const Matrix<float>& X,
                index_t lo, index_t hi, float* out);

/// Fills a transposed tile from `count` query rows (count <= kTile); unused
/// lanes are filled with the first row so every lane computes something
/// harmless. `qt` must hold d * kTile floats.
void pack_tile(const float* const* rows, index_t count, index_t d, float* qt);

}  // namespace rbc::blocked
