// Portable kernel table — the fallback every build ships and the reference
// the SIMD tables are fuzzed against (tests/test_kernels.cpp). Loop
// structure mirrors the vector kernels (row-major streaming, per-lane
// accumulators) so the scalar path benefits from the same cache behavior
// even without vector units.
#include "distance/isa_tables.hpp"
#include "distance/quantized.hpp"

namespace rbc::dispatch::detail {

namespace {

inline float abs_diff(float a, float b) { return a < b ? b - a : a - b; }

void tile_scalar(const float* qt, index_t d, const float* x,
                 std::size_t stride, index_t lo, index_t hi, float* out,
                 float* lane_min) {
  for (index_t t = 0; t < kTile; ++t) lane_min[t] = kInfDist;
  for (index_t p = lo; p < hi; ++p) {
    const float* row = x + static_cast<std::size_t>(p) * stride;
    float acc[kTile] = {};
    for (index_t i = 0; i < d; ++i) {
      const float xi = row[i];
      const float* q = qt + static_cast<std::size_t>(i) * kTile;
      for (index_t t = 0; t < kTile; ++t) {
        const float diff = q[t] - xi;
        acc[t] += diff * diff;
      }
    }
    float* o = out + static_cast<std::size_t>(p - lo) * kTile;
    for (index_t t = 0; t < kTile; ++t) {
      o[t] = acc[t];
      if (acc[t] < lane_min[t]) lane_min[t] = acc[t];
    }
  }
}

void tile_gemm_scalar(const float* qt, const float* q_sq, index_t d,
                      const float* x, std::size_t stride, const float* x_sq,
                      index_t lo, index_t hi, float* out, float* lane_min) {
  for (index_t t = 0; t < kTile; ++t) lane_min[t] = kInfDist;
  for (index_t p = lo; p < hi; ++p) {
    const float* row = x + static_cast<std::size_t>(p) * stride;
    float dot[kTile] = {};
    for (index_t i = 0; i < d; ++i) {
      const float xi = row[i];
      const float* q = qt + static_cast<std::size_t>(i) * kTile;
      for (index_t t = 0; t < kTile; ++t) dot[t] += q[t] * xi;
    }
    float* o = out + static_cast<std::size_t>(p - lo) * kTile;
    for (index_t t = 0; t < kTile; ++t) {
      const float v = q_sq[t] + x_sq[p] - 2.0f * dot[t];
      o[t] = v > 0.0f ? v : 0.0f;
      if (o[t] < lane_min[t]) lane_min[t] = o[t];
    }
  }
}

inline float sq_l2_one(const float* q, const float* row, index_t d) {
  float acc = 0.0f;
  for (index_t i = 0; i < d; ++i) {
    const float diff = q[i] - row[i];
    acc += diff * diff;
  }
  return acc;
}

float rows_scalar(const float* q, index_t d, const float* x,
                  std::size_t stride, index_t lo, index_t hi, float* out) {
  float best = kInfDist;
  for (index_t p = lo; p < hi; ++p) {
    const float v =
        sq_l2_one(q, x + static_cast<std::size_t>(p) * stride, d);
    out[p - lo] = v;
    if (v < best) best = v;
  }
  return best;
}

float gather_scalar(const float* q, index_t d, const float* x,
                    std::size_t stride, const index_t* ids, index_t count,
                    float* out) {
  float best = kInfDist;
  for (index_t j = 0; j < count; ++j) {
    const float v =
        sq_l2_one(q, x + static_cast<std::size_t>(ids[j]) * stride, d);
    out[j] = v;
    if (v < best) best = v;
  }
  return best;
}

inline float l1_one(const float* q, const float* row, index_t d) {
  float acc = 0.0f;
  for (index_t i = 0; i < d; ++i) acc += abs_diff(q[i], row[i]);
  return acc;
}

inline float neg_dot_one(const float* q, const float* row, index_t d) {
  float acc = 0.0f;
  for (index_t i = 0; i < d; ++i) acc += q[i] * row[i];
  return -acc;
}

float rows_l1_scalar(const float* q, index_t d, const float* x,
                     std::size_t stride, index_t lo, index_t hi, float* out) {
  float best = kInfDist;
  for (index_t p = lo; p < hi; ++p) {
    const float v = l1_one(q, x + static_cast<std::size_t>(p) * stride, d);
    out[p - lo] = v;
    if (v < best) best = v;
  }
  return best;
}

float gather_l1_scalar(const float* q, index_t d, const float* x,
                       std::size_t stride, const index_t* ids, index_t count,
                       float* out) {
  float best = kInfDist;
  for (index_t j = 0; j < count; ++j) {
    const float v =
        l1_one(q, x + static_cast<std::size_t>(ids[j]) * stride, d);
    out[j] = v;
    if (v < best) best = v;
  }
  return best;
}

float rows_ip_scalar(const float* q, index_t d, const float* x,
                     std::size_t stride, index_t lo, index_t hi, float* out) {
  float best = kInfDist;
  for (index_t p = lo; p < hi; ++p) {
    const float v =
        neg_dot_one(q, x + static_cast<std::size_t>(p) * stride, d);
    out[p - lo] = v;
    if (v < best) best = v;
  }
  return best;
}

float gather_ip_scalar(const float* q, index_t d, const float* x,
                       std::size_t stride, const index_t* ids, index_t count,
                       float* out) {
  float best = kInfDist;
  for (index_t j = 0; j < count; ++j) {
    const float v =
        neg_dot_one(q, x + static_cast<std::size_t>(ids[j]) * stride, d);
    out[j] = v;
    if (v < best) best = v;
  }
  return best;
}

inline float sq_l2_one_fp16(const float* q, const std::uint16_t* row,
                            index_t d) {
  float acc = 0.0f;
  for (index_t i = 0; i < d; ++i) {
    const float diff = q[i] - quant::fp16_decode(row[i]);
    acc += diff * diff;
  }
  return acc;
}

/// Fused dequant form (q_i - offset) - scale * code_i: one subtract and one
/// FMA-shaped multiply-subtract per feature — the same op count the vector
/// tables run, so the rounding model matches across ISAs.
inline float sq_l2_one_int8(const float* q, const std::int8_t* row, index_t d,
                            float scale, float offset) {
  float acc = 0.0f;
  for (index_t i = 0; i < d; ++i) {
    const float diff = (q[i] - offset) - scale * static_cast<float>(row[i]);
    acc += diff * diff;
  }
  return acc;
}

float rows_fp16_scalar(const float* q, index_t d, const std::uint16_t* x,
                       std::size_t stride, index_t lo, index_t hi,
                       float* out) {
  float best = kInfDist;
  for (index_t p = lo; p < hi; ++p) {
    const float v =
        sq_l2_one_fp16(q, x + static_cast<std::size_t>(p) * stride, d);
    out[p - lo] = v;
    if (v < best) best = v;
  }
  return best;
}

float gather_fp16_scalar(const float* q, index_t d, const std::uint16_t* x,
                         std::size_t stride, const index_t* ids,
                         index_t count, float* out) {
  float best = kInfDist;
  for (index_t j = 0; j < count; ++j) {
    const float v =
        sq_l2_one_fp16(q, x + static_cast<std::size_t>(ids[j]) * stride, d);
    out[j] = v;
    if (v < best) best = v;
  }
  return best;
}

float rows_int8_scalar(const float* q, index_t d, const std::int8_t* x,
                       std::size_t stride, const float* scale,
                       const float* offset, index_t lo, index_t hi,
                       float* out) {
  float best = kInfDist;
  for (index_t p = lo; p < hi; ++p) {
    const float v = sq_l2_one_int8(
        q, x + static_cast<std::size_t>(p) * stride, d, scale[p], offset[p]);
    out[p - lo] = v;
    if (v < best) best = v;
  }
  return best;
}

float gather_int8_scalar(const float* q, index_t d, const std::int8_t* x,
                         std::size_t stride, const float* scale,
                         const float* offset, const index_t* ids,
                         index_t count, float* out) {
  float best = kInfDist;
  for (index_t j = 0; j < count; ++j) {
    const index_t p = ids[j];
    const float v = sq_l2_one_int8(
        q, x + static_cast<std::size_t>(p) * stride, d, scale[p], offset[p]);
    out[j] = v;
    if (v < best) best = v;
  }
  return best;
}

constexpr KernelOps kScalarOps = {tile_scalar,      tile_gemm_scalar,
                                  rows_scalar,      gather_scalar,
                                  rows_l1_scalar,   gather_l1_scalar,
                                  rows_ip_scalar,   gather_ip_scalar,
                                  rows_fp16_scalar, gather_fp16_scalar,
                                  rows_int8_scalar, gather_int8_scalar};

}  // namespace

const KernelOps* scalar_table() noexcept { return &kScalarOps; }

}  // namespace rbc::dispatch::detail
