#include "distance/blocked.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#define RBC_BLOCKED_AVX2 1
#include <immintrin.h>
#else
#define RBC_BLOCKED_AVX2 0
#endif

namespace rbc::blocked {

bool fast_kernel() noexcept { return RBC_BLOCKED_AVX2 != 0; }

void pack_tile(const float* const* rows, index_t count, index_t d,
               float* qt) {
  for (index_t i = 0; i < d; ++i)
    for (index_t t = 0; t < kTile; ++t)
      qt[i * kTile + t] = rows[t < count ? t : 0][i];
}

#if RBC_BLOCKED_AVX2

void sq_l2_tile(const float* qt, index_t d, const Matrix<float>& X,
                index_t lo, index_t hi, float* out) {
  for (index_t p = lo; p < hi; ++p) {
    const float* x = X.row(p);
    // Two independent accumulator chains (lanes 0-7, 8-15): with FMA
    // latency ~4 and the per-feature body at 2 FMAs, the pipes stay busy.
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    for (index_t i = 0; i < d; ++i) {
      const __m256 xi = _mm256_set1_ps(x[i]);
      const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(qt + i * kTile), xi);
      const __m256 d1 =
          _mm256_sub_ps(_mm256_loadu_ps(qt + i * kTile + 8), xi);
      acc0 = _mm256_fmadd_ps(d0, d0, acc0);
      acc1 = _mm256_fmadd_ps(d1, d1, acc1);
    }
    float* row = out + static_cast<std::size_t>(p - lo) * kTile;
    _mm256_storeu_ps(row, acc0);
    _mm256_storeu_ps(row + 8, acc1);
  }
}

#else  // portable fallback (fast_kernel() == false)

void sq_l2_tile(const float* qt, index_t d, const Matrix<float>& X,
                index_t lo, index_t hi, float* out) {
  for (index_t p = lo; p < hi; ++p) {
    const float* x = X.row(p);
    float acc[kTile] = {};
    for (index_t i = 0; i < d; ++i) {
      const float xi = x[i];
      const float* q = qt + i * kTile;
      for (index_t t = 0; t < kTile; ++t) {
        const float diff = q[t] - xi;
        acc[t] += diff * diff;
      }
    }
    float* row = out + static_cast<std::size_t>(p - lo) * kTile;
    for (index_t t = 0; t < kTile; ++t) row[t] = acc[t];
  }
}

#endif

}  // namespace rbc::blocked
