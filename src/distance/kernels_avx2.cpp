// AVX2+FMA kernel table. Compiled with -mavx2 -mfma when the compiler
// supports them (see RBC_SIMD handling in CMakeLists.txt); the dispatcher
// only selects this table when CPUID reports both features at runtime, so
// shipping the code in a portable binary is safe.
//
// Register budget per shape:
//   tile       two 8-lane accumulators (tile lanes 0-7 / 8-15) per row —
//              enough independent FMA chains to hide latency while the
//              broadcast row element is reused 16 ways;
//   rows       eight accumulators, one per database row, vectorized along
//              the feature axis — the single-query shape with the chains a
//              lone scan lacks;
//   gather     the `rows` inner body applied through an id indirection.
#include "distance/isa_tables.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>

#include <cstdint>
#include <cstring>

#include "distance/quantized.hpp"

namespace rbc::dispatch::detail {

namespace {

inline float hsum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_hadd_ps(sum, sum);
  sum = _mm_hadd_ps(sum, sum);
  return _mm_cvtss_f32(sum);
}

void tile_avx2(const float* qt, index_t d, const float* x, std::size_t stride,
               index_t lo, index_t hi, float* out, float* lane_min) {
  __m256 min0 = _mm256_set1_ps(kInfDist);
  __m256 min1 = _mm256_set1_ps(kInfDist);
  for (index_t p = lo; p < hi; ++p) {
    const float* row = x + static_cast<std::size_t>(p) * stride;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    for (index_t i = 0; i < d; ++i) {
      const __m256 xi = _mm256_set1_ps(row[i]);
      const float* q = qt + static_cast<std::size_t>(i) * kTile;
      const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(q), xi);
      const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(q + 8), xi);
      acc0 = _mm256_fmadd_ps(d0, d0, acc0);
      acc1 = _mm256_fmadd_ps(d1, d1, acc1);
    }
    min0 = _mm256_min_ps(min0, acc0);
    min1 = _mm256_min_ps(min1, acc1);
    float* o = out + static_cast<std::size_t>(p - lo) * kTile;
    _mm256_storeu_ps(o, acc0);
    _mm256_storeu_ps(o + 8, acc1);
  }
  _mm256_storeu_ps(lane_min, min0);
  _mm256_storeu_ps(lane_min + 8, min1);
}

void tile_gemm_avx2(const float* qt, const float* q_sq, index_t d,
                    const float* x, std::size_t stride, const float* x_sq,
                    index_t lo, index_t hi, float* out, float* lane_min) {
  const __m256 qs0 = _mm256_loadu_ps(q_sq);
  const __m256 qs1 = _mm256_loadu_ps(q_sq + 8);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 minus2 = _mm256_set1_ps(-2.0f);
  __m256 min0 = _mm256_set1_ps(kInfDist);
  __m256 min1 = _mm256_set1_ps(kInfDist);
  for (index_t p = lo; p < hi; ++p) {
    const float* row = x + static_cast<std::size_t>(p) * stride;
    __m256 dot0 = _mm256_setzero_ps();
    __m256 dot1 = _mm256_setzero_ps();
    for (index_t i = 0; i < d; ++i) {
      const __m256 xi = _mm256_set1_ps(row[i]);
      const float* q = qt + static_cast<std::size_t>(i) * kTile;
      dot0 = _mm256_fmadd_ps(_mm256_loadu_ps(q), xi, dot0);
      dot1 = _mm256_fmadd_ps(_mm256_loadu_ps(q + 8), xi, dot1);
    }
    const __m256 base = _mm256_set1_ps(x_sq[p]);
    __m256 v0 = _mm256_fmadd_ps(minus2, dot0, _mm256_add_ps(qs0, base));
    __m256 v1 = _mm256_fmadd_ps(minus2, dot1, _mm256_add_ps(qs1, base));
    v0 = _mm256_max_ps(v0, zero);
    v1 = _mm256_max_ps(v1, zero);
    min0 = _mm256_min_ps(min0, v0);
    min1 = _mm256_min_ps(min1, v1);
    float* o = out + static_cast<std::size_t>(p - lo) * kTile;
    _mm256_storeu_ps(o, v0);
    _mm256_storeu_ps(o + 8, v1);
  }
  _mm256_storeu_ps(lane_min, min0);
  _mm256_storeu_ps(lane_min + 8, min1);
}

/// One query against one row, two accumulator chains (remainder rows and
/// the gather shape).
inline float sq_l2_one(const float* q, const float* row, index_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 16 <= d; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(q + i), _mm256_loadu_ps(row + i));
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(q + i + 8),
                                    _mm256_loadu_ps(row + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= d; i += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(q + i), _mm256_loadu_ps(row + i));
    acc0 = _mm256_fmadd_ps(diff, diff, acc0);
  }
  float acc = hsum(_mm256_add_ps(acc0, acc1));
  for (; i < d; ++i) {
    const float diff = q[i] - row[i];
    acc += diff * diff;
  }
  return acc;
}

float rows_avx2(const float* q, index_t d, const float* x,
                std::size_t stride, index_t lo, index_t hi, float* out) {
  float best = kInfDist;
  // Lane mask for the feature tail (d % 8 lanes active): maskload keeps the
  // whole block in vector code instead of a per-row scalar epilogue.
  alignas(32) std::int32_t mask_bits[8] = {};
  for (index_t l = 0; l < d % 8; ++l) mask_bits[l] = -1;
  const __m256i tail =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(mask_bits));

  index_t p = lo;
  for (; p + kRowBlock <= hi; p += kRowBlock) {
    const float* r[kRowBlock];
    for (index_t b = 0; b < kRowBlock; ++b)
      r[b] = x + static_cast<std::size_t>(p + b) * stride;
    __m256 acc[kRowBlock] = {
        _mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(),
        _mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(),
        _mm256_setzero_ps(), _mm256_setzero_ps()};
    index_t i = 0;
    for (; i + 8 <= d; i += 8) {
      const __m256 qv = _mm256_loadu_ps(q + i);
      for (index_t b = 0; b < kRowBlock; ++b) {
        const __m256 diff = _mm256_sub_ps(qv, _mm256_loadu_ps(r[b] + i));
        acc[b] = _mm256_fmadd_ps(diff, diff, acc[b]);
      }
    }
    if (i < d) {
      const __m256 qv = _mm256_maskload_ps(q + i, tail);
      for (index_t b = 0; b < kRowBlock; ++b) {
        const __m256 diff =
            _mm256_sub_ps(qv, _mm256_maskload_ps(r[b] + i, tail));
        acc[b] = _mm256_fmadd_ps(diff, diff, acc[b]);
      }
    }
    float* o = out + (p - lo);
    for (index_t b = 0; b < kRowBlock; ++b) {
      o[b] = hsum(acc[b]);
      if (o[b] < best) best = o[b];
    }
  }
  for (; p < hi; ++p) {
    const float v =
        sq_l2_one(q, x + static_cast<std::size_t>(p) * stride, d);
    out[p - lo] = v;
    if (v < best) best = v;
  }
  return best;
}

float gather_avx2(const float* q, index_t d, const float* x,
                  std::size_t stride, const index_t* ids, index_t count,
                  float* out) {
  float best = kInfDist;
  for (index_t j = 0; j < count; ++j) {
    const float v =
        sq_l2_one(q, x + static_cast<std::size_t>(ids[j]) * stride, d);
    out[j] = v;
    if (v < best) best = v;
  }
  return best;
}

inline __m256 abs_ps(__m256 v) {
  const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  return _mm256_and_ps(v, mask);
}

/// One query against one row, Manhattan, two accumulator chains.
inline float l1_one(const float* q, const float* row, index_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 16 <= d; i += 16) {
    acc0 = _mm256_add_ps(acc0, abs_ps(_mm256_sub_ps(_mm256_loadu_ps(q + i),
                                                    _mm256_loadu_ps(row + i))));
    acc1 = _mm256_add_ps(
        acc1, abs_ps(_mm256_sub_ps(_mm256_loadu_ps(q + i + 8),
                                   _mm256_loadu_ps(row + i + 8))));
  }
  for (; i + 8 <= d; i += 8)
    acc0 = _mm256_add_ps(acc0, abs_ps(_mm256_sub_ps(_mm256_loadu_ps(q + i),
                                                    _mm256_loadu_ps(row + i))));
  float acc = hsum(_mm256_add_ps(acc0, acc1));
  for (; i < d; ++i) {
    const float diff = q[i] - row[i];
    acc += diff < 0.0f ? -diff : diff;
  }
  return acc;
}

/// One query against one row, negated dot, two accumulator chains.
inline float neg_dot_one(const float* q, const float* row, index_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 16 <= d; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i), _mm256_loadu_ps(row + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i + 8),
                           _mm256_loadu_ps(row + i + 8), acc1);
  }
  for (; i + 8 <= d; i += 8)
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i), _mm256_loadu_ps(row + i),
                           acc0);
  float acc = hsum(_mm256_add_ps(acc0, acc1));
  for (; i < d; ++i) acc += q[i] * row[i];
  return -acc;
}

/// Shared 8-row blocked skeleton of the metric row shapes: tail-mask setup,
/// row-pointer block, per-row accumulators, and min-tracking epilogue are
/// identical for L1 and negated-dot; Op supplies the per-lane accumulate,
/// the horizontal finish, and the single-row remainder kernel.
struct L1LaneOp {
  static __m256 accum(__m256 acc, __m256 qv, __m256 xv) {
    return _mm256_add_ps(acc, abs_ps(_mm256_sub_ps(qv, xv)));
  }
  static float finish(__m256 acc) { return hsum(acc); }
  static float one(const float* q, const float* row, index_t d) {
    return l1_one(q, row, d);
  }
};

struct IpLaneOp {
  static __m256 accum(__m256 acc, __m256 qv, __m256 xv) {
    return _mm256_fmadd_ps(qv, xv, acc);
  }
  static float finish(__m256 acc) { return -hsum(acc); }
  static float one(const float* q, const float* row, index_t d) {
    return neg_dot_one(q, row, d);
  }
};

template <class Op>
float rows_metric_avx2(const float* q, index_t d, const float* x,
                       std::size_t stride, index_t lo, index_t hi,
                       float* out) {
  float best = kInfDist;
  alignas(32) std::int32_t mask_bits[8] = {};
  for (index_t l = 0; l < d % 8; ++l) mask_bits[l] = -1;
  const __m256i tail =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(mask_bits));

  index_t p = lo;
  for (; p + kRowBlock <= hi; p += kRowBlock) {
    const float* r[kRowBlock];
    for (index_t b = 0; b < kRowBlock; ++b)
      r[b] = x + static_cast<std::size_t>(p + b) * stride;
    __m256 acc[kRowBlock] = {
        _mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(),
        _mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(),
        _mm256_setzero_ps(), _mm256_setzero_ps()};
    index_t i = 0;
    for (; i + 8 <= d; i += 8) {
      const __m256 qv = _mm256_loadu_ps(q + i);
      for (index_t b = 0; b < kRowBlock; ++b)
        acc[b] = Op::accum(acc[b], qv, _mm256_loadu_ps(r[b] + i));
    }
    if (i < d) {
      const __m256 qv = _mm256_maskload_ps(q + i, tail);
      for (index_t b = 0; b < kRowBlock; ++b)
        acc[b] = Op::accum(acc[b], qv, _mm256_maskload_ps(r[b] + i, tail));
    }
    float* o = out + (p - lo);
    for (index_t b = 0; b < kRowBlock; ++b) {
      o[b] = Op::finish(acc[b]);
      if (o[b] < best) best = o[b];
    }
  }
  for (; p < hi; ++p) {
    const float v = Op::one(q, x + static_cast<std::size_t>(p) * stride, d);
    out[p - lo] = v;
    if (v < best) best = v;
  }
  return best;
}

template <class Op>
float gather_metric_avx2(const float* q, index_t d, const float* x,
                         std::size_t stride, const index_t* ids,
                         index_t count, float* out) {
  float best = kInfDist;
  for (index_t j = 0; j < count; ++j) {
    const float v =
        Op::one(q, x + static_cast<std::size_t>(ids[j]) * stride, d);
    out[j] = v;
    if (v < best) best = v;
  }
  return best;
}

// ------------------------------------------------ quantized (fp16 / int8) --

/// Eight binary16 codes -> eight floats: VCVTPH2PS when the TU was built
/// with F16C (the dispatcher then also requires it from CPUID), the exact
/// software codec otherwise.
inline __m256 load8_fp16(const std::uint16_t* p) {
#if defined(__F16C__)
  return _mm256_cvtph_ps(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
#else
  alignas(32) float tmp[8];
  for (int l = 0; l < 8; ++l) tmp[l] = quant::fp16_decode(p[l]);
  return _mm256_load_ps(tmp);
#endif
}

/// Eight int8 codes -> eight floats (sign-extend, convert — both exact).
inline __m256 load8_int8(const std::int8_t* p) {
  const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
}

// Tail handling (d % 8 != 0). Per-element software decodes dominated whole
// scans at the paper's dims (21 and 74 both carry tails), so for d >= 8 the
// tail is one more full-width step over the row's LAST 8 elements — always
// in-bounds — with the lanes the main loop already counted masked off. Only
// d < 8, where no full window exists, falls back to zero-padded copies.

alignas(32) constexpr std::uint32_t kLaneMask[24] = {
    0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu,
    0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu,
    0,           0,           0,           0,
    0,           0,           0,           0,
    0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu,
    0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu};

/// All-ones in lanes [0, n), zeros above (n in [1, 7]).
inline __m256 first_lanes(index_t n) {
  return _mm256_loadu_ps(reinterpret_cast<const float*>(kLaneMask + 8 - n));
}

/// All-ones in lanes [8 - n, 8), zeros below (n in [1, 7]).
inline __m256 last_lanes(index_t n) {
  return _mm256_loadu_ps(reinterpret_cast<const float*>(kLaneMask + 8 + n));
}

/// Masked diff vector for the tail lanes [i, d) of an fp16 row; squares to
/// the tail's contribution when fed to an FMA.
inline __m256 tail_diff_fp16(const float* q, const std::uint16_t* row,
                             index_t d, index_t i) {
  if (d >= 8) {
    const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(q + d - 8),
                                      load8_fp16(row + d - 8));
    // Already-counted lanes may hold inf codes; the AND clears them to 0.
    return _mm256_and_ps(diff, last_lanes(d - i));
  }
  alignas(32) float qbuf[8] = {};
  alignas(16) std::uint16_t xbuf[8] = {};
  std::memcpy(qbuf, q + i, static_cast<std::size_t>(d - i) * sizeof(float));
  std::memcpy(xbuf, row + i,
              static_cast<std::size_t>(d - i) * sizeof(std::uint16_t));
  // Padded lanes: q = 0 and code 0 decodes to +0, so the diff is exactly 0.
  return _mm256_sub_ps(_mm256_load_ps(qbuf), load8_fp16(xbuf));
}

/// Masked diff vector for the tail lanes [i, d) of an int8 row.
inline __m256 tail_diff_int8(const float* q, const std::int8_t* row,
                             index_t d, index_t i, __m256 sv, __m256 ov) {
  if (d >= 8) {
    const __m256 qo = _mm256_sub_ps(_mm256_loadu_ps(q + d - 8), ov);
    const __m256 diff = _mm256_fnmadd_ps(sv, load8_int8(row + d - 8), qo);
    return _mm256_and_ps(diff, last_lanes(d - i));
  }
  alignas(32) float qbuf[8] = {};
  alignas(8) std::int8_t xbuf[8] = {};
  std::memcpy(qbuf, q + i, static_cast<std::size_t>(d - i) * sizeof(float));
  std::memcpy(xbuf, row + i, static_cast<std::size_t>(d - i));
  // Padded lanes dequantize to -offset; mask them back to 0.
  const __m256 qo = _mm256_sub_ps(_mm256_load_ps(qbuf), ov);
  const __m256 diff = _mm256_fnmadd_ps(sv, load8_int8(xbuf), qo);
  return _mm256_and_ps(diff, first_lanes(d - i));
}

inline float fp16_one(const float* q, const std::uint16_t* row, index_t d) {
  __m256 acc = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(q + i),
                                      load8_fp16(row + i));
    acc = _mm256_fmadd_ps(diff, diff, acc);
  }
  if (i < d) {
    const __m256 t = tail_diff_fp16(q, row, d, i);
    acc = _mm256_fmadd_ps(t, t, acc);
  }
  return hsum(acc);
}

inline float int8_one(const float* q, const std::int8_t* row, index_t d,
                      float scale, float offset) {
  const __m256 sv = _mm256_set1_ps(scale);
  const __m256 ov = _mm256_set1_ps(offset);
  __m256 acc = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 qo = _mm256_sub_ps(_mm256_loadu_ps(q + i), ov);
    const __m256 diff = _mm256_fnmadd_ps(sv, load8_int8(row + i), qo);
    acc = _mm256_fmadd_ps(diff, diff, acc);
  }
  if (i < d) {
    const __m256 t = tail_diff_int8(q, row, d, i, sv, ov);
    acc = _mm256_fmadd_ps(t, t, acc);
  }
  return hsum(acc);
}

float rows_fp16_avx2(const float* q, index_t d, const std::uint16_t* x,
                     std::size_t stride, index_t lo, index_t hi, float* out) {
  float best = kInfDist;
  index_t p = lo;
  for (; p + kRowBlock <= hi; p += kRowBlock) {
    const std::uint16_t* r[kRowBlock];
    for (index_t b = 0; b < kRowBlock; ++b)
      r[b] = x + static_cast<std::size_t>(p + b) * stride;
    __m256 acc[kRowBlock] = {
        _mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(),
        _mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(),
        _mm256_setzero_ps(), _mm256_setzero_ps()};
    index_t i = 0;
    for (; i + 8 <= d; i += 8) {
      const __m256 qv = _mm256_loadu_ps(q + i);
      for (index_t b = 0; b < kRowBlock; ++b) {
        const __m256 diff = _mm256_sub_ps(qv, load8_fp16(r[b] + i));
        acc[b] = _mm256_fmadd_ps(diff, diff, acc[b]);
      }
    }
    if (i < d) {
      for (index_t b = 0; b < kRowBlock; ++b) {
        const __m256 t = tail_diff_fp16(q, r[b], d, i);
        acc[b] = _mm256_fmadd_ps(t, t, acc[b]);
      }
    }
    float* o = out + (p - lo);
    for (index_t b = 0; b < kRowBlock; ++b) {
      const float v = hsum(acc[b]);
      o[b] = v;
      if (v < best) best = v;
    }
  }
  for (; p < hi; ++p) {
    const float v = fp16_one(q, x + static_cast<std::size_t>(p) * stride, d);
    out[p - lo] = v;
    if (v < best) best = v;
  }
  return best;
}

float gather_fp16_avx2(const float* q, index_t d, const std::uint16_t* x,
                       std::size_t stride, const index_t* ids, index_t count,
                       float* out) {
  float best = kInfDist;
  for (index_t j = 0; j < count; ++j) {
    const float v =
        fp16_one(q, x + static_cast<std::size_t>(ids[j]) * stride, d);
    out[j] = v;
    if (v < best) best = v;
  }
  return best;
}

// int8 rows block four rows, not kRowBlock: per row the loop keeps an
// accumulator plus broadcast scale and offset live, and 3 x 8 ymm registers
// would spill (AVX2 has 16); 3 x 4 plus the shared query vector fits.
constexpr index_t kInt8Block = 4;

float rows_int8_avx2(const float* q, index_t d, const std::int8_t* x,
                     std::size_t stride, const float* scale,
                     const float* offset, index_t lo, index_t hi,
                     float* out) {
  float best = kInfDist;
  index_t p = lo;
  for (; p + kInt8Block <= hi; p += kInt8Block) {
    const std::int8_t* r[kInt8Block];
    __m256 sv[kInt8Block];
    __m256 ov[kInt8Block];
    for (index_t b = 0; b < kInt8Block; ++b) {
      r[b] = x + static_cast<std::size_t>(p + b) * stride;
      sv[b] = _mm256_set1_ps(scale[p + b]);
      ov[b] = _mm256_set1_ps(offset[p + b]);
    }
    __m256 acc[kInt8Block] = {_mm256_setzero_ps(), _mm256_setzero_ps(),
                              _mm256_setzero_ps(), _mm256_setzero_ps()};
    index_t i = 0;
    for (; i + 8 <= d; i += 8) {
      const __m256 qv = _mm256_loadu_ps(q + i);
      for (index_t b = 0; b < kInt8Block; ++b) {
        const __m256 diff = _mm256_fnmadd_ps(sv[b], load8_int8(r[b] + i),
                                             _mm256_sub_ps(qv, ov[b]));
        acc[b] = _mm256_fmadd_ps(diff, diff, acc[b]);
      }
    }
    if (i < d) {
      for (index_t b = 0; b < kInt8Block; ++b) {
        const __m256 t = tail_diff_int8(q, r[b], d, i, sv[b], ov[b]);
        acc[b] = _mm256_fmadd_ps(t, t, acc[b]);
      }
    }
    float* o = out + (p - lo);
    for (index_t b = 0; b < kInt8Block; ++b) {
      const float v = hsum(acc[b]);
      o[b] = v;
      if (v < best) best = v;
    }
  }
  for (; p < hi; ++p) {
    const float v = int8_one(q, x + static_cast<std::size_t>(p) * stride, d,
                             scale[p], offset[p]);
    out[p - lo] = v;
    if (v < best) best = v;
  }
  return best;
}

float gather_int8_avx2(const float* q, index_t d, const std::int8_t* x,
                       std::size_t stride, const float* scale,
                       const float* offset, const index_t* ids, index_t count,
                       float* out) {
  float best = kInfDist;
  for (index_t j = 0; j < count; ++j) {
    const index_t p = ids[j];
    const float v = int8_one(q, x + static_cast<std::size_t>(p) * stride, d,
                             scale[p], offset[p]);
    out[j] = v;
    if (v < best) best = v;
  }
  return best;
}

constexpr KernelOps kAvx2Ops = {
    tile_avx2,    tile_gemm_avx2,
    rows_avx2,    gather_avx2,
    rows_metric_avx2<L1LaneOp>, gather_metric_avx2<L1LaneOp>,
    rows_metric_avx2<IpLaneOp>, gather_metric_avx2<IpLaneOp>,
    rows_fp16_avx2, gather_fp16_avx2,
    rows_int8_avx2, gather_int8_avx2};

}  // namespace

const KernelOps* avx2_table() noexcept { return &kAvx2Ops; }

bool avx2_table_uses_f16c() noexcept {
#if defined(__F16C__)
  return true;
#else
  return false;
#endif
}

}  // namespace rbc::dispatch::detail

#else  // compiled without AVX2+FMA — table absent, dispatcher skips it

namespace rbc::dispatch::detail {
const KernelOps* avx2_table() noexcept { return nullptr; }
bool avx2_table_uses_f16c() noexcept { return false; }
}  // namespace rbc::dispatch::detail

#endif
