// Shortest-path metric on a weighted undirected graph — the paper's second
// example of a non-vector metric space (§6: "the shortest path distance on
// the nodes of a graph").
//
// Distances are precomputed all-pairs (Dijkstra from every node), making
// distance() an O(1) table lookup; intended for the moderate graph sizes of
// tests/examples, not million-node graphs.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace rbc {

/// Weighted undirected graph with all-pairs shortest-path distances.
class GraphSpace {
 public:
  /// A point in this metric space is a node id.
  using Point = index_t;

  /// Builds the empty graph on `num_nodes` nodes (all distances infinite
  /// until edges are added and finalize() runs).
  explicit GraphSpace(index_t num_nodes);

  /// Adds an undirected edge (u, v) with positive weight w.
  void add_edge(index_t u, index_t v, float w);

  /// Runs Dijkstra from every node to fill the distance table.
  /// Must be called after the last add_edge and before distance().
  void finalize();

  index_t size() const { return num_nodes_; }
  index_t operator[](index_t i) const { return i; }

  /// Shortest-path distance between nodes u and v (infinity if
  /// disconnected). Requires finalize().
  double distance(index_t u, index_t v) const {
    return table_[static_cast<std::size_t>(u) * num_nodes_ + v];
  }

  bool connected() const { return connected_; }

 private:
  struct Edge {
    index_t to;
    float weight;
  };

  index_t num_nodes_;
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<double> table_;
  bool connected_ = false;
};

}  // namespace rbc
