// Levenshtein edit distance — a non-vector metric space.
//
// The paper stresses that the expansion-rate machinery "is defined for
// arbitrary metric spaces, so makes sense for the edit distance on strings"
// (§6). The generic RBC index (rbc/rbc_generic.hpp) runs over this space; see
// examples/string_search.cpp.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace rbc {

/// Unit-cost Levenshtein distance between a and b.
/// O(|a|*|b|) time, O(min(|a|,|b|)) space.
index_t edit_distance(std::string_view a, std::string_view b);

/// Banded variant: returns the exact distance if it is <= band, otherwise
/// returns band + 1. Lets metric-tree searches bail out of hopeless
/// comparisons early; O(band * min(|a|,|b|)) time.
index_t edit_distance_banded(std::string_view a, std::string_view b,
                             index_t band);

/// Metric-space adapter over a string collection, compatible with the generic
/// RBC index and the generic brute-force search (Space concept: size(),
/// operator[], distance()).
class StringSpace {
 public:
  using Point = std::string;

  StringSpace() = default;
  explicit StringSpace(std::vector<std::string> items)
      : items_(std::move(items)) {}

  index_t size() const { return static_cast<index_t>(items_.size()); }
  const std::string& operator[](index_t i) const { return items_[i]; }

  double distance(const std::string& a, const std::string& b) const {
    return static_cast<double>(edit_distance(a, b));
  }

 private:
  std::vector<std::string> items_;
};

}  // namespace rbc
