// Runtime-dispatched SIMD distance-kernel layer — one ISA decision for every
// hot scan in the library (paper §3: brute-force search "is virtually
// matrix-matrix multiply" and must be engineered like one).
//
// The library previously carried a single AVX2 kernel compiled behind a
// configure-time probe, reachable only from the exact index's large-batch
// path; every other scan (brute force, RBC stage 1, one-shot, small batches)
// ran whatever the default ISA produced. This layer replaces that with three
// per-ISA translation units — scalar (always), AVX2+FMA and AVX-512F (when
// the compiler can target them) — selected **at runtime** from CPUID, so one
// binary runs the best kernels the executing host actually has.
//
// Kernel shapes (all squared L2 — the form every dense scan reduces to):
//
//   tile       16 transposed queries x database rows. Each row load is
//              amortized 16 ways across independent FMA chains; the shape of
//              the exact index's blocked batch path and of BF(Q, X) over
//              coalesced serving batches.
//   tile_gemm  the same tile in the GEMM formulation of §3,
//              ||q||^2 + ||x||^2 - 2 q.x, with both norms precomputed
//              (see pairwise_gemm.hpp). Drops the per-element subtract, the
//              fastest form when row norms can be cached (the exact index
//              caches them at build).
//   rows       one query x a block of 8 consecutive rows, each row with its
//              own accumulator chain. What makes SMALL batches and stream
//              mode stop being latency-bound: a single-query scan has one
//              dependent FMA chain, this one has eight.
//   gather     one query x rows addressed through an index array — the
//              overflow-list (dynamic insert) scan shape.
//
// Metric variants (the unified API's runtime-selectable metrics,
// api/metrics.hpp): the single-query shapes additionally ship as
//
//   rows_l1 / gather_l1   Manhattan distance, sum |q_i - x_i|;
//   rows_ip / gather_ip   negated inner product -<q, x> — ascending order
//                         ranks the largest dot product first, so every
//                         heap/merge structure works unchanged.
//
// Compressed variants (the quantized scan tier, distance/quantized.hpp):
//
//   rows_fp16 / gather_fp16   squared L2 over binary16 row codes (2 B per
//                             feature), dequantized in registers;
//   rows_int8 / gather_int8   squared L2 over int8 codes with per-row
//                             scale/offset (1 B per feature), fused
//                             dequantize-and-accumulate.
//
// The tile shapes stay squared-L2 only (the GEMM formulation has no L1
// analogue); cosine runs entirely through the L2 shapes on normalized rows.
//
// Exactness contract: kernels are *prefilters*. Their outputs differ from
// the scalar reference only by association-order rounding (bounded by
// tile_margin / gemm_margin_scale below); callers compare against an
// inflated bound and re-measure every surviving candidate with the scalar
// metric, so returned (distance, id) results are bit-identical to the
// never-vectorized path under every ISA. tests/test_kernels.cpp fuzzes the
// raw kernels; tests/test_rbc_blocked.cpp pins end-to-end parity per ISA.
//
// Selection: active_isa() == the best compiled-in ISA the CPU reports,
// unless overridden by the RBC_FORCE_ISA environment variable
// ("scalar" | "avx2" | "avx512"; unknown or unavailable values are ignored)
// or programmatically by force_isa() (tests, benches).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace rbc::dispatch {

/// Instruction sets a kernel table can be built for, worst to best.
enum class Isa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

inline constexpr int kNumIsas = 3;

/// Queries per tile for the tile/tile_gemm shapes. 16 = two 8-lane AVX2
/// accumulators or one 16-lane AVX-512 accumulator per database row.
inline constexpr index_t kTile = 16;

/// Rows processed per block by the `rows` shape (8 independent accumulator
/// chains — enough to hide FMA latency on every supported ISA).
inline constexpr index_t kRowBlock = 8;

/// One ISA's kernel table. `x` is the base pointer of a row-major matrix
/// whose rows are `stride` floats apart (rbc::Matrix layout: padding lanes
/// are zero, but kernels only ever read the first `d` features). All
/// outputs are squared L2 distances.
struct KernelOps {
  /// out[(p - lo) * kTile + t] = ||q_t - x_p||^2 for rows p in [lo, hi).
  /// `qt` is the d x kTile transposed query tile (see pack_tile).
  /// `lane_min[t]` receives the per-lane minimum over the row range (+inf
  /// for an empty range): callers filtering lanes against heap bounds skip
  /// a lane's whole filter pass when its minimum already misses — the
  /// common case once heaps have warmed up.
  void (*tile)(const float* qt, index_t d, const float* x, std::size_t stride,
               index_t lo, index_t hi, float* out, float* lane_min);

  /// GEMM form of `tile`: out = q_sq[t] + x_sq[p] - 2 q_t.x_p, clamped at 0.
  /// `q_sq` holds the kTile per-lane squared norms, `x_sq[p]` the row norms
  /// (indexed by absolute row id p). `lane_min` as in `tile`.
  void (*tile_gemm)(const float* qt, const float* q_sq, index_t d,
                    const float* x, std::size_t stride, const float* x_sq,
                    index_t lo, index_t hi, float* out, float* lane_min);

  /// out[p - lo] = ||q - x_p||^2 for rows p in [lo, hi). Returns the
  /// minimum of the written values (+inf for an empty range): callers
  /// filtering against a bound skip the whole block without reading `out`
  /// when the minimum already misses it — the common case once a heap has
  /// warmed up.
  float (*rows)(const float* q, index_t d, const float* x, std::size_t stride,
                index_t lo, index_t hi, float* out);

  /// out[j] = ||q - x_{ids[j]}||^2 for j in [0, count). Returns the
  /// minimum of the written values (+inf when count == 0), as `rows` does.
  float (*gather)(const float* q, index_t d, const float* x,
                  std::size_t stride, const index_t* ids, index_t count,
                  float* out);

  /// Manhattan variants of `rows`/`gather`: out = sum_i |q_i - x_i|. Same
  /// signatures and min-return contract.
  float (*rows_l1)(const float* q, index_t d, const float* x,
                   std::size_t stride, index_t lo, index_t hi, float* out);
  float (*gather_l1)(const float* q, index_t d, const float* x,
                     std::size_t stride, const index_t* ids, index_t count,
                     float* out);

  /// Negated-inner-product variants: out = -<q, x_p>. Outputs may be
  /// negative; the returned minimum is the best (largest) dot product.
  /// Callers filtering against a bound must add an absolute slack scaled
  /// by ||q|| * ||x|| (cancellation error is relative to the magnitudes,
  /// not the result — see kernel_scan.hpp).
  float (*rows_ip)(const float* q, index_t d, const float* x,
                   std::size_t stride, index_t lo, index_t hi, float* out);
  float (*gather_ip)(const float* q, index_t d, const float* x,
                     std::size_t stride, const index_t* ids, index_t count,
                     float* out);

  /// Compressed scan tier (distance/quantized.hpp): fused
  /// dequantize-and-accumulate squared L2 over binary16 row codes. Same
  /// blocking and min-return contract as `rows`/`gather`; `x` is a packed
  /// code matrix whose rows are `stride` codes apart. Half decode is exact
  /// in float, so the rounding model (and tile_margin) matches `rows`.
  float (*rows_fp16)(const float* q, index_t d, const std::uint16_t* x,
                     std::size_t stride, index_t lo, index_t hi, float* out);
  float (*gather_fp16)(const float* q, index_t d, const std::uint16_t* x,
                       std::size_t stride, const index_t* ids, index_t count,
                       float* out);

  /// int8 variants: row p dequantizes as x̂_i = codes_i * scale[p] +
  /// offset[p] (scale/offset indexed by absolute row id), accumulated in
  /// the fused form ((q_i - offset[p]) - scale[p] * codes_i)^2. The two
  /// subtractions can cancel, so callers add an absolute slack scaled by
  /// the row magnitudes on top of tile_margin (see quantized_scan_rows in
  /// kernel_scan.hpp).
  float (*rows_int8)(const float* q, index_t d, const std::int8_t* x,
                     std::size_t stride, const float* scale,
                     const float* offset, index_t lo, index_t hi, float* out);
  float (*gather_int8)(const float* q, index_t d, const std::int8_t* x,
                       std::size_t stride, const float* scale,
                       const float* offset, const index_t* ids, index_t count,
                       float* out);
};

/// Human-readable ISA name ("scalar" / "avx2" / "avx512").
const char* isa_name(Isa isa) noexcept;

/// True when the translation unit for `isa` was compiled with real kernels
/// (the compiler supported the flags; see RBC_SIMD in CMakeLists.txt).
bool isa_compiled(Isa isa) noexcept;

/// True when `isa` is compiled in AND the executing CPU supports it — i.e.
/// force_isa(isa) would actually take effect.
bool isa_available(Isa isa) noexcept;

/// Best available ISA on this host, ignoring any override.
Isa detected_isa() noexcept;

/// The ISA every dispatched scan currently uses: the forced override when
/// one is set (RBC_FORCE_ISA at first use, or force_isa()), else
/// detected_isa().
Isa active_isa() noexcept;

/// Pins the dispatch to `isa` for the rest of the process (or until the
/// next call). Ignored (keeping the current selection) when `isa` is not
/// available. Returns the ISA actually active afterwards. Thread-safe, but
/// intended for tests and benches — not for flipping mid-search.
Isa force_isa(Isa isa) noexcept;

/// Drops any override (programmatic or RBC_FORCE_ISA) and returns to
/// detected_isa().
void clear_forced_isa() noexcept;

/// Kernel table of active_isa(). The reference stays valid forever (tables
/// are static); re-fetch after force_isa() to pick up a change.
const KernelOps& ops() noexcept;

/// Kernel table for a specific ISA; null when !isa_compiled(isa). Lets
/// benches and parity tests exercise every compiled table regardless of the
/// active selection (callers must still check isa_available before
/// *running* a SIMD table).
const KernelOps* ops_for(Isa isa) noexcept;

/// True when the active ISA beats scalar — the signal callers use to decide
/// whether blocked/tiled layouts are worth assembling (replaces the old
/// configure-time blocked::fast_kernel()).
inline bool fast_kernel() noexcept { return active_isa() != Isa::kScalar; }

/// Fills a d x kTile transposed tile from `count` query rows
/// (count <= kTile); unused lanes duplicate the first row so every lane
/// computes something harmless. `qt` must hold d * kTile floats.
void pack_tile(const float* const* rows, index_t count, index_t d, float* qt);

// ------------------------------------------------------------- tolerances ---
//
// Callers filtering with kernel outputs must inflate their squared-distance
// bound by these margins; anything inside the inflated bound is re-measured
// with the scalar metric (exactness contract above).

/// Relative margin covering association-order + FMA-contraction rounding of
/// the difference-form kernels (tile/rows/gather): sums of non-negative
/// terms, so the relative error is bounded by ~d ulps regardless of
/// summation order. Keep if  approx <= bound_sq * (1 + tile_margin(d)).
inline float tile_margin(index_t d) noexcept {
  return 1e-5f + 4e-7f * static_cast<float>(d);
}

/// Absolute-margin scale for the GEMM-form kernel, whose cancellation error
/// is relative to the norm magnitudes rather than to the distance. Keep if
///   approx <= bound_sq * (1 + tile_margin(d))
///             + gemm_margin_scale(d) * (q_sq + x_sq).
inline float gemm_margin_scale(index_t d) noexcept {
  return 1e-5f + 4e-7f * static_cast<float>(d);
}

}  // namespace rbc::dispatch
