#include "distance/quantized.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace rbc::quant {

namespace {

constexpr Storage kAll[] = {Storage::kFloat32, Storage::kFp16, Storage::kInt8};
constexpr const char* kNames[] = {"float32", "fp16", "int8"};

}  // namespace

const char* name(Storage storage) noexcept {
  return kNames[static_cast<int>(storage)];
}

bool lookup(std::string_view name, Storage& out) noexcept {
  for (const Storage s : kAll) {
    if (name == kNames[static_cast<int>(s)]) {
      out = s;
      return true;
    }
  }
  return false;
}

Storage require(const char* backend, std::string_view requested,
                std::span<const Storage> supported) {
  Storage s{};
  if (lookup(requested, s)) {
    for (const Storage ok : supported)
      if (s == ok) return s;
  }
  std::string msg = "rbc::Index[";
  msg += backend;
  msg += "]: unsupported storage '";
  msg += requested;
  msg += "' (supported:";
  for (std::size_t i = 0; i < supported.size(); ++i) {
    msg += i == 0 ? " " : ", ";
    msg += name(supported[i]);
  }
  msg += ")";
  throw std::invalid_argument(msg);
}

std::vector<std::string> names(std::span<const Storage> supported) {
  std::vector<std::string> out;
  out.reserve(supported.size());
  for (const Storage s : supported) out.emplace_back(name(s));
  return out;
}

// -------------------------------------------------- software fp16 codec ---

std::uint16_t fp16_encode(float value) noexcept {
  std::uint32_t x = 0;
  std::memcpy(&x, &value, sizeof x);
  const auto sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t abs = x & 0x7fffffffu;
  if (abs >= 0x7f800000u)  // inf / nan (nan keeps a payload bit set)
    return static_cast<std::uint16_t>(sign | 0x7c00u |
                                      (abs > 0x7f800000u ? 0x0200u : 0u));
  if (abs >= 0x47800000u)  // magnitude >= 65536 overflows half: +-inf
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  if (abs >= 0x38800000u) {
    // Normal half: rebias exponent (127 -> 15), drop 13 mantissa bits with
    // round-to-nearest-even. A mantissa carry overflows cleanly into the
    // exponent field (1.111... rounds up to the next power of two).
    const std::uint32_t base = abs - 0x38000000u;
    std::uint32_t h = base >> 13;
    const std::uint32_t rem = base & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
    return static_cast<std::uint16_t>(sign | h);
  }
  if (abs < 0x33000000u) return sign;  // below half the smallest subnormal
  // Subnormal half: the value is mant24 * 2^(e-150), the target ulp 2^-24,
  // so the code is mant24 >> (126 - e) with round-to-nearest-even.
  const std::uint32_t e = abs >> 23;
  const std::uint32_t mant = (abs & 0x7fffffu) | 0x800000u;
  const std::uint32_t shift = 126u - e;
  std::uint32_t h = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1u);
  const std::uint32_t half = 1u << (shift - 1u);
  if (rem > half || (rem == half && (h & 1u))) ++h;
  return static_cast<std::uint16_t>(sign | h);
}

float fp16_decode(std::uint16_t code) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(code & 0x8000u) << 16;
  const std::uint32_t exp = (code >> 10) & 0x1fu;
  const std::uint32_t mant = code & 0x3ffu;
  std::uint32_t bits;
  if (exp == 0x1fu) {  // inf / nan
    bits = sign | 0x7f800000u | (mant << 13);
  } else if (exp != 0) {  // normal: rebias 15 -> 127
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  } else if (mant != 0) {  // subnormal half: renormalize (exact in float)
    std::uint32_t e = 0;
    std::uint32_t m = mant << 1;
    while (!(m & 0x400u)) {
      m <<= 1;
      ++e;
    }
    bits = sign | ((112u - e) << 23) | ((m & 0x3ffu) << 13);
  } else {
    bits = sign;  // +-0
  }
  float out = 0.0f;
  std::memcpy(&out, &bits, sizeof out);
  return out;
}

// ----------------------------------------------------- quantized row store --

namespace {

/// Inflation absorbing the double-precision residual computation's own
/// rounding, so the stored err stays a true upper bound on ||x - x̂||.
inline float inflate_err(double sq_sum) noexcept {
  return static_cast<float>(std::sqrt(sq_sum)) * (1.0f + 1e-5f) + 1e-30f;
}

}  // namespace

QuantizedStore quantize(Storage mode, const Matrix<float>& X) {
  QuantizedStore store;
  store.mode = mode;
  store.rows = X.rows();
  store.cols = X.cols();
  if (mode == Storage::kFloat32 || store.rows == 0) return store;

  const index_t n = store.rows;
  const index_t d = store.cols;
  const std::size_t total =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(d);
  store.err.resize(n);
  if (mode == Storage::kFp16) {
    store.fp16.resize(total);
    for (index_t r = 0; r < n; ++r) {
      const float* row = X.row(r);
      std::uint16_t* codes = store.fp16.data() + static_cast<std::size_t>(r) * d;
      double sq = 0.0;
      for (index_t i = 0; i < d; ++i) {
        codes[i] = fp16_encode(row[i]);
        const double diff =
            static_cast<double>(row[i]) - fp16_decode(codes[i]);
        sq += diff * diff;
      }
      store.err[r] = inflate_err(sq);
      if (store.err[r] > store.err_max) store.err_max = store.err[r];
    }
    return store;
  }

  // int8: per-row affine codes. offset = midpoint and scale = range / 254
  // put every value inside [-127, 127]; a constant row gets scale 0 and
  // encodes exactly (code 0, dequant == offset).
  store.int8.resize(total);
  store.scale.resize(n);
  store.offset.resize(n);
  store.amp.resize(n);
  const float sqrt_d = std::sqrt(static_cast<float>(d));
  for (index_t r = 0; r < n; ++r) {
    const float* row = X.row(r);
    float mn = row[0];
    float mx = row[0];
    for (index_t i = 1; i < d; ++i) {
      if (row[i] < mn) mn = row[i];
      if (row[i] > mx) mx = row[i];
    }
    const float offset = 0.5f * (mx + mn);
    const float scale = (mx - mn) / 254.0f;
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    std::int8_t* codes = store.int8.data() + static_cast<std::size_t>(r) * d;
    double sq = 0.0;
    double dequant_sq = 0.0;
    for (index_t i = 0; i < d; ++i) {
      float c = std::nearbyint((row[i] - offset) * inv);
      if (c < -127.0f) c = -127.0f;
      if (c > 127.0f) c = 127.0f;
      codes[i] = static_cast<std::int8_t>(c);
      const double dequant = static_cast<double>(c) * scale + offset;
      const double diff = static_cast<double>(row[i]) - dequant;
      sq += diff * diff;
      dequant_sq += dequant * dequant;
    }
    store.scale[r] = scale;
    store.offset[r] = offset;
    store.err[r] = inflate_err(sq);
    // Magnitude bound for the kernel's fused-dequant rounding slack:
    // ||x̂_r|| + 2 |offset_r| sqrt(d) dominates the cancellation terms of
    // (q_i - offset) - scale * code_i (see quantized_scan_rows).
    store.amp[r] = static_cast<float>(std::sqrt(dequant_sq)) +
                   2.0f * std::fabs(offset) * sqrt_d;
    if (store.err[r] > store.err_max) store.err_max = store.err[r];
    if (store.amp[r] > store.amp_max) store.amp_max = store.amp[r];
  }
  return store;
}

}  // namespace rbc::quant
