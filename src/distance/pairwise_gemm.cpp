#include "distance/pairwise_gemm.hpp"

#include <algorithm>

#include "common/counters.hpp"
#include "distance/kernels.hpp"
#include "parallel/parallel_for.hpp"

namespace rbc {

std::vector<float> row_sq_norms(const Matrix<float>& A) {
  std::vector<float> norms(A.rows());
  parallel_for(0, A.rows(), [&](index_t i) {
    norms[i] = kernels::dot(A.row(i), A.row(i), A.cols());
  });
  return norms;
}

Matrix<float> pairwise_sq_l2_gemm(const Matrix<float>& Q,
                                  const Matrix<float>& X) {
  const index_t d = Q.cols();
  const std::vector<float> q_norms = row_sq_norms(Q);
  const std::vector<float> x_norms = row_sq_norms(X);

  Matrix<float> out(Q.rows(), X.rows());
  constexpr index_t kTile = 16;  // query rows held hot per block
  parallel_for_blocked(0, Q.rows(), kTile, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) {
      const float* qi = Q.row(i);
      float* row = out.row(i);
      for (index_t j = 0; j < X.rows(); ++j) {
        const float dot = kernels::dot(qi, X.row(j), d);
        row[j] = std::max(0.0f, q_norms[i] + x_norms[j] - 2.0f * dot);
      }
    }
    counters::add_dist_evals(static_cast<std::uint64_t>(hi - lo) * X.rows());
  });
  return out;
}

}  // namespace rbc
