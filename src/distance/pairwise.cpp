#include "distance/pairwise.hpp"

#include "parallel/parallel_for.hpp"

namespace rbc {

template <DenseMetric M>
Matrix<float> pairwise_all(const Matrix<float>& A, const Matrix<float>& B,
                           M metric) {
  Matrix<float> out(A.rows(), B.rows());
  parallel_for_blocked(0, A.rows(), kTileQ, [&](index_t lo, index_t hi) {
    for (index_t b = 0; b < B.rows(); b += kTileX) {
      const index_t b_hi = std::min<index_t>(b + kTileX, B.rows());
      pairwise_tile(A, lo, hi, B, b, b_hi, metric, out.row(lo) + b,
                    out.stride());
    }
  });
  return out;
}

// Explicit instantiations for the shipped metrics.
template Matrix<float> pairwise_all<Euclidean>(const Matrix<float>&,
                                               const Matrix<float>&,
                                               Euclidean);
template Matrix<float> pairwise_all<SqEuclidean>(const Matrix<float>&,
                                                 const Matrix<float>&,
                                                 SqEuclidean);
template Matrix<float> pairwise_all<L1>(const Matrix<float>&,
                                        const Matrix<float>&, L1);
template Matrix<float> pairwise_all<LInf>(const Matrix<float>&,
                                          const Matrix<float>&, LInf);

Matrix<float> pairwise_l2(const Matrix<float>& A, const Matrix<float>& B) {
  return pairwise_all(A, B, Euclidean{});
}

}  // namespace rbc
