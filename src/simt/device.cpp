#include "simt/device.hpp"

#include <functional>

#include "parallel/runtime.hpp"

namespace rbc::simt {

Device::Device(int workers)
    : workers_(workers > 0 ? workers : max_threads()) {}

void Device::run_blocks(Dim3 grid, Dim3 block,
                        const std::function<void(Block&)>& body) {
  const std::uint64_t total = grid.count();
  // One reusable Block context per worker: the shared-memory arena is
  // allocated once and recycled across blocks (as SM shared memory is).
  std::vector<Block> contexts(static_cast<std::size_t>(workers_));

#pragma omp parallel for schedule(dynamic, 1) num_threads(workers_)
  for (std::int64_t linear = 0; linear < static_cast<std::int64_t>(total);
       ++linear) {
    Block& ctx = contexts[static_cast<std::size_t>(thread_id())];
    Dim3 idx;
    std::uint64_t rest = static_cast<std::uint64_t>(linear);
    idx.x = static_cast<std::uint32_t>(rest % grid.x);
    rest /= grid.x;
    idx.y = static_cast<std::uint32_t>(rest % grid.y);
    rest /= grid.y;
    idx.z = static_cast<std::uint32_t>(rest);
    ctx.begin_block(idx, block, grid);
    body(ctx);
  }
}

}  // namespace rbc::simt
