// SIMT execution substrate: a CUDA-shaped programming model executed by a CPU
// worker pool.
//
// The paper's §7.3 experiments run on an NVIDIA Tesla C2050; no GPU exists in
// this reproduction environment, so per DESIGN.md §2 we substitute a
// simulator that preserves the *programming model* the paper's point depends
// on: computation expressed as kernels over a grid of thread blocks, with
// per-block shared memory, block-phase barriers, and explicit host<->device
// transfers. The RBC's one-shot search maps onto this model with no
// divergent branching — exactly the property §7.3 demonstrates.
//
// Execution model:
//  * launch(grid, block, kernel) runs `kernel(Block&)` once per grid block;
//    blocks are independent and scheduled across the worker pool (as on a
//    real device, no ordering or concurrency guarantees between blocks);
//  * within a kernel, Block::threads(f) runs f(tid) for every thread id in
//    the block — each call is one "phase", and consecutive phases are
//    separated by an implicit __syncthreads()-style barrier (block-
//    synchronous programming);
//  * Block::shared<T>(count) allocates from the block's shared-memory arena,
//    persistent across phases of the same block, reset between blocks;
//  * DeviceBuffer<T> is device-resident memory: host code touches it only
//    through upload()/download(), which are metered in DeviceStats just as
//    cudaMemcpy traffic would be.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"

namespace rbc::simt {

/// Grid/block extents, CUDA-style.
struct Dim3 {
  std::uint32_t x = 1, y = 1, z = 1;

  std::uint64_t count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
};

/// Transfer and launch accounting (what a profiler would report).
struct DeviceStats {
  std::uint64_t kernels_launched = 0;
  std::uint64_t blocks_executed = 0;
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  std::uint64_t bytes_allocated = 0;
};

/// Per-block execution context handed to kernels.
class Block {
 public:
  Dim3 block_idx;  // which block this is (blockIdx)
  Dim3 block_dim;  // threads per block (blockDim)
  Dim3 grid_dim;   // blocks in the grid (gridDim)

  std::uint32_t num_threads() const {
    return block_dim.x * block_dim.y * block_dim.z;
  }

  /// Allocates `count` Ts from the block's shared-memory arena. Contents
  /// persist across phases of this block; the arena resets between blocks.
  /// Allocations have stable addresses for the lifetime of the block (the
  /// arena grows by adding chunks, never by moving existing ones).
  template <class T>
  std::span<T> shared(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    std::byte* p = static_cast<std::byte*>(
        arena_allocate(bytes == 0 ? 1 : bytes, alignof(T)));
    return {reinterpret_cast<T*>(p), count};
  }

  /// One phase: runs f(tid) for tid in [0, num_threads()). The return of
  /// this call is a block-wide barrier; shared memory written in one phase
  /// is visible in the next.
  template <class F>
  void threads(F&& f) {
    const std::uint32_t nt = num_threads();
    for (std::uint32_t t = 0; t < nt; ++t) f(t);
  }

  /// Internal: called by Device before handing the block to a kernel.
  void begin_block(Dim3 idx, Dim3 bdim, Dim3 gdim) {
    block_idx = idx;
    block_dim = bdim;
    grid_dim = gdim;
    chunk_index_ = 0;
    chunk_used_ = 0;
  }

 private:
  /// Bump allocation over a list of fixed chunks. Chunks are recycled
  /// between blocks and never move, so spans handed out earlier in the same
  /// block stay valid when later allocations trigger growth.
  void* arena_allocate(std::size_t bytes, std::size_t align) {
    while (true) {
      if (chunk_index_ < chunks_.size()) {
        AlignedBuffer<std::byte>& chunk = chunks_[chunk_index_];
        const std::size_t aligned = (chunk_used_ + align - 1) / align * align;
        if (aligned + bytes <= chunk.size()) {
          chunk_used_ = aligned + bytes;
          return chunk.data() + aligned;
        }
        // Current chunk exhausted: move on (leftover space is abandoned).
        ++chunk_index_;
        chunk_used_ = 0;
        continue;
      }
      constexpr std::size_t kMinChunk = 256 * 1024;  // typical SM carve-out
      chunks_.emplace_back(std::max(bytes + align, kMinChunk));
      chunk_used_ = 0;
    }
  }

  std::vector<AlignedBuffer<std::byte>> chunks_;
  std::size_t chunk_index_ = 0;
  std::size_t chunk_used_ = 0;
};

/// The simulated device: owns a worker count and the transfer/launch meters.
class Device {
 public:
  /// workers = 0 selects all available cores.
  explicit Device(int workers = 0);

  int workers() const { return workers_; }
  const DeviceStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DeviceStats{}; }

  /// Launches kernel(Block&) over the grid. Blocks run concurrently across
  /// the worker pool; the call returns when every block has finished
  /// (stream-0 semantics).
  template <class K>
  void launch(Dim3 grid, Dim3 block, K&& kernel) {
    ++stats_.kernels_launched;
    stats_.blocks_executed += grid.count();
    run_blocks(grid, block, [&kernel](Block& blk) { kernel(blk); });
  }

  // Internal accounting hooks used by DeviceBuffer.
  void note_alloc(std::size_t bytes) { stats_.bytes_allocated += bytes; }
  void note_h2d(std::size_t bytes) { stats_.bytes_h2d += bytes; }
  void note_d2h(std::size_t bytes) { stats_.bytes_d2h += bytes; }

 private:
  /// Type-erased block scheduler (implemented in device.cpp so the OpenMP
  /// pragma lives in exactly one translation unit).
  void run_blocks(Dim3 grid, Dim3 block,
                  const std::function<void(Block&)>& body);

  int workers_;
  DeviceStats stats_;
};

/// Device-resident typed buffer. Host access only via upload()/download();
/// kernels receive the raw pointer via data() (the "device pointer").
template <class T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  DeviceBuffer(Device& device, std::size_t count)
      : device_(&device), storage_(count) {
    device.note_alloc(count * sizeof(T));
  }

  std::size_t size() const { return storage_.size(); }

  /// Host -> device copy (metered). A zero-byte copy is a no-op (an empty
  /// buffer's data() is null, which memcpy must never see even for n = 0).
  void upload(std::span<const T> host) {
    if (!host.empty()) std::memcpy(storage_.data(), host.data(),
                                   host.size_bytes());
    device_->note_h2d(host.size_bytes());
  }

  /// Device -> host copy (metered).
  void download(std::span<T> host) const {
    if (!host.empty()) std::memcpy(host.data(), storage_.data(),
                                   host.size_bytes());
    device_->note_d2h(host.size_bytes());
  }

  /// Device pointer: pass to kernels; host code must not dereference
  /// (convention, as with a real device pointer).
  T* data() { return storage_.data(); }
  const T* data() const { return storage_.data(); }

 private:
  Device* device_ = nullptr;
  AlignedBuffer<T> storage_;
};

}  // namespace rbc::simt
