// Type-erased non-vector dataset layer of the generic metric-space
// subsystem (see space.hpp for the metric registry and ARCHITECTURE.md
// "Generic metric spaces").
//
// A Dataset is an immutable, opaque payload store — a string collection, a
// weighted graph with a node list, a user blob table — that a registered
// metric space binds a distance function over. It is the non-vector
// counterpart of the dense row matrix: the unified API's payload path
// (Index::build_payload) takes a DatasetHandle where build() takes a
// Matrix<float>, and every layer above (serve, shard, net) moves handles
// and payload strings instead of float rows.
//
// This header is deliberately free of api/ includes: the dependency order
// is common/ -> metricspace/dataset -> api/ -> metricspace/space +
// generic_backend, which is what lets api/index.hpp name DatasetHandle in
// its payload entry points without a cycle.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace rbc::metricspace {

/// One weighted undirected edge of a graph dataset.
struct GraphEdge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  float weight = 1.0f;
};

/// Upper bound on one element's payload bytes. Matches the net codec's
/// per-string cap, so any serveable dataset is also wire-expressible, and a
/// corrupt length field in a v6 stream can never drive a giant allocation.
inline constexpr std::uint64_t kMaxPayloadBytes = 1u << 16;

/// Upper bound on elements per dataset — far beyond test/demo scale, small
/// enough to reject corrupt count fields before allocating for them.
inline constexpr std::uint64_t kMaxPayloadItems = 1u << 28;

class Dataset;
/// How datasets travel: shared and immutable. Subsets (sharding) and the
/// indices built over them all point into the same underlying store.
using DatasetHandle = std::shared_ptr<const Dataset>;

/// An immutable collection of opaque elements. `item(i)` exposes element
/// i's payload bytes (the string itself for string collections; the 8-byte
/// little-endian node id for graph node sets) — the same encoding queries
/// use, so "query vs element" and "element vs element" are one code path.
class Dataset {
 public:
  virtual ~Dataset() = default;

  /// Number of elements.
  virtual index_t size() const = 0;

  /// Registry kind tag ("strings", "graph") — what Space binders check a
  /// handle against, and the leading tag of the serialized payload.
  virtual std::string_view kind() const = 0;

  /// Payload bytes of element i (borrowed; valid while the dataset lives).
  virtual std::string_view item(index_t i) const = 0;

  /// The sub-dataset holding exactly `rows` (ascending global positions of
  /// this dataset), sharing the underlying store. Element j of the subset
  /// is element rows[j] of this dataset — ascending order is preserved, so
  /// the sharded composite's global-id remap stays valid.
  virtual DatasetHandle subset(std::span<const index_t> rows) const = 0;

  /// Serializes the payload (kind tag + store); load_dataset restores it.
  virtual void save(std::ostream& os) const = 0;

  /// Payload memory owned by this dataset (shared stores count once per
  /// holder — an approximation, like IndexInfo::memory_bytes).
  virtual std::size_t memory_bytes() const = 0;
};

/// A string collection (each element's payload is the string itself).
/// Throws std::invalid_argument when an item exceeds kMaxPayloadBytes.
DatasetHandle make_string_dataset(std::vector<std::string> items);

/// A weighted undirected graph plus the node set to index: element i is
/// node `nodes[i]`; distances between elements are shortest paths in the
/// *full* graph, so subsets (shards) answer identically to the whole.
/// Passing an empty `nodes` indexes every node (0..num_nodes-1). Throws
/// std::invalid_argument on an endpoint >= num_nodes, a non-positive /
/// non-finite weight, or a duplicate or out-of-range node id.
DatasetHandle make_graph_dataset(index_t num_nodes,
                                 std::vector<GraphEdge> edges,
                                 std::vector<index_t> nodes = {});

/// Restores a dataset written by Dataset::save(). The stream must start at
/// the kind tag. Corruption (unknown kind, oversized length/count fields,
/// truncation) throws std::runtime_error.
DatasetHandle load_dataset(std::istream& is);

/// Internal view used by the graph metric space (space.cpp): the shared
/// graph core behind a graph dataset, or nullptr for other kinds.
class GraphCore;
std::shared_ptr<const GraphCore> graph_core_of(const Dataset& data);

/// The global node ids a graph dataset indexes (element -> node id);
/// empty for other kinds.
std::span<const index_t> graph_nodes_of(const Dataset& data);

}  // namespace rbc::metricspace
