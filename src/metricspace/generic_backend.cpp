#include "metricspace/generic_backend.hpp"

#include <istream>
#include <limits>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "metricspace/dataset.hpp"
#include "metricspace/space.hpp"
#include "parallel/parallel_for.hpp"
#include "rbc/rbc_generic.hpp"
#include "rbc/serialize_io.hpp"

namespace rbc::metricspace {

namespace {

const char* host_name(Algo algo) {
  switch (algo) {
    case Algo::kBruteForce:
      return "bruteforce";
    case Algo::kRbcExact:
      return "rbc-exact";
    case Algo::kRbcOneShot:
      return "rbc-oneshot";
  }
  return "bruteforce";
}

/// Adapts a bound Space to the MetricSpace / BoundedMetricSpace concepts
/// the generic search templates (bf_generic.hpp, rbc_generic.hpp) are
/// written against. Database points are element indices; a query is its
/// payload bytes tagged with kInvalidIndex. Element-vs-element distances
/// (build-time representative assignments) go through Space::distance;
/// query-vs-element through query_distance / query_distance_bounded — the
/// metric is symmetric, so operand order does not matter.
class SpaceAdapter {
 public:
  struct ErasedPoint {
    std::string_view payload{};   // query bytes; unused for db elements
    index_t id = kInvalidIndex;   // db element index; kInvalidIndex = query
  };
  using Point = ErasedPoint;

  explicit SpaceAdapter(const Space& space) : space_(&space) {
    points_.resize(static_cast<std::size_t>(space.size()));
    for (index_t i = 0; i < space.size(); ++i)
      points_[static_cast<std::size_t>(i)] = {std::string_view{}, i};
  }

  index_t size() const { return static_cast<index_t>(points_.size()); }

  const Point& operator[](index_t i) const {
    return points_[static_cast<std::size_t>(i)];
  }

  double distance(const Point& a, const Point& b) const {
    if (a.id != kInvalidIndex && b.id != kInvalidIndex)
      return space_->distance(a.id, b.id);
    if (b.id != kInvalidIndex) return space_->query_distance(a.payload, b.id);
    return space_->query_distance(b.payload, a.id);
  }

  double distance_bounded(const Point& a, const Point& b, double band) const {
    if (a.id != kInvalidIndex && b.id != kInvalidIndex)
      return space_->distance(a.id, b.id);
    if (b.id != kInvalidIndex)
      return space_->query_distance_bounded(a.payload, b.id, band);
    return space_->query_distance_bounded(b.payload, a.id, band);
  }

 private:
  const Space* space_;
  std::vector<Point> points_;
};

static_assert(BoundedMetricSpace<SpaceAdapter>);

class GenericIndex final : public Index {
 public:
  GenericIndex(Algo algo, const IndexOptions& options)
      : algo_(algo), host_(host_name(algo)), params_(options.rbc) {
    const SpaceEntry* entry = find_space(options.metric);
    if (entry == nullptr)
      fail("unknown metric space '" + options.metric + "'");
    metric_ = entry->name;
    cost_unit_ = entry->cost_unit;
    // Payload datasets have no dense rows, so there is nothing for a
    // quantized code store to compress.
    if (options.storage != "float32")
      fail("storage '" + options.storage +
           "' is not supported with payload metric '" + metric_ +
           "' (supported: float32)");
  }

  void build(const Matrix<float>& /*X*/) override {
    fail("dense build() on payload metric '" + metric_ +
         "' (use build_payload)");
  }

  SearchResponse knn_search(const SearchRequest& /*request*/) const override {
    fail("dense knn_search() on payload metric '" + metric_ +
         "' (use knn_search_payload)");
  }

  void build_payload(const metricspace::DatasetHandle& data) override {
    std::unique_ptr<Space> space;
    try {
      space = bind_space(metric_, data);
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    }
    data_ = data;
    space_ = std::move(space);
    adapter_ = std::make_unique<SpaceAdapter>(*space_);
    const index_t n = adapter_->size();
    all_ids_.resize(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) all_ids_[static_cast<std::size_t>(i)] = i;
    // An empty dataset builds trivially: every k >= 1 search is rejected by
    // the shared validator (k > size), so the structures are never probed.
    if (n > 0) {
      if (algo_ == Algo::kRbcExact) exact_.build(*adapter_, params_);
      if (algo_ == Algo::kRbcOneShot) oneshot_.build(*adapter_, params_);
    }
    built_ = true;
  }

  SearchResponse knn_search_payload(
      const PayloadSearchRequest& request) const override {
    validate_knn_payload(request, size(), built_, host_.c_str(), metric_);
    const std::vector<std::string>& queries = *request.queries;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const std::string msg = space_->validate_query(queries[i]);
      if (!msg.empty())
        fail("query " + std::to_string(i) + ": " + msg);
    }

    const index_t nq = static_cast<index_t>(queries.size());
    SearchResponse response;
    response.knn = KnnResult(nq, request.k);
    std::mutex stats_mutex;
    parallel_for_dynamic(0, nq, [&](index_t qi) {
      SearchStats local;
      const SpaceAdapter::ErasedPoint qp{
          std::string_view(queries[static_cast<std::size_t>(qi)]),
          kInvalidIndex};
      std::vector<GenericNeighbor> nns;
      switch (algo_) {
        case Algo::kBruteForce:
          nns = generic_knn_subset_pruned(*adapter_, qp, all_ids_, request.k);
          local.queries = 1;
          local.list_dist_evals = all_ids_.size();
          break;
        case Algo::kRbcExact:
          nns = exact_.search(qp, request.k, &local);
          break;
        case Algo::kRbcOneShot:
          nns = oneshot_.search(qp, request.k, &local);
          break;
      }
      dist_t* drow = response.knn.dists.row(qi);
      index_t* irow = response.knn.ids.row(qi);
      for (index_t j = 0; j < request.k; ++j) {
        // One-shot may certify fewer than k candidates; pad like the dense
        // concrete classes do.
        if (static_cast<std::size_t>(j) < nns.size()) {
          drow[j] = static_cast<dist_t>(nns[static_cast<std::size_t>(j)].dist);
          irow[j] = nns[static_cast<std::size_t>(j)].id;
        } else {
          drow[j] = std::numeric_limits<dist_t>::infinity();
          irow[j] = kInvalidIndex;
        }
      }
      if (request.options.collect_stats) {
        std::lock_guard<std::mutex> lock(stats_mutex);
        response.stats.merge(local);
      }
    });
    return response;
  }

  void save(std::ostream& os) const override {
    if (!built_)
      throw std::runtime_error(
          "rbc::Index: cannot save an unbuilt payload index");
    io::write_pod(os, io::kMagicPayload);
    io::write_pod(os, io::kFormatVersionPayload);
    io::write_string(os, host_);
    io::write_string(os, metric_);
    io::write_pod(os, params_);
    data_->save(os);
  }

  IndexInfo info() const override {
    IndexInfo info;
    info.backend = host_;
    info.metric = metric_;
    // Payload instances reject the dense entry points outright, so they
    // advertise no dense metric/storage capability...
    info.supported_metrics.clear();
    info.size = size();
    info.dim = 0;
    info.exact = algo_ != Algo::kRbcOneShot;
    info.supports_save = true;
    info.memory_bytes =
        built_ ? data_->memory_bytes() +
                     all_ids_.size() * (sizeof(index_t) +
                                        sizeof(SpaceAdapter::ErasedPoint))
               : 0;
    info.payload = true;
    info.cost_unit = cost_unit_;
    // ...and the space registry is what they serve instead.
    info.supported_spaces = space_names();
    return info;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("rbc::Index[" + host_ + "]: " + what);
  }

  index_t size() const { return data_ ? data_->size() : 0; }

  Algo algo_;
  std::string host_;
  std::string metric_;
  std::string cost_unit_;
  RbcParams params_;
  DatasetHandle data_;
  std::unique_ptr<Space> space_;
  std::unique_ptr<SpaceAdapter> adapter_;
  std::vector<index_t> all_ids_;
  RbcGenericExact<SpaceAdapter> exact_;
  RbcGenericOneShot<SpaceAdapter> oneshot_;
  bool built_ = false;
};

}  // namespace

std::unique_ptr<Index> make_generic(Algo algo, const IndexOptions& options) {
  return std::make_unique<GenericIndex>(algo, options);
}

std::unique_ptr<Index> load_payload_index(std::istream& is) {
  io::expect_pod(is, io::kMagicPayload, "payload index magic");
  std::uint32_t version = 0;
  io::read_pod(is, version);
  if (version != io::kFormatVersionPayload)
    throw std::runtime_error("rbc::io: unsupported format version " +
                             std::to_string(version) +
                             " reading payload index");
  const std::string backend = io::read_string(is);
  Algo algo{};
  if (backend == "bruteforce")
    algo = Algo::kBruteForce;
  else if (backend == "rbc-exact")
    algo = Algo::kRbcExact;
  else if (backend == "rbc-oneshot")
    algo = Algo::kRbcOneShot;
  else
    throw std::runtime_error(
        "rbc::io: corrupt payload stream (unknown backend tag '" + backend +
        "')");
  const std::string metric = io::read_string(is);
  if (!space_registered(metric))
    throw std::runtime_error(
        "rbc::io: corrupt payload stream (unknown metric-space tag '" +
        metric + "')");
  IndexOptions options;
  options.metric = metric;
  io::read_pod(is, options.rbc);
  const DatasetHandle data = load_dataset(is);
  auto index = std::make_unique<GenericIndex>(algo, options);
  try {
    // Rebuild deterministically from the stored params — the structures are
    // a pure function of (dataset, params), so persisting the dataset alone
    // keeps the format small and trivially forward-portable.
    index->build_payload(data);
  } catch (const std::invalid_argument& e) {
    // e.g. a kind/metric mismatch inside the stream: corruption, not a
    // caller error.
    throw std::runtime_error(std::string("rbc::io: corrupt payload stream (") +
                             e.what() + ")");
  }
  return index;
}

}  // namespace rbc::metricspace
