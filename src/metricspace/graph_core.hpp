// Shared graph store behind graph datasets: adjacency plus a lazily filled
// per-source shortest-path row cache.
//
// The seed's GraphSpace (distance/graph_metric.hpp) precomputes all pairs
// up front — fine for examples, wrong for the serving path where a shard
// only ever queries a slice of sources. Here Dijkstra runs on first use of
// a source row and the row is cached; every row is computed from the
// *smaller* endpoint of the (u, v) pair, so the floating-point sum order is
// a function of the graph alone and distance(u, v) == distance(v, u) bit
// for bit, on every shard, across save/load.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "metricspace/dataset.hpp"

namespace rbc::metricspace {

class GraphCore {
 public:
  /// Validates and adopts the edge list (endpoints < num_nodes, positive
  /// finite weights). Throws std::invalid_argument on violation.
  GraphCore(index_t num_nodes, std::vector<GraphEdge> edges);

  index_t num_nodes() const { return num_nodes_; }
  const std::vector<GraphEdge>& edges() const { return edges_; }

  /// Shortest-path distance between nodes u and v (infinity when
  /// disconnected). Exactly representable as float — rows are rounded to
  /// float once at cache-fill time, so the value survives the dist_t wire
  /// and merge layers unchanged. Thread-safe; counts one metric-cost unit
  /// per edge relaxation examined (cache hits cost zero).
  double distance(index_t u, index_t v) const;

  std::size_t memory_bytes() const;

 private:
  struct Arc {
    index_t to;
    float weight;
  };

  const std::vector<float>& row_locked(index_t source) const;

  index_t num_nodes_;
  std::vector<GraphEdge> edges_;
  std::vector<std::vector<Arc>> adjacency_;
  mutable std::mutex mutex_;
  mutable std::vector<std::unique_ptr<std::vector<float>>> rows_;
};

}  // namespace rbc::metricspace
