// The generic payload backend: RBC / brute force over a registered metric
// space (space.hpp) bound to a payload dataset (dataset.hpp), behind the
// unified Index interface.
//
// There is no separate registry name for it: make_index("rbc-exact",
// {.metric = "edit"}) — or "bruteforce" / "rbc-oneshot" — dispatches here
// when the metric resolves in the space registry, so callers select the
// search algorithm exactly as they do for dense builds and the payload
// path stays invisible until a payload metric is asked for.
#pragma once

#include <iosfwd>
#include <memory>

#include "api/index.hpp"

namespace rbc::metricspace {

/// The host search algorithm a generic payload index runs.
enum class Algo { kBruteForce, kRbcExact, kRbcOneShot };

/// A payload-backed index for `algo`. `options.metric` must name a
/// registered metric space and `options.storage` must be "float32"
/// (payload datasets have no dense rows to compress); violations throw
/// std::invalid_argument with the make_index error shape. The returned
/// index answers build_payload / knn_search_payload and rejects the dense
/// entry points.
std::unique_ptr<Index> make_generic(Algo algo, const IndexOptions& options);

/// Restores an index written by the generic backend's save() (format
/// version 6, magic io::kMagicPayload — see rbc/serialize_io.hpp). The
/// unified rbc::load_index() dispatches here on the magic. Corruption
/// (unknown backend/metric tag, truncated or oversized dataset payload)
/// throws std::runtime_error.
std::unique_ptr<Index> load_payload_index(std::istream& is);

}  // namespace rbc::metricspace
