#include "metricspace/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "common/counters.hpp"
#include "metricspace/graph_core.hpp"
#include "rbc/serialize_io.hpp"

namespace rbc::metricspace {

namespace {

[[noreturn]] void invalid(const std::string& what) {
  throw std::invalid_argument("rbc::metricspace: " + what);
}

[[noreturn]] void corrupt(const std::string& what) {
  throw std::runtime_error("rbc::io: corrupt payload dataset (" + what + ")");
}

// ------------------------------------------------------------- strings ----

class StringDataset final : public Dataset {
 public:
  explicit StringDataset(std::vector<std::string> items)
      : items_(std::move(items)) {}

  index_t size() const override { return static_cast<index_t>(items_.size()); }
  std::string_view kind() const override { return "strings"; }
  std::string_view item(index_t i) const override { return items_[i]; }

  DatasetHandle subset(std::span<const index_t> rows) const override {
    std::vector<std::string> picked;
    picked.reserve(rows.size());
    for (const index_t r : rows) picked.push_back(items_[r]);
    return std::make_shared<StringDataset>(std::move(picked));
  }

  void save(std::ostream& os) const override {
    io::write_string(os, std::string(kind()));
    io::write_pod(os, static_cast<std::uint64_t>(items_.size()));
    for (const std::string& s : items_) io::write_string(os, s);
  }

  std::size_t memory_bytes() const override {
    std::size_t total = items_.size() * sizeof(std::string);
    for (const std::string& s : items_) total += s.capacity();
    return total;
  }

 private:
  std::vector<std::string> items_;
};

// --------------------------------------------------------------- graph ----

class GraphDataset final : public Dataset {
 public:
  GraphDataset(std::shared_ptr<const GraphCore> core,
               std::vector<index_t> nodes)
      : core_(std::move(core)), nodes_(std::move(nodes)) {
    // Element payloads are the 8-byte little-endian node ids — the same
    // encoding payload queries use, so one decoder serves both.
    blob_.resize(nodes_.size() * 8);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::uint64_t id = nodes_[i];
      std::memcpy(blob_.data() + i * 8, &id, 8);
    }
  }

  index_t size() const override { return static_cast<index_t>(nodes_.size()); }
  std::string_view kind() const override { return "graph"; }
  std::string_view item(index_t i) const override {
    return std::string_view(blob_.data() + static_cast<std::size_t>(i) * 8, 8);
  }

  DatasetHandle subset(std::span<const index_t> rows) const override {
    std::vector<index_t> picked;
    picked.reserve(rows.size());
    for (const index_t r : rows) picked.push_back(nodes_[r]);
    // The graph core is shared: subset distances are global shortest paths,
    // so a sharded build answers bit-identically to the unsharded one.
    return std::make_shared<GraphDataset>(core_, std::move(picked));
  }

  void save(std::ostream& os) const override {
    io::write_string(os, std::string(kind()));
    io::write_pod(os, static_cast<std::uint64_t>(core_->num_nodes()));
    io::write_vec(os, core_->edges());
    io::write_vec(os, nodes_);
  }

  std::size_t memory_bytes() const override {
    return core_->memory_bytes() + nodes_.size() * sizeof(index_t) +
           blob_.size();
  }

  const std::shared_ptr<const GraphCore>& core() const { return core_; }
  std::span<const index_t> nodes() const { return nodes_; }

 private:
  std::shared_ptr<const GraphCore> core_;
  std::vector<index_t> nodes_;
  std::string blob_;
};

}  // namespace

// ----------------------------------------------------------- GraphCore ----

GraphCore::GraphCore(index_t num_nodes, std::vector<GraphEdge> edges)
    : num_nodes_(num_nodes), edges_(std::move(edges)) {
  adjacency_.resize(num_nodes_);
  for (const GraphEdge& e : edges_) {
    if (e.u >= num_nodes_ || e.v >= num_nodes_)
      invalid("graph edge endpoint out of range");
    if (!(e.weight > 0.0f) || !std::isfinite(e.weight))
      invalid("graph edge weight must be positive and finite");
    adjacency_[e.u].push_back({e.v, e.weight});
    adjacency_[e.v].push_back({e.u, e.weight});
  }
  rows_.resize(num_nodes_);
}

const std::vector<float>& GraphCore::row_locked(index_t source) const {
  if (rows_[source]) return *rows_[source];
  std::vector<double> dist(num_nodes_,
                           std::numeric_limits<double>::infinity());
  std::vector<char> done(num_nodes_, 0);
  using Item = std::pair<double, index_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  std::uint64_t relaxed = 0;
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[u]) continue;
    done[u] = 1;
    for (const Arc& arc : adjacency_[u]) {
      ++relaxed;
      const double cand = d + arc.weight;
      if (cand < dist[arc.to]) {
        dist[arc.to] = cand;
        heap.push({cand, arc.to});
      }
    }
  }
  counters::add_metric_cost(relaxed);
  // Round to float once: reported distances are then exactly float-
  // representable, so they survive the dist_t result/wire/merge layers
  // without reordering ties.
  auto row = std::make_unique<std::vector<float>>(num_nodes_);
  for (index_t i = 0; i < num_nodes_; ++i)
    (*row)[i] = static_cast<float>(dist[i]);
  rows_[source] = std::move(row);
  return *rows_[source];
}

double GraphCore::distance(index_t u, index_t v) const {
  // Always resolve through the smaller endpoint's row: the Dijkstra sum
  // order is then a function of the graph alone, making distance symmetric
  // bit for bit and identical across shards and save/load round-trips.
  const index_t source = std::min(u, v);
  const index_t target = std::max(u, v);
  std::lock_guard<std::mutex> lock(mutex_);
  return row_locked(source)[target];
}

std::size_t GraphCore::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = edges_.size() * sizeof(GraphEdge);
  for (const auto& arcs : adjacency_) total += arcs.size() * sizeof(Arc);
  for (const auto& row : rows_)
    if (row) total += row->size() * sizeof(float);
  return total;
}

// ------------------------------------------------------------ factories ----

DatasetHandle make_string_dataset(std::vector<std::string> items) {
  if (items.size() > kMaxPayloadItems) invalid("too many string items");
  for (const std::string& s : items)
    if (s.size() > kMaxPayloadBytes)
      invalid("string item exceeds " + std::to_string(kMaxPayloadBytes) +
              " bytes");
  return std::make_shared<StringDataset>(std::move(items));
}

DatasetHandle make_graph_dataset(index_t num_nodes,
                                 std::vector<GraphEdge> edges,
                                 std::vector<index_t> nodes) {
  auto core = std::make_shared<const GraphCore>(num_nodes, std::move(edges));
  if (nodes.empty()) {
    nodes.resize(num_nodes);
    for (index_t i = 0; i < num_nodes; ++i) nodes[i] = i;
  } else {
    std::vector<char> seen(num_nodes, 0);
    for (const index_t id : nodes) {
      if (id >= num_nodes) invalid("graph element node id out of range");
      if (seen[id]) invalid("duplicate graph element node id");
      seen[id] = 1;
    }
  }
  return std::make_shared<GraphDataset>(std::move(core), std::move(nodes));
}

// -------------------------------------------------------- serialization ----

DatasetHandle load_dataset(std::istream& is) {
  const std::string kind = io::read_string(is);
  if (kind == "strings") {
    std::uint64_t count = 0;
    io::read_pod(is, count);
    if (count > kMaxPayloadItems) corrupt("string count too large");
    // 8 bytes of length field per item is the floor: gate the count before
    // allocating the table.
    io::require_bytes(is, count * 8, "payload table");
    std::vector<std::string> items;
    items.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t len = 0;
      io::read_pod(is, len);
      if (len > kMaxPayloadBytes) corrupt("oversized string length");
      io::require_bytes(is, len, "payload string");
      std::string s(len, '\0');
      is.read(s.data(), static_cast<std::streamsize>(len));
      if (!is) corrupt("truncated payload string");
      items.push_back(std::move(s));
    }
    return make_string_dataset(std::move(items));
  }
  if (kind == "graph") {
    std::uint64_t num_nodes = 0;
    io::read_pod(is, num_nodes);
    if (num_nodes > kMaxPayloadItems) corrupt("graph node count too large");
    std::vector<GraphEdge> edges;
    io::read_vec(is, edges);
    std::vector<index_t> nodes;
    io::read_vec(is, nodes);
    try {
      return make_graph_dataset(static_cast<index_t>(num_nodes),
                                std::move(edges), std::move(nodes));
    } catch (const std::invalid_argument& e) {
      corrupt(e.what());  // bad endpoints/weights in a stream = corruption
    }
  }
  corrupt("unknown dataset kind tag '" + kind + "'");
}

// ------------------------------------------------------ graph accessors ----

std::shared_ptr<const GraphCore> graph_core_of(const Dataset& data) {
  const auto* graph = dynamic_cast<const GraphDataset*>(&data);
  return graph ? graph->core() : nullptr;
}

std::span<const index_t> graph_nodes_of(const Dataset& data) {
  const auto* graph = dynamic_cast<const GraphDataset*>(&data);
  return graph ? graph->nodes() : std::span<const index_t>{};
}

}  // namespace rbc::metricspace
