#include "metricspace/space.hpp"

#include <cmath>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "api/metrics.hpp"
#include "distance/edit_distance.hpp"
#include "metricspace/graph_core.hpp"

namespace rbc::metricspace {

namespace {

// ----------------------------------------------------------- edit space ----

class EditSpace final : public Space {
 public:
  explicit EditSpace(DatasetHandle data) : data_(std::move(data)) {}

  index_t size() const override { return data_->size(); }

  double distance(index_t i, index_t j) const override {
    return static_cast<double>(edit_distance(data_->item(i), data_->item(j)));
  }

  double query_distance(std::string_view query, index_t j) const override {
    return static_cast<double>(edit_distance(query, data_->item(j)));
  }

  double query_distance_bounded(std::string_view query, index_t j,
                                double band) const override {
    // Edit distances are integral, so d <= band iff d <= floor(band): the
    // integer band loses nothing. Bands beyond any string length mean "no
    // useful bound yet" — run the plain scan.
    if (!(band < 1e9)) return query_distance(query, j);
    const auto b = static_cast<index_t>(band < 0.0 ? 0.0 : band);
    return static_cast<double>(edit_distance_banded(query, data_->item(j), b));
  }

  std::string validate_query(std::string_view query) const override {
    if (query.size() > kMaxPayloadBytes)
      return "query string exceeds " + std::to_string(kMaxPayloadBytes) +
             " bytes";
    return {};
  }

 private:
  DatasetHandle data_;
};

// ---------------------------------------------------------- graph space ----

class GraphSpSpace final : public Space {
 public:
  explicit GraphSpSpace(DatasetHandle data)
      : data_(std::move(data)),
        core_(graph_core_of(*data_)),
        nodes_(graph_nodes_of(*data_)) {}

  index_t size() const override { return data_->size(); }

  double distance(index_t i, index_t j) const override {
    return core_->distance(nodes_[i], nodes_[j]);
  }

  double query_distance(std::string_view query, index_t j) const override {
    return core_->distance(decode_node(query), nodes_[j]);
  }

  std::string validate_query(std::string_view query) const override {
    if (query.size() != 8)
      return "graph query payload must be exactly 8 bytes (little-endian "
             "node id)";
    const std::uint64_t id = decode_node(query);
    if (id >= core_->num_nodes())
      return "graph query node id " + std::to_string(id) +
             " out of range (graph has " +
             std::to_string(core_->num_nodes()) + " nodes)";
    return {};
  }

 private:
  static std::uint64_t decode_node(std::string_view query) {
    std::uint64_t id = 0;
    std::memcpy(&id, query.data(), 8);
    return id;
  }

  DatasetHandle data_;
  std::shared_ptr<const GraphCore> core_;
  std::span<const index_t> nodes_;
};

// ------------------------------------------------------------- registry ----

struct SpaceRegistry {
  std::mutex mutex;
  // deque: push_back never moves existing entries, so the pointers
  // find_space hands out stay valid for the program's lifetime (entries
  // are never removed).
  std::deque<SpaceEntry> entries;

  static SpaceRegistry& instance() {
    static SpaceRegistry r;
    return r;
  }

  const SpaceEntry* find_locked(std::string_view name) const {
    for (const SpaceEntry& e : entries)
      if (e.name == name) return &e;
    return nullptr;
  }
};

void ensure_builtins() {
  // Pushes straight into the registry (not through register_space, which
  // itself calls ensure_builtins): the shipped names are fresh by
  // construction, and the direct push keeps the guarded static
  // non-reentrant.
  static const bool once = [] {
    SpaceRegistry& reg = SpaceRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.entries.push_back(
        {.name = "edit",
         .dataset_kind = "strings",
         .cost_unit = "chars_compared",
         .bind = [](DatasetHandle data) -> std::unique_ptr<Space> {
           return std::make_unique<EditSpace>(std::move(data));
         }});
    reg.entries.push_back(
        {.name = "graph-sp",
         .dataset_kind = "graph",
         .cost_unit = "edges_relaxed",
         .bind = [](DatasetHandle data) -> std::unique_ptr<Space> {
           return std::make_unique<GraphSpSpace>(std::move(data));
         }});
    return true;
  }();
  (void)once;
}

}  // namespace

bool register_space(SpaceEntry entry) {
  // Shipped spaces register first even when a user registers before any
  // lookup: space_names() promises registration order with shipped names
  // leading, and "edit" / "graph-sp" must never be claimable.
  ensure_builtins();
  // A space name must not shadow a dense metric: the factory dispatches on
  // "is this name in the space registry", so a shadowed "l2" would silently
  // reroute every default build.
  metric::Kind dense{};
  if (metric::lookup(entry.name, dense)) return false;
  if (entry.name.empty() || !entry.bind) return false;
  SpaceRegistry& reg = SpaceRegistry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.find_locked(entry.name) != nullptr) return false;
  reg.entries.push_back(std::move(entry));
  return true;
}

bool space_registered(std::string_view name) {
  return find_space(name) != nullptr;
}

const SpaceEntry* find_space(std::string_view name) {
  ensure_builtins();
  SpaceRegistry& reg = SpaceRegistry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.find_locked(name);
}

std::vector<std::string> space_names() {
  ensure_builtins();
  SpaceRegistry& reg = SpaceRegistry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.entries.size());
  for (const SpaceEntry& e : reg.entries) names.push_back(e.name);
  return names;
}

std::unique_ptr<Space> bind_space(std::string_view metric_name,
                                  const DatasetHandle& data) {
  const SpaceEntry* entry = find_space(metric_name);
  if (entry == nullptr)
    throw std::invalid_argument("unknown metric space '" +
                                std::string(metric_name) + "'");
  if (data == nullptr)
    throw std::invalid_argument("dataset handle is null");
  if (data->kind() != entry->dataset_kind)
    throw std::invalid_argument(
        "metric '" + entry->name + "' requires a '" + entry->dataset_kind +
        "' dataset, got '" + std::string(data->kind()) + "'");
  return entry->bind(data);
}

}  // namespace rbc::metricspace
