// Metric-functor registry of the generic metric-space subsystem.
//
// The dense metric registry (api/metrics.hpp) names distances over float
// rows; this registry names distances over *payload datasets* (dataset.hpp).
// IndexOptions::metric resolves against both: a dense name builds the usual
// matrix-backed backend, a name registered here routes the same
// make_index() call to the generic payload backend (generic_backend.hpp),
// and a name in neither fails with the uniform unsupported-metric error.
//
// Shipped spaces:
//
//   "edit"      Levenshtein edit distance over string collections
//               (dataset kind "strings"; cost unit "chars_compared" — DP
//               cells filled). Supports banded evaluation, so the generic
//               RBC/BF scans bail out of hopeless comparisons early
//               without changing any result bit.
//   "graph-sp"  Shortest-path distance between graph nodes (dataset kind
//               "graph"; cost unit "edges_relaxed"). Queries are 8-byte
//               little-endian node ids; rows are lazy cached Dijkstra
//               passes over the shared graph core.
//
// User metrics: register_space() accepts any functor over a shipped
// dataset kind — see tests/test_metricspace.cpp for a registered
// user-defined metric served end-to-end. Distances must satisfy the metric
// axioms (RBC pruning relies on the triangle inequality) and must be
// exactly representable as float (return double(float(d))) so sharded
// merges preserve tie order.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "metricspace/dataset.hpp"

namespace rbc::metricspace {

/// A bound metric space: a distance function closed over one dataset.
/// Element indices are dataset positions; query payloads use the same
/// encoding as Dataset::item(). Implementations must be thread-safe for
/// concurrent const calls and should report work through
/// counters::add_metric_cost in their cost unit.
class Space {
 public:
  virtual ~Space() = default;

  virtual index_t size() const = 0;

  /// Distance between elements i and j (exact; used at build time).
  virtual double distance(index_t i, index_t j) const = 0;

  /// Distance between a query payload and element j (exact).
  virtual double query_distance(std::string_view query, index_t j) const = 0;

  /// Bounded variant: must return the exact distance when it is <= band,
  /// and any value > band otherwise. Default: the exact distance (always
  /// valid). Spaces with a cheap early-out (banded edit distance) override
  /// this; the generic searches pass their current kth-best bound.
  virtual double query_distance_bounded(std::string_view query, index_t j,
                                        double band) const {
    (void)band;
    return query_distance(query, j);
  }

  /// Validates a query payload. Returns the empty string when valid, else
  /// a description ("query payload must be ...") that the caller wraps in
  /// its uniform error shape.
  virtual std::string validate_query(std::string_view query) const {
    (void)query;
    return {};
  }
};

/// One registry row: how IndexOptions::metric binds to a dataset.
struct SpaceEntry {
  /// Registry name ("edit", "graph-sp") — the IndexOptions::metric value.
  std::string name;
  /// Dataset kind this metric runs over ("strings", "graph"); a
  /// build_payload with a mismatched dataset is a request error.
  std::string dataset_kind;
  /// The unit counters::add_metric_cost is reported in for this metric
  /// ("chars_compared", "edges_relaxed"); surfaced as IndexInfo::cost_unit.
  std::string cost_unit;
  /// Binds the metric over a dataset (already kind-checked).
  std::function<std::unique_ptr<Space>(DatasetHandle)> bind;
};

/// Registers a metric space. Returns false (and changes nothing) when the
/// name is taken — idempotent like rbc::register_backend, and a name must
/// not shadow a dense metric (api/metrics.hpp), which also returns false.
bool register_space(SpaceEntry entry);

/// True when `name` resolves in this registry (the factory's dispatch
/// test: such metrics build the generic payload backend).
bool space_registered(std::string_view name);

/// The registry row for `name`, or nullptr.
const SpaceEntry* find_space(std::string_view name);

/// Registered space names, in registration order (shipped first) — what
/// the payload-capable backends report as IndexInfo::supported_spaces.
std::vector<std::string> space_names();

/// Binds metric `metric_name` over `data`, validating the dataset kind.
/// Throws std::invalid_argument (caller-shaped messages are wrapped by the
/// generic backend) on an unknown name or kind mismatch.
std::unique_ptr<Space> bind_space(std::string_view metric_name,
                                  const DatasetHandle& data);

}  // namespace rbc::metricspace
