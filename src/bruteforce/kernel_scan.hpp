// Kernelized linear scans: the bridge between the runtime-dispatched SIMD
// kernel layer (distance/dispatch.hpp) and the TopK selection step.
//
// Every dense scan in the library has the same skeleton — compute distances
// from one query to a run of database rows, offer each to a bounded heap.
// These helpers run that skeleton through the dispatched kernels as a
// *prefilter*: the kernel fills a chunk of approximate values, candidates
// inside the margin-inflated heap bound are re-measured with the caller's
// scalar metric before being pushed, and everything else is discarded
// without a heap probe. Because the heap only ever orders re-measured
// (bit-exact) values, results are IDENTICAL to the plain bf_scan_rows loop
// under every ISA — the property the per-ISA parity tests pin
// (tests/test_rbc_blocked.cpp, the conformance metric matrix).
//
// Which kernel a metric routes through, and how its heap bound maps into
// kernel space, is described by ScanTraits<M>:
//
//   Euclidean     squared-L2 `rows`/`gather`; bound maps by squaring,
//                 inflated by the relative association-order margin.
//   SqEuclidean   same kernels, identity bound map.
//   L1            `rows_l1`/`gather_l1`; identity map, relative margin
//                 (sums of non-negative terms — error is relative).
//   InnerProduct  `rows_ip`/`gather_ip` (negated dot); identity map plus a
//                 caller-supplied ABSOLUTE slack: dot products cancel, so
//                 the rounding error scales with ||q||*||x||, not with the
//                 result. Callers pass tile_margin(d) * ||q|| * max||x||
//                 (see bf_impl.hpp); with slack 0 the prefilter would be
//                 allowed to drop true neighbors.
//
// kernel_metric<M> says whether a ScanTraits specialization exists;
// gemm_metric<M> marks the (squared-L2) subset the tile_gemm batch paths
// additionally accept. Unlike bf_scan_rows, these helpers do NOT touch the
// global distance-eval counters: callers account one eval per row scanned.
#pragma once

#include <algorithm>
#include <type_traits>

#include "bruteforce/topk.hpp"
#include "common/matrix.hpp"
#include "distance/dispatch.hpp"
#include "distance/metrics.hpp"

namespace rbc {

/// How a metric's scans run through the dispatched kernel layer; the
/// specializations below are the kernel-eligible metrics.
template <class M>
struct ScanTraits;

template <>
struct ScanTraits<Euclidean> {
  /// Relative margin covers the kernel/scalar rounding difference.
  static constexpr bool relative_margin = true;
  /// Heap bound (metric space) -> kernel-output space.
  static float map(float bound) noexcept { return bound * bound; }
  static float rows(const dispatch::KernelOps& ops, const float* q, index_t d,
                    const float* x, std::size_t stride, index_t lo,
                    index_t hi, float* out) {
    return ops.rows(q, d, x, stride, lo, hi, out);
  }
  static float gather(const dispatch::KernelOps& ops, const float* q,
                      index_t d, const float* x, std::size_t stride,
                      const index_t* ids, index_t count, float* out) {
    return ops.gather(q, d, x, stride, ids, count, out);
  }
};

template <>
struct ScanTraits<SqEuclidean> {
  static constexpr bool relative_margin = true;
  static float map(float bound) noexcept { return bound; }
  static float rows(const dispatch::KernelOps& ops, const float* q, index_t d,
                    const float* x, std::size_t stride, index_t lo,
                    index_t hi, float* out) {
    return ops.rows(q, d, x, stride, lo, hi, out);
  }
  static float gather(const dispatch::KernelOps& ops, const float* q,
                      index_t d, const float* x, std::size_t stride,
                      const index_t* ids, index_t count, float* out) {
    return ops.gather(q, d, x, stride, ids, count, out);
  }
};

template <>
struct ScanTraits<L1> {
  static constexpr bool relative_margin = true;
  static float map(float bound) noexcept { return bound; }
  static float rows(const dispatch::KernelOps& ops, const float* q, index_t d,
                    const float* x, std::size_t stride, index_t lo,
                    index_t hi, float* out) {
    return ops.rows_l1(q, d, x, stride, lo, hi, out);
  }
  static float gather(const dispatch::KernelOps& ops, const float* q,
                      index_t d, const float* x, std::size_t stride,
                      const index_t* ids, index_t count, float* out) {
    return ops.gather_l1(q, d, x, stride, ids, count, out);
  }
};

template <>
struct ScanTraits<InnerProduct> {
  /// Cancellation: error is absolute (caller-supplied slack), never a
  /// multiple of the possibly-negative bound.
  static constexpr bool relative_margin = false;
  static float map(float bound) noexcept { return bound; }
  static float rows(const dispatch::KernelOps& ops, const float* q, index_t d,
                    const float* x, std::size_t stride, index_t lo,
                    index_t hi, float* out) {
    return ops.rows_ip(q, d, x, stride, lo, hi, out);
  }
  static float gather(const dispatch::KernelOps& ops, const float* q,
                      index_t d, const float* x, std::size_t stride,
                      const index_t* ids, index_t count, float* out) {
    return ops.gather_ip(q, d, x, stride, ids, count, out);
  }
};

namespace detail {
template <class M, class = void>
inline constexpr bool has_scan_traits = false;
template <class M>
inline constexpr bool
    has_scan_traits<M, std::void_t<decltype(ScanTraits<M>::map(0.0f))>> =
        true;
}  // namespace detail

/// True for metrics the dispatched kernel layer can prefilter for.
template <class M>
inline constexpr bool kernel_metric = detail::has_scan_traits<M>;

/// The squared-L2 subset additionally eligible for the tile/tile_gemm batch
/// paths (the GEMM formulation has no analogue for other metrics).
template <class M>
inline constexpr bool gemm_metric =
    std::is_same_v<M, Euclidean> || std::is_same_v<M, SqEuclidean>;

/// Maps a heap bound (metric space) into squared-L2 space for the tile_gemm
/// filter passes — the same map ScanTraits defines, restricted to the gemm
/// subset so batch and row/gather paths can never disagree on it.
template <class M>
inline float sq_threshold(float bound) noexcept {
  static_assert(gemm_metric<M>);
  return ScanTraits<M>::map(bound);
}

/// Margin-inflated acceptance bound in kernel-output space: keep (and
/// re-measure) a kernel value v iff v <= scan_bound<M>(heap bound, d,
/// slack). `abs_slack` is required non-zero only for InnerProduct (see the
/// file comment).
template <class M>
inline float scan_bound(float bound, index_t d,
                        float abs_slack = 0.0f) noexcept {
  static_assert(kernel_metric<M>);
  const float mapped = ScanTraits<M>::map(bound);
  if constexpr (ScanTraits<M>::relative_margin)
    return mapped * (1.0f + dispatch::tile_margin(d)) + abs_slack;
  else
    return mapped + abs_slack;
}

namespace detail {
struct IdentityId {
  index_t operator()(index_t row) const noexcept { return row; }
};
}  // namespace detail

/// BF(q, X[lo..hi)) through the metric's dispatched row-block kernel.
/// Pushes (metric(q, x_p), id_of(p)) for every candidate surviving the
/// prefilter; identical final heap to the plain loop. Caller accounts
/// hi - lo evals.
template <DenseMetric M, class IdOf = detail::IdentityId>
void kernel_scan_rows(const float* q, const Matrix<float>& X, index_t lo,
                      index_t hi, M metric, TopK& out, IdOf id_of = {},
                      float abs_slack = 0.0f) {
  static_assert(kernel_metric<M>);
  constexpr index_t kChunk = 512;  // 2 KB of distances on the stack
  float buf[kChunk];
  const dispatch::KernelOps& ops = dispatch::ops();
  const index_t d = X.cols();
  for (index_t c = lo; c < hi; c += kChunk) {
    const index_t ce = std::min<index_t>(hi, c + kChunk);
    const float chunk_min =
        ScanTraits<M>::rows(ops, q, d, X.data(), X.stride(), c, ce, buf);
    // Whole chunk misses the (entry) bound: skip without reading buf. The
    // bound only tightens, so nothing skippable ever survives.
    if (chunk_min > scan_bound<M>(out.worst(), d, abs_slack)) continue;
    for (index_t p = c; p < ce; ++p) {
      if (buf[p - c] > scan_bound<M>(out.worst(), d, abs_slack)) continue;
      out.push(metric(q, X.row(p), d), id_of(p));
    }
  }
}

/// Gather-form variant: scans the `count` rows of the raw row-major buffer
/// `x` (rows `stride` floats apart) addressed by `rows`, pushing
/// (metric, id_of(rows[j])). Raw-pointer form because overflow rows
/// (dynamic inserts) live outside any Matrix. Caller accounts the evals.
template <DenseMetric M, class IdOf = detail::IdentityId>
void kernel_scan_gather(const float* q, index_t d, const float* x,
                        std::size_t stride, const index_t* rows,
                        index_t count, M metric, TopK& out, IdOf id_of = {},
                        float abs_slack = 0.0f) {
  static_assert(kernel_metric<M>);
  constexpr index_t kChunk = 512;
  float buf[kChunk];
  const dispatch::KernelOps& ops = dispatch::ops();
  for (index_t c = 0; c < count; c += kChunk) {
    const index_t ce = std::min<index_t>(count, c + kChunk);
    const float chunk_min =
        ScanTraits<M>::gather(ops, q, d, x, stride, rows + c, ce - c, buf);
    if (chunk_min > scan_bound<M>(out.worst(), d, abs_slack)) continue;
    for (index_t j = c; j < ce; ++j) {
      if (buf[j - c] > scan_bound<M>(out.worst(), d, abs_slack)) continue;
      out.push(metric(q, x + static_cast<std::size_t>(rows[j]) * stride, d),
               id_of(rows[j]));
    }
  }
}

}  // namespace rbc
