// Kernelized linear scans: the bridge between the runtime-dispatched SIMD
// kernel layer (distance/dispatch.hpp) and the TopK selection step.
//
// Every dense scan in the library has the same skeleton — compute distances
// from one query to a run of database rows, offer each to a bounded heap.
// These helpers run that skeleton through the dispatched kernels as a
// *prefilter*: the kernel fills a chunk of approximate values, candidates
// inside the margin-inflated heap bound are re-measured with the caller's
// scalar metric before being pushed, and everything else is discarded
// without a heap probe. Because the heap only ever orders re-measured
// (bit-exact) values, results are IDENTICAL to the plain bf_scan_rows loop
// under every ISA — the property the per-ISA parity tests pin
// (tests/test_rbc_blocked.cpp, the conformance metric matrix).
//
// Which kernel a metric routes through, and how its heap bound maps into
// kernel space, is described by ScanTraits<M>:
//
//   Euclidean     squared-L2 `rows`/`gather`; bound maps by squaring,
//                 inflated by the relative association-order margin.
//   SqEuclidean   same kernels, identity bound map.
//   L1            `rows_l1`/`gather_l1`; identity map, relative margin
//                 (sums of non-negative terms — error is relative).
//   InnerProduct  `rows_ip`/`gather_ip` (negated dot); identity map plus a
//                 caller-supplied ABSOLUTE slack: dot products cancel, so
//                 the rounding error scales with ||q||*||x||, not with the
//                 result. Callers pass tile_margin(d) * ||q|| * max||x||
//                 (see bf_impl.hpp); with slack 0 the prefilter would be
//                 allowed to drop true neighbors.
//
// kernel_metric<M> says whether a ScanTraits specialization exists;
// gemm_metric<M> marks the (squared-L2) subset the tile_gemm batch paths
// additionally accept. Unlike bf_scan_rows, these helpers do NOT touch the
// global distance-eval counters: callers account one eval per row scanned.
#pragma once

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "bruteforce/topk.hpp"
#include "common/matrix.hpp"
#include "distance/dispatch.hpp"
#include "distance/metrics.hpp"
#include "distance/quantized.hpp"

namespace rbc {

/// How a metric's scans run through the dispatched kernel layer; the
/// specializations below are the kernel-eligible metrics.
template <class M>
struct ScanTraits;

template <>
struct ScanTraits<Euclidean> {
  /// Relative margin covers the kernel/scalar rounding difference.
  static constexpr bool relative_margin = true;
  /// Heap bound (metric space) -> kernel-output space.
  static float map(float bound) noexcept { return bound * bound; }
  static float rows(const dispatch::KernelOps& ops, const float* q, index_t d,
                    const float* x, std::size_t stride, index_t lo,
                    index_t hi, float* out) {
    return ops.rows(q, d, x, stride, lo, hi, out);
  }
  static float gather(const dispatch::KernelOps& ops, const float* q,
                      index_t d, const float* x, std::size_t stride,
                      const index_t* ids, index_t count, float* out) {
    return ops.gather(q, d, x, stride, ids, count, out);
  }
};

template <>
struct ScanTraits<SqEuclidean> {
  static constexpr bool relative_margin = true;
  static float map(float bound) noexcept { return bound; }
  static float rows(const dispatch::KernelOps& ops, const float* q, index_t d,
                    const float* x, std::size_t stride, index_t lo,
                    index_t hi, float* out) {
    return ops.rows(q, d, x, stride, lo, hi, out);
  }
  static float gather(const dispatch::KernelOps& ops, const float* q,
                      index_t d, const float* x, std::size_t stride,
                      const index_t* ids, index_t count, float* out) {
    return ops.gather(q, d, x, stride, ids, count, out);
  }
};

template <>
struct ScanTraits<L1> {
  static constexpr bool relative_margin = true;
  static float map(float bound) noexcept { return bound; }
  static float rows(const dispatch::KernelOps& ops, const float* q, index_t d,
                    const float* x, std::size_t stride, index_t lo,
                    index_t hi, float* out) {
    return ops.rows_l1(q, d, x, stride, lo, hi, out);
  }
  static float gather(const dispatch::KernelOps& ops, const float* q,
                      index_t d, const float* x, std::size_t stride,
                      const index_t* ids, index_t count, float* out) {
    return ops.gather_l1(q, d, x, stride, ids, count, out);
  }
};

template <>
struct ScanTraits<InnerProduct> {
  /// Cancellation: error is absolute (caller-supplied slack), never a
  /// multiple of the possibly-negative bound.
  static constexpr bool relative_margin = false;
  static float map(float bound) noexcept { return bound; }
  static float rows(const dispatch::KernelOps& ops, const float* q, index_t d,
                    const float* x, std::size_t stride, index_t lo,
                    index_t hi, float* out) {
    return ops.rows_ip(q, d, x, stride, lo, hi, out);
  }
  static float gather(const dispatch::KernelOps& ops, const float* q,
                      index_t d, const float* x, std::size_t stride,
                      const index_t* ids, index_t count, float* out) {
    return ops.gather_ip(q, d, x, stride, ids, count, out);
  }
};

namespace detail {
template <class M, class = void>
inline constexpr bool has_scan_traits = false;
template <class M>
inline constexpr bool
    has_scan_traits<M, std::void_t<decltype(ScanTraits<M>::map(0.0f))>> =
        true;
}  // namespace detail

/// True for metrics the dispatched kernel layer can prefilter for.
template <class M>
inline constexpr bool kernel_metric = detail::has_scan_traits<M>;

/// The squared-L2 subset additionally eligible for the tile/tile_gemm batch
/// paths (the GEMM formulation has no analogue for other metrics).
template <class M>
inline constexpr bool gemm_metric =
    std::is_same_v<M, Euclidean> || std::is_same_v<M, SqEuclidean>;

/// Maps a heap bound (metric space) into squared-L2 space for the tile_gemm
/// filter passes — the same map ScanTraits defines, restricted to the gemm
/// subset so batch and row/gather paths can never disagree on it.
template <class M>
inline float sq_threshold(float bound) noexcept {
  static_assert(gemm_metric<M>);
  return ScanTraits<M>::map(bound);
}

/// Margin-inflated acceptance bound in kernel-output space: keep (and
/// re-measure) a kernel value v iff v <= scan_bound<M>(heap bound, d,
/// slack). `abs_slack` is required non-zero only for InnerProduct (see the
/// file comment).
template <class M>
inline float scan_bound(float bound, index_t d,
                        float abs_slack = 0.0f) noexcept {
  static_assert(kernel_metric<M>);
  const float mapped = ScanTraits<M>::map(bound);
  if constexpr (ScanTraits<M>::relative_margin)
    return mapped * (1.0f + dispatch::tile_margin(d)) + abs_slack;
  else
    return mapped + abs_slack;
}

namespace detail {
struct IdentityId {
  index_t operator()(index_t row) const noexcept { return row; }
};
}  // namespace detail

/// BF(q, X[lo..hi)) through the metric's dispatched row-block kernel.
/// Pushes (metric(q, x_p), id_of(p)) for every candidate surviving the
/// prefilter; identical final heap to the plain loop. Caller accounts
/// hi - lo evals.
template <DenseMetric M, class IdOf = detail::IdentityId>
void kernel_scan_rows(const float* q, const Matrix<float>& X, index_t lo,
                      index_t hi, M metric, TopK& out, IdOf id_of = {},
                      float abs_slack = 0.0f) {
  static_assert(kernel_metric<M>);
  constexpr index_t kChunk = 512;  // 2 KB of distances on the stack
  float buf[kChunk];
  const dispatch::KernelOps& ops = dispatch::ops();
  const index_t d = X.cols();
  for (index_t c = lo; c < hi; c += kChunk) {
    const index_t ce = std::min<index_t>(hi, c + kChunk);
    const float chunk_min =
        ScanTraits<M>::rows(ops, q, d, X.data(), X.stride(), c, ce, buf);
    // Whole chunk misses the (entry) bound: skip without reading buf. The
    // bound only tightens, so nothing skippable ever survives.
    if (chunk_min > scan_bound<M>(out.worst(), d, abs_slack)) continue;
    for (index_t p = c; p < ce; ++p) {
      if (buf[p - c] > scan_bound<M>(out.worst(), d, abs_slack)) continue;
      out.push(metric(q, X.row(p), d), id_of(p));
    }
  }
}

/// Gather-form variant: scans the `count` rows of the raw row-major buffer
/// `x` (rows `stride` floats apart) addressed by `rows`, pushing
/// (metric, id_of(rows[j])). Raw-pointer form because overflow rows
/// (dynamic inserts) live outside any Matrix. Caller accounts the evals.
template <DenseMetric M, class IdOf = detail::IdentityId>
void kernel_scan_gather(const float* q, index_t d, const float* x,
                        std::size_t stride, const index_t* rows,
                        index_t count, M metric, TopK& out, IdOf id_of = {},
                        float abs_slack = 0.0f) {
  static_assert(kernel_metric<M>);
  constexpr index_t kChunk = 512;
  float buf[kChunk];
  const dispatch::KernelOps& ops = dispatch::ops();
  for (index_t c = 0; c < count; c += kChunk) {
    const index_t ce = std::min<index_t>(count, c + kChunk);
    const float chunk_min =
        ScanTraits<M>::gather(ops, q, d, x, stride, rows + c, ce - c, buf);
    if (chunk_min > scan_bound<M>(out.worst(), d, abs_slack)) continue;
    for (index_t j = c; j < ce; ++j) {
      if (buf[j - c] > scan_bound<M>(out.worst(), d, abs_slack)) continue;
      out.push(metric(q, x + static_cast<std::size_t>(rows[j]) * stride, d),
               id_of(rows[j]));
    }
  }
}

// ------------------------------------------------------ quantized scans ---
//
// The compressed scan tier (distance/quantized.hpp): the kernel reads fp16
// or int8 row codes (2x / 4x less memory traffic than float rows) and the
// prefilter bound absorbs the quantization error, so the exact scans stay
// bit-identical to the float path. For a heap bound B in L2-distance space,
// the triangle inequality gives d(q, x̂_r) <= d(q, x_r) + ||x_r - x̂_r||
// <= B + err_r for every row the float scan would keep, so accepting
//
//   v_r <= (B + err_r + kQuantFpEps * (||q|| + amp_r))^2
//          * (1 + tile_margin(d))
//
// — where v_r is the kernel's squared distance to the *decoded* row, err_r
// the stored per-row quantization radius, and the kQuantFpEps term the
// absolute accumulation slack of the fused int8 form (amp_r = 0 for fp16;
// see QuantizedStore::amp) — can never drop a true neighbor. Survivors are
// re-measured against the original float rows with the caller's scalar
// metric, exactly like the float prefilter above. Only the L2 family
// (Euclidean / SqEuclidean; cosine runs on normalized rows) is eligible:
// the triangle-inequality argument lives in L2 space.

/// Metrics the compressed tier can serve exactly.
template <class M>
inline constexpr bool quantized_metric =
    std::is_same_v<M, Euclidean> || std::is_same_v<M, SqEuclidean>;

/// Absolute accumulation-slack scale of the quantized kernels (in distance
/// space, multiplied by ||q|| + amp_r). ~8 ulps — generous against the
/// fused int8 form's cancellation; fp16 rows have amp_r = 0.
inline constexpr float kQuantFpEps = 1e-6f;

namespace detail {

/// Heap bound (metric space) -> L2-distance space for the triangle
/// inequality. Identity for Euclidean; sqrt for SqEuclidean. +inf maps to
/// +inf, so an unfilled heap accepts everything.
template <class M>
inline float quant_l2_bound(float worst) noexcept {
  static_assert(quantized_metric<M>);
  if constexpr (std::is_same_v<M, Euclidean>)
    return worst;
  else
    return std::sqrt(worst);
}

/// Margin-inflated acceptance bound in kernel (squared-L2) space.
inline float quant_accept(float l2_bound, float err, float amp, float q_norm,
                          index_t d) noexcept {
  const float b = l2_bound + err + kQuantFpEps * (q_norm + amp);
  return b * b * (1.0f + dispatch::tile_margin(d));
}

inline float quant_q_norm(const float* q, index_t d) noexcept {
  double acc = 0.0;
  for (index_t i = 0; i < d; ++i)
    acc += static_cast<double>(q[i]) * static_cast<double>(q[i]);
  return static_cast<float>(std::sqrt(acc));
}

/// Dispatched kernel call over a row range of the compressed store.
inline float quant_rows(const dispatch::KernelOps& ops, const float* q,
                        index_t d, const quant::QuantizedStore& store,
                        index_t lo, index_t hi, float* out) {
  if (store.mode == quant::Storage::kFp16)
    return ops.rows_fp16(q, d, store.fp16.data(),
                         static_cast<std::size_t>(store.cols), lo, hi, out);
  return ops.rows_int8(q, d, store.int8.data(),
                       static_cast<std::size_t>(store.cols),
                       store.scale.data(), store.offset.data(), lo, hi, out);
}

inline float quant_gather(const dispatch::KernelOps& ops, const float* q,
                          index_t d, const quant::QuantizedStore& store,
                          const index_t* ids, index_t count, float* out) {
  if (store.mode == quant::Storage::kFp16)
    return ops.gather_fp16(q, d, store.fp16.data(),
                           static_cast<std::size_t>(store.cols), ids, count,
                           out);
  return ops.gather_int8(q, d, store.int8.data(),
                         static_cast<std::size_t>(store.cols),
                         store.scale.data(), store.offset.data(), ids, count,
                         out);
}

}  // namespace detail

/// BF(q, X[lo..hi)) through the compressed store: the kernel scans codes,
/// the error-inflated bound filters, survivors are re-measured against the
/// float rows of X. Final heap identical to kernel_scan_rows / the plain
/// loop. `store` must cover the same row indices as X (store.cols ==
/// X.cols()). Caller accounts hi - lo evals.
template <DenseMetric M, class IdOf = detail::IdentityId>
void quantized_scan_rows(const float* q, const Matrix<float>& X,
                         const quant::QuantizedStore& store, index_t lo,
                         index_t hi, M metric, TopK& out, IdOf id_of = {}) {
  static_assert(quantized_metric<M>);
  constexpr index_t kChunk = 512;
  float buf[kChunk];
  const dispatch::KernelOps& ops = dispatch::ops();
  const index_t d = X.cols();
  const float q_norm = detail::quant_q_norm(q, d);
  for (index_t c = lo; c < hi; c += kChunk) {
    const index_t ce = std::min<index_t>(hi, c + kChunk);
    const float chunk_min = detail::quant_rows(ops, q, d, store, c, ce, buf);
    const float chunk_bound = detail::quant_l2_bound<M>(out.worst());
    if (chunk_min > detail::quant_accept(chunk_bound, store.err_max,
                                         store.amp_max, q_norm, d))
      continue;
    for (index_t p = c; p < ce; ++p) {
      const float b = detail::quant_l2_bound<M>(out.worst());
      const float amp = store.amp.empty() ? 0.0f : store.amp[p];
      if (buf[p - c] > detail::quant_accept(b, store.err[p], amp, q_norm, d))
        continue;
      out.push(metric(q, X.row(p), d), id_of(p));
    }
  }
}

/// Gather-form variant: compressed rows addressed by `rows`, re-measured
/// against the float buffer `x` (rows `stride` floats apart). Caller
/// accounts the evals.
template <DenseMetric M, class IdOf = detail::IdentityId>
void quantized_scan_gather(const float* q, index_t d, const float* x,
                           std::size_t stride,
                           const quant::QuantizedStore& store,
                           const index_t* rows, index_t count, M metric,
                           TopK& out, IdOf id_of = {}) {
  static_assert(quantized_metric<M>);
  constexpr index_t kChunk = 512;
  float buf[kChunk];
  const dispatch::KernelOps& ops = dispatch::ops();
  const float q_norm = detail::quant_q_norm(q, d);
  for (index_t c = 0; c < count; c += kChunk) {
    const index_t ce = std::min<index_t>(count, c + kChunk);
    const float chunk_min =
        detail::quant_gather(ops, q, d, store, rows + c, ce - c, buf);
    const float chunk_bound = detail::quant_l2_bound<M>(out.worst());
    if (chunk_min > detail::quant_accept(chunk_bound, store.err_max,
                                         store.amp_max, q_norm, d))
      continue;
    for (index_t j = c; j < ce; ++j) {
      const index_t p = rows[j];
      const float b = detail::quant_l2_bound<M>(out.worst());
      const float amp = store.amp.empty() ? 0.0f : store.amp[p];
      if (buf[j - c] > detail::quant_accept(b, store.err[p], amp, q_norm, d))
        continue;
      out.push(metric(q, x + static_cast<std::size_t>(p) * stride, d),
               id_of(p));
    }
  }
}

/// Approximate variant (the one-shot tier): pushes the quantized distance
/// itself — mapped back to metric space — with NO float re-measure, so the
/// float rows never have to be touched (or even resident). Results carry
/// quantization error; callers report recall instead of claiming exactness.
template <DenseMetric M, class IdOf = detail::IdentityId>
void quantized_scan_rows_approx(const float* q, index_t d,
                                const quant::QuantizedStore& store,
                                index_t lo, index_t hi, TopK& out,
                                IdOf id_of = {}) {
  static_assert(quantized_metric<M>);
  constexpr index_t kChunk = 512;
  float buf[kChunk];
  const dispatch::KernelOps& ops = dispatch::ops();
  for (index_t c = lo; c < hi; c += kChunk) {
    const index_t ce = std::min<index_t>(hi, c + kChunk);
    const float chunk_min = detail::quant_rows(ops, q, d, store, c, ce, buf);
    // Kernel space is squared-L2; the heap holds metric-space values.
    const float worst_sq = ScanTraits<M>::map(out.worst());
    if (chunk_min > worst_sq) continue;
    for (index_t p = c; p < ce; ++p) {
      const float v = buf[p - c];
      if (v > ScanTraits<M>::map(out.worst())) continue;
      if constexpr (std::is_same_v<M, Euclidean>)
        out.push(std::sqrt(v), id_of(p));
      else
        out.push(v, id_of(p));
    }
  }
}

}  // namespace rbc
