// Kernelized linear scans: the bridge between the runtime-dispatched SIMD
// kernel layer (distance/dispatch.hpp) and the TopK selection step.
//
// Every dense scan in the library has the same skeleton — compute distances
// from one query to a run of database rows, offer each to a bounded heap.
// These helpers run that skeleton through the dispatched squared-L2 kernels
// as a *prefilter*: the kernel fills a chunk of approximate squared
// distances, candidates inside the margin-inflated heap bound are
// re-measured with the caller's scalar metric before being pushed, and
// everything else is discarded without a sqrt or a heap probe. Because the
// heap only ever orders re-measured (bit-exact) values, results are
// IDENTICAL to the plain bf_scan_rows loop under every ISA — the property
// the per-ISA parity tests pin (tests/test_rbc_blocked.cpp).
//
// Only metrics monotone in squared L2 qualify; kernel_metric<M> says which.
// Unlike bf_scan_rows, these helpers do NOT touch the global
// distance-eval counters: callers account one eval per row scanned (the
// kernel does evaluate every row; re-measures are never counted twice) so
// index code can fold the number into its per-search stats first.
#pragma once

#include <algorithm>
#include <type_traits>

#include "bruteforce/topk.hpp"
#include "common/matrix.hpp"
#include "distance/dispatch.hpp"
#include "distance/metrics.hpp"

namespace rbc {

/// True for metrics the squared-L2 kernel layer can prefilter for:
/// comparing kernel outputs against sq_threshold(heap bound) must be
/// equivalent to comparing metric values against the bound.
template <class M>
inline constexpr bool kernel_metric =
    std::is_same_v<M, Euclidean> || std::is_same_v<M, SqEuclidean>;

/// Maps a heap bound (metric space) into squared-L2 space for filtering.
template <class M>
inline float sq_threshold(float bound) noexcept {
  static_assert(kernel_metric<M>);
  if constexpr (std::is_same_v<M, Euclidean>) return bound * bound;
  return bound;  // SqEuclidean is already squared
}

namespace detail {
struct IdentityId {
  index_t operator()(index_t row) const noexcept { return row; }
};
}  // namespace detail

/// BF(q, X[lo..hi)) through the dispatched row-block kernel. Pushes
/// (metric(q, x_p), id_of(p)) for every candidate surviving the prefilter;
/// identical final heap to the plain loop. Caller accounts hi - lo evals.
template <DenseMetric M, class IdOf = detail::IdentityId>
void kernel_scan_rows(const float* q, const Matrix<float>& X, index_t lo,
                      index_t hi, M metric, TopK& out, IdOf id_of = {}) {
  static_assert(kernel_metric<M>);
  constexpr index_t kChunk = 512;  // 2 KB of distances on the stack
  float buf[kChunk];
  const dispatch::KernelOps& ops = dispatch::ops();
  const index_t d = X.cols();
  const float margin = 1.0f + dispatch::tile_margin(d);
  for (index_t c = lo; c < hi; c += kChunk) {
    const index_t ce = std::min<index_t>(hi, c + kChunk);
    const float chunk_min =
        ops.rows(q, d, X.data(), X.stride(), c, ce, buf);
    // Whole chunk misses the (entry) bound: skip without reading buf. The
    // bound only tightens, so nothing skippable ever survives.
    if (chunk_min > sq_threshold<M>(out.worst()) * margin) continue;
    for (index_t p = c; p < ce; ++p) {
      if (buf[p - c] > sq_threshold<M>(out.worst()) * margin) continue;
      out.push(metric(q, X.row(p), d), id_of(p));
    }
  }
}

/// Gather-form variant: scans the `count` rows of the raw row-major buffer
/// `x` (rows `stride` floats apart) addressed by `rows`, pushing
/// (metric, id_of(rows[j])). Raw-pointer form because overflow rows
/// (dynamic inserts) live outside any Matrix. Caller accounts the evals.
template <DenseMetric M, class IdOf = detail::IdentityId>
void kernel_scan_gather(const float* q, index_t d, const float* x,
                        std::size_t stride, const index_t* rows,
                        index_t count, M metric, TopK& out, IdOf id_of = {}) {
  static_assert(kernel_metric<M>);
  constexpr index_t kChunk = 512;
  float buf[kChunk];
  const dispatch::KernelOps& ops = dispatch::ops();
  const float margin = 1.0f + dispatch::tile_margin(d);
  for (index_t c = 0; c < count; c += kChunk) {
    const index_t ce = std::min<index_t>(count, c + kChunk);
    const float chunk_min = ops.gather(q, d, x, stride, rows + c, ce - c, buf);
    if (chunk_min > sq_threshold<M>(out.worst()) * margin) continue;
    for (index_t j = c; j < ce; ++j) {
      if (buf[j - c] > sq_threshold<M>(out.worst()) * margin) continue;
      out.push(metric(q, x + static_cast<std::size_t>(rows[j]) * stride, d),
               id_of(rows[j]));
    }
  }
}

}  // namespace rbc
