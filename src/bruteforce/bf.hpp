// BF(Q, X) — the brute-force primitive (paper §3).
//
// "Given a set of queries Q and a database X ... finding the NNs for all q
//  can be achieved by a series of linear scans."
//
// Both of the paper's parallel decompositions are implemented:
//   * batch mode  — many queries: parallelize across queries (the
//     matrix-matrix-multiply-shaped case);
//   * stream mode — one query: parallelize across database chunks with
//     per-thread heaps and a final reduce (the matrix-vector case plus the
//     inverted-binary-tree comparison step).
//
// Subset search BF(q, X[L]) — the building block of both RBC search
// algorithms — is provided in gather form (indirect ids into X) and in
// contiguous form (a packed row range), the latter being what the RBC
// indexes use on their permuted copies of the database.
#pragma once

#include <cstdint>
#include <vector>

#include "bruteforce/topk.hpp"
#include "common/counters.hpp"
#include "common/matrix.hpp"
#include "distance/metrics.hpp"
#include "distance/quantized.hpp"

namespace rbc {

/// k-NN results for a batch of queries: row i holds query i's neighbors in
/// ascending (distance, id) order, padded with (inf, kInvalidIndex) when the
/// database has fewer than k points.
struct KnnResult {
  Matrix<dist_t> dists;  // nq x k
  Matrix<index_t> ids;   // nq x k

  KnnResult() = default;
  KnnResult(index_t nq, index_t k) : dists(nq, k), ids(nq, k) {}
};

/// Scans database rows [x_begin, x_end) for query q, offering every point to
/// `out`. Ids pushed are the raw row indices (callers remap if X is a packed
/// permutation). Serial; adds to the distance-eval counter.
template <DenseMetric M>
void bf_scan_rows(const float* q, const Matrix<float>& X, index_t x_begin,
                  index_t x_end, M metric, TopK& out) {
  const index_t d = X.cols();
  for (index_t j = x_begin; j < x_end; ++j)
    out.push(metric(q, X.row(j), d), j);
  counters::add_dist_evals(x_end - x_begin);
}

/// BF(q, X[subset]): scans the `count` database rows whose indices are given
/// by `subset`, pushing (distance, subset[j]) pairs. Serial.
template <DenseMetric M>
void bf_scan_subset(const float* q, const Matrix<float>& X,
                    const index_t* subset, index_t count, M metric,
                    TopK& out) {
  const index_t d = X.cols();
  for (index_t j = 0; j < count; ++j)
    out.push(metric(q, X.row(subset[j]), d), subset[j]);
  counters::add_dist_evals(count);
}

/// Precomputed squared row norms of a database — the rank-1 corrections of
/// the paper's §3 GEMM formulation, consumed by bf_knn's tiled batch path.
/// Callers that search one immutable database repeatedly (the bruteforce
/// backend, serving workloads) build this once at index time instead of
/// paying an O(n d) pass per batch.
struct RowNormsCache {
  std::vector<float> sq;  // ||X_p||^2 per row
  float max = 0.0f;       // max over sq (conservative lane-skip threshold)
};

/// Builds a RowNormsCache for X through the dispatched kernels.
RowNormsCache make_row_norms_cache(const Matrix<float>& X);

/// BF(Q, X) for a batch of queries; parallel across queries.
/// The default metric is Euclidean, as in all of the paper's experiments.
/// `norms`, when non-null, must be make_row_norms_cache(X) — it spares the
/// tiled batch path its per-call norms pass (ignored by other paths).
template <DenseMetric M = Euclidean>
KnnResult bf_knn(const Matrix<float>& Q, const Matrix<float>& X, index_t k,
                 M metric = {}, const RowNormsCache* norms = nullptr);

/// BF(Q, X) through a compressed row store (quantize() of X, see
/// distance/quantized.hpp): the hot scan reads fp16/int8 codes, candidates
/// surviving the error-inflated bound are re-measured against the float
/// rows of X — results identical to bf_knn. L2 family only
/// (quantized_metric<M>); parallel across queries.
template <DenseMetric M = Euclidean>
KnnResult bf_knn_quantized(const Matrix<float>& Q, const Matrix<float>& X,
                           const quant::QuantizedStore& store, index_t k,
                           M metric = {});

/// BF(q, X) for a single (streaming) query; parallel across database chunks
/// with per-thread heaps merged by a reduction.
template <DenseMetric M = Euclidean>
void bf_knn_stream(const float* q, const Matrix<float>& X, M metric,
                   TopK& out);

/// Convenience: 1-NN of a single query, serial. Returns (distance, id).
template <DenseMetric M = Euclidean>
std::pair<dist_t, index_t> bf_1nn(const float* q, const Matrix<float>& X,
                                  M metric = {}) {
  TopK top(1);
  bf_scan_rows(q, X, 0, X.rows(), metric, top);
  dist_t d;
  index_t id;
  top.extract_sorted(&d, &id);
  return {d, id};
}

}  // namespace rbc

#include "bruteforce/bf_impl.hpp"
