// Explicit instantiations of the brute-force primitive for the shipped
// metrics, so common configurations compile once instead of in every TU.
#include "bruteforce/bf.hpp"

namespace rbc {

template KnnResult bf_knn<Euclidean>(const Matrix<float>&,
                                     const Matrix<float>&, index_t, Euclidean);
template KnnResult bf_knn<SqEuclidean>(const Matrix<float>&,
                                       const Matrix<float>&, index_t,
                                       SqEuclidean);
template KnnResult bf_knn<L1>(const Matrix<float>&, const Matrix<float>&,
                              index_t, L1);
template KnnResult bf_knn<LInf>(const Matrix<float>&, const Matrix<float>&,
                                index_t, LInf);

template void bf_knn_stream<Euclidean>(const float*, const Matrix<float>&,
                                       Euclidean, TopK&);
template void bf_knn_stream<L1>(const float*, const Matrix<float>&, L1, TopK&);

}  // namespace rbc
