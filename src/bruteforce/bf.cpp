// Explicit instantiations of the brute-force primitive for the shipped
// metrics, so common configurations compile once instead of in every TU —
// plus the non-template norms-cache builder.
#include "bruteforce/bf.hpp"

namespace rbc {

RowNormsCache make_row_norms_cache(const Matrix<float>& X) {
  RowNormsCache cache;
  cache.sq = detail::kernel_row_sq_norms(X);
  for (const float v : cache.sq) cache.max = std::max(cache.max, v);
  return cache;
}

template KnnResult bf_knn<Euclidean>(const Matrix<float>&,
                                     const Matrix<float>&, index_t, Euclidean,
                                     const RowNormsCache*);
template KnnResult bf_knn<SqEuclidean>(const Matrix<float>&,
                                       const Matrix<float>&, index_t,
                                       SqEuclidean, const RowNormsCache*);
template KnnResult bf_knn<L1>(const Matrix<float>&, const Matrix<float>&,
                              index_t, L1, const RowNormsCache*);
template KnnResult bf_knn<LInf>(const Matrix<float>&, const Matrix<float>&,
                                index_t, LInf, const RowNormsCache*);

template void bf_knn_stream<Euclidean>(const float*, const Matrix<float>&,
                                       Euclidean, TopK&);
template void bf_knn_stream<L1>(const float*, const Matrix<float>&, L1, TopK&);

}  // namespace rbc
