// Brute-force k-NN over an arbitrary metric space (strings, graph nodes, ...).
//
// A Space models:
//   index_t size() const;
//   const Point& operator[](index_t) const;   // Point = Space::Point
//   double distance(const Point&, const Point&) const;
//
// distance() must be a true metric for the generic RBC exact index built on
// top of this to be correct.
#pragma once

#include <algorithm>
#include <concepts>
#include <limits>
#include <utility>
#include <vector>

#include "common/counters.hpp"
#include "common/types.hpp"

namespace rbc {

template <class S>
concept MetricSpace = requires(const S s, index_t i) {
  typename S::Point;
  { s.size() } -> std::convertible_to<index_t>;
  { s[i] } -> std::convertible_to<const typename S::Point&>;
  { s.distance(s[i], s[i]) } -> std::convertible_to<double>;
};

/// A metric space with a cheap bounded evaluation: distance_bounded(a, b,
/// band) must return the exact distance whenever it is <= band, and any
/// value strictly greater than band otherwise (banded edit distance bails
/// out of the DP once the whole band overflows). The generic searches pass
/// their current kth-best bound, which provably never changes a returned
/// k-set (see generic_knn_subset_pruned and the RBC offer loop).
template <class S>
concept BoundedMetricSpace =
    MetricSpace<S> && requires(const S s, index_t i, double band) {
      { s.distance_bounded(s[i], s[i], band) } -> std::convertible_to<double>;
    };

/// One (distance, id) neighbor in a generic space.
struct GenericNeighbor {
  double dist;
  index_t id;

  friend bool operator<(const GenericNeighbor& a, const GenericNeighbor& b) {
    return a.dist < b.dist || (a.dist == b.dist && a.id < b.id);
  }
  friend bool operator==(const GenericNeighbor& a,
                         const GenericNeighbor& b) = default;
};

/// Brute-force k-NN of `query` among the subset `ids` of the space
/// (all points if `ids` is empty ... callers pass the full range explicitly
/// to avoid surprises). Returns ascending (distance, id), size min(k, #ids).
template <MetricSpace S>
std::vector<GenericNeighbor> generic_knn_subset(
    const S& space, const typename S::Point& query,
    const std::vector<index_t>& ids, index_t k) {
  std::vector<GenericNeighbor> all;
  all.reserve(ids.size());
  for (const index_t id : ids)
    all.push_back({space.distance(query, space[id]), id});
  counters::add_dist_evals(ids.size());
  const std::size_t keep = std::min<std::size_t>(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(keep),
                    all.end());
  all.resize(keep);
  return all;
}

/// Like generic_knn_subset, but when the space supports bounded evaluation
/// each candidate is measured only up to the current kth-best distance.
/// Returns exactly the same k-set (ties included): the band is only applied
/// once `best` holds k entries, so a clamped value d' > band == back.dist
/// describes a candidate that the plain scan would also have rejected, and
/// a candidate at d == band is returned exact so tie displacement by id
/// behaves identically.
template <MetricSpace S>
std::vector<GenericNeighbor> generic_knn_subset_pruned(
    const S& space, const typename S::Point& query,
    const std::vector<index_t>& ids, index_t k) {
  std::vector<GenericNeighbor> best;
  best.reserve(std::min<std::size_t>(k + 1, ids.size() + 1));
  for (const index_t id : ids) {
    double d;
    if constexpr (BoundedMetricSpace<S>) {
      const double band = best.size() >= k
                              ? best.back().dist
                              : std::numeric_limits<double>::infinity();
      d = space.distance_bounded(query, space[id], band);
    } else {
      d = space.distance(query, space[id]);
    }
    const GenericNeighbor cand{d, id};
    if (best.size() >= k) {
      if (!(cand < best.back())) continue;
      best.pop_back();
    }
    best.insert(std::lower_bound(best.begin(), best.end(), cand), cand);
  }
  counters::add_dist_evals(ids.size());
  return best;
}

/// Brute-force k-NN of `query` among all points of the space.
template <MetricSpace S>
std::vector<GenericNeighbor> generic_knn(const S& space,
                                         const typename S::Point& query,
                                         index_t k) {
  std::vector<index_t> ids(space.size());
  for (index_t i = 0; i < space.size(); ++i) ids[i] = i;
  return generic_knn_subset(space, query, ids, k);
}

}  // namespace rbc
