// Brute-force k-NN over an arbitrary metric space (strings, graph nodes, ...).
//
// A Space models:
//   index_t size() const;
//   const Point& operator[](index_t) const;   // Point = Space::Point
//   double distance(const Point&, const Point&) const;
//
// distance() must be a true metric for the generic RBC exact index built on
// top of this to be correct.
#pragma once

#include <concepts>
#include <utility>
#include <vector>

#include "common/counters.hpp"
#include "common/types.hpp"

namespace rbc {

template <class S>
concept MetricSpace = requires(const S s, index_t i) {
  typename S::Point;
  { s.size() } -> std::convertible_to<index_t>;
  { s[i] } -> std::convertible_to<const typename S::Point&>;
  { s.distance(s[i], s[i]) } -> std::convertible_to<double>;
};

/// One (distance, id) neighbor in a generic space.
struct GenericNeighbor {
  double dist;
  index_t id;

  friend bool operator<(const GenericNeighbor& a, const GenericNeighbor& b) {
    return a.dist < b.dist || (a.dist == b.dist && a.id < b.id);
  }
  friend bool operator==(const GenericNeighbor& a,
                         const GenericNeighbor& b) = default;
};

/// Brute-force k-NN of `query` among the subset `ids` of the space
/// (all points if `ids` is empty ... callers pass the full range explicitly
/// to avoid surprises). Returns ascending (distance, id), size min(k, #ids).
template <MetricSpace S>
std::vector<GenericNeighbor> generic_knn_subset(
    const S& space, const typename S::Point& query,
    const std::vector<index_t>& ids, index_t k) {
  std::vector<GenericNeighbor> all;
  all.reserve(ids.size());
  for (const index_t id : ids)
    all.push_back({space.distance(query, space[id]), id});
  counters::add_dist_evals(ids.size());
  const std::size_t keep = std::min<std::size_t>(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(keep),
                    all.end());
  all.resize(keep);
  return all;
}

/// Brute-force k-NN of `query` among all points of the space.
template <MetricSpace S>
std::vector<GenericNeighbor> generic_knn(const S& space,
                                         const typename S::Point& query,
                                         index_t k) {
  std::vector<index_t> ids(space.size());
  for (index_t i = 0; i < space.size(); ++i) ids[i] = i;
  return generic_knn_subset(space, query, ids, k);
}

}  // namespace rbc
