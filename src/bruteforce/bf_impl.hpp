// Template implementations for bf.hpp. Include bf.hpp, not this file.
#pragma once

#include <algorithm>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/runtime.hpp"

namespace rbc {

template <DenseMetric M>
KnnResult bf_knn(const Matrix<float>& Q, const Matrix<float>& X, index_t k,
                 M metric) {
  KnnResult result(Q.rows(), k);
  const int nt = max_threads();

  if (Q.rows() == 0) return result;

  // Few queries relative to cores: stream mode per query.
  if (Q.rows() < static_cast<index_t>(2 * nt)) {
    for (index_t qi = 0; qi < Q.rows(); ++qi) {
      TopK top(k);
      bf_knn_stream(Q.row(qi), X, metric, top);
      top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
    }
    return result;
  }

  // Batch mode: one heap per thread, queries distributed dynamically.
  std::vector<TopK> heaps(static_cast<std::size_t>(nt), TopK(k));
  parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
    TopK& top = heaps[static_cast<std::size_t>(thread_id())];
    top.reset();
    bf_scan_rows(Q.row(qi), X, 0, X.rows(), metric, top);
    top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
  });
  return result;
}

template <DenseMetric M>
void bf_knn_stream(const float* q, const Matrix<float>& X, M metric,
                   TopK& out) {
  const int nt = max_threads();
  const index_t n = X.rows();
  if (n == 0) return;

  // Chunk the database so each thread gets a contiguous slice (predictable
  // access, Per.19); merge per-thread heaps afterwards (the paper's
  // parallel-reduce comparison step).
  std::vector<TopK> partials(static_cast<std::size_t>(nt), TopK(out.k()));
#pragma omp parallel
  {
    TopK& mine = partials[static_cast<std::size_t>(thread_id())];
#pragma omp for schedule(static)
    for (std::int64_t chunk = 0; chunk < nt; ++chunk) {
      const index_t lo = static_cast<index_t>(
          static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(chunk) /
          static_cast<std::uint64_t>(nt));
      const index_t hi = static_cast<index_t>(
          static_cast<std::uint64_t>(n) *
          static_cast<std::uint64_t>(chunk + 1) /
          static_cast<std::uint64_t>(nt));
      bf_scan_rows(q, X, lo, hi, metric, mine);
    }
  }
  for (const TopK& partial : partials) out.merge_from(partial);
}

}  // namespace rbc
