// Template implementations for bf.hpp. Include bf.hpp, not this file.
#pragma once

#include <algorithm>
#include <vector>

#include "bruteforce/kernel_scan.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/runtime.hpp"

namespace rbc {

namespace detail {

/// Squared row norms through the dispatched row-block kernel (a zero query
/// turns ||q - x||^2 into ||x||^2) — the cached corrections of the §3 GEMM
/// formulation. Parallel over row blocks.
inline std::vector<float> kernel_row_sq_norms(const Matrix<float>& X) {
  std::vector<float> norms(X.rows());
  if (X.rows() == 0) return norms;
  const std::vector<float> zero(X.cols(), 0.0f);
  parallel_for_blocked(0, X.rows(), 4096, [&](index_t lo, index_t hi) {
    dispatch::ops().rows(zero.data(), X.cols(), X.data(), X.stride(), lo, hi,
                         norms.data() + lo);
  });
  return norms;
}

/// Batch-mode BF(Q, X) in the paper's §3 GEMM form: 16-query tiles through
/// the dispatched tile_gemm kernel with the row norms computed once for
/// the whole batch (or passed in precomputed — see RowNormsCache). Queries
/// beyond the last full tile run the row-block kernel path as individual
/// work items instead of wasting 15/16 of a tile. Results are identical to
/// the per-query loop (prefilter + scalar re-measure; kernel_scan.hpp).
template <DenseMetric M>
void bf_knn_tiled(const Matrix<float>& Q, const Matrix<float>& X, index_t k,
                  M metric, const RowNormsCache* norms, KnnResult& result) {
  const index_t nq = Q.rows(), n = X.rows(), d = X.cols();
  RowNormsCache local;
  if (norms == nullptr) {
    local = make_row_norms_cache(X);
    norms = &local;
  }
  const std::vector<float>& x_sq = norms->sq;
  const float x_sq_max = norms->max;
  const index_t full_tiles = nq / dispatch::kTile;
  // One work item per full tile plus one per tail query: tails stay as
  // finely parallel as the per-query path. One heap per thread, reused
  // across tail items (no allocation per query).
  const index_t items = full_tiles + nq % dispatch::kTile;
  std::vector<TopK> heaps(static_cast<std::size_t>(max_threads()), TopK(k));

  parallel_for_dynamic(0, items, [&](index_t item) {
    if (item >= full_tiles) {  // tail query: single-query row-block scan
      const index_t qi =
          full_tiles * dispatch::kTile + (item - full_tiles);
      TopK& top = heaps[static_cast<std::size_t>(thread_id())];
      top.reset();
      kernel_scan_rows(Q.row(qi), X, 0, n, metric, top);
      counters::add_dist_evals(n);
      top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
      return;
    }

    const index_t t_lo = item * dispatch::kTile;
    const float* qrows[dispatch::kTile];
    for (index_t t = 0; t < dispatch::kTile; ++t) qrows[t] = Q.row(t_lo + t);
    std::vector<float> qt(static_cast<std::size_t>(d) * dispatch::kTile);
    dispatch::pack_tile(qrows, dispatch::kTile, d, qt.data());
    float q_sq[dispatch::kTile];
    for (index_t t = 0; t < dispatch::kTile; ++t)
      q_sq[t] = kernels::dot(qrows[t], qrows[t], d);

    std::vector<TopK> tops(dispatch::kTile, TopK(k));
    constexpr index_t kChunk = 256;  // 16 KB of distances per chunk
    float buf[kChunk * dispatch::kTile];
    float lane_min[dispatch::kTile];
    const dispatch::KernelOps& ops = dispatch::ops();
    const float mrel = 1.0f + dispatch::tile_margin(d);
    const float mabs = dispatch::gemm_margin_scale(d);
    for (index_t c = 0; c < n; c += kChunk) {
      const index_t ce = std::min<index_t>(n, c + kChunk);
      ops.tile_gemm(qt.data(), q_sq, d, X.data(), X.stride(), x_sq.data(), c,
                    ce, buf, lane_min);
      // Lane-major filter with the per-lane kernel minimum: a warmed-up
      // lane usually has no candidate in the chunk and skips it without
      // reading the distance buffer at all.
      for (index_t t = 0; t < dispatch::kTile; ++t) {
        const float skip_bound = sq_threshold<M>(tops[t].worst());
        if (lane_min[t] > skip_bound * mrel + mabs * (q_sq[t] + x_sq_max))
          continue;
        for (index_t p = c; p < ce; ++p) {
          const float v =
              buf[static_cast<std::size_t>(p - c) * dispatch::kTile + t];
          const float bound = sq_threshold<M>(tops[t].worst());
          if (v > bound * mrel + mabs * (q_sq[t] + x_sq[p])) continue;
          tops[t].push(metric(qrows[t], X.row(p), d), p);
        }
      }
    }
    counters::add_dist_evals(static_cast<std::uint64_t>(dispatch::kTile) * n);
    for (index_t t = 0; t < dispatch::kTile; ++t)
      tops[t].extract_sorted(result.dists.row(t_lo + t),
                             result.ids.row(t_lo + t));
  });
}

}  // namespace detail

template <DenseMetric M>
KnnResult bf_knn(const Matrix<float>& Q, const Matrix<float>& X, index_t k,
                 M metric, const RowNormsCache* norms) {
  KnnResult result(Q.rows(), k);
  const int nt = max_threads();

  if (Q.rows() == 0) return result;

  // Few queries relative to cores: stream mode per query.
  if (Q.rows() < static_cast<index_t>(2 * nt)) {
    for (index_t qi = 0; qi < Q.rows(); ++qi) {
      TopK top(k);
      bf_knn_stream(Q.row(qi), X, metric, top);
      top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
    }
    return result;
  }

  if constexpr (gemm_metric<M>) {
    // Batch mode, §3 GEMM form, when the tiles alone can occupy the
    // thread pool: dispatched 16-query tiles with cached row norms — same
    // results, the matrix-multiply-shaped inner loop. Otherwise keep
    // per-query granularity (still kernelized) so no core idles.
    if (Q.rows() / dispatch::kTile >= static_cast<index_t>(nt)) {
      detail::bf_knn_tiled(Q, X, k, metric, norms, result);
      return result;
    }
    std::vector<TopK> heaps(static_cast<std::size_t>(nt), TopK(k));
    parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
      TopK& top = heaps[static_cast<std::size_t>(thread_id())];
      top.reset();
      kernel_scan_rows(Q.row(qi), X, 0, X.rows(), metric, top);
      counters::add_dist_evals(X.rows());
      top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
    });
    return result;
  } else if constexpr (kernel_metric<M>) {
    // L1 / InnerProduct: per-query scans through the metric's dispatched
    // row-block kernel. The negated-dot prefilter needs an absolute
    // re-measure slack (its rounding error scales with ||q||*||x||, not
    // with the possibly-cancelling result); the squared row norms already
    // cached for the GEMM path supply max||x|| for free.
    RowNormsCache local;
    float x_norm_max = 0.0f;
    if constexpr (std::is_same_v<M, InnerProduct>) {
      if (norms == nullptr) {
        local = make_row_norms_cache(X);
        norms = &local;
      }
      x_norm_max = std::sqrt(norms->max);
    }
    const index_t d = X.cols();
    std::vector<TopK> heaps(static_cast<std::size_t>(nt), TopK(k));
    parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
      TopK& top = heaps[static_cast<std::size_t>(thread_id())];
      top.reset();
      float slack = 0.0f;
      if constexpr (std::is_same_v<M, InnerProduct>)
        slack = dispatch::tile_margin(d) *
                std::sqrt(kernels::dot(Q.row(qi), Q.row(qi), d)) * x_norm_max;
      kernel_scan_rows(Q.row(qi), X, 0, X.rows(), metric, top, {}, slack);
      counters::add_dist_evals(X.rows());
      top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
    });
    return result;
  } else {
    // Batch mode: one heap per thread, queries distributed dynamically.
    std::vector<TopK> heaps(static_cast<std::size_t>(nt), TopK(k));
    parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
      TopK& top = heaps[static_cast<std::size_t>(thread_id())];
      top.reset();
      bf_scan_rows(Q.row(qi), X, 0, X.rows(), metric, top);
      top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
    });
    return result;
  }
}

template <DenseMetric M>
KnnResult bf_knn_quantized(const Matrix<float>& Q, const Matrix<float>& X,
                           const quant::QuantizedStore& store, index_t k,
                           M metric) {
  static_assert(quantized_metric<M>);
  KnnResult result(Q.rows(), k);
  if (Q.rows() == 0) return result;
  const int nt = max_threads();
  std::vector<TopK> heaps(static_cast<std::size_t>(nt), TopK(k));
  parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
    TopK& top = heaps[static_cast<std::size_t>(thread_id())];
    top.reset();
    quantized_scan_rows(Q.row(qi), X, store, 0, X.rows(), metric, top);
    counters::add_dist_evals(X.rows());
    top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
  });
  return result;
}

template <DenseMetric M>
void bf_knn_stream(const float* q, const Matrix<float>& X, M metric,
                   TopK& out) {
  const int nt = max_threads();
  const index_t n = X.rows();
  if (n == 0) return;

  // Chunk the database so each thread gets a contiguous slice (predictable
  // access, Per.19); merge per-thread heaps afterwards (the paper's
  // parallel-reduce comparison step). Euclidean/SqEuclidean chunks run the
  // dispatched row-block kernel — eight independent accumulator chains
  // instead of the latency-bound single-query scan.
  std::vector<TopK> partials(static_cast<std::size_t>(nt), TopK(out.k()));
#pragma omp parallel
  {
    TopK& mine = partials[static_cast<std::size_t>(thread_id())];
#pragma omp for schedule(static)
    for (std::int64_t chunk = 0; chunk < nt; ++chunk) {
      const index_t lo = static_cast<index_t>(
          static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(chunk) /
          static_cast<std::uint64_t>(nt));
      const index_t hi = static_cast<index_t>(
          static_cast<std::uint64_t>(n) *
          static_cast<std::uint64_t>(chunk + 1) /
          static_cast<std::uint64_t>(nt));
      // InnerProduct stays on the functor loop here: the kernel prefilter
      // would need a max-row-norm slack this one-shot path has no cache
      // for (the functor's compile-time dot is already vectorized).
      if constexpr (kernel_metric<M> && !std::is_same_v<M, InnerProduct>) {
        kernel_scan_rows(q, X, lo, hi, metric, mine);
        counters::add_dist_evals(hi - lo);
      } else {
        bf_scan_rows(q, X, lo, hi, metric, mine);
      }
    }
  }
  for (const TopK& partial : partials) out.merge_from(partial);
}

}  // namespace rbc
