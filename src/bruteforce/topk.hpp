// Bounded top-k selection — the "comparison step" of the brute-force
// primitive (paper §3).
//
// Ordering contract (used throughout the library to make results
// deterministic and independent of thread count / visit order): candidates
// are ranked by (distance, id) lexicographically, smaller is better. Two
// searches that see the same candidate multiset therefore produce identical
// results, which is what lets the test suite require RBC exact == brute
// force *including ties*.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/types.hpp"

namespace rbc {

/// Fixed-capacity max-heap of the k best (smallest) (distance, id) pairs.
class TopK {
 public:
  explicit TopK(index_t k) : k_(k) { heap_.reserve(k); }

  index_t k() const noexcept { return k_; }
  index_t size() const noexcept { return static_cast<index_t>(heap_.size()); }
  bool full() const noexcept { return size() == k_; }

  /// Clears contents; capacity is retained (no allocation on the hot path).
  void reset() noexcept { heap_.clear(); }

  /// Current k-th best distance: the pruning bound. +inf until full, so all
  /// candidates are accepted while the heap is filling.
  dist_t worst() const noexcept { return full() ? heap_[0].dist : kInfDist; }

  /// Offers a candidate; keeps it if it beats the current k-th best under
  /// the (distance, id) order. Returns true if kept.
  bool push(dist_t dist, index_t id) {
    if (!full()) {
      heap_.push_back({dist, id});
      sift_up(heap_.size() - 1);
      return true;
    }
    if (!better(dist, id, heap_[0].dist, heap_[0].id)) return false;
    heap_[0] = {dist, id};
    sift_down(0);
    return true;
  }

  /// Merges another heap's contents into this one.
  void merge_from(const TopK& other) {
    for (const Entry& e : other.heap_) push(e.dist, e.id);
  }

  /// Writes the contents in ascending (distance, id) order. Exactly k slots
  /// are written: missing entries (size() < k) are padded with
  /// (kInfDist, kInvalidIndex).
  void extract_sorted(dist_t* dists, index_t* ids) const {
    std::vector<Entry> sorted(heap_);
    std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
      return better(a.dist, a.id, b.dist, b.id);
    });
    index_t i = 0;
    for (; i < sorted.size(); ++i) {
      dists[i] = sorted[i].dist;
      ids[i] = sorted[i].id;
    }
    for (; i < k_; ++i) {
      dists[i] = kInfDist;
      ids[i] = kInvalidIndex;
    }
  }

 private:
  struct Entry {
    dist_t dist;
    index_t id;
  };

  /// True if (d1, i1) ranks strictly better (smaller) than (d2, i2).
  static bool better(dist_t d1, index_t i1, dist_t d2, index_t i2) noexcept {
    return d1 < d2 || (d1 == d2 && i1 < i2);
  }

  /// True if entry a is worse than entry b (max-heap comparator).
  static bool worse(const Entry& a, const Entry& b) noexcept {
    return better(b.dist, b.id, a.dist, a.id);
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!worse(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = left + 1;
      std::size_t largest = i;
      if (left < n && worse(heap_[left], heap_[largest])) largest = left;
      if (right < n && worse(heap_[right], heap_[largest])) largest = right;
      if (largest == i) break;
      std::swap(heap_[i], heap_[largest]);
      i = largest;
    }
  }

  index_t k_;
  std::vector<Entry> heap_;
};

}  // namespace rbc
