// Exact k-way merge of per-shard top-k blocks — the gather half of every
// scatter/gather composite in the library.
//
// Two layers share this code path bit-for-bit: ShardedIndex (in-process
// row-partitioned fan-out, shard/sharded_index.cpp) and NetRouter
// (multi-process scatter over shard-owner servers, dist/net_router.cpp).
// Keeping the merge in one place is what makes the distributed deployment's
// exactness claim checkable: a router over N server processes returns
// *identical* bytes to sharded:<inner> run in one process, because both feed
// the same per-shard top-k rows through this same cursor merge.
//
// Requirements on the inputs (the callers' contract):
//   * each shard's row holds its `k` nearest under ascending (distance, id)
//     order with every entry populated (no padding — callers clamp the
//     per-shard k to the shard's row count);
//   * global_ids maps shard-local row ids to global row ids monotonically
//     (ascending local -> ascending global), so each sorted shard row stays
//     sorted after remapping;
//   * the shard k's sum to at least the output k (guaranteed when k <= total
//     database size, which the unified API validates).
// Under those, a cursor-per-shard merge is exact: ties break on the global
// id exactly as a single unsharded scan would.
#pragma once

#include <span>
#include <vector>

#include "bruteforce/bf.hpp"
#include "common/matrix.hpp"
#include "parallel/parallel_for.hpp"

namespace rbc::shard {

/// One shard's contribution to the merge.
struct MergeInput {
  const KnnResult* knn = nullptr;  ///< per-query top-k block (nq rows)
  index_t k = 0;                   ///< valid entries per row (<= knn cols)
  /// Shard-local row id -> global row id, ascending.
  const std::vector<index_t>* global_ids = nullptr;
};

/// Merges the shards' top-k rows into one nq x k result under the global
/// (distance, id) order. Parallel across queries; each query's merge touches
/// only its own output row, so the loop is lock-free.
inline KnnResult merge_shard_topk(index_t nq, index_t k,
                                  std::span<const MergeInput> shards) {
  KnnResult out(nq, k);
  parallel_for_dynamic(0, nq, [&](index_t qi) {
    std::vector<index_t> cursor(shards.size(), 0);
    dist_t* out_d = out.dists.row(qi);
    index_t* out_i = out.ids.row(qi);
    for (index_t slot = 0; slot < k; ++slot) {
      std::size_t best_s = shards.size();
      dist_t best_d = kInfDist;
      index_t best_id = kInvalidIndex;
      for (std::size_t s = 0; s < shards.size(); ++s) {
        if (cursor[s] >= shards[s].k) continue;
        const dist_t d = shards[s].knn->dists.at(qi, cursor[s]);
        const index_t gid =
            (*shards[s].global_ids)[shards[s].knn->ids.at(qi, cursor[s])];
        if (d < best_d || (d == best_d && gid < best_id)) {
          best_s = s;
          best_d = d;
          best_id = gid;
        }
      }
      // The callers guarantee sum(shard k) >= k, so candidates never run
      // out before the output row fills.
      ++cursor[best_s];
      out_d[slot] = best_d;
      out_i[slot] = best_id;
    }
  });
  return out;
}

}  // namespace rbc::shard
