// Exact k-way merge of per-shard top-k blocks — the gather half of every
// scatter/gather composite in the library.
//
// Two layers share this code path bit-for-bit: ShardedIndex (in-process
// row-partitioned fan-out, shard/sharded_index.cpp) and NetRouter
// (multi-process scatter over shard-owner servers, dist/net_router.cpp).
// Keeping the merge in one place is what makes the distributed deployment's
// exactness claim checkable: a router over N server processes returns
// *identical* bytes to sharded:<inner> run in one process, because both feed
// the same per-shard top-k rows through this same cursor merge.
//
// Requirements on the inputs (the callers' contract):
//   * each shard's row holds its `k` nearest under ascending (distance, id)
//     order; an *approximate* shard may under-fill the row, padding the
//     tail with (kInfDist, kInvalidIndex) entries;
//   * global_ids maps shard-local row ids to global row ids monotonically
//     (ascending local -> ascending global), so each sorted shard row stays
//     sorted after remapping (padding ids are never remapped);
//   * for exact shards the k's sum to at least the output k (guaranteed
//     when k <= total database size, which the unified API validates).
// Under those, a cursor-per-shard merge is exact: ties break on the global
// id exactly as a single unsharded scan would. If every stream runs dry
// before the output fills (only possible when an approximate shard
// under-filled), the remaining slots carry the same padding convention the
// backends themselves use.
#pragma once

#include <span>
#include <vector>

#include "bruteforce/bf.hpp"
#include "common/matrix.hpp"
#include "parallel/parallel_for.hpp"

namespace rbc::shard {

/// One sorted candidate stream's contribution to a single-row merge.
struct MergeCursorInput {
  const dist_t* dists = nullptr;  ///< k ascending (distance, id) entries
  const index_t* ids = nullptr;   ///< matching local (or global) ids
  index_t k = 0;                  ///< valid entries (no padding)
  /// Local id -> global id, ascending; nullptr means ids are already
  /// global (identity remap).
  const std::vector<index_t>* global_ids = nullptr;
};

/// Merges the streams' sorted rows into one k-entry output row under the
/// global (distance, id) order. The streams' k's must sum to >= k.
inline void merge_topk_row(index_t k,
                           std::span<const MergeCursorInput> streams,
                           dist_t* out_d, index_t* out_i) {
  std::vector<index_t> cursor(streams.size(), 0);
  for (index_t slot = 0; slot < k; ++slot) {
    std::size_t best_s = streams.size();
    dist_t best_d = kInfDist;
    index_t best_id = kInvalidIndex;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (cursor[s] >= streams[s].k) continue;
      const index_t local = streams[s].ids[cursor[s]];
      // Approximate shards pad under-filled rows with (kInfDist,
      // kInvalidIndex); the padding is a sorted tail, so the stream is
      // exhausted here — and must never reach the global_ids remap.
      if (local == kInvalidIndex) continue;
      const dist_t d = streams[s].dists[cursor[s]];
      const index_t gid = streams[s].global_ids == nullptr
                              ? local
                              : (*streams[s].global_ids)[local];
      if (d < best_d || (d == best_d && gid < best_id)) {
        best_s = s;
        best_d = d;
        best_id = gid;
      }
    }
    if (best_s == streams.size()) {
      // Every stream ran dry before the row filled (an approximate shard
      // under-filled): carry the backends' own padding convention through.
      out_d[slot] = kInfDist;
      out_i[slot] = kInvalidIndex;
      continue;
    }
    ++cursor[best_s];
    out_d[slot] = best_d;
    out_i[slot] = best_id;
  }
}

/// One shard's contribution to the merge.
struct MergeInput {
  const KnnResult* knn = nullptr;  ///< per-query top-k block (nq rows)
  index_t k = 0;                   ///< valid entries per row (<= knn cols)
  /// Shard-local row id -> global row id, ascending; nullptr = ids are
  /// already global.
  const std::vector<index_t>* global_ids = nullptr;
};

/// Merges the shards' top-k rows into one nq x k result under the global
/// (distance, id) order. Parallel across queries; each query's merge touches
/// only its own output row, so the loop is lock-free.
inline KnnResult merge_shard_topk(index_t nq, index_t k,
                                  std::span<const MergeInput> shards) {
  KnnResult out(nq, k);
  parallel_for_dynamic(0, nq, [&](index_t qi) {
    std::vector<MergeCursorInput> streams(shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s)
      streams[s] = {.dists = shards[s].knn->dists.row(qi),
                    .ids = shards[s].knn->ids.row(qi),
                    .k = shards[s].k,
                    .global_ids = shards[s].global_ids};
    merge_topk_row(k, streams, out.dists.row(qi), out.ids.row(qi));
  });
  return out;
}

}  // namespace rbc::shard
