// Sharded parallel index: N inner indices over a row-partitioned database,
// answering as one rbc::Index.
//
// The paper's manycore argument is that RBC search decomposes into
// independent brute-force pieces; sharding applies the same decomposition
// one level up (cf. buffer k-d trees and NCAM in PAPERS.md): the database is
// split into `num_shards` disjoint row sets, any registered backend is built
// per shard (in parallel via src/parallel/), and a query fans out to every
// shard. Each (query, shard) pair fills its own top-k — shard results never
// share mutable state, so the fan-out is lock-free by construction — and an
// exact k-way merge remaps shard-local row ids to global ids under the
// library-wide (distance, id) order. Because every inner backend re-measures
// candidates with the same scalar metric over the same row bytes, the merged
// answer is bit-identical (ids, distances, tie order) to the wrapped backend
// run unsharded, for every shard count and partition scheme.
//
//   auto index = rbc::make_index("sharded:rbc-exact", {.num_shards = 8});
//   index->build(database);               // 8 rbc-exact indices, built in
//   auto r = index->knn_search(request);  // parallel, searched fan-out/merge
//
// Factory names: "sharded:<inner>" for every registered inner backend —
// the shipped variants are pre-registered (see api/backends/), and
// make_index() resolves "sharded:<anything-registered>" generically, so a
// user-registered backend gets a sharded form for free.
//
// Capabilities mirror the inner backend: range_search unions per-shard hits;
// save/load round-trips through io::kMagicSharded when the inner supports
// save; IndexInfo aggregates size / memory / exactness over the shards.
//
// Mutation: when the inner backend supports insert()/remove() (the mutable
// delta-shard adapter, mutate/mutable_index.hpp), the composite runs
// *id-native*: every shard — including initially empty ones, which is why
// all num_shards are instantiated up front — is built with its global row
// ids via build_with_ids, answers in global ids directly (no remap table),
// and the composite routes each insert batch to the least-full shard and
// each remove to the shard that owns the id. Searches stay exact: the
// per-shard live counts clamp k, and the same k-way merge applies.
#pragma once

#include <iosfwd>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "api/index.hpp"

namespace rbc::shard {

/// How rows are assigned to shards (see IndexOptions::partition).
enum class Partition { kContiguous, kStrided };

/// Upper bound on IndexOptions::num_shards: far beyond any useful
/// configuration, and small enough that a corrupt shard-count field in a
/// serialized file can never drive a giant partition-table allocation.
inline constexpr index_t kMaxShards = 1u << 20;

/// Parses "contiguous" / "strided"; throws std::invalid_argument otherwise.
Partition parse_partition(std::string_view name);
const char* partition_name(Partition p) noexcept;

/// The row sets of a (n, num_shards, partition) split. Element s lists the
/// *global* row ids shard s owns, in ascending order; shards whose set is
/// empty (num_shards > n) are left out of the built index entirely.
std::vector<std::vector<index_t>> partition_rows(index_t n, index_t num_shards,
                                                 Partition partition);

/// A row-partitioned composite over any registered inner backend. Validates
/// the inner name and shard parameters at construction; build() copies each
/// shard's rows and builds the inner indices in parallel.
///
/// Thread safety: const searches may run concurrently with each other and
/// with the inner shards' background merges; composite-level mutators
/// (insert/remove/build) exclude searches briefly while they reroute ids.
class ShardedIndex final : public Index {
 public:
  /// `inner` must name a registered backend ("rbc-exact", ...); `options`
  /// supplies both the shard parameters (num_shards, partition) and the
  /// inner backend's own knobs, forwarded to every shard unchanged.
  ShardedIndex(std::string_view inner, const IndexOptions& options);

  void build(const Matrix<float>& X) override;
  void build_with_ids(const Matrix<float>& X,
                      std::span<const index_t> ids) override;
  SearchResponse knn_search(const SearchRequest& request) const override;
  RangeResponse range_search(const RangeRequest& request) const override;

  /// Payload (generic metric-space) composites: live when the inner backend
  /// resolved IndexOptions::metric to a payload space. Each shard is built
  /// over Dataset::subset of its row set — ascending order is preserved, so
  /// the same global-id remap and k-way merge the dense path uses apply
  /// unchanged, and the composite stays bit-identical to the inner backend
  /// run unsharded.
  void build_payload(const metricspace::DatasetHandle& data) override;
  SearchResponse knn_search_payload(
      const PayloadSearchRequest& request) const override;

  void insert(const Matrix<float>& rows,
              std::span<const index_t> ids) override;
  index_t remove(std::span<const index_t> ids) override;
  void compact() override;
  std::vector<index_t> live_ids() const override;

  void save(std::ostream& os) const override;
  IndexInfo info() const override;

  /// Restores a stream written by save() (leading magic io::kMagicSharded).
  /// The inner backend is resolved by name from the registry, and each
  /// shard loads through rbc::load_index, so the stream must be seekable.
  static std::unique_ptr<Index> load(std::istream& is);

 private:
  struct Shard {
    std::unique_ptr<Index> index;
    /// Global row id of each shard-local row (local id -> global id).
    /// Empty in id-native (mutable) mode: the shard answers global ids.
    std::vector<index_t> global_ids;
    index_t live = 0;  ///< rows this shard currently answers for
  };

  void build_shard(const Matrix<float>& X, const std::vector<index_t>& rows,
                   Shard& shard) const;
  void build_shard_with_ids(const Matrix<float>& X,
                            const std::vector<index_t>& positions,
                            const std::vector<index_t>& ids,
                            Shard& shard) const;
  void build_id_native(const Matrix<float>& X,
                       const std::vector<index_t>& ids);
  IndexInfo info_locked() const;
  [[noreturn]] void fail(const std::string& what) const;

  std::string inner_;
  std::string name_;  // "sharded:<inner>" (what info().backend reports)
  std::string metric_;  // the inner backend's built metric (validated there)
  IndexOptions options_;
  /// Unbuilt inner instance kept from the constructor's name validation;
  /// answers capability queries (info()) until the real shards exist.
  std::unique_ptr<Index> probe_;
  Partition partition_ = Partition::kContiguous;
  /// Inner backend supports mutation => the composite runs id-native and
  /// mutation entry points are live.
  bool mutable_mode_ = false;
  /// Inner backend resolved the metric to a payload space => the payload
  /// entry points are live and the dense ones are rejected.
  bool payload_ = false;

  mutable std::shared_mutex mutex_;  // guards everything below
  std::vector<Shard> shards_;  // id-native: all num_shards; legacy: non-empty
  /// id-native mode only: which shard owns each live id (insert routing,
  /// remove dispatch, duplicate-id detection).
  std::unordered_map<index_t, std::uint32_t> id_to_shard_;
  index_t size_ = 0;
  index_t dim_ = 0;
  bool built_ = false;
};

/// Factory behind the "sharded:<inner>" registry names: validates and
/// constructs an unbuilt ShardedIndex. Throws std::invalid_argument for an
/// unknown inner backend or malformed shard parameters.
std::unique_ptr<Index> make_sharded(std::string_view inner,
                                    const IndexOptions& options);

}  // namespace rbc::shard
