#include "shard/sharded_index.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "api/registry.hpp"
#include "parallel/parallel_for.hpp"
#include "rbc/serialize_io.hpp"
#include "shard/merge.hpp"

namespace rbc::shard {

Partition parse_partition(std::string_view name) {
  if (name == "contiguous") return Partition::kContiguous;
  if (name == "strided") return Partition::kStrided;
  throw std::invalid_argument(
      "rbc::ShardedIndex: unknown partition scheme '" + std::string(name) +
      "' (expected \"contiguous\" or \"strided\")");
}

const char* partition_name(Partition p) noexcept {
  return p == Partition::kContiguous ? "contiguous" : "strided";
}

std::vector<std::vector<index_t>> partition_rows(index_t n, index_t num_shards,
                                                 Partition partition) {
  std::vector<std::vector<index_t>> rows(num_shards);
  if (partition == Partition::kContiguous) {
    // Shard s owns [s*n/S, (s+1)*n/S): sizes differ by at most one row and
    // the mapping is a pure function of (n, S), so save/load re-derives it.
    for (index_t s = 0; s < num_shards; ++s) {
      const auto lo = static_cast<index_t>(
          static_cast<std::uint64_t>(s) * n / num_shards);
      const auto hi = static_cast<index_t>(
          static_cast<std::uint64_t>(s + 1) * n / num_shards);
      rows[s].reserve(hi - lo);
      for (index_t i = lo; i < hi; ++i) rows[s].push_back(i);
    }
  } else {
    for (index_t i = 0; i < n; ++i) rows[i % num_shards].push_back(i);
  }
  return rows;
}

ShardedIndex::ShardedIndex(std::string_view inner, const IndexOptions& options)
    : inner_(inner),
      name_("sharded:" + std::string(inner)),
      options_(options),
      partition_(parse_partition(options.partition)) {
  if (options.num_shards < 1 || options.num_shards > kMaxShards)
    throw std::invalid_argument(
        "rbc::ShardedIndex: num_shards must be in [1, " +
        std::to_string(kMaxShards) + "] (got " +
        std::to_string(options.num_shards) + ")");
  // Resolve the inner name eagerly so a typo (or an unsupported metric —
  // the inner backend enforces its own metric set) fails at make_index
  // time, not at build time; the instance is kept to answer capability
  // queries until build() creates the real shards.
  probe_ = make_index(inner_, options_);
  metric_ = probe_->info().metric;
}

void ShardedIndex::build_shard(const Matrix<float>& X,
                               const std::vector<index_t>& rows,
                               Shard& shard) const {
  Matrix<float> part(static_cast<index_t>(rows.size()), X.cols());
  for (index_t local = 0; local < part.rows(); ++local)
    part.copy_row_from(X, rows[local], local);
  shard.index->build(part);
}

void ShardedIndex::build(const Matrix<float>& X) {
  std::vector<std::vector<index_t>> assignment =
      partition_rows(X.rows(), options_.num_shards, partition_);

  std::vector<Shard> shards;
  shards.reserve(assignment.size());
  for (std::vector<index_t>& rows : assignment) {
    if (rows.empty()) continue;  // num_shards > n: excess shards stay unbuilt
    Shard shard;
    shard.index = make_index(inner_, options_);
    shard.global_ids = std::move(rows);
    shards.push_back(std::move(shard));
  }

  // Shard builds are independent; the loop parallelizes across them while
  // each inner build's own OpenMP loops run within the worker it landed on
  // (nested regions serialize, so cores split across shards cleanly).
  parallel_for_dynamic(
      0, static_cast<std::int64_t>(shards.size()),
      [&](index_t s) { build_shard(X, shards[s].global_ids, shards[s]); },
      /*chunk=*/1);

  shards_ = std::move(shards);
  size_ = X.rows();
  dim_ = X.cols();
  built_ = true;
}

SearchResponse ShardedIndex::knn_search(const SearchRequest& request) const {
  validate_knn(request, dim_, size_, built_, name_.c_str(), metric_);
  const Matrix<float>& Q = *request.queries;
  const index_t nq = Q.rows();
  const index_t k = request.k;

  // Fan-out: every shard answers the full query block. Each shard's batch
  // search fills its own per-query top-k heaps (inner backends never share
  // state), so this stage is lock-free; with k clamped to the shard's row
  // count every returned row is fully populated — no padding reaches the
  // merge. Inner searches parallelize over queries internally.
  std::vector<SearchResponse> fanout(shards_.size());
  std::vector<index_t> shard_k(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    SearchRequest sub = request;
    shard_k[s] = std::min<index_t>(
        k, static_cast<index_t>(shards_[s].global_ids.size()));
    sub.k = shard_k[s];
    fanout[s] = shards_[s].index->knn_search(sub);
  }

  // Exact k-way merge under the global (distance, id) order — shared with
  // the multi-process NetRouter (see shard/merge.hpp for the exactness
  // argument). Shard-local ids map to global ids monotonically (both
  // partition schemes assign ascending local -> ascending global), and
  // validate_knn guarantees k <= size, so the merge preconditions hold.
  std::vector<MergeInput> inputs(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s)
    inputs[s] = {&fanout[s].knn, shard_k[s], &shards_[s].global_ids};
  SearchResponse response;
  response.knn = merge_shard_topk(nq, k, inputs);

  if (request.options.collect_stats) {
    for (const SearchResponse& r : fanout) response.stats.merge(r.stats);
    response.stats.queries = nq;  // each query answered once, not once/shard
  }
  return response;
}

RangeResponse ShardedIndex::range_search(const RangeRequest& request) const {
  if (!info().supports_range)
    return Index::range_search(request);  // uniform unsupported error
  validate_range(request, dim_, built_, name_.c_str(), metric_);
  const index_t nq = request.queries->rows();

  std::vector<RangeResponse> fanout(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s)
    fanout[s] = shards_[s].index->range_search(request);

  RangeResponse response;
  response.ids.resize(nq);
  parallel_for_dynamic(0, nq, [&](index_t qi) {
    std::vector<index_t>& hits = response.ids[qi];
    for (std::size_t s = 0; s < shards_.size(); ++s)
      for (index_t local : fanout[s].ids[qi])
        hits.push_back(shards_[s].global_ids[local]);
    std::sort(hits.begin(), hits.end());
  });

  if (request.options.collect_stats) {
    for (const RangeResponse& r : fanout) response.stats.merge(r.stats);
    response.stats.queries = nq;
  }
  return response;
}

void ShardedIndex::save(std::ostream& os) const {
  if (!built_)
    throw std::runtime_error("rbc::ShardedIndex: save on an unbuilt index");
  if (!info().supports_save)
    return Index::save(os);  // uniform unsupported error
  io::write_pod(os, io::kMagicSharded);
  io::write_metric_header(os, metric_);
  io::write_string(os, inner_);
  io::write_string(os, partition_name(partition_));
  io::write_pod(os, options_.num_shards);
  io::write_pod(os, size_);
  io::write_pod(os, dim_);
  io::write_pod(os, static_cast<std::uint64_t>(shards_.size()));
  // Row assignment is a pure function of (size, num_shards, partition) —
  // load() re-derives it — so only the inner indices need persisting.
  for (const Shard& shard : shards_) shard.index->save(os);
}

std::unique_ptr<Index> ShardedIndex::load(std::istream& is) {
  io::expect_pod(is, io::kMagicSharded, "sharded magic");
  // Version 1 predates runtime metrics and implies "l2"; version 2 stores
  // the metric tag, which the inner backend re-validates below.
  const std::string metric = io::read_metric_header(is, "sharded header");
  const std::string inner = io::read_string(is);
  const std::string partition = io::read_string(is);

  IndexOptions options;
  options.metric = metric;
  options.partition = partition;
  io::read_pod(is, options.num_shards);

  // A garbage inner/partition string is a corrupt *file*, not a caller
  // error: surface it as the runtime_error every load path throws.
  std::unique_ptr<ShardedIndex> index;
  try {
    index = std::make_unique<ShardedIndex>(inner, options);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(
        std::string("rbc::ShardedIndex: corrupt stream (") + e.what() + ")");
  }
  io::read_pod(is, index->size_);
  // A corrupt row count must fail here, before the partition tables (the
  // global-id remap alone is 4 bytes/row) are allocated for it. Every
  // shipped inner format stores well over a byte per indexed row, so the
  // remaining stream length is a sound plausibility floor.
  io::require_bytes(is, index->size_, "sharded row count");
  io::read_pod(is, index->dim_);
  std::uint64_t stored = 0;
  io::read_pod(is, stored);

  // Both partition schemes leave exactly min(num_shards, n) shards
  // non-empty; check the stored count (and 8 bytes of stream per shard —
  // every inner format's magic + version — as another floor) before
  // deriving the row sets.
  const std::uint64_t expected =
      std::min<std::uint64_t>(options.num_shards, index->size_);
  if (stored != expected)
    throw std::runtime_error(
        "rbc::ShardedIndex: corrupt stream (stored shard count " +
        std::to_string(stored) + " != derived " + std::to_string(expected) +
        ")");
  io::require_bytes(is, stored * 8, "sharded shard table");

  std::vector<std::vector<index_t>> assignment = partition_rows(
      index->size_, options.num_shards, index->partition_);

  for (std::vector<index_t>& rows : assignment) {
    if (rows.empty()) continue;
    Shard shard;
    shard.index = load_index(is);  // magic-dispatched to the inner backend
    if (shard.index->info().backend != inner)
      throw std::runtime_error(
          "rbc::ShardedIndex: corrupt stream (shard backend '" +
          shard.index->info().backend + "' != declared inner '" + inner +
          "')");
    if (shard.index->info().metric != metric)
      throw std::runtime_error(
          "rbc::ShardedIndex: corrupt stream (shard metric '" +
          shard.index->info().metric + "' != declared metric '" + metric +
          "')");
    if (shard.index->info().size != rows.size())
      throw std::runtime_error(
          "rbc::ShardedIndex: corrupt stream (shard size mismatch)");
    shard.global_ids = std::move(rows);
    index->shards_.push_back(std::move(shard));
  }
  index->built_ = true;
  return index;
}

IndexInfo ShardedIndex::info() const {
  // Capability flags come from the constructor's probe instance until the
  // real shards exist.
  IndexInfo inner_info = shards_.empty() ? probe_->info()
                                         : shards_.front().index->info();
  IndexInfo info;
  info.backend = name_;
  info.metric = inner_info.metric;
  info.supported_metrics = inner_info.supported_metrics;
  info.size = size_;
  info.dim = dim_;
  info.supports_range = inner_info.supports_range;
  info.supports_save = inner_info.supports_save;
  info.kernel_isa = inner_info.kernel_isa;
  info.shards = static_cast<index_t>(shards_.size());
  info.exact = true;
  info.memory_bytes = 0;
  for (const Shard& shard : shards_) {
    const IndexInfo si = shard.index->info();
    info.exact = info.exact && si.exact;
    info.memory_bytes +=
        si.memory_bytes + shard.global_ids.size() * sizeof(index_t);
  }
  if (shards_.empty()) info.exact = inner_info.exact;
  return info;
}

std::unique_ptr<Index> make_sharded(std::string_view inner,
                                    const IndexOptions& options) {
  return std::make_unique<ShardedIndex>(inner, options);
}

}  // namespace rbc::shard
