#include "shard/sharded_index.hpp"

#include <algorithm>
#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "api/registry.hpp"
#include "metricspace/dataset.hpp"
#include "metricspace/space.hpp"
#include "parallel/parallel_for.hpp"
#include "rbc/serialize_io.hpp"
#include "shard/merge.hpp"

namespace rbc::shard {

Partition parse_partition(std::string_view name) {
  if (name == "contiguous") return Partition::kContiguous;
  if (name == "strided") return Partition::kStrided;
  throw std::invalid_argument(
      "rbc::ShardedIndex: unknown partition scheme '" + std::string(name) +
      "' (expected \"contiguous\" or \"strided\")");
}

const char* partition_name(Partition p) noexcept {
  return p == Partition::kContiguous ? "contiguous" : "strided";
}

std::vector<std::vector<index_t>> partition_rows(index_t n, index_t num_shards,
                                                 Partition partition) {
  std::vector<std::vector<index_t>> rows(num_shards);
  if (partition == Partition::kContiguous) {
    // Shard s owns [s*n/S, (s+1)*n/S): sizes differ by at most one row and
    // the mapping is a pure function of (n, S), so save/load re-derives it.
    for (index_t s = 0; s < num_shards; ++s) {
      const auto lo = static_cast<index_t>(
          static_cast<std::uint64_t>(s) * n / num_shards);
      const auto hi = static_cast<index_t>(
          static_cast<std::uint64_t>(s + 1) * n / num_shards);
      rows[s].reserve(hi - lo);
      for (index_t i = lo; i < hi; ++i) rows[s].push_back(i);
    }
  } else {
    for (index_t i = 0; i < n; ++i) rows[i % num_shards].push_back(i);
  }
  return rows;
}

ShardedIndex::ShardedIndex(std::string_view inner, const IndexOptions& options)
    : inner_(inner),
      name_("sharded:" + std::string(inner)),
      options_(options),
      partition_(parse_partition(options.partition)) {
  if (options.num_shards < 1 || options.num_shards > kMaxShards)
    throw std::invalid_argument(
        "rbc::ShardedIndex: num_shards must be in [1, " +
        std::to_string(kMaxShards) + "] (got " +
        std::to_string(options.num_shards) + ")");
  // Resolve the inner name eagerly so a typo (or an unsupported metric —
  // the inner backend enforces its own metric set) fails at make_index
  // time, not at build time; the instance is kept to answer capability
  // queries until build() creates the real shards.
  probe_ = make_index(inner_, options_);
  metric_ = probe_->info().metric;
  mutable_mode_ = probe_->info().supports_mutation;
  payload_ = probe_->info().payload;
}

void ShardedIndex::fail(const std::string& what) const {
  throw std::invalid_argument("rbc::Index[" + name_ + "]: " + what);
}

void ShardedIndex::build_shard(const Matrix<float>& X,
                               const std::vector<index_t>& rows,
                               Shard& shard) const {
  Matrix<float> part(static_cast<index_t>(rows.size()), X.cols());
  for (index_t local = 0; local < part.rows(); ++local)
    part.copy_row_from(X, rows[local], local);
  shard.index->build(part);
}

void ShardedIndex::build_shard_with_ids(const Matrix<float>& X,
                                        const std::vector<index_t>& positions,
                                        const std::vector<index_t>& ids,
                                        Shard& shard) const {
  Matrix<float> part(static_cast<index_t>(positions.size()), X.cols());
  for (index_t local = 0; local < part.rows(); ++local)
    part.copy_row_from(X, positions[local], local);
  shard.index->build_with_ids(part, ids);
}

void ShardedIndex::build_id_native(const Matrix<float>& X,
                                   const std::vector<index_t>& ids) {
  // Positions are partitioned exactly as the legacy path partitions rows;
  // each shard is built id-native over its positional slice of `ids`. All
  // num_shards shards exist — an initially empty shard (num_shards > n) is
  // built over zero rows so it can still absorb inserts later.
  const std::vector<std::vector<index_t>> assignment =
      partition_rows(X.rows(), options_.num_shards, partition_);

  std::vector<Shard> shards(options_.num_shards);
  std::vector<std::vector<index_t>> shard_ids(options_.num_shards);
  for (index_t s = 0; s < options_.num_shards; ++s) {
    shards[s].index = make_index(inner_, options_);
    shard_ids[s].reserve(assignment[s].size());
    for (index_t pos : assignment[s]) shard_ids[s].push_back(ids[pos]);
    shards[s].live = static_cast<index_t>(assignment[s].size());
  }

  parallel_for_dynamic(
      0, static_cast<std::int64_t>(shards.size()),
      [&](index_t s) {
        build_shard_with_ids(X, assignment[s], shard_ids[s], shards[s]);
      },
      /*chunk=*/1);

  std::unordered_map<index_t, std::uint32_t> owners;
  owners.reserve(ids.size());
  for (index_t s = 0; s < options_.num_shards; ++s)
    for (index_t id : shard_ids[s]) owners.emplace(id, s);

  std::unique_lock lock(mutex_);
  shards_ = std::move(shards);
  id_to_shard_ = std::move(owners);
  size_ = X.rows();
  dim_ = X.cols();
  built_ = true;
}

void ShardedIndex::build(const Matrix<float>& X) {
  if (payload_)
    fail("dense build() on payload metric '" + metric_ +
         "' (use build_payload)");
  if (mutable_mode_) {
    // build(X) is build_with_ids with the identity labelling.
    std::vector<index_t> ids(X.rows());
    for (index_t i = 0; i < X.rows(); ++i) ids[i] = i;
    build_id_native(X, ids);
    return;
  }

  std::vector<std::vector<index_t>> assignment =
      partition_rows(X.rows(), options_.num_shards, partition_);

  std::vector<Shard> shards;
  shards.reserve(assignment.size());
  for (std::vector<index_t>& rows : assignment) {
    if (rows.empty()) continue;  // num_shards > n: excess shards stay unbuilt
    Shard shard;
    shard.index = make_index(inner_, options_);
    shard.global_ids = std::move(rows);
    shard.live = static_cast<index_t>(shard.global_ids.size());
    shards.push_back(std::move(shard));
  }

  // Shard builds are independent; the loop parallelizes across them while
  // each inner build's own OpenMP loops run within the worker it landed on
  // (nested regions serialize, so cores split across shards cleanly).
  parallel_for_dynamic(
      0, static_cast<std::int64_t>(shards.size()),
      [&](index_t s) { build_shard(X, shards[s].global_ids, shards[s]); },
      /*chunk=*/1);

  std::unique_lock lock(mutex_);
  shards_ = std::move(shards);
  id_to_shard_.clear();
  size_ = X.rows();
  dim_ = X.cols();
  built_ = true;
}

void ShardedIndex::build_with_ids(const Matrix<float>& X,
                                  std::span<const index_t> ids) {
  if (!mutable_mode_) return Index::build_with_ids(X, ids);  // uniform error
  if (ids.size() != static_cast<std::size_t>(X.rows()))
    fail("build_with_ids id count " + std::to_string(ids.size()) +
         " != row count " + std::to_string(X.rows()));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == kInvalidIndex)
      fail("build_with_ids ids contain the reserved invalid id");
    if (i > 0 && ids[i] <= ids[i - 1])
      fail("build_with_ids ids must be strictly ascending");
  }
  build_id_native(X, std::vector<index_t>(ids.begin(), ids.end()));
}

void ShardedIndex::build_payload(const metricspace::DatasetHandle& data) {
  if (!payload_) return Index::build_payload(data);  // uniform unsupported
  if (data == nullptr) fail("dataset handle is null");
  // Kind-check before the fan-out: the per-shard builds below run inside an
  // OpenMP region, where an inner backend's mismatch exception would
  // terminate the process instead of reaching the caller.
  if (const metricspace::SpaceEntry* entry = metricspace::find_space(metric_);
      entry != nullptr && data->kind() != entry->dataset_kind)
    fail("metric '" + metric_ + "' requires a '" + entry->dataset_kind +
         "' dataset, got '" + std::string(data->kind()) + "'");

  // The legacy (immutable) layout, over dataset subsets instead of row
  // copies: shard s's element j is global element global_ids[j], and
  // subset() preserves ascending order, so the merge remap below is the
  // same monotone map the dense path relies on.
  std::vector<std::vector<index_t>> assignment =
      partition_rows(data->size(), options_.num_shards, partition_);

  std::vector<Shard> shards;
  shards.reserve(assignment.size());
  for (std::vector<index_t>& rows : assignment) {
    if (rows.empty()) continue;  // num_shards > n: excess shards stay unbuilt
    Shard shard;
    shard.index = make_index(inner_, options_);
    shard.global_ids = std::move(rows);
    shard.live = static_cast<index_t>(shard.global_ids.size());
    shards.push_back(std::move(shard));
  }

  parallel_for_dynamic(
      0, static_cast<std::int64_t>(shards.size()),
      [&](index_t s) {
        shards[s].index->build_payload(data->subset(shards[s].global_ids));
      },
      /*chunk=*/1);

  std::unique_lock lock(mutex_);
  shards_ = std::move(shards);
  id_to_shard_.clear();
  size_ = data->size();
  dim_ = 0;
  built_ = true;
}

SearchResponse ShardedIndex::knn_search_payload(
    const PayloadSearchRequest& request) const {
  if (!payload_) return Index::knn_search_payload(request);  // unsupported
  std::shared_lock lock(mutex_);
  validate_knn_payload(request, size_, built_, name_.c_str(), metric_);
  const index_t nq = static_cast<index_t>(request.queries->size());
  const index_t k = request.k;

  // Fan-out / exact k-way merge, exactly as the dense path below: k is
  // clamped to each shard's live count so every returned row is fully
  // populated, and shard-local ids remap to global ids monotonically.
  std::vector<SearchResponse> fanout(shards_.size());
  std::vector<index_t> shard_k(shards_.size(), 0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].live == 0) continue;
    PayloadSearchRequest sub = request;
    shard_k[s] = std::min<index_t>(k, shards_[s].live);
    sub.k = shard_k[s];
    fanout[s] = shards_[s].index->knn_search_payload(sub);
  }

  std::vector<MergeInput> inputs;
  inputs.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shard_k[s] == 0) continue;
    inputs.push_back({&fanout[s].knn, shard_k[s], &shards_[s].global_ids});
  }
  SearchResponse response;
  response.knn = merge_shard_topk(nq, k, inputs);

  if (request.options.collect_stats) {
    for (const SearchResponse& r : fanout) response.stats.merge(r.stats);
    response.stats.queries = nq;  // each query answered once, not once/shard
  }
  return response;
}

SearchResponse ShardedIndex::knn_search(const SearchRequest& request) const {
  if (payload_)
    fail("dense knn_search() on payload metric '" + metric_ +
         "' (use knn_search_payload)");
  std::shared_lock lock(mutex_);
  validate_knn(request, dim_, size_, built_, name_.c_str(), metric_);
  const Matrix<float>& Q = *request.queries;
  const index_t nq = Q.rows();
  const index_t k = request.k;

  // Fan-out: every live shard answers the full query block. Each shard's
  // batch search fills its own per-query top-k heaps (inner backends never
  // share state), so this stage is lock-free; with k clamped to the shard's
  // live row count every returned row is fully populated — no padding
  // reaches the merge. Shards with zero live rows (drained by remove(), or
  // excess shards awaiting inserts) are skipped: they have nothing to
  // contribute and k >= 1 would fail their validation.
  std::vector<SearchResponse> fanout(shards_.size());
  std::vector<index_t> shard_k(shards_.size(), 0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].live == 0) continue;
    SearchRequest sub = request;
    shard_k[s] = std::min<index_t>(k, shards_[s].live);
    sub.k = shard_k[s];
    fanout[s] = shards_[s].index->knn_search(sub);
  }

  // Exact k-way merge under the global (distance, id) order — shared with
  // the multi-process NetRouter (see shard/merge.hpp for the exactness
  // argument). In id-native (mutable) mode the shards already answer in
  // global ids (identity remap); otherwise shard-local ids map to global
  // ids monotonically (both partition schemes assign ascending local ->
  // ascending global). validate_knn guarantees k <= live size, so the
  // merge preconditions hold either way.
  std::vector<MergeInput> inputs;
  inputs.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shard_k[s] == 0) continue;
    inputs.push_back({&fanout[s].knn, shard_k[s],
                      mutable_mode_ ? nullptr : &shards_[s].global_ids});
  }
  SearchResponse response;
  response.knn = merge_shard_topk(nq, k, inputs);

  if (request.options.collect_stats) {
    for (const SearchResponse& r : fanout) response.stats.merge(r.stats);
    response.stats.queries = nq;  // each query answered once, not once/shard
  }
  return response;
}

RangeResponse ShardedIndex::range_search(const RangeRequest& request) const {
  // Capability comes from the probe (not info()): this thread may not
  // re-enter the shared lock it is about to take.
  if (!probe_->info().supports_range)
    return Index::range_search(request);  // uniform unsupported error
  std::shared_lock lock(mutex_);
  validate_range(request, dim_, built_, name_.c_str(), metric_);
  const index_t nq = request.queries->rows();

  std::vector<RangeResponse> fanout(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].live == 0) continue;
    fanout[s] = shards_[s].index->range_search(request);
  }

  RangeResponse response;
  response.ids.resize(nq);
  parallel_for_dynamic(0, nq, [&](index_t qi) {
    std::vector<index_t>& hits = response.ids[qi];
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].live == 0) continue;
      for (index_t local : fanout[s].ids[qi])
        hits.push_back(mutable_mode_ ? local : shards_[s].global_ids[local]);
    }
    std::sort(hits.begin(), hits.end());
  });

  if (request.options.collect_stats) {
    for (const RangeResponse& r : fanout) response.stats.merge(r.stats);
    response.stats.queries = nq;
  }
  return response;
}

void ShardedIndex::insert(const Matrix<float>& rows,
                          std::span<const index_t> ids) {
  if (!mutable_mode_) return Index::insert(rows, ids);  // uniform error
  std::unique_lock lock(mutex_);
  if (!built_) fail("insert on an unbuilt index (call build first)");
  if (rows.cols() != dim_)
    fail("insert row dimension " + std::to_string(rows.cols()) +
         " != index dimension " + std::to_string(dim_));
  if (ids.size() != static_cast<std::size_t>(rows.rows()))
    fail("insert id count " + std::to_string(ids.size()) +
         " != row count " + std::to_string(rows.rows()));
  if (ids.empty()) return;

  // Validate the whole batch before touching any shard, so a rejected
  // insert leaves the composite unchanged. Cross-shard liveness lives in
  // the routing map; in-batch duplicates are caught on a sorted copy.
  std::vector<index_t> sorted(ids.begin(), ids.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] == kInvalidIndex)
      fail("insert ids contain the reserved invalid id");
    if (i > 0 && sorted[i] == sorted[i - 1])
      fail("insert ids contain duplicate id " + std::to_string(sorted[i]));
    if (id_to_shard_.count(sorted[i]) != 0)
      fail("insert id " + std::to_string(sorted[i]) +
           " is already live (remove it first)");
  }

  // Route the whole batch to the least-full shard (ties: lowest index) —
  // one inner insert, and sustained insertion keeps the shards balanced.
  std::uint32_t target = 0;
  for (std::uint32_t s = 1; s < shards_.size(); ++s)
    if (shards_[s].live < shards_[target].live) target = s;
  shards_[target].index->insert(rows, ids);

  for (index_t id : ids) id_to_shard_.emplace(id, target);
  shards_[target].live += static_cast<index_t>(ids.size());
  size_ += static_cast<index_t>(ids.size());
}

index_t ShardedIndex::remove(std::span<const index_t> ids) {
  if (!mutable_mode_) return Index::remove(ids);  // uniform error
  std::unique_lock lock(mutex_);
  if (!built_) fail("remove on an unbuilt index (call build first)");

  // Dedupe the request (removing an id twice in one call removes it once),
  // then dispatch each live id to the shard that owns it.
  std::vector<index_t> sorted(ids.begin(), ids.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<std::vector<index_t>> groups(shards_.size());
  for (index_t id : sorted) {
    const auto it = id_to_shard_.find(id);
    if (it == id_to_shard_.end()) continue;  // not live: ignored, not counted
    groups[it->second].push_back(id);
  }

  index_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (groups[s].empty()) continue;
    const index_t removed = shards_[s].index->remove(groups[s]);
    for (index_t id : groups[s]) id_to_shard_.erase(id);
    shards_[s].live -= removed;
    total += removed;
  }
  size_ -= total;
  return total;
}

void ShardedIndex::compact() {
  if (!mutable_mode_) return Index::compact();  // uniform error
  // Shared lock: compaction changes no live set and no routing, only each
  // shard's internal layout — searches keep running alongside it.
  std::shared_lock lock(mutex_);
  if (!built_) fail("compact on an unbuilt index (call build first)");
  for (const Shard& shard : shards_) shard.index->compact();
}

std::vector<index_t> ShardedIndex::live_ids() const {
  if (!mutable_mode_) return Index::live_ids();  // uniform error
  std::shared_lock lock(mutex_);
  std::vector<index_t> ids;
  ids.reserve(size_);
  for (const Shard& shard : shards_) {
    const std::vector<index_t> shard_ids = shard.index->live_ids();
    ids.insert(ids.end(), shard_ids.begin(), shard_ids.end());
  }
  std::sort(ids.begin(), ids.end());  // shard id sets are disjoint
  return ids;
}

void ShardedIndex::save(std::ostream& os) const {
  std::shared_lock lock(mutex_);
  if (!built_)
    throw std::runtime_error("rbc::ShardedIndex: save on an unbuilt index");
  if (!probe_->info().supports_save)
    return Index::save(os);  // uniform unsupported error
  io::write_pod(os, io::kMagicSharded);
  io::write_metric_header(os, metric_);
  io::write_string(os, inner_);
  io::write_string(os, partition_name(partition_));
  io::write_pod(os, options_.num_shards);
  io::write_pod(os, size_);
  io::write_pod(os, dim_);
  io::write_pod(os, static_cast<std::uint64_t>(shards_.size()));
  // Legacy (immutable) shards store no ids — the row assignment is a pure
  // function of (size, num_shards, partition) that load() re-derives.
  // Id-native shards persist their own id sets inside the nested mutable
  // streams, so arbitrary post-mutation assignments round-trip.
  for (const Shard& shard : shards_) shard.index->save(os);
}

std::unique_ptr<Index> ShardedIndex::load(std::istream& is) {
  io::expect_pod(is, io::kMagicSharded, "sharded magic");
  // Version 1 predates runtime metrics and implies "l2"; version 2 stores
  // the metric tag, which the inner backend re-validates below.
  const std::string metric = io::read_metric_header(is, "sharded header");
  const std::string inner = io::read_string(is);
  const std::string partition = io::read_string(is);

  IndexOptions options;
  options.metric = metric;
  options.partition = partition;
  io::read_pod(is, options.num_shards);

  // A garbage inner/partition string is a corrupt *file*, not a caller
  // error: surface it as the runtime_error every load path throws.
  std::unique_ptr<ShardedIndex> index;
  try {
    index = std::make_unique<ShardedIndex>(inner, options);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(
        std::string("rbc::ShardedIndex: corrupt stream (") + e.what() + ")");
  }
  io::read_pod(is, index->size_);
  // A corrupt row count must fail here, before the partition tables (the
  // global-id remap alone is 4 bytes/row) are allocated for it. Every
  // shipped inner format stores well over a byte per indexed row, so the
  // remaining stream length is a sound plausibility floor.
  io::require_bytes(is, index->size_, "sharded row count");
  io::read_pod(is, index->dim_);
  std::uint64_t stored = 0;
  io::read_pod(is, stored);

  // Legacy (immutable) saves persist exactly the min(num_shards, n)
  // non-empty shards; id-native (mutable) saves persist all num_shards,
  // empty ones included. Anything else is corrupt. The 8 bytes of stream
  // per shard — every inner format's magic + version — is another floor.
  const std::uint64_t expected_legacy =
      std::min<std::uint64_t>(options.num_shards, index->size_);
  if (stored != expected_legacy && stored != options.num_shards)
    throw std::runtime_error(
        "rbc::ShardedIndex: corrupt stream (stored shard count " +
        std::to_string(stored) + " matches neither the legacy layout (" +
        std::to_string(expected_legacy) + ") nor num_shards (" +
        std::to_string(options.num_shards) + "))");
  io::require_bytes(is, stored * 8, "sharded shard table");

  std::vector<Shard> shards(stored);
  std::uint64_t mutable_count = 0;
  for (Shard& shard : shards) {
    shard.index = load_index(is);  // magic-dispatched to the inner backend
    if (shard.index->info().backend != inner)
      throw std::runtime_error(
          "rbc::ShardedIndex: corrupt stream (shard backend '" +
          shard.index->info().backend + "' != declared inner '" + inner +
          "')");
    if (shard.index->info().metric != metric)
      throw std::runtime_error(
          "rbc::ShardedIndex: corrupt stream (shard metric '" +
          shard.index->info().metric + "' != declared metric '" + metric +
          "')");
    if (shard.index->info().supports_mutation) ++mutable_count;
  }

  if (mutable_count != 0 && mutable_count != stored)
    throw std::runtime_error(
        "rbc::ShardedIndex: corrupt stream (mixed mutable and immutable "
        "shard streams)");

  if (mutable_count == stored && stored != 0) {
    // Id-native shards carry their own id sets: rebuild the routing map
    // from them instead of deriving a positional assignment (which a
    // mutated index no longer follows).
    if (!index->mutable_mode_)
      throw std::runtime_error(
          "rbc::ShardedIndex: corrupt stream (mutable shard streams under "
          "an immutable inner backend)");
    for (std::uint32_t s = 0; s < shards.size(); ++s) {
      const std::vector<index_t> ids = shards[s].index->live_ids();
      if (shards[s].index->info().dim != index->dim_)
        throw std::runtime_error(
            "rbc::ShardedIndex: corrupt stream (shard dimension mismatch)");
      shards[s].live = static_cast<index_t>(ids.size());
      for (index_t id : ids)
        if (!index->id_to_shard_.emplace(id, s).second)
          throw std::runtime_error(
              "rbc::ShardedIndex: corrupt stream (id " + std::to_string(id) +
              " live in more than one shard)");
    }
    if (index->id_to_shard_.size() != index->size_)
      throw std::runtime_error(
          "rbc::ShardedIndex: corrupt stream (live id count " +
          std::to_string(index->id_to_shard_.size()) +
          " != stored row count " + std::to_string(index->size_) + ")");
  } else {
    // Raw inner streams (pre-mutability files, or a non-mutable inner):
    // re-derive the positional assignment and keep the remap tables. The
    // restored instance answers read-only even when the inner backend has
    // since grown mutation support — it has no id-native shards to route to.
    if (stored != expected_legacy)
      throw std::runtime_error(
          "rbc::ShardedIndex: corrupt stream (raw shard streams but stored "
          "count " + std::to_string(stored) + " != legacy layout " +
          std::to_string(expected_legacy) + ")");
    index->mutable_mode_ = false;
    std::vector<std::vector<index_t>> assignment = partition_rows(
        index->size_, options.num_shards, index->partition_);
    std::size_t next = 0;
    for (std::vector<index_t>& rows : assignment) {
      if (rows.empty()) continue;
      Shard& shard = shards[next++];
      if (shard.index->info().size != rows.size())
        throw std::runtime_error(
            "rbc::ShardedIndex: corrupt stream (shard size mismatch)");
      shard.live = static_cast<index_t>(rows.size());
      shard.global_ids = std::move(rows);
    }
  }

  index->shards_ = std::move(shards);
  index->built_ = true;
  return index;
}

IndexInfo ShardedIndex::info() const {
  std::shared_lock lock(mutex_);
  return info_locked();
}

IndexInfo ShardedIndex::info_locked() const {
  // Capability flags come from the constructor's probe instance until the
  // real shards exist.
  IndexInfo inner_info = shards_.empty() ? probe_->info()
                                         : shards_.front().index->info();
  IndexInfo info;
  info.backend = name_;
  info.metric = inner_info.metric;
  info.supported_metrics = inner_info.supported_metrics;
  info.storage = inner_info.storage;
  info.supported_storage = inner_info.supported_storage;
  info.size = size_;
  info.dim = dim_;
  info.supports_range = inner_info.supports_range;
  info.supports_save = inner_info.supports_save;
  info.supports_mutation = mutable_mode_;
  info.kernel_isa = inner_info.kernel_isa;
  info.exact = true;
  info.memory_bytes = 0;
  // Shard count reports the shards actually answering queries: in id-native
  // mode the composite holds all num_shards slots but empty ones are
  // search-invisible, so only live > 0 shards count — matching the legacy
  // min(num_shards, n) convention on a freshly built index.
  index_t answering = 0;
  for (const Shard& shard : shards_) {
    if (shard.live > 0) ++answering;
    const IndexInfo si = shard.index->info();
    info.exact = info.exact && si.exact;
    info.delta_rows += si.delta_rows;
    info.tombstones += si.tombstones;
    info.memory_bytes +=
        si.memory_bytes + shard.global_ids.size() * sizeof(index_t);
  }
  info.shards = answering;
  info.memory_bytes +=
      id_to_shard_.size() * sizeof(std::pair<index_t, std::uint32_t>);
  if (shards_.empty()) info.exact = inner_info.exact;
  // Payload composites mirror the inner payload capability surface.
  info.payload = inner_info.payload;
  info.cost_unit = inner_info.cost_unit;
  info.supported_spaces = inner_info.supported_spaces;
  return info;
}

std::unique_ptr<Index> make_sharded(std::string_view inner,
                                    const IndexOptions& options) {
  return std::make_unique<ShardedIndex>(inner, options);
}

}  // namespace rbc::shard
