// Metric registry of the unified index API.
//
// The paper frames RBC as a structure for *metric* similarity search — the
// brute-force primitive and both RBC variants are written against an
// abstract rho(x, y) — and the concrete index templates have always been
// metric-generic. This registry makes the metric a first-class, runtime
// property of the type-erased layer: IndexOptions::metric names one of the
// rows below, every backend declares the subset it supports
// (IndexInfo::supported_metrics), and unsupported pairs are rejected at
// make_index() time with one uniform std::invalid_argument shape.
//
// Shipped metrics:
//
//   "l2"      Euclidean distance. Every backend; the metric of all of the
//             paper's experiments.
//   "l1"      Manhattan distance. A true metric, so tree/RBC pruning stays
//             valid; runs through the dispatched L1 SIMD kernels.
//   "cosine"  Cosine distance (1 - cos). Implemented as **L2 over
//             unit-normalized rows**: the database is normalized once at
//             build, queries once per batch, and every triangle-inequality
//             prune (RBC rules, ball/cover/kd trees) operates on the true
//             Euclidean metric of the normalized space — exactness is
//             inherited, not re-proved. Reported distances are converted
//             back (d_cos = ||qn - xn||^2 / 2), a monotone map, so ordering
//             and tie-breaking match the normalized-L2 scan bit for bit.
//   "ip"      Inner-product similarity. Reported "distances" are *negated*
//             dot products, so the library-wide ascending (distance, id)
//             order ranks the largest inner product first and the sharded
//             merge / service layers work unchanged. Not a metric (no
//             triangle inequality, values can be negative): brute-force
//             scans only ("bruteforce" and "sharded:bruteforce").
#pragma once

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"

namespace rbc::metric {

/// The runtime-selectable metrics of the unified API.
enum class Kind : int { kL2 = 0, kL1 = 1, kCosine = 2, kIp = 3 };

/// One registry row: the wire/option name plus the capability flags callers
/// branch on.
struct Entry {
  Kind kind;
  const char* name;
  /// Reported distances obey the triangle inequality (what tree and RBC
  /// backends require of a metric they index directly).
  bool true_metric;
  const char* summary;
};

/// All shipped metrics, in canonical order (the order capability lists and
/// error messages print in).
std::span<const Entry> registry() noexcept;

/// Canonical name of a kind ("l2", "l1", "cosine", "ip").
const char* name(Kind kind) noexcept;

/// Resolves a metric name; returns false (leaving `out` untouched) for a
/// name not in the registry.
bool lookup(std::string_view name, Kind& out) noexcept;

/// Parses and validates a backend's requested metric against the set it
/// supports. Throws the uniform error every backend shares —
///   rbc::Index[<backend>]: unsupported metric '<m>' (supported: l2, ...)
/// as std::invalid_argument — for unknown names and for known-but-
/// unsupported (backend, metric) pairs alike.
Kind require(const char* backend, std::string_view requested,
             std::span<const Kind> supported);
inline Kind require(const char* backend, std::string_view requested,
                    std::initializer_list<Kind> supported) {
  return require(backend, requested,
                 std::span<const Kind>(supported.begin(), supported.size()));
}

/// The names of `supported`, in the given order — what backends put in
/// IndexInfo::supported_metrics.
std::vector<std::string> names(std::span<const Kind> supported);
inline std::vector<std::string> names(std::initializer_list<Kind> supported) {
  return names(std::span<const Kind>(supported.begin(), supported.size()));
}

// ------------------------------------- cosine-as-normalized-L2 transform ---

/// Scales a row to unit L2 norm in place. A zero row is left as-is (cosine
/// against it is defined as distance 1 by convention; the normalized-L2
/// path then reports ||qn - 0||^2 / 2 = 1/2 for unit qn — close enough
/// that callers needing the convention exactly should drop zero rows).
/// Shared by every backend's build/query transform AND the test reference,
/// so both sides round identically and exactness checks can be bit-strict.
void normalize(float* row, index_t d) noexcept;

/// normalize() applied to every row.
void normalize_rows(Matrix<float>& m) noexcept;

/// A normalized copy (the build/query transform of the cosine metric).
Matrix<float> normalized_clone(const Matrix<float>& m);

/// Maps a Euclidean distance in the normalized space to the reported cosine
/// distance: ||qn - xn||^2 = 2 (1 - cos), so d_cos = d^2 / 2. Monotone, so
/// it is applied after search without disturbing order or ties.
inline float cosine_from_l2(float l2) noexcept {
  return std::isinf(l2) ? l2 : 0.5f * l2 * l2;
}

/// cosine_from_l2 over a result-distance matrix (in place).
void cosine_distances_from_l2(Matrix<dist_t>& dists) noexcept;

/// Inverse map for range queries: a cosine radius r corresponds to the
/// normalized-space Euclidean radius sqrt(2 r).
inline float l2_radius_from_cosine(float r) noexcept {
  return std::sqrt(std::max(r, 0.0f) * 2.0f);
}

/// Scalar reference distance exactly as a backend built with `kind` reports
/// it (cosine normalizes copies with normalize() and converts; ip negates
/// the dot product). The ground truth of the conformance metric matrix.
float reference_distance(Kind kind, const float* a, const float* b,
                         index_t d);

/// Per-request view of the cosine query transform, shared by every backend
/// adapter so the normalize / convert / radius-map steps cannot drift
/// apart. For non-cosine metrics it is a transparent pass-through.
///
///   metric::QueryTransform q(kind_, *request.queries);
///   auto knn = inner_search(q.queries(), ...);   // normalized when cosine
///   q.finish(knn.dists);                         // d -> d^2/2 when cosine
class QueryTransform {
 public:
  QueryTransform(Kind kind, const Matrix<float>& queries)
      : cosine_(kind == Kind::kCosine) {
    if (cosine_) normalized_ = normalized_clone(queries);
    queries_ = cosine_ ? &normalized_ : &queries;
  }

  /// The matrix to hand the (Euclidean-space, when cosine) inner search.
  const Matrix<float>& queries() const { return *queries_; }

  /// Maps a request radius into the inner search's space.
  float radius(float r) const {
    return cosine_ ? l2_radius_from_cosine(r) : r;
  }

  /// Converts inner-search distances back into reported ones (in place).
  void finish(Matrix<dist_t>& dists) const {
    if (cosine_) cosine_distances_from_l2(dists);
  }

 private:
  bool cosine_;
  Matrix<float> normalized_;       // engaged only for cosine
  const Matrix<float>* queries_;   // &normalized_ or the caller's matrix
};

}  // namespace rbc::metric
