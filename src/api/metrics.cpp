#include "api/metrics.hpp"

#include <stdexcept>

#include "distance/kernels.hpp"
#include "distance/metrics.hpp"

namespace rbc::metric {

namespace {

constexpr Entry kRegistry[] = {
    {Kind::kL2, "l2", true, "Euclidean distance (paper default)"},
    {Kind::kL1, "l1", true, "Manhattan distance (dispatched L1 kernels)"},
    // true_metric = false: the *reported* distance 1 - cos violates the
    // triangle inequality. Trees/RBC serve cosine anyway because they
    // index the normalized-L2 space, not the reported values — which is
    // why per-backend support is declared explicitly rather than derived
    // from this flag.
    {Kind::kCosine, "cosine", false,
     "cosine distance as L2 over unit-normalized rows"},
    {Kind::kIp, "ip", false,
     "inner product, reported as negated dot (brute force only)"},
};

}  // namespace

std::span<const Entry> registry() noexcept { return kRegistry; }

const char* name(Kind kind) noexcept {
  for (const Entry& e : kRegistry)
    if (e.kind == kind) return e.name;
  return "unknown";
}

bool lookup(std::string_view name, Kind& out) noexcept {
  for (const Entry& e : kRegistry)
    if (name == e.name) {
      out = e.kind;
      return true;
    }
  return false;
}

Kind require(const char* backend, std::string_view requested,
             std::span<const Kind> supported) {
  Kind kind{};
  if (lookup(requested, kind))
    for (const Kind s : supported)
      if (s == kind) return kind;
  std::string list;
  for (const Kind s : supported) {
    if (!list.empty()) list += ", ";
    list += name(s);
  }
  throw std::invalid_argument(std::string("rbc::Index[") + backend +
                              "]: unsupported metric '" +
                              std::string(requested) +
                              "' (supported: " + list + ")");
}

std::vector<std::string> names(std::span<const Kind> supported) {
  std::vector<std::string> out;
  out.reserve(supported.size());
  for (const Kind s : supported) out.emplace_back(name(s));
  return out;
}

void normalize(float* row, index_t d) noexcept {
  const float sq = kernels::dot(row, row, d);
  if (sq <= 0.0f) return;  // zero row: left unscaled by convention
  const float inv = 1.0f / std::sqrt(sq);
  for (index_t i = 0; i < d; ++i) row[i] *= inv;
}

void normalize_rows(Matrix<float>& m) noexcept {
  for (index_t i = 0; i < m.rows(); ++i) normalize(m.row(i), m.cols());
}

Matrix<float> normalized_clone(const Matrix<float>& m) {
  Matrix<float> out = m.clone();
  normalize_rows(out);
  return out;
}

void cosine_distances_from_l2(Matrix<dist_t>& dists) noexcept {
  for (index_t i = 0; i < dists.rows(); ++i) {
    dist_t* row = dists.row(i);
    for (index_t j = 0; j < dists.cols(); ++j) row[j] = cosine_from_l2(row[j]);
  }
}

float reference_distance(Kind kind, const float* a, const float* b,
                         index_t d) {
  switch (kind) {
    case Kind::kL2:
      return Euclidean{}(a, b, d);
    case Kind::kL1:
      return L1{}(a, b, d);
    case Kind::kCosine: {
      // Mirror the backends exactly: normalize copies with the shared
      // normalize(), measure Euclidean, convert — same functions, same bits.
      std::vector<float> an(a, a + d), bn(b, b + d);
      normalize(an.data(), d);
      normalize(bn.data(), d);
      return cosine_from_l2(Euclidean{}(an.data(), bn.data(), d));
    }
    case Kind::kIp:
      return InnerProduct{}(a, b, d);
  }
  return kInfDist;
}

}  // namespace rbc::metric
