// The unified index interface: one abstract contract that every search
// backend implements (paper framing: the brute-force primitive BF composes
// into many search strategies; this is the seam those strategies plug into).
//
//   auto index = rbc::make_index("rbc-exact", {.rbc = {.num_reps = 256}});
//   index->build(database);
//   SearchResponse r = index->knn_search({.queries = &Q, .k = 5});
//
// The type-erased layer is deliberately thin: the concrete templated classes
// (RbcExactIndex<M>, BallTree<M>, ...) remain the zero-overhead way to use a
// known backend with a non-default metric; this interface is the stable
// boundary for cross-backend code (benchmarks, tools, serving layers,
// sharding — see ROADMAP.md). The metric is a first-class runtime property
// of this layer: IndexOptions::metric selects it, backends declare the
// subset they support (IndexInfo::supported_metrics; see api/metrics.hpp),
// and unsupported pairs fail uniformly at make_index() time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/search.hpp"
#include "common/types.hpp"
#include "rbc/params.hpp"

namespace rbc::metricspace {
// Payload dataset layer (metricspace/dataset.hpp) — forward-declared so
// the payload entry points below can name the handle without pulling the
// subsystem into every include of this header.
class Dataset;
using DatasetHandle = std::shared_ptr<const Dataset>;
}  // namespace rbc::metricspace

namespace rbc {

/// Build-time configuration for make_index(). One struct for every backend:
/// each backend reads the fields that apply to it and ignores the rest
/// (documented per field). Defaults reproduce each backend's stand-alone
/// defaults.
struct IndexOptions {
  /// Distance metric the index is built for — a registry name from
  /// api/metrics.hpp ("l2", "l1", "cosine", "ip"). Every backend supports
  /// "l2"; the supported set is declared in IndexInfo::supported_metrics,
  /// and make_index() throws std::invalid_argument (uniform message shape)
  /// for an unknown or unsupported name. "ip" is brute-force only; trees
  /// and RBC require true metrics ("cosine" is served as L2 over
  /// normalized rows, so their pruning stays correct).
  std::string metric = "l2";

  /// Row storage the dense scans read — a registry name from
  /// distance/quantized.hpp ("float32", "fp16", "int8"). "float32" (the
  /// default) is the uncompressed row matrix every backend supports.
  /// "fp16" / "int8" build a compressed code store at index time and run
  /// the hot scans over it (2x / 4x less memory traffic); exact backends
  /// (bruteforce, rbc-exact) re-measure every candidate against the float
  /// rows through an error-inflated bound, so their results stay
  /// bit-identical to float32, while rbc-oneshot ranks by the quantized
  /// distances directly (approximate — recall is reported, not exactness).
  /// Compressed storage requires the L2 metric family ("l2" / "cosine");
  /// the supported set is declared in IndexInfo::supported_storage, and
  /// unsupported (backend, storage) or (metric, storage) pairs fail at
  /// make_index() time with the uniform message shape.
  std::string storage = "float32";

  /// rbc-exact / rbc-oneshot / gpu-oneshot: representative count, pruning
  /// rules, approximation knobs.
  RbcParams rbc{};

  /// kdtree / balltree: points per leaf.
  index_t leaf_size = 16;

  /// balltree: pivot-pair sampling seed (rbc backends seed via rbc.seed).
  std::uint64_t seed = 0x5eed;

  /// gpu-bf / gpu-oneshot: kernel block width (power of two).
  std::uint32_t gpu_threads_per_block = 64;

  /// gpu-bf / gpu-oneshot: SIMT device worker pool size; 0 = all cores.
  int gpu_workers = 0;

  /// sharded:<inner>: number of row partitions the database is split into
  /// (>= 1; a count larger than the database leaves the excess shards
  /// empty and unbuilt).
  index_t num_shards = 4;

  /// sharded:<inner>: how rows are assigned to shards — "contiguous"
  /// (shard s owns one block of consecutive rows) or "strided" (row i goes
  /// to shard i % num_shards). Both remap shard-local ids back to global
  /// row ids, so results are identical; they differ only in which rows
  /// land together (strided spreads clustered inserts evenly).
  std::string partition = "contiguous";

  /// Mutation-capable backends: delta-shard row count that triggers a
  /// rebuild of the main structure (insert() buffers rows in a small
  /// brute-force delta; once it holds this many rows the main structure is
  /// rebuilt over main + delta − tombstones and swapped in atomically).
  index_t max_delta = 1024;

  /// Mutation-capable backends: run the merge on a background thread
  /// (searches keep answering from the pre-merge snapshot meanwhile). When
  /// false the merge runs inline inside the insert()/remove() call that
  /// crossed the threshold — deterministic timing, for tests.
  bool background_merge = true;
};

/// Static metadata and capabilities of a (built) index.
struct IndexInfo {
  std::string backend;        ///< registry name ("rbc-exact", "kdtree", ...)
  std::string metric = "l2";  ///< metric this instance was built with
  /// Metric names this backend accepts in IndexOptions::metric, in
  /// registry order (api/metrics.hpp). Sharded composites report the inner
  /// backend's set.
  std::vector<std::string> supported_metrics{"l2"};
  /// Row storage this instance scans ("float32" / "fp16" / "int8"; see
  /// IndexOptions::storage) and the names this backend accepts, in registry
  /// order (distance/quantized.hpp). Sharded composites report the inner
  /// backend's set.
  std::string storage = "float32";
  std::vector<std::string> supported_storage{"float32"};
  index_t size = 0;           ///< database points indexed
  index_t dim = 0;            ///< dimensionality
  bool exact = true;          ///< true NN guarantee vs probabilistic recall
  bool supports_range = false;  ///< range_search() implemented
  bool supports_save = false;   ///< save() / load_index() implemented
  std::size_t memory_bytes = 0;  ///< index-owned memory (0 if unknown)
  /// Runtime-dispatched SIMD ISA driving this backend's dense distance
  /// scans ("scalar" / "avx2" / "avx512"; see distance/dispatch.hpp).
  /// Empty for backends that do not use the dispatched kernel layer
  /// (trees, device backends).
  std::string kernel_isa;
  /// Row partitions answering each query: 1 for a plain backend; the
  /// built (non-empty) shard count for sharded:* backends, whose size /
  /// memory_bytes / exact fields aggregate over the inner indices.
  index_t shards = 1;
  /// insert() / remove() implemented (delta shard + tombstones + merge).
  bool supports_mutation = false;
  /// Mutation-capable backends: rows currently buffered in the delta shard
  /// (not yet merged into the main structure), and main-structure rows
  /// masked by a pending tombstone. Both drop to 0 after compact().
  index_t delta_rows = 0;
  index_t tombstones = 0;
  /// True when this instance is built over a payload dataset
  /// (metricspace/: strings, graph nodes, user blobs) instead of a dense
  /// row matrix. Payload indexes answer knn_search_payload and reject the
  /// dense entry points; dim stays 0.
  bool payload = false;
  /// Payload instances: the unit counters::add_metric_cost reports work in
  /// for this metric ("chars_compared", "edges_relaxed", ...). Empty for
  /// dense instances, whose work unit is the distance evaluation.
  std::string cost_unit;
  /// Metric-space names (metricspace/space.hpp registry) this backend can
  /// host through IndexOptions::metric, in registry order. Empty for
  /// backends without a payload path; disjoint from supported_metrics,
  /// which stays the dense registry subset.
  std::vector<std::string> supported_spaces;
};

/// Abstract search index. Implementations own every byte they need to
/// answer queries (the database is copied at build — callers may discard
/// it), are immutable after build(), and answer concurrent const queries
/// safely.
class Index {
 public:
  virtual ~Index() = default;

  /// Builds (or rebuilds) the index over X using the IndexOptions captured
  /// at construction. X is copied; it need not outlive the call.
  virtual void build(const Matrix<float>& X) = 0;

  /// Batched k-NN. Throws std::invalid_argument on a malformed request —
  /// null queries, k == 0, k > info().size, query dimension != info().dim,
  /// an unbuilt index, or a non-empty request.options.metric that differs
  /// from info().metric — with identical conditions and message shape
  /// ("rbc::Index[<backend>]: ...") across every backend, so callers can
  /// handle request errors without knowing which backend they hold. Device
  /// backends additionally reject k > gpu::kMaxK the same way.
  virtual SearchResponse knn_search(const SearchRequest& request) const = 0;

  /// Batched range search. Default: throws std::runtime_error — check
  /// info().supports_range before calling on an arbitrary backend.
  virtual RangeResponse range_search(const RangeRequest& request) const;

  /// Serializes the built index; rbc::load_index() restores it. Default:
  /// throws std::runtime_error (see info().supports_save).
  virtual void save(std::ostream& os) const;

  /// Streaming mutation (see info().supports_mutation; the default
  /// implementations throw std::runtime_error with the uniform
  /// unsupported-capability shape). Mutation-capable backends buffer
  /// inserted rows in a brute-force delta shard and mask removed ids with
  /// tombstones; past IndexOptions::max_delta buffered rows the main
  /// structure is rebuilt over the live set and swapped in atomically
  /// (shared_ptr snapshot), so concurrent const searches never block and
  /// always see a consistent live set. Mutators are serialized against
  /// each other by the implementation; searches may run concurrently.
  ///
  /// insert: adds rows.rows() points with caller-chosen ids. Throws
  /// std::invalid_argument on an unbuilt index, dimension mismatch,
  /// ids.size() != rows.rows(), duplicate ids within the batch, an id that
  /// is currently live, or kInvalidIndex as an id. Re-using the id of a
  /// *removed* point is allowed.
  virtual void insert(const Matrix<float>& rows, std::span<const index_t> ids);

  /// remove: tombstones each currently-live id in `ids`; unknown (never
  /// inserted or already removed) ids are ignored. Returns how many points
  /// were actually removed.
  virtual index_t remove(std::span<const index_t> ids);

  /// compact: blocks until every buffered mutation is merged into the main
  /// structure (delta_rows == tombstones == 0). No-op on a clean index.
  virtual void compact();

  /// build, but with caller-chosen global ids (strictly ascending, no
  /// kInvalidIndex) instead of 0..n-1 — the primitive mutation-capable
  /// composites rebuild from. Throws std::invalid_argument on violation.
  virtual void build_with_ids(const Matrix<float>& X,
                              std::span<const index_t> ids);

  /// Builds (or rebuilds) over a payload dataset — the non-vector
  /// counterpart of build(), live when info().supported_spaces names the
  /// instance's metric. The handle is shared, not copied. Default: throws
  /// std::runtime_error with the uniform unsupported-capability shape
  /// (check info().supported_spaces before calling on an arbitrary
  /// backend). Throws std::invalid_argument when the dataset's kind does
  /// not match the metric's declared kind.
  virtual void build_payload(const metricspace::DatasetHandle& data);

  /// Batched k-NN over a payload-built index. The error contract mirrors
  /// knn_search (null queries, k == 0, k > size, unbuilt index, metric
  /// assertion — identical std::invalid_argument shapes), plus a
  /// per-metric payload validity check (e.g. a graph query must be an
  /// 8-byte node id in range). Dense instances throw the
  /// unsupported-capability std::runtime_error.
  virtual SearchResponse knn_search_payload(
      const PayloadSearchRequest& request) const;

  /// Ascending ids of the currently-live points (size info().size).
  virtual std::vector<index_t> live_ids() const;

  /// Metadata and capability flags.
  virtual IndexInfo info() const = 0;

 protected:
  Index() = default;
  Index(const Index&) = default;
  Index& operator=(const Index&) = default;

  // Shared request validation for implementations (throw on violation).
  // `size`/`dim` are the built index's point count and dimensionality and
  // `metric` its built metric name; using this helper is what keeps the
  // error contract identical across backends — including the metric
  // assertion check (a request whose options.metric names a different
  // metric than the index was built with is a caller error, caught here
  // once instead of per backend).
  static void validate_knn(const SearchRequest& request, index_t dim,
                           index_t size, bool built, const char* backend,
                           std::string_view metric);
  static void validate_range(const RangeRequest& request, index_t dim,
                             bool built, const char* backend,
                             std::string_view metric);
  // Payload counterpart of validate_knn: same conditions minus the
  // dimension check (payload elements have none).
  static void validate_knn_payload(const PayloadSearchRequest& request,
                                   index_t size, bool built,
                                   const char* backend,
                                   std::string_view metric);
};

}  // namespace rbc
