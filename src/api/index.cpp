#include "api/index.hpp"

#include <stdexcept>
#include <string>
#include <string_view>

namespace rbc {

RangeResponse Index::range_search(const RangeRequest& /*request*/) const {
  throw std::runtime_error("rbc::Index: backend '" + info().backend +
                           "' does not support range_search "
                           "(info().supports_range is false)");
}

void Index::save(std::ostream& /*os*/) const {
  throw std::runtime_error("rbc::Index: backend '" + info().backend +
                           "' does not support save "
                           "(info().supports_save is false)");
}

namespace {

[[noreturn]] void fail_mutation(const Index& index) {
  throw std::runtime_error("rbc::Index: backend '" + index.info().backend +
                           "' does not support mutation "
                           "(info().supports_mutation is false)");
}

}  // namespace

void Index::insert(const Matrix<float>& /*rows*/,
                   std::span<const index_t> /*ids*/) {
  fail_mutation(*this);
}

index_t Index::remove(std::span<const index_t> /*ids*/) {
  fail_mutation(*this);
}

void Index::compact() { fail_mutation(*this); }

void Index::build_with_ids(const Matrix<float>& /*X*/,
                           std::span<const index_t> /*ids*/) {
  fail_mutation(*this);
}

std::vector<index_t> Index::live_ids() const { fail_mutation(*this); }

namespace {

[[noreturn]] void fail_payload(const Index& index) {
  throw std::runtime_error("rbc::Index: backend '" + index.info().backend +
                           "' does not support payload datasets "
                           "(info().supported_spaces is empty)");
}

}  // namespace

void Index::build_payload(const metricspace::DatasetHandle& /*data*/) {
  fail_payload(*this);
}

SearchResponse Index::knn_search_payload(
    const PayloadSearchRequest& /*request*/) const {
  fail_payload(*this);
}

namespace {

[[noreturn]] void fail(const char* backend, const std::string& what) {
  throw std::invalid_argument(std::string("rbc::Index[") + backend +
                              "]: " + what);
}

void validate_queries(const Matrix<float>* queries, index_t dim, bool built,
                      const char* backend) {
  if (!built) fail(backend, "search on an unbuilt index (call build first)");
  if (queries == nullptr) fail(backend, "request.queries is null");
  if (queries->cols() != dim)
    fail(backend, "query dimension " + std::to_string(queries->cols()) +
                      " != index dimension " + std::to_string(dim));
}

// The metric-assertion check of SearchOptions::metric, shared by every
// backend (keeping it here, not copied per backend, is what makes the
// mismatch message uniform).
void validate_metric(const SearchOptions& options, std::string_view metric,
                     const char* backend) {
  if (!options.metric.empty() && options.metric != metric)
    fail(backend, "request assumes metric '" + options.metric +
                      "' but the index was built with '" +
                      std::string(metric) + "'");
}

}  // namespace

void Index::validate_knn(const SearchRequest& request, index_t dim,
                         index_t size, bool built, const char* backend,
                         std::string_view metric) {
  validate_queries(request.queries, dim, built, backend);
  validate_metric(request.options, metric, backend);
  if (request.k == 0) fail(backend, "request.k must be >= 1");
  // k > n is a request error everywhere (not backend-specific padding or
  // UB): an index over n points cannot name more than n neighbors.
  if (request.k > size)
    fail(backend, "request.k = " + std::to_string(request.k) +
                      " exceeds database size " + std::to_string(size));
}

void Index::validate_knn_payload(const PayloadSearchRequest& request,
                                 index_t size, bool built,
                                 const char* backend,
                                 std::string_view metric) {
  if (!built) fail(backend, "search on an unbuilt index (call build first)");
  if (request.queries == nullptr) fail(backend, "request.queries is null");
  validate_metric(request.options, metric, backend);
  if (request.k == 0) fail(backend, "request.k must be >= 1");
  if (request.k > size)
    fail(backend, "request.k = " + std::to_string(request.k) +
                      " exceeds database size " + std::to_string(size));
}

void Index::validate_range(const RangeRequest& request, index_t dim,
                           bool built, const char* backend,
                           std::string_view metric) {
  validate_queries(request.queries, dim, built, backend);
  validate_metric(request.options, metric, backend);
  // Under "ip" the radius is a negated-dot threshold (hits satisfy
  // dot(q, x) >= -radius), so every useful similarity cutoff is a
  // *negative* radius — the non-negativity rule applies to real metrics
  // only.
  if (request.radius < 0 && metric != "ip")
    fail(backend, "request.radius must be >= 0");
}

}  // namespace rbc
