// String-keyed backend registry: the factory behind rbc::make_index() and
// the magic-number dispatch behind rbc::load_index().
//
// Each backend registers itself (name, factory, and — when it supports
// serialization — its format magic plus a loader) from its own translation
// unit in src/api/backends/. Registration is idempotent by name, so both the
// per-TU self-registration statics and the linker-proof ensure-builtins
// anchor may run; user code can register additional backends the same way:
//
//   rbc::register_backend({.name = "my-index",
//                          .create = [](const IndexOptions& o) { ... }});
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/index.hpp"

namespace rbc {

/// A registered backend: how to construct it and (optionally) how to load a
/// serialized instance identified by `magic` (the first 4 bytes of the
/// stream; see serialize_io.hpp for the shipped values).
struct BackendEntry {
  std::string name;
  std::function<std::unique_ptr<Index>(const IndexOptions&)> create;
  std::uint32_t magic = 0;  ///< 0 = backend has no unified serialization
  std::function<std::unique_ptr<Index>(std::istream&)> load;
};

/// Registers a backend. Returns false (and changes nothing) if the name is
/// already taken — which makes repeated registration of the builtins safe.
bool register_backend(BackendEntry entry);

/// Creates an unbuilt index by backend name. Throws std::invalid_argument
/// for an unknown name (the message lists the registered names).
std::unique_ptr<Index> make_index(std::string_view name,
                                  const IndexOptions& options = {});

/// Restores an index previously persisted with Index::save(). The backend
/// is resolved from the leading magic number, so one call handles every
/// serializable backend. The stream must be seekable (file/stringstream).
/// Throws std::runtime_error when no registered backend claims the magic.
std::unique_ptr<Index> load_index(std::istream& is);

/// Names of all registered backends, sorted ascending.
std::vector<std::string> registered_backends();

}  // namespace rbc
