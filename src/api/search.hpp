// Request/response structs of the unified search API.
//
// Every backend answers the same query shapes through these types, so
// callers (benchmarks, examples, serving layers) are written once and run
// against any registered backend:
//
//   SearchRequest req{.queries = &Q, .k = 10};
//   req.options.collect_stats = true;
//   SearchResponse resp = index->knn_search(req);
//
// The structs replace the positional `search(Q, k, &stats)` signatures of
// the concrete classes: adding a knob is a new defaulted field, not a
// breaking signature change across seven backends.
#pragma once

#include <string>
#include <vector>

#include "bruteforce/bf.hpp"
#include "common/matrix.hpp"
#include "common/types.hpp"
#include "rbc/stats.hpp"

namespace rbc {

/// Per-call knobs shared by every search shape.
struct SearchOptions {
  /// Fill SearchResponse::stats with per-backend work counters. Off by
  /// default: stats aggregation costs a per-thread merge on the hot path.
  bool collect_stats = false;

  /// The metric this request assumes the index was built with (a registry
  /// name from api/metrics.hpp). Empty = no assertion. Non-empty and
  /// different from the index's built metric is a request error
  /// (std::invalid_argument, checked in the shared validator) — it lets a
  /// caller holding an arbitrary Index document, and have enforced, the
  /// metric its distances are interpreted under. The serve dispatcher
  /// stamps every coalesced batch with its index's metric.
  std::string metric;
};

/// A batched k-NN query. `queries` is borrowed and must stay alive for the
/// duration of the call; its column count must equal the index dimension.
/// `k` must satisfy 1 <= k <= index size, or knn_search throws
/// std::invalid_argument (see Index::knn_search for the full error
/// contract).
struct SearchRequest {
  const Matrix<float>* queries = nullptr;  // nq x d, borrowed
  index_t k = 1;
  SearchOptions options{};
};

/// A batched k-NN query over a payload-built index (metricspace/: strings,
/// graph nodes, user blobs). Each element of `queries` is one query's
/// payload bytes in the dataset's encoding (the string itself under
/// "edit"; the 8-byte little-endian node id under "graph-sp"). The same
/// error contract as SearchRequest applies — plus a payload-validity check
/// per metric space — through Index::knn_search_payload.
struct PayloadSearchRequest {
  const std::vector<std::string>* queries = nullptr;  // borrowed
  index_t k = 1;
  SearchOptions options{};
};

/// k-NN answers: row i of `knn` holds query i's neighbors in ascending
/// (distance, id) order. Rows are always fully populated: the unified API
/// rejects k > database size up front (std::invalid_argument; the concrete
/// classes, by contrast, pad short rows with (inf, kInvalidIndex)). `stats`
/// is populated when options.collect_stats was set; which counters a backend
/// fills is backend-specific (tree baselines report queries only).
struct SearchResponse {
  KnnResult knn;
  SearchStats stats{};
};

/// A batched range query: all points within `radius` of each query.
/// `radius` must be >= 0 for every real metric; under "ip" (where
/// "distance" is the negated dot product) it is a threshold on -dot —
/// pass radius = -t to select all points with dot(q, x) >= t, so negative
/// values are legal and are the useful case.
struct RangeRequest {
  const Matrix<float>* queries = nullptr;  // nq x d, borrowed
  dist_t radius = 0.0f;
  SearchOptions options{};
};

/// Range answers: ids[i] holds the ids of all database points within the
/// radius of query i, sorted ascending by id.
struct RangeResponse {
  std::vector<std::vector<index_t>> ids;
  SearchStats stats{};
};

}  // namespace rbc
