// "rbc-exact" backend: the paper's exact Random Ball Cover behind the
// unified interface. Thin adapter — build/search/save all forward to
// RbcExactIndex<Euclidean>, whose serialization format (kMagicExact) is
// reused unchanged, so files written by the concrete class load through
// rbc::load_index() and vice versa.
#include <istream>
#include <ostream>

#include "api/backends/backends.hpp"
#include "api/registry.hpp"
#include "distance/dispatch.hpp"
#include "rbc/rbc_exact.hpp"

namespace rbc::backends {

namespace {

class RbcExactBackend final : public Index {
 public:
  explicit RbcExactBackend(const IndexOptions& options)
      : params_(options.rbc) {}

  void build(const Matrix<float>& X) override {
    index_.build(X, params_);
    built_ = true;
  }

  SearchResponse knn_search(const SearchRequest& request) const override {
    validate_knn(request, index_.dim(), index_.size(), built_, "rbc-exact");
    SearchResponse response;
    response.knn = index_.search(
        *request.queries, request.k,
        request.options.collect_stats ? &response.stats : nullptr);
    return response;
  }

  RangeResponse range_search(const RangeRequest& request) const override {
    validate_range(request, index_.dim(), built_, "rbc-exact");
    const Matrix<float>& Q = *request.queries;
    RangeResponse response;
    response.ids.resize(Q.rows());
    parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
      response.ids[qi] = index_.range_search(Q.row(qi), request.radius);
    });
    if (request.options.collect_stats) response.stats.queries = Q.rows();
    return response;
  }

  void save(std::ostream& os) const override { index_.save(os); }

  static std::unique_ptr<Index> load(std::istream& is) {
    auto backend = std::make_unique<RbcExactBackend>(IndexOptions{});
    backend->index_ = RbcExactIndex<Euclidean>::load(is);
    backend->params_ = backend->index_.params();
    backend->built_ = true;
    return backend;
  }

  IndexInfo info() const override {
    IndexInfo info;
    info.backend = "rbc-exact";
    info.size = index_.size();
    info.dim = index_.dim();
    // approx_eps > 0 switches the index to (1+eps)-approximate pruning.
    info.exact = params_.approx_eps == 0.0f;
    info.supports_range = true;
    info.supports_save = true;
    info.memory_bytes = built_ ? index_.memory_bytes() : 0;
    info.kernel_isa = dispatch::isa_name(dispatch::active_isa());
    return info;
  }

 private:
  RbcParams params_;
  RbcExactIndex<Euclidean> index_;
  bool built_ = false;
};

[[maybe_unused]] const bool auto_registered = (register_rbc_exact(), true);

}  // namespace

void register_rbc_exact() {
  register_backend(
      {.name = "rbc-exact",
       .create = [](const IndexOptions& options) -> std::unique_ptr<Index> {
         return std::make_unique<RbcExactBackend>(options);
       },
       .magic = io::kMagicExact,
       .load = RbcExactBackend::load});
}

}  // namespace rbc::backends
