// "rbc-exact" backend: the paper's exact Random Ball Cover behind the
// unified interface. The RBC prune rules are triangle-inequality arguments,
// so the backend serves exactly the true metrics: "l2" and "l1" map to the
// matching RbcExactIndex<M> instantiation, and "cosine" runs as
// RbcExactIndex<Euclidean> over unit-normalized rows (queries normalized
// per batch, distances converted back) — the pruning operates on a genuine
// metric space, so exactness is inherited rather than re-proved.
//
// Serialization wraps the concrete class's own format in a version-2
// header (magic, version, metric tag, nested concrete stream); version-1
// files — written before metrics were runtime-selectable — load as "l2".
#include <istream>
#include <ostream>
#include <variant>

#include "api/backends/backends.hpp"
#include "api/metrics.hpp"
#include "api/registry.hpp"
#include "distance/dispatch.hpp"
#include "metricspace/generic_backend.hpp"
#include "metricspace/space.hpp"
#include "mutate/mutable_index.hpp"
#include "rbc/rbc_exact.hpp"
#include "rbc/serialize_io.hpp"

namespace rbc::backends {

namespace {

class RbcExactBackend final : public Index {
 public:
  explicit RbcExactBackend(const IndexOptions& options)
      : kind_(metric::require(
            "rbc-exact", options.metric,
            {metric::Kind::kL2, metric::Kind::kL1, metric::Kind::kCosine})),
        storage_(require_scan_storage("rbc-exact", options.storage, kind_)),
        params_(options.rbc) {
    if (kind_ == metric::Kind::kL1) index_.emplace<RbcExactIndex<L1>>();
    // Quantized modes imply the Euclidean variant (require_scan_storage
    // rejects them for l1): the concrete index builds its code store next
    // to the packed rows.
    if (storage_ != quant::Storage::kFloat32)
      std::get<RbcExactIndex<Euclidean>>(index_).set_storage(storage_);
  }

  void build(const Matrix<float>& X) override {
    if (kind_ == metric::Kind::kCosine) {
      std::get<RbcExactIndex<Euclidean>>(index_).build(
          metric::normalized_clone(X), params_);
    } else {
      std::visit([&](auto& index) { index.build(X, params_); }, index_);
    }
    built_ = true;
  }

  SearchResponse knn_search(const SearchRequest& request) const override {
    validate_knn(request, dim(), size(), built_, "rbc-exact",
                 metric::name(kind_));
    SearchResponse response;
    SearchStats* stats =
        request.options.collect_stats ? &response.stats : nullptr;
    const metric::QueryTransform q(kind_, *request.queries);
    response.knn = std::visit(
        [&](const auto& index) {
          return index.search(q.queries(), request.k, stats);
        },
        index_);
    q.finish(response.knn.dists);
    return response;
  }

  RangeResponse range_search(const RangeRequest& request) const override {
    validate_range(request, dim(), built_, "rbc-exact", metric::name(kind_));
    // Cosine: normalized queries, radius mapped into normalized-L2 space.
    const metric::QueryTransform qt(kind_, *request.queries);
    const Matrix<float>& Q = qt.queries();
    const float radius = qt.radius(request.radius);
    RangeResponse response;
    response.ids.resize(Q.rows());
    std::visit(
        [&](const auto& index) {
          parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
            response.ids[qi] = index.range_search(Q.row(qi), radius);
          });
        },
        index_);
    if (request.options.collect_stats) response.stats.queries = Q.rows();
    return response;
  }

  void save(std::ostream& os) const override {
    io::write_pod(os, io::kMagicExact);
    // The header advertises a code store only when one is live (a store can
    // be invalidated by concrete-level mutation; the float rows then serve
    // every scan and the file degrades to the plain version-2 layout).
    const quant::Storage live = live_storage();
    io::write_storage_header(os, metric::name(kind_), quant::name(live));
    std::visit([&](const auto& index) { index.save(os); }, index_);
    if (live != quant::Storage::kFloat32)
      io::write_quantized_store(
          os, std::get<RbcExactIndex<Euclidean>>(index_).quantized_store());
  }

  static std::unique_ptr<Index> load(std::istream& is) {
    const std::istream::pos_type start = is.tellg();
    io::expect_pod(is, io::kMagicExact, "rbc-exact magic");
    bool legacy = false;
    std::string storage_name;
    const std::string metric_name = io::read_metric_header(
        is, "rbc-exact header", &legacy, &storage_name);
    metric::Kind kind{};
    if (!metric::lookup(metric_name, kind) || kind == metric::Kind::kIp)
      throw std::runtime_error(
          "rbc::io: corrupt rbc-exact stream (bad metric tag '" +
          metric_name + "')");
    quant::Storage storage{};
    if (!quant::lookup(storage_name, storage))
      throw std::runtime_error(
          "rbc::io: corrupt rbc-exact stream (unknown storage tag '" +
          storage_name + "')");
    // Version-1 files are a bare concrete stream: rewind so the concrete
    // loader re-verifies its own (magic, version, metric) header.
    if (legacy) {
      is.seekg(start);
      if (!is)
        throw std::runtime_error(
            "rbc::load_index: stream must be seekable");
    }
    IndexOptions options;
    options.metric = metric_name;
    options.storage = storage_name;
    std::unique_ptr<RbcExactBackend> backend;
    try {
      backend = std::make_unique<RbcExactBackend>(options);
    } catch (const std::invalid_argument& e) {
      // e.g. a quantized tag on l1: file corruption, not a caller error.
      throw std::runtime_error(
          std::string("rbc::io: corrupt rbc-exact stream (") + e.what() +
          ")");
    }
    if (kind == metric::Kind::kL1)
      backend->index_ = RbcExactIndex<L1>::load(is);
    else
      backend->index_ = RbcExactIndex<Euclidean>::load(is);
    if (storage != quant::Storage::kFloat32)
      std::get<RbcExactIndex<Euclidean>>(backend->index_)
          .adopt_quantized_store(io::read_quantized_store(is));
    backend->params_ = std::visit(
        [](const auto& index) { return index.params(); }, backend->index_);
    backend->built_ = true;
    return backend;
  }

  IndexInfo info() const override {
    IndexInfo info;
    info.backend = "rbc-exact";
    info.metric = metric::name(kind_);
    info.supported_metrics = metric::names(
        {metric::Kind::kL2, metric::Kind::kL1, metric::Kind::kCosine});
    info.storage = quant::name(live_storage());
    info.supported_storage = scan_storage_names(kind_);
    info.size = size();
    info.dim = dim();
    // approx_eps > 0 switches the index to (1+eps)-approximate pruning.
    // Quantized storage keeps exactness: the compressed scan is a prefilter
    // whose survivors are re-measured against the float rows.
    info.exact = params_.approx_eps == 0.0f;
    info.supports_range = true;
    info.supports_save = true;
    info.memory_bytes =
        built_ ? std::visit(
                     [](const auto& index) { return index.memory_bytes(); },
                     index_)
               : 0;
    info.kernel_isa = dispatch::isa_name(dispatch::active_isa());
    // Metric-space names this host also serves (through the generic payload
    // dispatch in the factory lambda below).
    info.supported_spaces = metricspace::space_names();
    return info;
  }

 private:
  index_t size() const {
    return std::visit([](const auto& index) { return index.size(); }, index_);
  }
  index_t dim() const {
    return std::visit([](const auto& index) { return index.dim(); }, index_);
  }
  /// The storage mode actually backing scans right now: the requested mode
  /// while the concrete code store is live, float32 once invalidated (or
  /// for an empty build, where there are no codes to scan).
  quant::Storage live_storage() const {
    if (storage_ == quant::Storage::kFloat32) return storage_;
    const auto& index = std::get<RbcExactIndex<Euclidean>>(index_);
    return built_ && index.size() > 0 ? index.storage() : storage_;
  }

  metric::Kind kind_;
  quant::Storage storage_;
  RbcParams params_;
  std::variant<RbcExactIndex<Euclidean>, RbcExactIndex<L1>> index_;
  bool built_ = false;
};

[[maybe_unused]] const bool auto_registered = (register_rbc_exact(), true);

}  // namespace

void register_rbc_exact() {
  // Wrapped in the mutable delta-shard adapter (mutate/mutable_index.hpp):
  // the paper's cheap construction is what makes rebuild-on-merge viable.
  register_backend(mutate::wrap(
      {.name = "rbc-exact",
       .create = [](const IndexOptions& options) -> std::unique_ptr<Index> {
         // A metric-space name selects the generic payload variant of this
         // host algorithm (strings, graphs, user metrics); dense names
         // build the matrix-backed index as always.
         if (metricspace::space_registered(options.metric))
           return metricspace::make_generic(metricspace::Algo::kRbcExact,
                                            options);
         return std::make_unique<RbcExactBackend>(options);
       },
       .magic = io::kMagicExact,
       .load = RbcExactBackend::load}));
}

}  // namespace rbc::backends
