// "sharded:<inner>" backends: the row-partitioned composite of
// src/shard/ over each shipped CPU backend, pre-registered so the sharded
// variants show up in registered_backends() (and therefore in the
// cross-backend conformance suite) like any other backend.
//
// Only the *names* are enumerated here; construction, search, and the
// kMagicSharded serialization all live in shard::ShardedIndex. Variants
// over backends not listed here — including user-registered ones — still
// resolve through make_index()'s generic "sharded:" fallback.
#include "api/backends/backends.hpp"
#include "api/registry.hpp"
#include "shard/sharded_index.hpp"

namespace rbc::backends {

namespace {

/// The shipped inner backends worth a pre-registered sharded variant: the
/// CPU backends. (Device backends compose via the generic fallback, but
/// spinning one SIMT worker pool per shard is rarely what a caller wants.)
const char* const kShardedInners[] = {"bruteforce", "rbc-exact",
                                      "rbc-oneshot", "kdtree",
                                      "balltree",   "covertree"};

[[maybe_unused]] const bool auto_registered = (register_sharded(), true);

}  // namespace

void register_sharded() {
  for (const char* inner : kShardedInners) {
    register_backend(
        {.name = std::string("sharded:") + inner,
         .create = [inner](const IndexOptions& options)
             -> std::unique_ptr<Index> {
           return shard::make_sharded(inner, options);
         },
         .magic = 0,  // kMagicSharded dispatches natively in load_index
         .load = nullptr});
  }
}

}  // namespace rbc::backends
