// Self-registration hooks of the built-in backends plus small helpers the
// adapters share.
//
// Each hook lives in its backend's translation unit and registers that
// backend with the global registry (idempotently). The registry calls every
// hook lazily before the first lookup, which keeps registration working even
// when the library is linked as a static archive (where a TU with only a
// self-registration static would be dropped by the linker).
#pragma once

#include <string>
#include <vector>

#include "api/metrics.hpp"
#include "api/search.hpp"
#include "bruteforce/topk.hpp"
#include "common/matrix.hpp"
#include "distance/quantized.hpp"
#include "parallel/parallel_for.hpp"

namespace rbc::backends {

void register_bruteforce();
void register_rbc_exact();
void register_rbc_oneshot();
void register_kdtree();
void register_balltree();
void register_covertree();
void register_gpu();
void register_sharded();

/// Storage validation shared by the dense-scan backends. The compressed row
/// stores (distance/quantized.hpp) implement the squared-L2 kernels only, so
/// quantized modes are accepted exactly when the metric runs the Euclidean
/// scan — "l2" directly, "cosine" as L2 over unit rows. Everything else
/// (l1, ip) supports float32 alone; the error keeps quant::require's
/// uniform shape.
inline quant::Storage require_scan_storage(const char* backend,
                                           const std::string& storage,
                                           metric::Kind kind) {
  using quant::Storage;
  if (kind == metric::Kind::kL2 || kind == metric::Kind::kCosine)
    return quant::require(
        backend, storage, {Storage::kFloat32, Storage::kFp16, Storage::kInt8});
  return quant::require(backend, storage, {Storage::kFloat32});
}

/// IndexInfo::supported_storage for a dense-scan backend under `kind`.
inline std::vector<std::string> scan_storage_names(metric::Kind kind) {
  using quant::Storage;
  if (kind == metric::Kind::kL2 || kind == metric::Kind::kCosine)
    return quant::names({Storage::kFloat32, Storage::kFp16, Storage::kInt8});
  return quant::names({Storage::kFloat32});
}

/// Batches a single-query backend (`one(q, top)` fills a TopK) across a
/// query matrix, parallel over queries — the adapter-side equivalent of the
/// batch loops the RBC indexes implement natively.
template <class SearchOne>
KnnResult batch_knn(const Matrix<float>& Q, index_t k, SearchOne&& one) {
  KnnResult result(Q.rows(), k);
  parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
    TopK top(k);
    one(Q.row(qi), top);
    top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
  });
  return result;
}

}  // namespace rbc::backends
