// Self-registration hooks of the built-in backends plus small helpers the
// adapters share.
//
// Each hook lives in its backend's translation unit and registers that
// backend with the global registry (idempotently). The registry calls every
// hook lazily before the first lookup, which keeps registration working even
// when the library is linked as a static archive (where a TU with only a
// self-registration static would be dropped by the linker).
#pragma once

#include "api/search.hpp"
#include "bruteforce/topk.hpp"
#include "common/matrix.hpp"
#include "parallel/parallel_for.hpp"

namespace rbc::backends {

void register_bruteforce();
void register_rbc_exact();
void register_rbc_oneshot();
void register_kdtree();
void register_balltree();
void register_covertree();
void register_gpu();
void register_sharded();

/// Batches a single-query backend (`one(q, top)` fills a TopK) across a
/// query matrix, parallel over queries — the adapter-side equivalent of the
/// batch loops the RBC indexes implement natively.
template <class SearchOne>
KnnResult batch_knn(const Matrix<float>& Q, index_t k, SearchOne&& one) {
  KnnResult result(Q.rows(), k);
  parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
    TopK top(k);
    one(Q.row(qi), top);
    top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
  });
  return result;
}

}  // namespace rbc::backends
