// GPU backends behind the unified interface (paper §7.3):
//   "gpu-bf"      — device brute force, the paper's GPU baseline;
//   "gpu-oneshot" — host-built one-shot RBC uploaded once, searched with the
//                   two-kernel pipeline.
// Each index owns its SIMT device; query batches are uploaded per call and
// only the (nq x k) result comes back. Device-resident state cannot be
// persisted, so neither backend supports save (info().supports_save =
// false); gpu-oneshot users who need persistence save the host
// RbcOneShotIndex instead.
#include <memory>
#include <stdexcept>
#include <string>

#include "api/backends/backends.hpp"
#include "api/metrics.hpp"
#include "api/registry.hpp"
#include "gpu/gpu_bf.hpp"
#include "gpu/gpu_rbc.hpp"

namespace rbc::backends {

namespace {

void check_gpu_k(index_t k, const char* backend) {
  if (k > gpu::kMaxK)
    throw std::invalid_argument(
        std::string("rbc::Index[") + backend + "]: k = " + std::to_string(k) +
        " exceeds the device kernel limit kMaxK = " +
        std::to_string(gpu::kMaxK));
}

class GpuBfBackend final : public Index {
 public:
  explicit GpuBfBackend(const IndexOptions& options)
      : device_(std::make_unique<simt::Device>(options.gpu_workers)),
        threads_per_block_(options.gpu_threads_per_block) {
    // Device kernels are fixed-function squared-L2 pipelines: l2 only,
    // float32 only (no device-side dequantizers).
    metric::require("gpu-bf", options.metric, {metric::Kind::kL2});
    quant::require("gpu-bf", options.storage, {quant::Storage::kFloat32});
  }

  void build(const Matrix<float>& X) override {
    n_ = X.rows();
    dim_ = X.cols();
    x_ = gpu::upload_matrix(*device_, X);
    built_ = true;
  }

  SearchResponse knn_search(const SearchRequest& request) const override {
    validate_knn(request, dim_, n_, built_, "gpu-bf", "l2");
    check_gpu_k(request.k, "gpu-bf");
    const gpu::GpuMatrix q = gpu::upload_matrix(*device_, *request.queries);
    SearchResponse response;
    response.knn = gpu::gpu_bf_knn(*device_, q, x_, request.k,
                                   threads_per_block_);
    if (request.options.collect_stats) {
      response.stats.queries = request.queries->rows();
      response.stats.list_dist_evals =
          static_cast<std::uint64_t>(request.queries->rows()) * n_;
    }
    return response;
  }

  IndexInfo info() const override {
    IndexInfo info;
    info.backend = "gpu-bf";
    info.size = n_;
    info.dim = dim_;
    info.exact = true;
    info.memory_bytes = x_.data.size() * sizeof(float);
    return info;
  }

 private:
  std::unique_ptr<simt::Device> device_;
  std::uint32_t threads_per_block_;
  gpu::GpuMatrix x_;
  index_t n_ = 0;
  index_t dim_ = 0;
  bool built_ = false;
};

class GpuOneShotBackend final : public Index {
 public:
  explicit GpuOneShotBackend(const IndexOptions& options)
      : device_(std::make_unique<simt::Device>(options.gpu_workers)),
        params_(options.rbc),
        threads_per_block_(options.gpu_threads_per_block) {
    metric::require("gpu-oneshot", options.metric, {metric::Kind::kL2});
    quant::require("gpu-oneshot", options.storage,
                   {quant::Storage::kFloat32});
  }

  void build(const Matrix<float>& X) override {
    // Build on the host (offline step), upload once, discard the host index.
    RbcOneShotIndex<Euclidean> host;
    host.build(X, params_);
    index_ = std::make_unique<gpu::GpuRbcOneShot>(*device_, host);
    n_ = X.rows();
  }

  SearchResponse knn_search(const SearchRequest& request) const override {
    validate_knn(request, index_ ? index_->dim() : 0, n_, index_ != nullptr,
                 "gpu-oneshot", "l2");
    check_gpu_k(request.k, "gpu-oneshot");
    const gpu::GpuMatrix q = gpu::upload_matrix(*device_, *request.queries);
    SearchResponse response;
    response.knn = index_->search(q, request.k, threads_per_block_);
    if (request.options.collect_stats) {
      response.stats.queries = request.queries->rows();
      response.stats.rep_dist_evals =
          static_cast<std::uint64_t>(request.queries->rows()) *
          index_->num_reps();
      response.stats.list_dist_evals =
          static_cast<std::uint64_t>(request.queries->rows()) *
          index_->points_per_rep();
    }
    return response;
  }

  IndexInfo info() const override {
    IndexInfo info;
    info.backend = "gpu-oneshot";
    info.size = n_;
    info.dim = index_ ? index_->dim() : 0;
    info.exact = false;  // probabilistic recall (paper Theorem 2)
    return info;
  }

 private:
  std::unique_ptr<simt::Device> device_;
  RbcParams params_;
  std::uint32_t threads_per_block_;
  std::unique_ptr<gpu::GpuRbcOneShot> index_;
  index_t n_ = 0;
};

[[maybe_unused]] const bool auto_registered = (register_gpu(), true);

}  // namespace

void register_gpu() {
  register_backend(
      {.name = "gpu-bf",
       .create = [](const IndexOptions& options) -> std::unique_ptr<Index> {
         return std::make_unique<GpuBfBackend>(options);
       },
       .magic = 0,
       .load = nullptr});
  register_backend(
      {.name = "gpu-oneshot",
       .create = [](const IndexOptions& options) -> std::unique_ptr<Index> {
         return std::make_unique<GpuOneShotBackend>(options);
       },
       .magic = 0,
       .load = nullptr});
}

}  // namespace rbc::backends
