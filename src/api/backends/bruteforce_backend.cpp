// "bruteforce" backend: BF(Q, X) as an Index. The reference answer every
// exact backend must match, and the baseline every speedup is measured
// against. Owns a copy of the database; supports range search and
// serialization (the format is the metric tag plus the matrix).
//
// The full metric matrix lives here: "l2" and "l1" scan directly through
// the dispatched kernels, "cosine" is L2 over unit-normalized rows (rows
// normalized once at build, queries per batch, distances converted back),
// and "ip" — which no pruning structure can serve — ranks by negated dot
// product. This is the only backend that accepts "ip".
#include <cmath>
#include <istream>
#include <ostream>

#include "api/backends/backends.hpp"
#include "api/metrics.hpp"
#include "api/registry.hpp"
#include "bruteforce/bf.hpp"
#include "distance/dispatch.hpp"
#include "mutate/mutable_index.hpp"
#include "rbc/serialize_io.hpp"

namespace rbc::backends {

namespace {

class BruteForceBackend final : public Index {
 public:
  explicit BruteForceBackend(const IndexOptions& options)
      : kind_(metric::require(
            "bruteforce", options.metric,
            {metric::Kind::kL2, metric::Kind::kL1, metric::Kind::kCosine,
             metric::Kind::kIp})) {}

  void build(const Matrix<float>& X) override {
    db_ = X.clone();
    // Cosine = L2 on unit rows: the one-time build transform.
    if (kind_ == metric::Kind::kCosine) metric::normalize_rows(db_);
    // Row norms once at build: the tiled batch path's GEMM-form corrections
    // and the ip prefilter's max-norm slack (an O(n d) pass that must not
    // be paid per search).
    norms_ = make_row_norms_cache(db_);
    built_ = true;  // an empty database is a valid built state (k-NN against
                    // it is a request error: k > size for every k >= 1)
  }

  SearchResponse knn_search(const SearchRequest& request) const override {
    validate_knn(request, db_.cols(), db_.rows(), built_, "bruteforce",
                 metric::name(kind_));
    SearchResponse response;
    const metric::QueryTransform q(kind_, *request.queries);
    switch (kind_) {
      case metric::Kind::kL2:
      case metric::Kind::kCosine:
        response.knn = bf_knn(q.queries(), db_, request.k, Euclidean{},
                              &norms_);
        break;
      case metric::Kind::kL1:
        response.knn = bf_knn(q.queries(), db_, request.k, L1{});
        break;
      case metric::Kind::kIp:
        response.knn = bf_knn(q.queries(), db_, request.k, InnerProduct{},
                              &norms_);
        break;
    }
    q.finish(response.knn.dists);
    if (request.options.collect_stats) {
      response.stats.queries = request.queries->rows();
      response.stats.list_dist_evals =
          static_cast<std::uint64_t>(request.queries->rows()) * db_.rows();
    }
    return response;
  }

  RangeResponse range_search(const RangeRequest& request) const override {
    validate_range(request, db_.cols(), built_, "bruteforce",
                   metric::name(kind_));
    // Cosine: normalized queries against the (already normalized) rows,
    // with the radius mapped into the normalized-L2 space.
    const metric::QueryTransform qt(kind_, *request.queries);
    const Matrix<float>& Q = qt.queries();
    const float radius = qt.radius(request.radius);

    RangeResponse response;
    response.ids.resize(Q.rows());
    parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
      const float* q = Q.row(qi);
      for (index_t j = 0; j < db_.rows(); ++j) {
        float d = 0.0f;
        switch (kind_) {
          case metric::Kind::kL2:
          case metric::Kind::kCosine:
            d = Euclidean{}(q, db_.row(j), db_.cols());
            break;
          case metric::Kind::kL1:
            d = L1{}(q, db_.row(j), db_.cols());
            break;
          case metric::Kind::kIp:
            d = InnerProduct{}(q, db_.row(j), db_.cols());
            break;
        }
        if (d <= radius) response.ids[qi].push_back(j);
      }
    });
    counters::add_dist_evals(static_cast<std::uint64_t>(Q.rows()) *
                             db_.rows());
    if (request.options.collect_stats) {
      response.stats.queries = Q.rows();
      response.stats.list_dist_evals =
          static_cast<std::uint64_t>(Q.rows()) * db_.rows();
    }
    return response;
  }

  void save(std::ostream& os) const override {
    io::write_pod(os, io::kMagicBruteForce);
    io::write_metric_header(os, metric::name(kind_));
    io::write_matrix(os, db_);
  }

  static std::unique_ptr<Index> load(std::istream& is) {
    io::expect_pod(is, io::kMagicBruteForce, "bruteforce magic");
    const std::string metric_name =
        io::read_metric_header(is, "bruteforce header");
    metric::Kind kind{};
    if (!metric::lookup(metric_name, kind))
      throw std::runtime_error(
          "rbc::io: corrupt bruteforce stream (unknown metric tag '" +
          metric_name + "')");
    IndexOptions options;
    options.metric = metric_name;
    auto index = std::make_unique<BruteForceBackend>(options);
    index->db_ = io::read_matrix(is);  // cosine rows were saved normalized
    index->norms_ = make_row_norms_cache(index->db_);  // derived, not stored
    index->built_ = true;
    return index;
  }

  IndexInfo info() const override {
    IndexInfo info;
    info.backend = "bruteforce";
    info.metric = metric::name(kind_);
    info.supported_metrics =
        metric::names({metric::Kind::kL2, metric::Kind::kL1,
                       metric::Kind::kCosine, metric::Kind::kIp});
    info.size = db_.rows();
    info.dim = db_.cols();
    info.exact = true;
    info.supports_range = true;
    info.supports_save = true;
    info.memory_bytes = db_.size() * sizeof(float);
    info.kernel_isa = dispatch::isa_name(dispatch::active_isa());
    return info;
  }

 private:
  metric::Kind kind_;
  Matrix<float> db_;
  RowNormsCache norms_;
  bool built_ = false;
};

[[maybe_unused]] const bool auto_registered = (register_bruteforce(), true);

}  // namespace

void register_bruteforce() {
  // Wrapped in the mutable delta-shard adapter: make_index("bruteforce")
  // instances support insert()/remove() (mutate/mutable_index.hpp).
  register_backend(mutate::wrap(
      {.name = "bruteforce",
       .create = [](const IndexOptions& options) -> std::unique_ptr<Index> {
         return std::make_unique<BruteForceBackend>(options);
       },
       .magic = io::kMagicBruteForce,
       .load = BruteForceBackend::load}));
}

}  // namespace rbc::backends
