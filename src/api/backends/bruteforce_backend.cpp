// "bruteforce" backend: BF(Q, X) as an Index. The reference answer every
// exact backend must match, and the baseline every speedup is measured
// against. Owns a copy of the database; supports range search and
// serialization (the format is just the matrix).
#include <istream>
#include <ostream>

#include "api/backends/backends.hpp"
#include "api/registry.hpp"
#include "bruteforce/bf.hpp"
#include "distance/dispatch.hpp"
#include "rbc/serialize_io.hpp"

namespace rbc::backends {

namespace {

class BruteForceBackend final : public Index {
 public:
  void build(const Matrix<float>& X) override {
    db_ = X.clone();
    // Row norms once at build: the tiled batch path's GEMM-form corrections
    // (an O(n d) pass that must not be paid per search).
    norms_ = make_row_norms_cache(db_);
    built_ = true;  // an empty database is a valid built state (k-NN against
                    // it is a request error: k > size for every k >= 1)
  }

  SearchResponse knn_search(const SearchRequest& request) const override {
    validate_knn(request, db_.cols(), db_.rows(), built_, "bruteforce");
    SearchResponse response;
    response.knn = bf_knn(*request.queries, db_, request.k, {}, &norms_);
    if (request.options.collect_stats) {
      response.stats.queries = request.queries->rows();
      response.stats.list_dist_evals =
          static_cast<std::uint64_t>(request.queries->rows()) * db_.rows();
    }
    return response;
  }

  RangeResponse range_search(const RangeRequest& request) const override {
    validate_range(request, db_.cols(), built_, "bruteforce");
    const Matrix<float>& Q = *request.queries;
    const Euclidean metric{};
    RangeResponse response;
    response.ids.resize(Q.rows());
    parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
      const float* q = Q.row(qi);
      for (index_t j = 0; j < db_.rows(); ++j)
        if (metric(q, db_.row(j), db_.cols()) <= request.radius)
          response.ids[qi].push_back(j);
    });
    counters::add_dist_evals(static_cast<std::uint64_t>(Q.rows()) *
                             db_.rows());
    if (request.options.collect_stats) {
      response.stats.queries = Q.rows();
      response.stats.list_dist_evals =
          static_cast<std::uint64_t>(Q.rows()) * db_.rows();
    }
    return response;
  }

  void save(std::ostream& os) const override {
    io::write_pod(os, io::kMagicBruteForce);
    io::write_pod(os, io::kFormatVersion);
    io::write_matrix(os, db_);
  }

  static std::unique_ptr<Index> load(std::istream& is) {
    io::expect_pod(is, io::kMagicBruteForce, "bruteforce magic");
    io::expect_pod(is, io::kFormatVersion, "bruteforce version");
    auto index = std::make_unique<BruteForceBackend>();
    index->db_ = io::read_matrix(is);
    index->norms_ = make_row_norms_cache(index->db_);  // derived, not stored
    index->built_ = true;
    return index;
  }

  IndexInfo info() const override {
    IndexInfo info;
    info.backend = "bruteforce";
    info.size = db_.rows();
    info.dim = db_.cols();
    info.exact = true;
    info.supports_range = true;
    info.supports_save = true;
    info.memory_bytes = db_.size() * sizeof(float);
    info.kernel_isa = dispatch::isa_name(dispatch::active_isa());
    return info;
  }

 private:
  Matrix<float> db_;
  RowNormsCache norms_;
  bool built_ = false;
};

[[maybe_unused]] const bool auto_registered = (register_bruteforce(), true);

}  // namespace

void register_bruteforce() {
  register_backend(
      {.name = "bruteforce",
       .create = [](const IndexOptions&) -> std::unique_ptr<Index> {
         return std::make_unique<BruteForceBackend>();
       },
       .magic = io::kMagicBruteForce,
       .load = BruteForceBackend::load});
}

}  // namespace rbc::backends
