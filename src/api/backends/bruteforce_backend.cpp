// "bruteforce" backend: BF(Q, X) as an Index. The reference answer every
// exact backend must match, and the baseline every speedup is measured
// against. Owns a copy of the database; supports range search and
// serialization (the format is the metric tag plus the matrix).
//
// The full metric matrix lives here: "l2" and "l1" scan directly through
// the dispatched kernels, "cosine" is L2 over unit-normalized rows (rows
// normalized once at build, queries per batch, distances converted back),
// and "ip" — which no pruning structure can serve — ranks by negated dot
// product. This is the only backend that accepts "ip".
#include <cmath>
#include <istream>
#include <ostream>

#include "api/backends/backends.hpp"
#include "api/metrics.hpp"
#include "api/registry.hpp"
#include "bruteforce/bf.hpp"
#include "distance/dispatch.hpp"
#include "metricspace/generic_backend.hpp"
#include "metricspace/space.hpp"
#include "mutate/mutable_index.hpp"
#include "rbc/serialize_io.hpp"

namespace rbc::backends {

namespace {

class BruteForceBackend final : public Index {
 public:
  explicit BruteForceBackend(const IndexOptions& options)
      : kind_(metric::require(
            "bruteforce", options.metric,
            {metric::Kind::kL2, metric::Kind::kL1, metric::Kind::kCosine,
             metric::Kind::kIp})),
        storage_(require_scan_storage("bruteforce", options.storage, kind_)) {}

  void build(const Matrix<float>& X) override {
    db_ = X.clone();
    // Cosine = L2 on unit rows: the one-time build transform.
    if (kind_ == metric::Kind::kCosine) metric::normalize_rows(db_);
    // Row norms once at build: the tiled batch path's GEMM-form corrections
    // and the ip prefilter's max-norm slack (an O(n d) pass that must not
    // be paid per search).
    norms_ = make_row_norms_cache(db_);
    // Compressed scan tier: codes built over the transform-space rows (the
    // space every scan and re-measure runs in).
    qstore_ = quant::quantize(storage_, db_);
    built_ = true;  // an empty database is a valid built state (k-NN against
                    // it is a request error: k > size for every k >= 1)
  }

  SearchResponse knn_search(const SearchRequest& request) const override {
    validate_knn(request, db_.cols(), db_.rows(), built_, "bruteforce",
                 metric::name(kind_));
    SearchResponse response;
    const metric::QueryTransform q(kind_, *request.queries);
    switch (kind_) {
      case metric::Kind::kL2:
      case metric::Kind::kCosine:
        // Quantized tier: the hot scan reads the fp16/int8 codes; survivors
        // of the error-inflated bound are re-measured against db_, so the
        // answer is bit-identical to the float path (kernel_scan.hpp).
        response.knn =
            qstore_.active()
                ? bf_knn_quantized(q.queries(), db_, qstore_, request.k,
                                   Euclidean{})
                : bf_knn(q.queries(), db_, request.k, Euclidean{}, &norms_);
        break;
      case metric::Kind::kL1:
        response.knn = bf_knn(q.queries(), db_, request.k, L1{});
        break;
      case metric::Kind::kIp:
        response.knn = bf_knn(q.queries(), db_, request.k, InnerProduct{},
                              &norms_);
        break;
    }
    q.finish(response.knn.dists);
    if (request.options.collect_stats) {
      response.stats.queries = request.queries->rows();
      response.stats.list_dist_evals =
          static_cast<std::uint64_t>(request.queries->rows()) * db_.rows();
    }
    return response;
  }

  RangeResponse range_search(const RangeRequest& request) const override {
    validate_range(request, db_.cols(), built_, "bruteforce",
                   metric::name(kind_));
    // Cosine: normalized queries against the (already normalized) rows,
    // with the radius mapped into the normalized-L2 space.
    const metric::QueryTransform qt(kind_, *request.queries);
    const Matrix<float>& Q = qt.queries();
    const float radius = qt.radius(request.radius);

    RangeResponse response;
    response.ids.resize(Q.rows());
    parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
      const float* q = Q.row(qi);
      for (index_t j = 0; j < db_.rows(); ++j) {
        float d = 0.0f;
        switch (kind_) {
          case metric::Kind::kL2:
          case metric::Kind::kCosine:
            d = Euclidean{}(q, db_.row(j), db_.cols());
            break;
          case metric::Kind::kL1:
            d = L1{}(q, db_.row(j), db_.cols());
            break;
          case metric::Kind::kIp:
            d = InnerProduct{}(q, db_.row(j), db_.cols());
            break;
        }
        if (d <= radius) response.ids[qi].push_back(j);
      }
    });
    counters::add_dist_evals(static_cast<std::uint64_t>(Q.rows()) *
                             db_.rows());
    if (request.options.collect_stats) {
      response.stats.queries = Q.rows();
      response.stats.list_dist_evals =
          static_cast<std::uint64_t>(Q.rows()) * db_.rows();
    }
    return response;
  }

  void save(std::ostream& os) const override {
    io::write_pod(os, io::kMagicBruteForce);
    // float32 keeps the version-2 byte layout; compressed builds write the
    // version-4 header and append the code store after the matrix.
    io::write_storage_header(os, metric::name(kind_), quant::name(storage_));
    io::write_matrix(os, db_);
    if (storage_ != quant::Storage::kFloat32)
      io::write_quantized_store(os, qstore_);
  }

  static std::unique_ptr<Index> load(std::istream& is) {
    io::expect_pod(is, io::kMagicBruteForce, "bruteforce magic");
    std::string storage_name;
    const std::string metric_name =
        io::read_metric_header(is, "bruteforce header", nullptr,
                               &storage_name);
    metric::Kind kind{};
    if (!metric::lookup(metric_name, kind))
      throw std::runtime_error(
          "rbc::io: corrupt bruteforce stream (unknown metric tag '" +
          metric_name + "')");
    quant::Storage storage{};
    if (!quant::lookup(storage_name, storage))
      throw std::runtime_error(
          "rbc::io: corrupt bruteforce stream (unknown storage tag '" +
          storage_name + "')");
    IndexOptions options;
    options.metric = metric_name;
    options.storage = storage_name;
    std::unique_ptr<BruteForceBackend> index;
    try {
      index = std::make_unique<BruteForceBackend>(options);
    } catch (const std::invalid_argument& e) {
      // e.g. a quantized tag on a metric that cannot serve it: file
      // corruption, not a caller error.
      throw std::runtime_error(
          std::string("rbc::io: corrupt bruteforce stream (") + e.what() +
          ")");
    }
    index->db_ = io::read_matrix(is);  // cosine rows were saved normalized
    index->norms_ = make_row_norms_cache(index->db_);  // derived, not stored
    if (storage != quant::Storage::kFloat32) {
      index->qstore_ = io::read_quantized_store(is);
      if (index->qstore_.mode != storage ||
          index->qstore_.rows != index->db_.rows() ||
          (index->qstore_.rows > 0 &&
           index->qstore_.cols != index->db_.cols()))
        throw std::runtime_error(
            "rbc::io: corrupt bruteforce stream (quantized store disagrees "
            "with the matrix)");
    }
    index->built_ = true;
    return index;
  }

  IndexInfo info() const override {
    IndexInfo info;
    info.backend = "bruteforce";
    info.metric = metric::name(kind_);
    info.supported_metrics =
        metric::names({metric::Kind::kL2, metric::Kind::kL1,
                       metric::Kind::kCosine, metric::Kind::kIp});
    info.storage = quant::name(storage_);
    info.supported_storage = scan_storage_names(kind_);
    info.size = db_.rows();
    info.dim = db_.cols();
    info.exact = true;
    info.supports_range = true;
    info.supports_save = true;
    info.memory_bytes =
        db_.size() * sizeof(float) + qstore_.memory_bytes();
    info.kernel_isa = dispatch::isa_name(dispatch::active_isa());
    // Metric-space names this host also serves (through the generic payload
    // dispatch in the factory lambda below).
    info.supported_spaces = metricspace::space_names();
    return info;
  }

 private:
  metric::Kind kind_;
  quant::Storage storage_;
  Matrix<float> db_;
  quant::QuantizedStore qstore_;
  RowNormsCache norms_;
  bool built_ = false;
};

[[maybe_unused]] const bool auto_registered = (register_bruteforce(), true);

}  // namespace

void register_bruteforce() {
  // Wrapped in the mutable delta-shard adapter: make_index("bruteforce")
  // instances support insert()/remove() (mutate/mutable_index.hpp).
  register_backend(mutate::wrap(
      {.name = "bruteforce",
       .create = [](const IndexOptions& options) -> std::unique_ptr<Index> {
         // A metric-space name selects the generic payload variant of this
         // host algorithm (strings, graphs, user metrics); dense names
         // build the matrix-backed index as always.
         if (metricspace::space_registered(options.metric))
           return metricspace::make_generic(metricspace::Algo::kBruteForce,
                                            options);
         return std::make_unique<BruteForceBackend>(options);
       },
       .magic = io::kMagicBruteForce,
       .load = BruteForceBackend::load}));
}

}  // namespace rbc::backends
