// "rbc-oneshot" backend: the paper's probabilistic one-shot Random Ball
// Cover behind the unified interface (exact = false: Theorem 2 recall, not a
// guarantee). Reuses the concrete class's kMagicOneShot serialization.
#include <istream>
#include <ostream>

#include "api/backends/backends.hpp"
#include "api/registry.hpp"
#include "distance/dispatch.hpp"
#include "rbc/rbc_oneshot.hpp"

namespace rbc::backends {

namespace {

class RbcOneShotBackend final : public Index {
 public:
  explicit RbcOneShotBackend(const IndexOptions& options)
      : params_(options.rbc) {}

  void build(const Matrix<float>& X) override {
    index_.build(X, params_);
    built_ = true;
  }

  SearchResponse knn_search(const SearchRequest& request) const override {
    validate_knn(request, index_.dim(), index_.size(), built_,
                 "rbc-oneshot");
    SearchResponse response;
    response.knn = index_.search(
        *request.queries, request.k,
        request.options.collect_stats ? &response.stats : nullptr);
    return response;
  }

  void save(std::ostream& os) const override { index_.save(os); }

  static std::unique_ptr<Index> load(std::istream& is) {
    auto backend = std::make_unique<RbcOneShotBackend>(IndexOptions{});
    backend->index_ = RbcOneShotIndex<Euclidean>::load(is);
    backend->params_ = backend->index_.params();
    backend->built_ = true;
    return backend;
  }

  IndexInfo info() const override {
    IndexInfo info;
    info.backend = "rbc-oneshot";
    info.size = index_.size();
    info.dim = index_.dim();
    info.exact = false;  // probabilistic recall (paper Theorem 2)
    info.supports_range = false;
    info.supports_save = true;
    info.memory_bytes = built_ ? index_.memory_bytes() : 0;
    info.kernel_isa = dispatch::isa_name(dispatch::active_isa());
    return info;
  }

 private:
  RbcParams params_;
  RbcOneShotIndex<Euclidean> index_;
  bool built_ = false;
};

[[maybe_unused]] const bool auto_registered = (register_rbc_oneshot(), true);

}  // namespace

void register_rbc_oneshot() {
  register_backend(
      {.name = "rbc-oneshot",
       .create = [](const IndexOptions& options) -> std::unique_ptr<Index> {
         return std::make_unique<RbcOneShotBackend>(options);
       },
       .magic = io::kMagicOneShot,
       .load = RbcOneShotBackend::load});
}

}  // namespace rbc::backends
