// "rbc-oneshot" backend: the paper's probabilistic one-shot Random Ball
// Cover behind the unified interface (exact = false: Theorem 2 recall, not a
// guarantee). Metric support mirrors rbc-exact — "l2"/"l1" pick the
// matching RbcOneShotIndex<M> instantiation, "cosine" is the Euclidean
// index over unit-normalized rows — and the serialization wraps the
// concrete kMagicOneShot format in the version-2 metric header (version-1
// files load as "l2").
#include <istream>
#include <ostream>
#include <variant>

#include "api/backends/backends.hpp"
#include "api/metrics.hpp"
#include "api/registry.hpp"
#include "distance/dispatch.hpp"
#include "metricspace/generic_backend.hpp"
#include "metricspace/space.hpp"
#include "mutate/mutable_index.hpp"
#include "rbc/rbc_oneshot.hpp"
#include "rbc/serialize_io.hpp"

namespace rbc::backends {

namespace {

class RbcOneShotBackend final : public Index {
 public:
  explicit RbcOneShotBackend(const IndexOptions& options)
      : kind_(metric::require(
            "rbc-oneshot", options.metric,
            {metric::Kind::kL2, metric::Kind::kL1, metric::Kind::kCosine})),
        storage_(require_scan_storage("rbc-oneshot", options.storage, kind_)),
        params_(options.rbc) {
    if (kind_ == metric::Kind::kL1) index_.emplace<RbcOneShotIndex<L1>>();
    // Quantized modes imply the Euclidean variant. One-shot search is
    // already approximate, so the quantized scan runs standalone — no
    // re-measure pass (see RbcOneShotIndex::search_one).
    if (storage_ != quant::Storage::kFloat32)
      std::get<RbcOneShotIndex<Euclidean>>(index_).set_storage(storage_);
  }

  void build(const Matrix<float>& X) override {
    if (kind_ == metric::Kind::kCosine) {
      std::get<RbcOneShotIndex<Euclidean>>(index_).build(
          metric::normalized_clone(X), params_);
    } else {
      std::visit([&](auto& index) { index.build(X, params_); }, index_);
    }
    built_ = true;
  }

  SearchResponse knn_search(const SearchRequest& request) const override {
    validate_knn(request, dim(), size(), built_, "rbc-oneshot",
                 metric::name(kind_));
    SearchResponse response;
    SearchStats* stats =
        request.options.collect_stats ? &response.stats : nullptr;
    const metric::QueryTransform q(kind_, *request.queries);
    response.knn = std::visit(
        [&](const auto& index) {
          return index.search(q.queries(), request.k, stats);
        },
        index_);
    q.finish(response.knn.dists);
    return response;
  }

  void save(std::ostream& os) const override {
    io::write_pod(os, io::kMagicOneShot);
    const quant::Storage live = live_storage();
    io::write_storage_header(os, metric::name(kind_), quant::name(live));
    std::visit([&](const auto& index) { index.save(os); }, index_);
    if (live != quant::Storage::kFloat32)
      io::write_quantized_store(
          os,
          std::get<RbcOneShotIndex<Euclidean>>(index_).quantized_store());
  }

  static std::unique_ptr<Index> load(std::istream& is) {
    const std::istream::pos_type start = is.tellg();
    io::expect_pod(is, io::kMagicOneShot, "rbc-oneshot magic");
    bool legacy = false;
    std::string storage_name;
    const std::string metric_name = io::read_metric_header(
        is, "rbc-oneshot header", &legacy, &storage_name);
    metric::Kind kind{};
    if (!metric::lookup(metric_name, kind) || kind == metric::Kind::kIp)
      throw std::runtime_error(
          "rbc::io: corrupt rbc-oneshot stream (bad metric tag '" +
          metric_name + "')");
    quant::Storage storage{};
    if (!quant::lookup(storage_name, storage))
      throw std::runtime_error(
          "rbc::io: corrupt rbc-oneshot stream (unknown storage tag '" +
          storage_name + "')");
    if (legacy) {
      is.seekg(start);
      if (!is)
        throw std::runtime_error(
            "rbc::load_index: stream must be seekable");
    }
    IndexOptions options;
    options.metric = metric_name;
    options.storage = storage_name;
    std::unique_ptr<RbcOneShotBackend> backend;
    try {
      backend = std::make_unique<RbcOneShotBackend>(options);
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error(
          std::string("rbc::io: corrupt rbc-oneshot stream (") + e.what() +
          ")");
    }
    if (kind == metric::Kind::kL1)
      backend->index_ = RbcOneShotIndex<L1>::load(is);
    else
      backend->index_ = RbcOneShotIndex<Euclidean>::load(is);
    if (storage != quant::Storage::kFloat32)
      std::get<RbcOneShotIndex<Euclidean>>(backend->index_)
          .adopt_quantized_store(io::read_quantized_store(is));
    backend->params_ = std::visit(
        [](const auto& index) { return index.params(); }, backend->index_);
    backend->built_ = true;
    return backend;
  }

  IndexInfo info() const override {
    IndexInfo info;
    info.backend = "rbc-oneshot";
    info.metric = metric::name(kind_);
    info.supported_metrics = metric::names(
        {metric::Kind::kL2, metric::Kind::kL1, metric::Kind::kCosine});
    info.storage = quant::name(live_storage());
    info.supported_storage = scan_storage_names(kind_);
    info.size = size();
    info.dim = dim();
    info.exact = false;  // probabilistic recall (paper Theorem 2)
    info.supports_range = false;
    info.supports_save = true;
    info.memory_bytes =
        built_ ? std::visit(
                     [](const auto& index) { return index.memory_bytes(); },
                     index_)
               : 0;
    info.kernel_isa = dispatch::isa_name(dispatch::active_isa());
    // Metric-space names this host also serves (through the generic payload
    // dispatch in the factory lambda below).
    info.supported_spaces = metricspace::space_names();
    return info;
  }

 private:
  index_t size() const {
    return std::visit([](const auto& index) { return index.size(); }, index_);
  }
  index_t dim() const {
    return std::visit([](const auto& index) { return index.dim(); }, index_);
  }
  /// The storage mode actually backing scans (float32 for an empty build,
  /// where there are no codes to scan).
  quant::Storage live_storage() const {
    if (storage_ == quant::Storage::kFloat32) return storage_;
    const auto& index = std::get<RbcOneShotIndex<Euclidean>>(index_);
    return built_ && index.size() > 0 ? index.storage() : storage_;
  }

  metric::Kind kind_;
  quant::Storage storage_;
  RbcParams params_;
  std::variant<RbcOneShotIndex<Euclidean>, RbcOneShotIndex<L1>> index_;
  bool built_ = false;
};

[[maybe_unused]] const bool auto_registered = (register_rbc_oneshot(), true);

}  // namespace

void register_rbc_oneshot() {
  // Wrapped in the mutable delta-shard adapter (mutate/mutable_index.hpp).
  register_backend(mutate::wrap(
      {.name = "rbc-oneshot",
       .create = [](const IndexOptions& options) -> std::unique_ptr<Index> {
         // A metric-space name selects the generic payload variant of this
         // host algorithm (strings, graphs, user metrics); dense names
         // build the matrix-backed index as always.
         if (metricspace::space_registered(options.metric))
           return metricspace::make_generic(metricspace::Algo::kRbcOneShot,
                                            options);
         return std::make_unique<RbcOneShotBackend>(options);
       },
       .magic = io::kMagicOneShot,
       .load = RbcOneShotBackend::load}));
}

}  // namespace rbc::backends
