// Tree-baseline backends ("kdtree", "balltree", "covertree") behind the
// unified interface. The three concrete trees are non-owning and answer one
// query at a time, so they share one adapter shape: own a copy of the
// database, batch the serial per-query knn() in parallel, and serialize the
// database plus build knobs, rebuilding deterministically on load (the
// restored tree is identical). A traits struct supplies what differs — the
// tree type, registry name, format magic, and which IndexOptions knobs the
// build consumes and the file persists.
#include <istream>
#include <ostream>

#include "api/backends/backends.hpp"
#include "api/registry.hpp"
#include "baselines/balltree.hpp"
#include "baselines/covertree.hpp"
#include "baselines/kdtree.hpp"
#include "rbc/serialize_io.hpp"

namespace rbc::backends {

namespace {

template <class Traits>
class TreeBackend final : public Index {
 public:
  explicit TreeBackend(const IndexOptions& options) : options_(options) {}

  void build(const Matrix<float>& X) override {
    db_ = X.clone();
    Traits::build(tree_, db_, options_);
    built_ = true;
  }

  SearchResponse knn_search(const SearchRequest& request) const override {
    validate_knn(request, db_.cols(), db_.rows(), built_, Traits::kName);
    SearchResponse response;
    response.knn = batch_knn(*request.queries, request.k,
                             [&](const float* q, TopK& top) {
                               tree_.knn(q, request.k, top);
                             });
    if (request.options.collect_stats)
      response.stats.queries = request.queries->rows();
    return response;
  }

  void save(std::ostream& os) const override {
    io::write_pod(os, Traits::kMagic);
    io::write_pod(os, io::kFormatVersion);
    Traits::save_knobs(os, options_);
    io::write_matrix(os, db_);
  }

  static std::unique_ptr<Index> load(std::istream& is) {
    io::expect_pod(is, Traits::kMagic, Traits::kName);
    io::expect_pod(is, io::kFormatVersion, Traits::kName);
    IndexOptions options;
    Traits::load_knobs(is, options);
    auto backend = std::make_unique<TreeBackend>(options);
    backend->build(io::read_matrix(is));
    return backend;
  }

  IndexInfo info() const override {
    IndexInfo info;
    info.backend = Traits::kName;
    info.size = db_.rows();
    info.dim = db_.cols();
    info.exact = true;
    info.supports_range = false;
    info.supports_save = true;
    info.memory_bytes = db_.size() * sizeof(float);
    return info;
  }

 private:
  IndexOptions options_;
  Matrix<float> db_;
  typename Traits::Tree tree_;
  bool built_ = false;
};

struct KdTreeTraits {
  using Tree = KdTree;
  static constexpr const char* kName = "kdtree";
  static constexpr std::uint32_t kMagic = io::kMagicKdTree;
  static void build(Tree& tree, const Matrix<float>& db,
                    const IndexOptions& options) {
    tree.build(db, options.leaf_size);
  }
  static void save_knobs(std::ostream& os, const IndexOptions& options) {
    io::write_pod(os, options.leaf_size);
  }
  static void load_knobs(std::istream& is, IndexOptions& options) {
    io::read_pod(is, options.leaf_size);
  }
};

struct BallTreeTraits {
  using Tree = BallTree<Euclidean>;
  static constexpr const char* kName = "balltree";
  static constexpr std::uint32_t kMagic = io::kMagicBallTree;
  static void build(Tree& tree, const Matrix<float>& db,
                    const IndexOptions& options) {
    tree.build(db, options.leaf_size, {}, options.seed);
  }
  // The pivot-pair sampling seed must be persisted for the restored tree to
  // be identical.
  static void save_knobs(std::ostream& os, const IndexOptions& options) {
    io::write_pod(os, options.leaf_size);
    io::write_pod(os, options.seed);
  }
  static void load_knobs(std::istream& is, IndexOptions& options) {
    io::read_pod(is, options.leaf_size);
    io::read_pod(is, options.seed);
  }
};

struct CoverTreeTraits {
  using Tree = CoverTree<Euclidean>;
  static constexpr const char* kName = "covertree";
  static constexpr std::uint32_t kMagic = io::kMagicCoverTree;
  static void build(Tree& tree, const Matrix<float>& db,
                    const IndexOptions&) {
    tree.build(db);
  }
  static void save_knobs(std::ostream&, const IndexOptions&) {}
  static void load_knobs(std::istream&, IndexOptions&) {}
};

template <class Traits>
void register_tree() {
  register_backend(
      {.name = Traits::kName,
       .create = [](const IndexOptions& options) -> std::unique_ptr<Index> {
         return std::make_unique<TreeBackend<Traits>>(options);
       },
       .magic = Traits::kMagic,
       .load = TreeBackend<Traits>::load});
}

[[maybe_unused]] const bool auto_registered =
    (register_kdtree(), register_balltree(), register_covertree(), true);

}  // namespace

void register_kdtree() { register_tree<KdTreeTraits>(); }
void register_balltree() { register_tree<BallTreeTraits>(); }
void register_covertree() { register_tree<CoverTreeTraits>(); }

}  // namespace rbc::backends
