// Tree-baseline backends ("kdtree", "balltree", "covertree") behind the
// unified interface. The three concrete trees are non-owning and answer one
// query at a time, so they share one adapter shape: own a copy of the
// database, batch the serial per-query knn() in parallel, and serialize the
// database plus build knobs, rebuilding deterministically on load (the
// restored tree is identical). A traits struct supplies what differs — the
// tree variant type, registry name, format magic, supported metric set, and
// which IndexOptions knobs the build consumes and the file persists.
//
// Metrics: trees prune with the triangle inequality, so only true metrics
// qualify. The metric ball tree and cover tree are metric-generic templates
// and serve "l1" through their L1 instantiations; the kd-tree's
// axis-aligned split planes bound L2 distances specifically, so it stays
// "l2"-shaped. All three serve "cosine" as L2 over unit-normalized rows
// (the shared build/query transform of api/metrics.hpp) with distances
// converted back after search.
#include <istream>
#include <ostream>
#include <span>
#include <variant>

#include "api/backends/backends.hpp"
#include "api/metrics.hpp"
#include "api/registry.hpp"
#include "baselines/balltree.hpp"
#include "baselines/covertree.hpp"
#include "baselines/kdtree.hpp"
#include "mutate/mutable_index.hpp"
#include "rbc/serialize_io.hpp"

namespace rbc::backends {

namespace {

template <class Traits>
class TreeBackend final : public Index {
 public:
  explicit TreeBackend(const IndexOptions& options)
      : kind_(metric::require(Traits::kName, options.metric,
                              Traits::supported())),
        options_(options) {
    // Tree traversals touch individual rows, not contiguous scan ranges —
    // no compressed tier here.
    quant::require(Traits::kName, options.storage,
                   {quant::Storage::kFloat32});
  }

  void build(const Matrix<float>& X) override {
    db_ = kind_ == metric::Kind::kCosine ? metric::normalized_clone(X)
                                         : X.clone();
    Traits::build(tree_, db_, options_, kind_);
    built_ = true;
  }

  SearchResponse knn_search(const SearchRequest& request) const override {
    validate_knn(request, db_.cols(), db_.rows(), built_, Traits::kName,
                 metric::name(kind_));
    const metric::QueryTransform qt(kind_, *request.queries);
    SearchResponse response;
    response.knn =
        batch_knn(qt.queries(), request.k, [&](const float* q, TopK& top) {
          std::visit([&](const auto& tree) { tree.knn(q, request.k, top); },
                     tree_);
        });
    qt.finish(response.knn.dists);
    if (request.options.collect_stats)
      response.stats.queries = request.queries->rows();
    return response;
  }

  void save(std::ostream& os) const override {
    io::write_pod(os, Traits::kMagic);
    io::write_metric_header(os, metric::name(kind_));
    Traits::save_knobs(os, options_);
    io::write_matrix(os, db_);  // cosine rows stored normalized
  }

  static std::unique_ptr<Index> load(std::istream& is) {
    io::expect_pod(is, Traits::kMagic, Traits::kName);
    const std::string metric_name =
        io::read_metric_header(is, Traits::kName);
    IndexOptions options;
    options.metric = metric_name;
    Traits::load_knobs(is, options);
    // A bad metric tag is file corruption (runtime_error), not the
    // caller-facing invalid_argument the constructor throws.
    std::unique_ptr<TreeBackend> backend;
    try {
      backend = std::make_unique<TreeBackend>(options);
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error(std::string("rbc::io: corrupt ") +
                               Traits::kName + " stream (" + e.what() + ")");
    }
    // The stored rows already carry the build transform (cosine rows were
    // saved normalized) — adopt them as-is instead of calling build(),
    // which would re-normalize and perturb the restored tree's bits.
    backend->db_ = io::read_matrix(is);
    Traits::build(backend->tree_, backend->db_, backend->options_,
                  backend->kind_);
    backend->built_ = true;
    return backend;
  }

  IndexInfo info() const override {
    IndexInfo info;
    info.backend = Traits::kName;
    info.metric = metric::name(kind_);
    info.supported_metrics = metric::names(Traits::supported());
    info.size = db_.rows();
    info.dim = db_.cols();
    info.exact = true;
    info.supports_range = false;
    info.supports_save = true;
    info.memory_bytes = db_.size() * sizeof(float);
    return info;
  }

 private:
  metric::Kind kind_;
  IndexOptions options_;
  Matrix<float> db_;
  typename Traits::Tree tree_;
  bool built_ = false;
};

struct KdTreeTraits {
  using Tree = std::variant<KdTree>;
  static constexpr const char* kName = "kdtree";
  static constexpr std::uint32_t kMagic = io::kMagicKdTree;
  // Axis-aligned split planes bound L2 distances only: no "l1".
  static std::span<const metric::Kind> supported() {
    static constexpr metric::Kind kSet[] = {metric::Kind::kL2,
                                            metric::Kind::kCosine};
    return kSet;
  }
  static void build(Tree& tree, const Matrix<float>& db,
                    const IndexOptions& options, metric::Kind) {
    tree.emplace<KdTree>().build(db, options.leaf_size);
  }
  static void save_knobs(std::ostream& os, const IndexOptions& options) {
    io::write_pod(os, options.leaf_size);
  }
  static void load_knobs(std::istream& is, IndexOptions& options) {
    io::read_pod(is, options.leaf_size);
  }
};

struct BallTreeTraits {
  using Tree = std::variant<BallTree<Euclidean>, BallTree<L1>>;
  static constexpr const char* kName = "balltree";
  static constexpr std::uint32_t kMagic = io::kMagicBallTree;
  static std::span<const metric::Kind> supported() {
    static constexpr metric::Kind kSet[] = {
        metric::Kind::kL2, metric::Kind::kL1, metric::Kind::kCosine};
    return kSet;
  }
  static void build(Tree& tree, const Matrix<float>& db,
                    const IndexOptions& options, metric::Kind kind) {
    if (kind == metric::Kind::kL1)
      tree.emplace<BallTree<L1>>().build(db, options.leaf_size, {},
                                         options.seed);
    else
      tree.emplace<BallTree<Euclidean>>().build(db, options.leaf_size, {},
                                                options.seed);
  }
  // The pivot-pair sampling seed must be persisted for the restored tree to
  // be identical.
  static void save_knobs(std::ostream& os, const IndexOptions& options) {
    io::write_pod(os, options.leaf_size);
    io::write_pod(os, options.seed);
  }
  static void load_knobs(std::istream& is, IndexOptions& options) {
    io::read_pod(is, options.leaf_size);
    io::read_pod(is, options.seed);
  }
};

struct CoverTreeTraits {
  using Tree = std::variant<CoverTree<Euclidean>, CoverTree<L1>>;
  static constexpr const char* kName = "covertree";
  static constexpr std::uint32_t kMagic = io::kMagicCoverTree;
  static std::span<const metric::Kind> supported() {
    static constexpr metric::Kind kSet[] = {
        metric::Kind::kL2, metric::Kind::kL1, metric::Kind::kCosine};
    return kSet;
  }
  static void build(Tree& tree, const Matrix<float>& db,
                    const IndexOptions&, metric::Kind kind) {
    if (kind == metric::Kind::kL1)
      tree.emplace<CoverTree<L1>>().build(db);
    else
      tree.emplace<CoverTree<Euclidean>>().build(db);
  }
  static void save_knobs(std::ostream&, const IndexOptions&) {}
  static void load_knobs(std::istream&, IndexOptions&) {}
};

template <class Traits>
void register_tree() {
  // Wrapped in the mutable delta-shard adapter (mutate/mutable_index.hpp).
  register_backend(mutate::wrap(
      {.name = Traits::kName,
       .create = [](const IndexOptions& options) -> std::unique_ptr<Index> {
         return std::make_unique<TreeBackend<Traits>>(options);
       },
       .magic = Traits::kMagic,
       .load = TreeBackend<Traits>::load}));
}

[[maybe_unused]] const bool auto_registered =
    (register_kdtree(), register_balltree(), register_covertree(), true);

}  // namespace

void register_kdtree() { register_tree<KdTreeTraits>(); }
void register_balltree() { register_tree<BallTreeTraits>(); }
void register_covertree() { register_tree<CoverTreeTraits>(); }

}  // namespace rbc::backends
