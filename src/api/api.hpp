// Umbrella header of the unified index API.
//
//   #include "api/api.hpp"             // or "rbc/rbc.hpp", which includes it
//
//   auto index = rbc::make_index("rbc-exact");
//   index->build(database);
//   rbc::SearchResponse r = index->knn_search({.queries = &Q, .k = 5});
//
//   rbc::save_index(*index, "index.rbc");  // atomic: tmp + fsync + rename
//   ...
//   auto restored = rbc::load_index_file("index.rbc");
//
// (Stream-level save/load — index->save(std::ostream&) and
// rbc::load_index(std::istream&) — remain available for non-file sinks.)
//
// Shipped backend names: "bruteforce", "rbc-exact", "rbc-oneshot",
// "kdtree", "balltree", "covertree", "gpu-bf", "gpu-oneshot", plus a
// row-partitioned "sharded:<inner>" composite over any of them
// (see shard/sharded_index.hpp).
#pragma once

#include "api/index.hpp"
#include "api/persist.hpp"
#include "api/registry.hpp"
#include "api/search.hpp"
