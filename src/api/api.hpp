// Umbrella header of the unified index API.
//
//   #include "api/api.hpp"             // or "rbc/rbc.hpp", which includes it
//
//   auto index = rbc::make_index("rbc-exact");
//   index->build(database);
//   rbc::SearchResponse r = index->knn_search({.queries = &Q, .k = 5});
//
//   std::ofstream os("index.rbc", std::ios::binary);
//   index->save(os);
//   ...
//   std::ifstream is("index.rbc", std::ios::binary);
//   auto restored = rbc::load_index(is);   // backend resolved from magic
//
// Shipped backend names: "bruteforce", "rbc-exact", "rbc-oneshot",
// "kdtree", "balltree", "covertree", "gpu-bf", "gpu-oneshot", plus a
// row-partitioned "sharded:<inner>" composite over any of them
// (see shard/sharded_index.hpp).
#pragma once

#include "api/index.hpp"
#include "api/registry.hpp"
#include "api/search.hpp"
