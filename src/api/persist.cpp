#include "api/persist.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>

#include "api/registry.hpp"

namespace rbc {

namespace {

[[noreturn]] void fail(const char* what, const std::string& path) {
  throw std::system_error(errno, std::generic_category(),
                          std::string("rbc::save_index: ") + what + " '" +
                              path + "'");
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void save_index(const Index& index, const std::string& path) {
  // Serialize to memory first: a backend that throws mid-save (or one that
  // does not support save at all) must not leave a partial tmp file behind,
  // and the write below becomes one straight byte run.
  std::ostringstream buffer(std::ios::binary);
  index.save(buffer);
  const std::string bytes = buffer.str();

  const std::string tmp = path + ".tmp";
  const int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                      0644);
  if (fd < 0) fail("cannot create", tmp);
  auto abort_tmp = [&](const char* what) {
    const int saved = errno;
    close(fd);
    unlink(tmp.c_str());
    errno = saved;
    fail(what, tmp);
  };

  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      abort_tmp("write to");
    }
    off += static_cast<std::size_t>(n);
  }
  // The data must be on disk *before* the rename publishes the name: a
  // crash between rename and a later flush would otherwise leave `path`
  // pointing at garbage — the exact corruption this helper exists to
  // prevent.
  if (fsync(fd) < 0) abort_tmp("fsync");
  if (close(fd) < 0) {
    const int saved = errno;
    unlink(tmp.c_str());
    errno = saved;
    fail("close", tmp);
  }
  if (rename(tmp.c_str(), path.c_str()) < 0) {
    const int saved = errno;
    unlink(tmp.c_str());
    errno = saved;
    fail("rename into place", path);
  }
  // Make the rename itself durable. Best-effort: some filesystems refuse
  // directory fsync, and by this point `path` is already atomic-or-old.
  const int dir_fd =
      open(parent_dir(path).c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    fsync(dir_fd);
    close(dir_fd);
  }
}

std::unique_ptr<Index> load_index_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw std::runtime_error("rbc::load_index_file: cannot open '" + path +
                             "'");
  return load_index(is);
}

}  // namespace rbc
