#include "api/registry.hpp"

#include <algorithm>
#include <istream>
#include <mutex>
#include <stdexcept>

#include "api/backends/backends.hpp"
#include "metricspace/generic_backend.hpp"
#include "rbc/serialize_io.hpp"
#include "shard/sharded_index.hpp"

namespace rbc {

namespace {

/// Prefix of the composite backend names ("sharded:<inner>"). The shipped
/// variants are registered entries; anything else with the prefix resolves
/// generically below, so user-registered backends shard for free.
constexpr std::string_view kShardedPrefix = "sharded:";

struct Registry {
  std::mutex mutex;
  std::vector<BackendEntry> entries;

  static Registry& instance() {
    static Registry r;  // function-local: safe under cross-TU static init
    return r;
  }

  const BackendEntry* find_locked(std::string_view name) const {
    for (const BackendEntry& e : entries)
      if (e.name == name) return &e;
    return nullptr;
  }
};

/// Registers every built-in backend exactly once. Called before each lookup
/// so the builtins exist no matter how the library was linked.
void ensure_builtins() {
  static const bool once = [] {
    backends::register_bruteforce();
    backends::register_rbc_exact();
    backends::register_rbc_oneshot();
    backends::register_kdtree();
    backends::register_balltree();
    backends::register_covertree();
    backends::register_gpu();
    backends::register_sharded();
    return true;
  }();
  (void)once;
}

}  // namespace

bool register_backend(BackendEntry entry) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.find_locked(entry.name) != nullptr) return false;
  // A non-zero magic must be unique too: load_index dispatches on it, and a
  // duplicate would let a later registration hijack existing files. The
  // sharded composite's and the payload backend's magics are dispatched
  // natively, so they are never claimable either.
  if (entry.magic == io::kMagicSharded || entry.magic == io::kMagicPayload)
    return false;
  if (entry.magic != 0)
    for (const BackendEntry& e : reg.entries)
      if (e.magic == entry.magic) return false;
  reg.entries.push_back(std::move(entry));
  return true;
}

std::unique_ptr<Index> make_index(std::string_view name,
                                  const IndexOptions& options) {
  ensure_builtins();
  Registry& reg = Registry::instance();

  // Copy the factory out, then invoke it unlocked: a composing backend's
  // factory may legitimately call back into make_index/register_backend.
  std::function<std::unique_ptr<Index>(const IndexOptions&)> create;
  std::string known;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (const BackendEntry* e = reg.find_locked(name)) {
      create = e->create;
    } else {
      for (const BackendEntry& e : reg.entries) {
        if (!known.empty()) known += ", ";
        known += e.name;
      }
    }
  }
  if (create) return create(options);
  // Composite fallback: "sharded:<inner>" shards any registered backend,
  // not just the pre-registered variants (the inner name is validated by
  // the ShardedIndex constructor via make_index, which throws this same
  // exception type when it too is unknown).
  if (name.substr(0, kShardedPrefix.size()) == kShardedPrefix)
    return shard::make_sharded(name.substr(kShardedPrefix.size()), options);
  throw std::invalid_argument("rbc::make_index: unknown backend '" +
                              std::string(name) + "' (registered: " + known +
                              ")");
}

std::unique_ptr<Index> load_index(std::istream& is) {
  ensure_builtins();

  // Peek the format magic, then rewind so the backend loader (which
  // re-verifies it) sees the full stream.
  std::uint32_t magic = 0;
  const std::istream::pos_type start = is.tellg();
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!is) throw std::runtime_error("rbc::load_index: truncated stream");
  is.seekg(start);
  if (!is)
    throw std::runtime_error("rbc::load_index: stream must be seekable");

  // The sharded composite dispatches natively: one magic covers every
  // "sharded:<inner>" variant (the inner backend is named inside the
  // stream), which the one-magic-per-entry registry table cannot express.
  if (magic == io::kMagicSharded) return shard::ShardedIndex::load(is);

  // Payload (generic metric-space) files dispatch natively too: one magic
  // covers every host algorithm, and the hosts' registry entries already
  // own their dense magics.
  if (magic == io::kMagicPayload) return metricspace::load_payload_index(is);

  std::function<std::unique_ptr<Index>(std::istream&)> loader;
  {
    Registry& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const BackendEntry& e : reg.entries)
      if (e.magic != 0 && e.magic == magic && e.load) {
        loader = e.load;
        break;
      }
  }
  if (!loader)
    throw std::runtime_error(
        "rbc::load_index: no registered backend matches the stream's format "
        "magic (not an rbc index, or its backend was not linked in)");
  return loader(is);
}

std::vector<std::string> registered_backends() {
  ensure_builtins();
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.entries.size());
  for (const BackendEntry& e : reg.entries) names.push_back(e.name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace rbc
