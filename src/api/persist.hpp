// Crash-safe index persistence at the filesystem level.
//
// Index::save(std::ostream&) writes a stream; where that stream lands is
// the caller's problem — and a naive `std::ofstream(path)` is a data-loss
// bug: a crash (or a full disk) mid-write leaves a truncated file at
// `path`, destroying the previous good index. save_index() closes that
// hole with the standard atomic-replace protocol:
//
//   serialize to memory -> write <path>.tmp -> fsync(tmp) -> close
//     -> rename(tmp, path) -> fsync(parent dir)
//
// rename(2) is atomic on POSIX filesystems, so `path` only ever holds
// either the complete old index or the complete new one — never a torn
// mix — no matter where a crash lands (tested against interrupted-write
// fixtures in tests/test_corrupt_files.cpp). This matters doubly for
// serving: RbcServer's hot reload re-reads the file at `path` while a
// writer may be refreshing it — with atomic replacement the reload sees a
// complete index, old or new, never a truncated one. rbc_tool's build
// command saves through this helper.
#pragma once

#include <memory>
#include <string>

#include "api/index.hpp"

namespace rbc {

/// Atomically persists a built index at `path` (see file comment). The
/// intermediate `<path>.tmp` is cleaned up on failure. Throws
/// std::system_error on I/O failure and whatever Index::save throws
/// (std::runtime_error for backends without serialization support).
void save_index(const Index& index, const std::string& path);

/// Convenience: open `path` and restore via rbc::load_index(std::istream&).
/// Throws std::runtime_error when the file cannot be opened or no backend
/// claims its magic.
std::unique_ptr<Index> load_index_file(const std::string& path);

}  // namespace rbc
