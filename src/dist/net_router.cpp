#include "dist/net_router.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/rng.hpp"
#include "shard/merge.hpp"

namespace rbc::dist {

using serve::net::ErrorCode;
using serve::net::InfoMsg;
using serve::net::RbcClient;
using serve::net::RemoteError;

namespace {

std::string endpoint_name(const Endpoint& ep) {
  return ep.host + ":" + std::to_string(ep.port);
}

/// FNV-1a over the endpoint identity — a stable, process-independent seed
/// for the breaker's deterministic jitter (splitmix64 expands it; no global
/// RNG, per common/rng.hpp's CP.3 stance).
std::uint64_t endpoint_hash(const Endpoint& ep) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : ep.host) h = (h ^ static_cast<std::uint8_t>(c)) *
                             0x100000001b3ULL;
  h = (h ^ ep.port) * 0x100000001b3ULL;
  return h;
}

std::vector<std::vector<Endpoint>> singleton_groups(
    const std::vector<Endpoint>& shards) {
  std::vector<std::vector<Endpoint>> groups;
  groups.reserve(shards.size());
  for (const Endpoint& ep : shards) groups.push_back({ep});
  return groups;
}

}  // namespace

NetRouter::NetRouter(const std::vector<Endpoint>& shards,
                     RouterOptions options)
    : NetRouter(singleton_groups(shards), options) {}

NetRouter::NetRouter(const std::vector<std::vector<Endpoint>>& shard_replicas,
                     RouterOptions options)
    : options_(options) {
  if (shard_replicas.empty())
    throw std::invalid_argument("rbc::dist::NetRouter: no shard endpoints");

  shards_.resize(shard_replicas.size());
  for (std::size_t s = 0; s < shard_replicas.size(); ++s) {
    if (shard_replicas[s].empty())
      throw std::invalid_argument("rbc::dist::NetRouter: shard " +
                                  std::to_string(s) + " has no replicas");
    for (const Endpoint& ep : shard_replicas[s])
      shards_[s].replicas.push_back(Replica{.endpoint = ep});
  }

  // One live replica per shard is required up front: its INFO is the only
  // wire-observable source for the shard's row count, without which the
  // global partition cannot be derived. Replicas that fail here start with
  // an open breaker and are probed once traffic needs them.
  std::vector<InfoMsg> infos(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    bool live = false;
    std::string last_error = "no replicas";
    for (std::size_t r = 0; r < shards_[s].replicas.size() && !live; ++r) {
      Replica& replica = shards_[s].replicas[r];
      try {
        replica.client = std::make_unique<RbcClient>(
            replica.endpoint.host, replica.endpoint.port, options_.client);
        infos[s] = replica.client->info();
        replica.validated = true;  // it *defines* the topology checked below
        shards_[s].preferred = r;
        live = true;
      } catch (const std::exception& e) {
        last_error = e.what();
        record_failure(s, replica, stats_);
      }
    }
    if (!live)
      throw std::runtime_error(
          "rbc::dist::NetRouter: shard " + std::to_string(s) +
          " has no live replica (" + last_error + ")");
  }
  validate_topology(infos);
}

void NetRouter::validate_topology(const std::vector<InfoMsg>& infos) {
  dim_ = infos.front().dim;
  metric_ = infos.front().metric;
  backend_ = infos.front().backend;
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < infos.size(); ++s) {
    if (infos[s].dim != dim_ || infos[s].metric != metric_)
      throw std::runtime_error(
          "rbc::dist::NetRouter: shard " + std::to_string(s) +
          " disagrees on dim/metric (dim " + std::to_string(infos[s].dim) +
          " metric '" + infos[s].metric + "' vs dim " + std::to_string(dim_) +
          " metric '" + metric_ + "')");
    total += infos[s].size;
  }
  size_ = static_cast<index_t>(total);

  // The id mapping is a pure function of (total, S, partition): re-derive it
  // and check the shards actually hold those row counts, which is the only
  // part of the contract observable over the wire.
  global_ids_ =
      shard::partition_rows(size_, num_shards(), options_.partition);
  for (std::size_t s = 0; s < infos.size(); ++s)
    if (global_ids_[s].size() != infos[s].size)
      throw std::runtime_error(
          "rbc::dist::NetRouter: shard " + std::to_string(s) + " holds " +
          std::to_string(infos[s].size) + " rows but the " +
          std::string(shard::partition_name(options_.partition)) +
          " partition of " + std::to_string(size_) + " rows over " +
          std::to_string(shards_.size()) + " shards assigns it " +
          std::to_string(global_ids_[s].size()));
}

// ------------------------------------------------------- replica lifecycle --

RbcClient& NetRouter::ensure_connected(std::size_t s, Replica& replica,
                                       RouterStats& local) {
  const bool fresh = !replica.client;
  if (fresh)
    replica.client = std::make_unique<RbcClient>(
        replica.endpoint.host, replica.endpoint.port, options_.client);
  if (!replica.validated) {
    // A replica that was down (or never seen) may have been restarted with
    // the wrong index: re-check its identity against the topology before
    // trusting a single answer from it.
    const InfoMsg info = replica.client->info();
    if (info.dim != dim_ || info.metric != metric_ ||
        info.size != global_ids_[s].size()) {
      replica.client.reset();
      throw std::runtime_error(
          "rbc::dist::NetRouter: replica " + endpoint_name(replica.endpoint) +
          " of shard " + std::to_string(s) +
          " reports dim " + std::to_string(info.dim) + " metric '" +
          info.metric + "' size " + std::to_string(info.size) +
          ", expected dim " + std::to_string(dim_) + " metric '" + metric_ +
          "' size " + std::to_string(global_ids_[s].size()));
    }
    replica.validated = true;
  }
  if (fresh) local.reconnects += 1;
  return *replica.client;
}

void NetRouter::record_failure(std::size_t s, Replica& replica,
                               RouterStats& local) {
  (void)s;
  local.transport_errors += 1;
  replica.client.reset();
  replica.validated = false;  // whatever comes back up must re-prove itself
  replica.consecutive_failures += 1;
  if (replica.consecutive_failures >= options_.breaker_failures) {
    replica.open_count += 1;
    replica.open_until =
        Clock::now() + std::chrono::milliseconds(open_window_ms(replica));
    local.breaker_opens += 1;
  }
}

void NetRouter::record_success(Replica& replica) {
  replica.consecutive_failures = 0;
  replica.open_count = 0;
  replica.open_until = {};
}

std::uint32_t NetRouter::open_window_ms(const Replica& replica) const {
  const int doublings = std::min(replica.open_count - 1, 10);
  std::uint64_t window = options_.breaker_base_ms;
  window <<= doublings > 0 ? doublings : 0;
  window = std::min<std::uint64_t>(window, options_.breaker_max_ms);
  // Up to +25% jitter, a pure function of (endpoint, open_count): two
  // routers watching the same dead replica still spread their probes, yet
  // every run of a seeded test sees the same schedule.
  std::uint64_t seed = endpoint_hash(replica.endpoint) ^
                       (0x9e3779b97f4a7c15ULL *
                        static_cast<std::uint64_t>(replica.open_count));
  const std::uint64_t jitter = splitmix64(seed) % (window / 4 + 1);
  return static_cast<std::uint32_t>(window + jitter);
}

// ---------------------------------------------------------- failover core --

template <class Fn>
auto NetRouter::with_failover(std::size_t s,
                              std::optional<Clock::time_point> deadline,
                              RouterStats& local, Fn&& attempt) {
  Shard& shard = shards_[s];
  const std::size_t R = shard.replicas.size();
  int overload_retries_left = options_.max_retries;
  int failovers_left = options_.max_failovers;
  std::string last_error = "no attempt made";

  const auto shard_tag = [s] {
    return "rbc::dist::NetRouter: shard " + std::to_string(s);
  };
  // Remaining budget for the next attempt, >= 1 ms (0 would mean "no
  // deadline" on the wire). Budget exhaustion is checked separately.
  const auto remaining_ms = [&]() -> std::uint32_t {
    if (!deadline) return 0;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          *deadline - Clock::now())
                          .count();
    return static_cast<std::uint32_t>(std::max<std::int64_t>(1, left));
  };
  const auto out_of_budget = [&] {
    return deadline && Clock::now() >= *deadline;
  };

  for (;;) {
    if (out_of_budget()) {
      local.deadline_exceeded += 1;
      throw std::runtime_error(shard_tag() +
                               " deadline exhausted (last error: " +
                               last_error + ")");
    }

    // Pick the next usable replica, sticky on the last one that answered;
    // endpoints with an open breaker are skipped.
    const auto now = Clock::now();
    std::size_t pick = R;
    auto soonest = Clock::time_point::max();
    for (std::size_t i = 0; i < R; ++i) {
      const std::size_t r = (shard.preferred + i) % R;
      const Replica& replica = shard.replicas[r];
      if (replica.open_until > now) {
        soonest = std::min(soonest, replica.open_until);
        continue;
      }
      pick = r;
      break;
    }
    if (pick == R) {
      // Every breaker is open. Waiting is only useful if a window expires
      // inside the budget.
      if (deadline && soonest >= *deadline) {
        local.deadline_exceeded += 1;
        throw std::runtime_error(shard_tag() +
                                 " unreachable within deadline: every "
                                 "replica breaker is open (last error: " +
                                 last_error + ")");
      }
      std::this_thread::sleep_until(soonest);
      continue;
    }

    Replica& replica = shard.replicas[pick];
    // A previously-opened breaker whose window expired admits exactly this
    // attempt as its half-open probe: success closes it, failure re-opens
    // a doubled window (record_failure).
    if (replica.open_count > 0) local.breaker_probes += 1;
    local.requests += 1;
    try {
      RbcClient& client = ensure_connected(s, replica, local);
      auto result = attempt(client, remaining_ms());
      record_success(replica);
      shard.preferred = pick;
      return result;
    } catch (const RemoteError& e) {
      if (e.code() == ErrorCode::kOverloaded) {
        // The replica is alive and asking for space — honor the hint
        // instead of blaming the endpoint or failing over.
        if (overload_retries_left-- <= 0) throw;
        local.retries += 1;
        std::uint32_t sleep_ms = std::max(1u, e.retry_after_ms());
        if (deadline) sleep_ms = std::min(sleep_ms, remaining_ms());
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        continue;
      }
      if (e.code() == ErrorCode::kDeadlineExceeded) {
        // The server shed the request: the budget is gone everywhere.
        local.deadline_exceeded += 1;
        throw;
      }
      if (e.code() == ErrorCode::kShuttingDown) {
        // Graceful drain: this replica is leaving; move on like any other
        // transport-level loss.
        last_error = endpoint_name(replica.endpoint) + ": " + e.what();
        record_failure(s, replica, local);
      } else {
        // kBadRequest/kInternal: the server executed-and-refused; another
        // replica would refuse identically. Caller's problem.
        throw;
      }
    } catch (const std::exception& e) {
      // Transport or framing failure: connect refused, reset, timeout,
      // malformed frame, topology mismatch on revalidation.
      last_error = endpoint_name(replica.endpoint) + ": " + e.what();
      record_failure(s, replica, local);
    }

    if (failovers_left-- <= 0)
      throw std::runtime_error(shard_tag() + " unreachable after " +
                               std::to_string(options_.max_failovers) +
                               " failovers (last error: " + last_error + ")");
    local.failovers += 1;
    shard.preferred = (pick + 1) % R;
  }
}

// -------------------------------------------------------- scatter/gather --

PartialKnnResult NetRouter::scatter_knn(const Matrix<float>& queries,
                                        index_t k, std::uint32_t deadline_ms,
                                        bool partial) {
  const index_t nq = queries.rows();
  if (nq > 0 && queries.cols() != dim_)
    throw std::invalid_argument(
        "rbc::dist::NetRouter: query dimension " +
        std::to_string(queries.cols()) + " != shard dimension " +
        std::to_string(dim_));
  if (k == 0 || k > size_)
    throw std::invalid_argument("rbc::dist::NetRouter: k = " +
                                std::to_string(k) +
                                " out of range for total size " +
                                std::to_string(size_));
  const std::size_t S = shards_.size();
  PartialKnnResult out;
  out.shards.assign(S, {});
  if (nq == 0) {
    out.result = KnnResult(0, k);
    return out;
  }
  const std::optional<Clock::time_point> deadline =
      deadline_ms > 0 ? std::optional(Clock::now() + std::chrono::milliseconds(
                                                         deadline_ms))
                      : std::nullopt;

  // Scatter: one thread per shard (each drives its own replicas; RbcClient
  // is single-threaded but exclusively owned here). Request-level failures
  // (bad request, internal, persistent overload) are fatal in every mode
  // and carried back whole; availability failures mark the shard uncovered.
  std::vector<KnnResult> fanout(S);
  std::vector<index_t> shard_k(S);
  std::vector<std::exception_ptr> fatal(S);
  std::vector<RouterStats> local(S);  // per-thread counters, summed after join
  {
    std::vector<std::thread> threads;
    threads.reserve(S);
    for (std::size_t s = 0; s < S; ++s)
      threads.emplace_back([&, s] {
        try {
          shard_k[s] = std::min<index_t>(
              k, static_cast<index_t>(global_ids_[s].size()));
          fanout[s] = with_failover(
              s, deadline, local[s],
              [&](RbcClient& client, std::uint32_t remaining) {
                return client.knn(queries, shard_k[s], remaining);
              });
        } catch (const RemoteError& e) {
          if (e.code() == ErrorCode::kDeadlineExceeded) {
            out.shards[s] = {false, e.what()};
          } else {
            fatal[s] = std::current_exception();
          }
        } catch (const std::runtime_error& e) {
          out.shards[s] = {false, e.what()};
        } catch (...) {
          fatal[s] = std::current_exception();
        }
      });
    for (std::thread& t : threads) t.join();
  }
  for (const RouterStats& l : local) {
    stats_.requests += l.requests;
    stats_.retries += l.retries;
    stats_.transport_errors += l.transport_errors;
    stats_.failovers += l.failovers;
    stats_.reconnects += l.reconnects;
    stats_.breaker_opens += l.breaker_opens;
    stats_.breaker_probes += l.breaker_probes;
    stats_.deadline_exceeded += l.deadline_exceeded;
  }
  for (const std::exception_ptr& e : fatal)
    if (e) std::rethrow_exception(e);
  if (!partial && !out.complete())
    for (std::size_t s = 0; s < S; ++s)
      if (!out.shards[s].covered)
        throw std::runtime_error("rbc::dist::NetRouter: shard " +
                                 std::to_string(s) +
                                 " uncovered: " + out.shards[s].error);

  // Trust boundary: a shard's answer is wire data. Validate its shape and
  // every shard-local id before the merge indexes global_ids_ and the
  // result matrices with them (Matrix::at is assert-only in release), so a
  // mismatched or buggy shard yields a clean error, never an out-of-bounds
  // read.
  for (std::size_t s = 0; s < S; ++s) {
    if (!out.shards[s].covered) continue;
    const KnnResult& r = fanout[s];
    if (r.ids.rows() != nq || r.ids.cols() != shard_k[s] ||
        r.dists.rows() != nq || r.dists.cols() != shard_k[s])
      throw serve::net::ProtocolError(
          "rbc::dist::NetRouter: shard " + std::to_string(s) +
          " answered a " + std::to_string(r.ids.rows()) + " x " +
          std::to_string(r.ids.cols()) + " knn block for a " +
          std::to_string(nq) + " x " + std::to_string(shard_k[s]) +
          " request");
    const index_t rows_held = static_cast<index_t>(global_ids_[s].size());
    for (index_t qi = 0; qi < nq; ++qi) {
      const index_t* row = r.ids.row(qi);
      for (index_t j = 0; j < shard_k[s]; ++j)
        if (row[j] >= rows_held)
          throw serve::net::ProtocolError(
              "rbc::dist::NetRouter: shard " + std::to_string(s) +
              " answered local id " + std::to_string(row[j]) +
              " but holds only " + std::to_string(rows_held) + " rows");
    }
  }

  // Gather: the same exact merge the in-process composite runs, over the
  // covered shards. With every shard covered this is bit-identical to
  // sharded:<inner>; with fewer, exact over what answered (short rows pad
  // with kInvalidIndex/kInfDist like any k > coverage query).
  std::vector<shard::MergeInput> inputs;
  inputs.reserve(S);
  for (std::size_t s = 0; s < S; ++s)
    if (out.shards[s].covered)
      inputs.push_back({&fanout[s], shard_k[s], &global_ids_[s]});
  out.result = shard::merge_shard_topk(nq, k, inputs);
  stats_.queries += nq;
  if (!out.complete()) stats_.partial_answers += 1;
  return out;
}

PartialRangeResult NetRouter::scatter_range(const Matrix<float>& queries,
                                            dist_t radius,
                                            std::uint32_t deadline_ms,
                                            bool partial) {
  const index_t nq = queries.rows();
  if (nq > 0 && queries.cols() != dim_)
    throw std::invalid_argument(
        "rbc::dist::NetRouter: query dimension " +
        std::to_string(queries.cols()) + " != shard dimension " +
        std::to_string(dim_));
  const std::size_t S = shards_.size();
  PartialRangeResult out;
  out.shards.assign(S, {});
  out.ids.assign(nq, {});
  if (nq == 0) return out;
  const std::optional<Clock::time_point> deadline =
      deadline_ms > 0 ? std::optional(Clock::now() + std::chrono::milliseconds(
                                                         deadline_ms))
                      : std::nullopt;

  std::vector<std::vector<std::vector<index_t>>> fanout(S);
  std::vector<std::exception_ptr> fatal(S);
  std::vector<RouterStats> local(S);
  {
    std::vector<std::thread> threads;
    threads.reserve(S);
    for (std::size_t s = 0; s < S; ++s)
      threads.emplace_back([&, s] {
        try {
          fanout[s] = with_failover(
              s, deadline, local[s],
              [&](RbcClient& client, std::uint32_t remaining) {
                return client.range(queries, radius, remaining);
              });
        } catch (const RemoteError& e) {
          if (e.code() == ErrorCode::kDeadlineExceeded) {
            out.shards[s] = {false, e.what()};
          } else {
            fatal[s] = std::current_exception();
          }
        } catch (const std::runtime_error& e) {
          out.shards[s] = {false, e.what()};
        } catch (...) {
          fatal[s] = std::current_exception();
        }
      });
    for (std::thread& t : threads) t.join();
  }
  for (const RouterStats& l : local) {
    stats_.requests += l.requests;
    stats_.retries += l.retries;
    stats_.transport_errors += l.transport_errors;
    stats_.failovers += l.failovers;
    stats_.reconnects += l.reconnects;
    stats_.breaker_opens += l.breaker_opens;
    stats_.breaker_probes += l.breaker_probes;
    stats_.deadline_exceeded += l.deadline_exceeded;
  }
  for (const std::exception_ptr& e : fatal)
    if (e) std::rethrow_exception(e);
  if (!partial)
    for (std::size_t s = 0; s < S; ++s)
      if (!out.shards[s].covered)
        throw std::runtime_error("rbc::dist::NetRouter: shard " +
                                 std::to_string(s) +
                                 " uncovered: " + out.shards[s].error);

  // Same trust boundary as knn(): check shape and id ranges before the
  // remap indexes global_ids_ with wire-supplied shard-local ids.
  for (std::size_t s = 0; s < S; ++s) {
    if (!out.shards[s].covered) continue;
    if (fanout[s].size() != static_cast<std::size_t>(nq))
      throw serve::net::ProtocolError(
          "rbc::dist::NetRouter: shard " + std::to_string(s) + " answered " +
          std::to_string(fanout[s].size()) + " range rows for " +
          std::to_string(nq) + " queries");
    const index_t rows_held = static_cast<index_t>(global_ids_[s].size());
    for (const std::vector<index_t>& hits : fanout[s])
      for (index_t local_id : hits)
        if (local_id >= rows_held)
          throw serve::net::ProtocolError(
              "rbc::dist::NetRouter: shard " + std::to_string(s) +
              " answered local id " + std::to_string(local_id) +
              " but holds only " + std::to_string(rows_held) + " rows");
  }

  // Shard servers answer with shard-local ids sorted ascending; remapping
  // through the monotone global_ids keeps each shard's run sorted, and a
  // k-way append + sort matches the in-process composite's output exactly.
  for (index_t qi = 0; qi < nq; ++qi) {
    std::vector<index_t>& hits = out.ids[qi];
    for (std::size_t s = 0; s < S; ++s) {
      if (!out.shards[s].covered) continue;
      for (index_t local_id : fanout[s][qi])
        hits.push_back(global_ids_[s][local_id]);
    }
    std::sort(hits.begin(), hits.end());
  }
  stats_.queries += nq;
  if (!out.complete()) stats_.partial_answers += 1;
  return out;
}

// ------------------------------------------------------------- public API --

KnnResult NetRouter::knn(const Matrix<float>& queries, index_t k,
                         std::uint32_t deadline_ms) {
  return std::move(
      scatter_knn(queries, k, deadline_ms, /*partial=*/false).result);
}

std::vector<std::vector<index_t>> NetRouter::range(
    const Matrix<float>& queries, dist_t radius, std::uint32_t deadline_ms) {
  return std::move(
      scatter_range(queries, radius, deadline_ms, /*partial=*/false).ids);
}

PartialKnnResult NetRouter::knn_partial(const Matrix<float>& queries,
                                        index_t k,
                                        std::uint32_t deadline_ms) {
  if (!options_.allow_partial)
    throw std::invalid_argument(
        "rbc::dist::NetRouter: knn_partial requires "
        "RouterOptions::allow_partial");
  return scatter_knn(queries, k, deadline_ms, /*partial=*/true);
}

PartialRangeResult NetRouter::range_partial(const Matrix<float>& queries,
                                            dist_t radius,
                                            std::uint32_t deadline_ms) {
  if (!options_.allow_partial)
    throw std::invalid_argument(
        "rbc::dist::NetRouter: range_partial requires "
        "RouterOptions::allow_partial");
  return scatter_range(queries, radius, deadline_ms, /*partial=*/true);
}

}  // namespace rbc::dist
