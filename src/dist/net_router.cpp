#include "dist/net_router.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "shard/merge.hpp"

namespace rbc::dist {

using serve::net::ErrorCode;
using serve::net::InfoMsg;
using serve::net::RbcClient;
using serve::net::RemoteError;

NetRouter::NetRouter(const std::vector<Endpoint>& shards,
                     RouterOptions options)
    : options_(options) {
  if (shards.empty())
    throw std::invalid_argument("rbc::dist::NetRouter: no shard endpoints");

  std::vector<InfoMsg> infos;
  infos.reserve(shards.size());
  for (const Endpoint& ep : shards) {
    clients_.push_back(
        std::make_unique<RbcClient>(ep.host, ep.port, options_.client));
    infos.push_back(clients_.back()->info());
  }

  dim_ = infos.front().dim;
  metric_ = infos.front().metric;
  backend_ = infos.front().backend;
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < infos.size(); ++s) {
    if (infos[s].dim != dim_ || infos[s].metric != metric_)
      throw std::runtime_error(
          "rbc::dist::NetRouter: shard " + std::to_string(s) +
          " disagrees on dim/metric (dim " + std::to_string(infos[s].dim) +
          " metric '" + infos[s].metric + "' vs dim " + std::to_string(dim_) +
          " metric '" + metric_ + "')");
    total += infos[s].size;
  }
  size_ = static_cast<index_t>(total);

  // The id mapping is a pure function of (total, S, partition): re-derive it
  // and check the shards actually hold those row counts, which is the only
  // part of the contract observable over the wire.
  global_ids_ =
      shard::partition_rows(size_, num_shards(), options_.partition);
  for (std::size_t s = 0; s < infos.size(); ++s)
    if (global_ids_[s].size() != infos[s].size)
      throw std::runtime_error(
          "rbc::dist::NetRouter: shard " + std::to_string(s) + " holds " +
          std::to_string(infos[s].size) + " rows but the " +
          std::string(shard::partition_name(options_.partition)) +
          " partition of " + std::to_string(size_) + " rows over " +
          std::to_string(clients_.size()) + " shards assigns it " +
          std::to_string(global_ids_[s].size()));
}

KnnResult NetRouter::shard_knn(std::size_t s, const Matrix<float>& queries,
                               index_t k, RouterStats& local) {
  int attempts_left = options_.max_retries;
  for (;;) {
    local.requests += 1;
    try {
      return clients_[s]->knn(queries, k);
    } catch (const RemoteError& e) {
      if (e.code() != ErrorCode::kOverloaded || attempts_left-- <= 0) throw;
      local.retries += 1;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(1u, e.retry_after_ms())));
    }
  }
}

KnnResult NetRouter::knn(const Matrix<float>& queries, index_t k) {
  const index_t nq = queries.rows();
  if (nq > 0 && queries.cols() != dim_)
    throw std::invalid_argument(
        "rbc::dist::NetRouter: query dimension " +
        std::to_string(queries.cols()) + " != shard dimension " +
        std::to_string(dim_));
  if (k == 0 || k > size_)
    throw std::invalid_argument("rbc::dist::NetRouter: k = " +
                                std::to_string(k) +
                                " out of range for total size " +
                                std::to_string(size_));
  if (nq == 0) return KnnResult(0, k);

  // Scatter: one thread per shard (each drives its own connection; RbcClient
  // is single-threaded but exclusively owned here). Exceptions are carried
  // back and rethrown on the routing thread.
  const std::size_t S = clients_.size();
  std::vector<KnnResult> fanout(S);
  std::vector<index_t> shard_k(S);
  std::vector<std::exception_ptr> errors(S);
  std::vector<RouterStats> local(S);  // per-thread counters, summed after join
  {
    std::vector<std::thread> threads;
    threads.reserve(S);
    for (std::size_t s = 0; s < S; ++s)
      threads.emplace_back([&, s] {
        try {
          shard_k[s] = std::min<index_t>(
              k, static_cast<index_t>(global_ids_[s].size()));
          fanout[s] = shard_knn(s, queries, shard_k[s], local[s]);
        } catch (...) {
          errors[s] = std::current_exception();
        }
      });
    for (std::thread& t : threads) t.join();
  }
  for (const RouterStats& l : local) {
    stats_.requests += l.requests;
    stats_.retries += l.retries;
  }
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  // Trust boundary: a shard's answer is wire data. Validate its shape and
  // every shard-local id before the merge indexes global_ids_ and the
  // result matrices with them (Matrix::at is assert-only in release), so a
  // mismatched or buggy shard yields a clean error, never an out-of-bounds
  // read.
  for (std::size_t s = 0; s < S; ++s) {
    const KnnResult& r = fanout[s];
    if (r.ids.rows() != nq || r.ids.cols() != shard_k[s] ||
        r.dists.rows() != nq || r.dists.cols() != shard_k[s])
      throw serve::net::ProtocolError(
          "rbc::dist::NetRouter: shard " + std::to_string(s) +
          " answered a " + std::to_string(r.ids.rows()) + " x " +
          std::to_string(r.ids.cols()) + " knn block for a " +
          std::to_string(nq) + " x " + std::to_string(shard_k[s]) +
          " request");
    const index_t rows_held = static_cast<index_t>(global_ids_[s].size());
    for (index_t qi = 0; qi < nq; ++qi) {
      const index_t* row = r.ids.row(qi);
      for (index_t j = 0; j < shard_k[s]; ++j)
        if (row[j] >= rows_held)
          throw serve::net::ProtocolError(
              "rbc::dist::NetRouter: shard " + std::to_string(s) +
              " answered local id " + std::to_string(row[j]) +
              " but holds only " + std::to_string(rows_held) + " rows");
    }
  }

  // Gather: the same exact merge the in-process composite runs.
  std::vector<shard::MergeInput> inputs(S);
  for (std::size_t s = 0; s < S; ++s)
    inputs[s] = {&fanout[s], shard_k[s], &global_ids_[s]};
  KnnResult merged = shard::merge_shard_topk(nq, k, inputs);
  stats_.queries += nq;
  return merged;
}

std::vector<std::vector<index_t>> NetRouter::range(
    const Matrix<float>& queries, dist_t radius) {
  const index_t nq = queries.rows();
  if (nq > 0 && queries.cols() != dim_)
    throw std::invalid_argument(
        "rbc::dist::NetRouter: query dimension " +
        std::to_string(queries.cols()) + " != shard dimension " +
        std::to_string(dim_));

  const std::size_t S = clients_.size();
  std::vector<std::vector<std::vector<index_t>>> fanout(S);
  std::vector<std::exception_ptr> errors(S);
  {
    std::vector<std::thread> threads;
    threads.reserve(S);
    for (std::size_t s = 0; s < S; ++s)
      threads.emplace_back([&, s] {
        try {
          fanout[s] = clients_[s]->range(queries, radius);
        } catch (...) {
          errors[s] = std::current_exception();
        }
      });
    for (std::thread& t : threads) t.join();
  }
  stats_.requests += S;
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  // Same trust boundary as knn(): check shape and id ranges before the
  // remap indexes global_ids_ with wire-supplied shard-local ids.
  for (std::size_t s = 0; s < S; ++s) {
    if (fanout[s].size() != static_cast<std::size_t>(nq))
      throw serve::net::ProtocolError(
          "rbc::dist::NetRouter: shard " + std::to_string(s) + " answered " +
          std::to_string(fanout[s].size()) + " range rows for " +
          std::to_string(nq) + " queries");
    const index_t rows_held = static_cast<index_t>(global_ids_[s].size());
    for (const std::vector<index_t>& hits : fanout[s])
      for (index_t local : hits)
        if (local >= rows_held)
          throw serve::net::ProtocolError(
              "rbc::dist::NetRouter: shard " + std::to_string(s) +
              " answered local id " + std::to_string(local) +
              " but holds only " + std::to_string(rows_held) + " rows");
  }

  // Shard servers answer with shard-local ids sorted ascending; remapping
  // through the monotone global_ids keeps each shard's run sorted, and a
  // k-way append + sort matches the in-process composite's output exactly.
  std::vector<std::vector<index_t>> out(nq);
  for (index_t qi = 0; qi < nq; ++qi) {
    std::vector<index_t>& hits = out[qi];
    for (std::size_t s = 0; s < S; ++s)
      for (index_t local : fanout[s][qi])
        hits.push_back(global_ids_[s][local]);
    std::sort(hits.begin(), hits.end());
  }
  stats_.queries += nq;
  return out;
}

}  // namespace rbc::dist
