// NetRouter: fault-tolerant multi-process scatter/gather over shard-owner
// RbcServers.
//
// The in-process "sharded:<inner>" composite (shard/sharded_index.hpp) and
// the simulated DistributedRbc (dist/distributed_rbc.hpp) both answer the
// paper's §8 scale-out question inside one address space. NetRouter is the
// real thing: each shard of the database lives in its own server *process*
// (an RbcServer over a per-shard index), and the router fans each query
// block out over the wire, then merges the shards' top-k with the exact
// k-way merge of shard/merge.hpp — the very code path the in-process
// composite uses, so full-coverage answers are bit-identical to
// "sharded:<inner>" over the same partition, ties included (tested across
// real processes in tests/test_net_server.cpp).
//
// Topology (R replicas per shard, any one of which can answer for it):
//
//    clients ──> NetRouter ──scatter──> shard 0: replica A | replica B
//                   │       ──scatter──> shard 1: replica A | replica B
//                   │            ...
//                   └──gather: merge_shard_topk under global (distance, id)
//
// Fault tolerance (the full taxonomy and state machines are documented in
// docs/ARCHITECTURE.md "Fault tolerance"):
//   * Failover: a transport failure against one replica (connect refused,
//     reset, timeout, malformed frame) destroys that connection and moves
//     to the shard's next healthy replica; reconnection is attempted on
//     later use, and a reconnected replica's INFO is re-validated against
//     the topology before it serves again.
//   * Circuit breaker: per-endpoint; breaker_failures consecutive transport
//     failures open it for an exponentially growing window (deterministic
//     jitter, no shared randomness), after which a single half-open probe
//     either closes it or re-opens a doubled window. Open endpoints are
//     skipped on the hot path.
//   * Deadlines: knn/range take a deadline_ms budget; every attempt's
//     timeout is the *remaining* budget (propagated on the wire so servers
//     shed work past it), and failover stops when the budget does.
//   * Graceful degradation (opt-in allow_partial): when every replica of a
//     shard is down within the deadline, knn_partial/range_partial return
//     the exact merge over the covered shards plus a per-shard coverage
//     report instead of throwing. The strict knn()/range() always throw on
//     uncovered shards — bit-identical answers stay the default contract.
//
// The global-id mapping is derived, not transmitted: shard s's servers must
// hold exactly the rows shard::partition_rows(total, S, partition) assigns
// to s (ascending), which the router validates against each replica's INFO
// at connect time (sizes and dims must line up). Overload rejections from a
// shard are retried with the server's retry_after_ms hint.
//
// Not thread-safe: a router owns one connection per replica, and RbcClient
// is single-threaded. Run one router per routing thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/net/client.hpp"
#include "shard/sharded_index.hpp"  // Partition, partition_rows

namespace rbc::dist {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct RouterOptions {
  /// Row-partition scheme the shard servers were built with; the router
  /// re-derives the local->global id maps from it.
  shard::Partition partition = shard::Partition::kContiguous;
  /// Retries per shard request on kOverloaded before giving up (each sleeps
  /// the server's retry_after_ms hint first, capped by the deadline).
  int max_retries = 8;
  /// Transport failovers per shard request before giving up — the bound
  /// that keeps a no-deadline request from rotating replicas forever.
  int max_failovers = 8;
  /// Consecutive transport failures that open an endpoint's breaker.
  int breaker_failures = 3;
  /// First open window; doubles per consecutive open up to breaker_max_ms,
  /// plus a deterministic per-endpoint jitter of up to 25%.
  std::uint32_t breaker_base_ms = 50;
  std::uint32_t breaker_max_ms = 2'000;
  /// Permit knn_partial/range_partial to answer from surviving shards when
  /// a shard has no live replica (see class comment). Off by default: the
  /// strict bit-identical contract stays opt-out-only.
  bool allow_partial = false;
  serve::net::ClientOptions client;
};

/// Wire-level counters of one router (lifetime totals).
struct RouterStats {
  std::uint64_t requests = 0;   ///< shard attempts sent (incl. retries)
  std::uint64_t retries = 0;    ///< kOverloaded answers that were retried
  std::uint64_t queries = 0;    ///< query rows answered
  std::uint64_t transport_errors = 0;  ///< failed attempts (connect/reset/
                                       ///< timeout/malformed frame)
  std::uint64_t failovers = 0;    ///< moved to another replica mid-request
  std::uint64_t reconnects = 0;   ///< connections re-established + revalidated
  std::uint64_t breaker_opens = 0;      ///< endpoint breakers tripped open
  std::uint64_t breaker_probes = 0;     ///< half-open probe attempts
  std::uint64_t deadline_exceeded = 0;  ///< shard requests abandoned on budget
  std::uint64_t partial_answers = 0;    ///< answers missing >= 1 shard
};

/// Why (and whether) shard s contributed to a partial answer.
struct ShardCoverage {
  bool covered = true;
  std::string error;  ///< last failure when !covered
};

struct PartialKnnResult {
  KnnResult result{0, 0};
  std::vector<ShardCoverage> shards;  ///< one entry per shard

  bool complete() const {
    for (const ShardCoverage& s : shards)
      if (!s.covered) return false;
    return true;
  }
  serve::net::Coverage coverage() const {
    serve::net::Coverage c{0, static_cast<std::uint32_t>(shards.size())};
    for (const ShardCoverage& s : shards) c.covered += s.covered ? 1 : 0;
    return c;
  }
};

struct PartialRangeResult {
  std::vector<std::vector<index_t>> ids;
  std::vector<ShardCoverage> shards;

  bool complete() const {
    for (const ShardCoverage& s : shards)
      if (!s.covered) return false;
    return true;
  }
};

class NetRouter {
 public:
  /// Connects to every shard's replicas and validates the topology (same
  /// dim and metric everywhere; shard sizes must match the derived
  /// partition). Every shard needs at least one live replica at
  /// construction; dead replicas start with their breaker open and are
  /// probed on use. Throws std::runtime_error on validation failure or a
  /// fully-dead shard.
  explicit NetRouter(const std::vector<std::vector<Endpoint>>& shard_replicas,
                     RouterOptions options = {});

  /// Single-replica convenience: one endpoint per shard.
  explicit NetRouter(const std::vector<Endpoint>& shards,
                     RouterOptions options = {});

  /// Exact k nearest neighbors of each query row over the union of all
  /// shards, ascending (distance, id) — bit-identical to an in-process
  /// sharded:<inner> over the same partition. `deadline_ms` > 0 bounds the
  /// whole call and rides the wire (0 = unbounded). Throws
  /// std::invalid_argument on a malformed request (wrong dim, k == 0 or >
  /// total size) and RemoteError/std::runtime_error when any shard stays
  /// unreachable (regardless of allow_partial — use knn_partial to
  /// degrade).
  KnnResult knn(const Matrix<float>& queries, index_t k,
                std::uint32_t deadline_ms = 0);

  /// All global ids within `radius` of each query, ascending by id.
  std::vector<std::vector<index_t>> range(const Matrix<float>& queries,
                                          dist_t radius,
                                          std::uint32_t deadline_ms = 0);

  /// Degraded variants (require options.allow_partial, else
  /// std::invalid_argument): shards whose every replica failed within the
  /// deadline are reported uncovered instead of throwing, and the merge
  /// runs over the covered shards — exact on what it covers.
  PartialKnnResult knn_partial(const Matrix<float>& queries, index_t k,
                               std::uint32_t deadline_ms = 0);
  PartialRangeResult range_partial(const Matrix<float>& queries, dist_t radius,
                                   std::uint32_t deadline_ms = 0);

  index_t num_shards() const { return static_cast<index_t>(shards_.size()); }
  index_t size() const { return size_; }
  index_t dim() const { return dim_; }
  const std::string& metric() const { return metric_; }
  const std::string& backend() const { return backend_; }
  const RouterStats& stats() const { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;

  // One endpoint of one shard, with its connection and breaker state. All
  // mutation happens on the shard's scatter thread (one shard's replicas
  // are never touched by two threads at once) or between queries.
  struct Replica {
    Endpoint endpoint;
    std::unique_ptr<serve::net::RbcClient> client;  // null = disconnected
    bool validated = false;     // INFO checked against the topology
    int consecutive_failures = 0;
    int open_count = 0;         // consecutive breaker opens (backoff expo)
    Clock::time_point open_until{};  // breaker open before this instant
  };

  struct Shard {
    std::vector<Replica> replicas;
    std::size_t preferred = 0;  // last replica that answered (sticky)
  };

  // Scatter/gather over all shards with per-shard failover; the core of
  // both the strict (`partial` false: uncovered shards throw) and the
  // degraded (`partial` true: uncovered shards are reported) paths.
  PartialKnnResult scatter_knn(const Matrix<float>& queries, index_t k,
                               std::uint32_t deadline_ms, bool partial);
  PartialRangeResult scatter_range(const Matrix<float>& queries, dist_t radius,
                                   std::uint32_t deadline_ms, bool partial);

  // Runs `attempt(client, remaining_ms)` against shard s with overload
  // retries, replica failover, breaker bookkeeping, and the deadline
  // budget. Defined in the .cpp (used only there).
  template <class Fn>
  auto with_failover(std::size_t s, std::optional<Clock::time_point> deadline,
                     RouterStats& local, Fn&& attempt);

  // Connects (or reuses) replica r of shard s and re-validates its INFO
  // after a reconnect. Throws std::runtime_error on failure.
  serve::net::RbcClient& ensure_connected(std::size_t s, Replica& replica,
                                          RouterStats& local);
  void record_failure(std::size_t s, Replica& replica, RouterStats& local);
  void record_success(Replica& replica);
  // Deterministic jitter for the breaker's open window: a hash of the
  // endpoint and its open count, no global RNG (CP.3 stance of
  // common/rng.hpp).
  std::uint32_t open_window_ms(const Replica& replica) const;

  void validate_topology(const std::vector<serve::net::InfoMsg>& infos);

  RouterOptions options_;
  std::vector<Shard> shards_;
  std::vector<std::vector<index_t>> global_ids_;  // per shard, ascending
  index_t size_ = 0;
  index_t dim_ = 0;
  std::string metric_;
  std::string backend_;  // inner backend name (from the shards' INFO)
  RouterStats stats_;
};

}  // namespace rbc::dist
