// NetRouter: multi-process scatter/gather over shard-owner RbcServers.
//
// The in-process "sharded:<inner>" composite (shard/sharded_index.hpp) and
// the simulated DistributedRbc (dist/distributed_rbc.hpp) both answer the
// paper's §8 scale-out question inside one address space. NetRouter is the
// real thing: each shard of the database lives in its own server *process*
// (an RbcServer over a per-shard index), and the router fans each query
// block out over the wire, then merges the shards' top-k with the exact
// k-way merge of shard/merge.hpp — the very code path the in-process
// composite uses, so the answers are bit-identical to "sharded:<inner>"
// over the same partition, ties included (tested across real processes in
// tests/test_net_server.cpp).
//
// Topology:
//
//    clients ──> NetRouter ──scatter──> RbcServer (shard 0: rows of shard 0)
//                   │       ──scatter──> RbcServer (shard 1: rows of shard 1)
//                   │            ...
//                   └──gather: merge_shard_topk under global (distance, id)
//
// The global-id mapping is derived, not transmitted: shard s's server must
// hold exactly the rows shard::partition_rows(total, S, partition) assigns
// to s (ascending), which the router validates against each server's INFO
// at connect time (sizes and dims must line up). Overload rejections from a
// shard are retried with the server's retry_after_ms hint; anything else
// propagates.
//
// Not thread-safe: a router owns one connection per shard, and RbcClient is
// single-threaded. Run one router per routing thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/net/client.hpp"
#include "shard/sharded_index.hpp"  // Partition, partition_rows

namespace rbc::dist {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct RouterOptions {
  /// Row-partition scheme the shard servers were built with; the router
  /// re-derives the local->global id maps from it.
  shard::Partition partition = shard::Partition::kContiguous;
  /// Retries per shard request on kOverloaded before giving up (each sleeps
  /// the server's retry_after_ms hint first).
  int max_retries = 8;
  serve::net::ClientOptions client;
};

/// Wire-level counters of one router (lifetime totals).
struct RouterStats {
  std::uint64_t requests = 0;   ///< shard requests sent (incl. retries)
  std::uint64_t retries = 0;    ///< kOverloaded answers that were retried
  std::uint64_t queries = 0;    ///< query rows answered
};

class NetRouter {
 public:
  /// Connects to every shard server and validates the topology (same dim
  /// and metric everywhere; shard sizes must match the derived partition).
  /// Throws std::runtime_error on connect/validation failure.
  explicit NetRouter(const std::vector<Endpoint>& shards,
                     RouterOptions options = {});

  /// Exact k nearest neighbors of each query row over the union of all
  /// shards, ascending (distance, id) — bit-identical to an in-process
  /// sharded:<inner> over the same partition. Throws std::invalid_argument
  /// on a malformed request (wrong dim, k == 0 or > total size) and
  /// RemoteError/std::runtime_error on unrecoverable shard failures.
  KnnResult knn(const Matrix<float>& queries, index_t k);

  /// All global ids within `radius` of each query, ascending by id.
  std::vector<std::vector<index_t>> range(const Matrix<float>& queries,
                                          dist_t radius);

  index_t num_shards() const { return static_cast<index_t>(clients_.size()); }
  index_t size() const { return size_; }
  index_t dim() const { return dim_; }
  const std::string& metric() const { return metric_; }
  const std::string& backend() const { return backend_; }
  const RouterStats& stats() const { return stats_; }

 private:
  // Sends one knn request to shard s, retrying overloads per options_;
  // request/retry counts accumulate into `local` (scatter threads each get
  // their own, summed after the join — stats_ itself is single-threaded).
  KnnResult shard_knn(std::size_t s, const Matrix<float>& queries, index_t k,
                      RouterStats& local);

  RouterOptions options_;
  std::vector<std::unique_ptr<serve::net::RbcClient>> clients_;
  std::vector<std::vector<index_t>> global_ids_;  // per shard, ascending
  index_t size_ = 0;
  index_t dim_ = 0;
  std::string metric_;
  std::string backend_;  // inner backend name (from the shards' INFO)
  RouterStats stats_;
};

}  // namespace rbc::dist
