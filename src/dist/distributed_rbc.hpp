// Distributed RBC (paper §8): the database sharded over a set of simulated
// workers, served exactly, with the communication and balance quantities the
// paper lists as open questions made directly measurable.
//
// Architecture — the two-stage exact search of §5.2 split at its natural
// seam:
//   * the COORDINATOR keeps only the representatives (O(nr) rows): per query
//     it runs BF(q, R), computes the pruning bounds, and contacts exactly
//     the workers that own members of surviving ownership lists;
//   * each WORKER keeps its shard of the packed ownership lists (sorted by
//     distance-to-representative, so the Claim-2 early exit still applies)
//     and answers with its local top-k, which the coordinator merges.
//
// Sharding policies:
//   * kByRepresentative — whole ownership lists placed greedily
//     (largest-first onto the least-loaded worker): queries touch only the
//     workers owning surviving lists, the paper's §8 proposal;
//   * kRandomPoints — every point to a uniform random worker, the naive
//     baseline: every list is scattered, so nearly every worker is contacted
//     per query.
//
// Exactness contract: identical results to brute force under the
// (distance, id) order, ties included, for every worker count and policy
// (tested). All traffic flows through a metered in-process "network";
// meters are atomic, so concurrent const searches are safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "bruteforce/bf.hpp"
#include "common/matrix.hpp"
#include "distance/metrics.hpp"
#include "rbc/params.hpp"
#include "rbc/rbc_exact.hpp"  // the single-node search this distributes
#include "rbc/stats.hpp"

namespace rbc::dist {

/// Cumulative traffic counters (what a cluster's network monitor reports).
struct TrafficStats {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

/// Atomic cluster-wide traffic meter: every simulated message is noted here,
/// including from concurrent searches.
class NetworkMeter {
 public:
  void note_message(std::uint64_t bytes) noexcept {
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    messages_.fetch_add(1, std::memory_order_relaxed);
  }
  void reset() noexcept {
    bytes_.store(0);
    messages_.store(0);
  }
  TrafficStats total() const noexcept {
    return {bytes_.load(std::memory_order_relaxed),
            messages_.load(std::memory_order_relaxed)};
  }

 private:
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> messages_{0};
};

/// How database points are placed on workers.
enum class Sharding : std::uint8_t {
  /// Whole ownership lists, greedily bin-packed largest-first (paper §8).
  kByRepresentative = 0,
  /// Each point to an independent uniform random worker (naive baseline).
  kRandomPoints = 1,
};

/// Per-search work and contact statistics (the distributed analogue of
/// SearchStats).
struct DistStats {
  std::uint64_t queries = 0;
  /// Coordinator-side distance evaluations against representatives.
  std::uint64_t rep_dist_evals = 0;
  /// Worker-side distance evaluations against list members (sum over
  /// workers).
  std::uint64_t list_dist_evals = 0;
  /// Total worker contacts (one request + one response each).
  std::uint64_t workers_contacted = 0;

  double workers_contacted_per_query() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(workers_contacted) /
                              static_cast<double>(queries);
  }

  void merge(const DistStats& other) {
    queries += other.queries;
    rep_dist_evals += other.rep_dist_evals;
    list_dist_evals += other.list_dist_evals;
    workers_contacted += other.workers_contacted;
  }
};

/// A coordinator plus W simulated workers serving exact k-NN over a sharded
/// database. Build ships every point to its worker (metered); search
/// contacts only the workers owning surviving lists. Not thread-safe
/// against concurrent build; concurrent const searches are safe.
class DistributedRbc {
 public:
  DistributedRbc() = default;

  /// Shards X over `workers` workers. Representatives, ownership lists and
  /// pruning bounds match RbcExactIndex built with the same params (same
  /// sampling), so the single-worker configuration degenerates to the
  /// single-node exact search.
  void build(const Matrix<float>& X, index_t workers, RbcParams params = {},
             Sharding sharding = Sharding::kByRepresentative);

  /// Exact k-NN for a batch of queries; parallel across queries. When
  /// `stats` is non-null, aggregated work/contact statistics are added.
  KnnResult search(const Matrix<float>& Q, index_t k,
                   DistStats* stats = nullptr) const;

  index_t num_workers() const {
    return static_cast<index_t>(workers_.size());
  }
  index_t num_reps() const { return reps_.rows(); }
  index_t dim() const { return dim_; }
  index_t size() const { return n_; }

  /// Points stored on worker w.
  index_t worker_points(index_t w) const {
    return static_cast<index_t>(workers_[w].packed_ids.size());
  }

  /// Cumulative list-member distance evaluations performed by worker w
  /// (reset at build).
  std::uint64_t worker_list_evals(index_t w) const {
    return workers_[w].list_evals->load(std::memory_order_relaxed);
  }

  /// The cluster's traffic meter (ingest + query traffic).
  const NetworkMeter& network() const { return network_; }

 private:
  /// One worker's shard: a CSR over (representative -> its local member
  /// portion), portions sorted by (distance to rep, id) like the
  /// single-node packed layout.
  struct Worker {
    std::vector<index_t> offsets;      // nr + 1
    std::vector<index_t> packed_ids;   // original db ids
    std::vector<dist_t> packed_dist;   // rho(x, owner rep)
    Matrix<float> packed;              // member rows, same order
    // Cumulative work meter; a pointer so Worker stays movable.
    std::unique_ptr<std::atomic<std::uint64_t>> list_evals;
  };

  /// Scans worker w's portions of the surviving lists for one query,
  /// merging into `out`. Returns distances computed.
  std::uint64_t scan_worker(const Worker& worker, const float* q,
                            const std::vector<index_t>& survivors,
                            const std::vector<dist_t>& rep_dists,
                            dist_t rep_bound, dist_t gamma1,
                            TopK& out) const;

  Euclidean metric_{};
  RbcParams params_{};
  Sharding sharding_ = Sharding::kByRepresentative;
  index_t n_ = 0;
  index_t dim_ = 0;

  Matrix<float> reps_;            // nr x d coordinator-resident rows
  std::vector<index_t> rep_ids_;  // original ids of representatives
  std::vector<dist_t> psi_;       // list radii (coordinator-resident)
  std::vector<Worker> workers_;

  mutable NetworkMeter network_;
};

}  // namespace rbc::dist
