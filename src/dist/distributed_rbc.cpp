#include "dist/distributed_rbc.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

#include "bruteforce/kernel_scan.hpp"
#include "bruteforce/topk.hpp"
#include "common/counters.hpp"
#include "common/rng.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/runtime.hpp"
#include "rbc/sampling.hpp"

namespace rbc::dist {

namespace {

/// Simulated wire cost of shipping one point at ingest: the row payload plus
/// its id and its distance-to-representative (which the worker needs for the
/// sorted-list early exit).
std::uint64_t point_wire_bytes(index_t dim) {
  return static_cast<std::uint64_t>(dim) * sizeof(float) + sizeof(index_t) +
         sizeof(dist_t);
}

/// Fixed per-message envelope (routing + framing).
constexpr std::uint64_t kMessageHeaderBytes = 16;

}  // namespace

void DistributedRbc::build(const Matrix<float>& X, index_t workers,
                           RbcParams params, Sharding sharding) {
  assert(workers >= 1);
  params_ = params;
  sharding_ = sharding;
  n_ = X.rows();
  dim_ = X.cols();
  network_.reset();

  // Coordinator state: the same representative draw and ownership
  // assignment as RbcExactIndex with these params (same sampling, ties to
  // the lowest rep index), so a one-worker cluster degenerates to the
  // single-node exact search.
  rep_ids_ = choose_representatives(n_, params);
  const index_t nr = static_cast<index_t>(rep_ids_.size());
  reps_ = Matrix<float>(nr, dim_);
  for (index_t r = 0; r < nr; ++r) reps_.copy_row_from(X, rep_ids_[r], r);

  std::vector<index_t> owner(n_);
  std::vector<dist_t> owner_dist(n_);
  parallel_for(0, n_, [&](index_t x) {
    const float* px = X.row(x);
    dist_t best = kInfDist;
    index_t best_rep = 0;
    for (index_t r = 0; r < nr; ++r) {
      const dist_t d = metric_(px, reps_.row(r), dim_);
      if (d < best) {
        best = d;
        best_rep = r;
      }
    }
    owner[x] = best_rep;
    owner_dist[x] = best;
  });
  counters::add_dist_evals(static_cast<std::uint64_t>(n_) * nr);

  // Ownership lists sorted by (distance to rep, id) — the single-node
  // packed order, preserved inside every shard portion.
  std::vector<std::vector<std::pair<dist_t, index_t>>> lists(nr);
  for (index_t x = 0; x < n_; ++x)
    lists[owner[x]].emplace_back(owner_dist[x], x);
  psi_.assign(nr, dist_t{0});
  for (index_t r = 0; r < nr; ++r) {
    std::sort(lists[r].begin(), lists[r].end());
    if (!lists[r].empty()) psi_[r] = lists[r].back().first;
  }

  // Placement policy: point -> worker.
  std::vector<index_t> worker_of_point(n_);
  if (sharding == Sharding::kByRepresentative) {
    // Greedy largest-first bin packing of whole lists onto the least-loaded
    // worker: keeps per-worker point counts within a small factor unless a
    // single list dominates the database.
    std::vector<index_t> by_size(nr);
    std::iota(by_size.begin(), by_size.end(), index_t{0});
    std::sort(by_size.begin(), by_size.end(), [&](index_t a, index_t b) {
      return lists[a].size() != lists[b].size()
                 ? lists[a].size() > lists[b].size()
                 : a < b;
    });
    std::vector<std::uint64_t> load(workers, 0);
    for (const index_t r : by_size) {
      const index_t w = static_cast<index_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      load[w] += lists[r].size();
      for (const auto& [d, id] : lists[r]) worker_of_point[id] = w;
    }
  } else {
    // Uniform random placement — scatters every list over all workers.
    Rng rng(params.seed ^ 0xd157'5eedULL);
    for (index_t x = 0; x < n_; ++x)
      worker_of_point[x] = rng.uniform_index(workers);
  }

  // Materialize the shards: per worker a CSR over (rep -> local portion),
  // portions inheriting the sorted order. Ship everything (metered).
  workers_.clear();
  workers_.resize(workers);
  for (index_t w = 0; w < workers; ++w) {
    Worker& worker = workers_[w];
    worker.offsets.assign(nr + 1, 0);
    worker.list_evals = std::make_unique<std::atomic<std::uint64_t>>(0);
  }
  for (index_t r = 0; r < nr; ++r)
    for (const auto& [d, id] : lists[r])
      ++workers_[worker_of_point[id]].offsets[r + 1];
  for (index_t w = 0; w < workers; ++w) {
    Worker& worker = workers_[w];
    for (index_t r = 0; r < nr; ++r)
      worker.offsets[r + 1] += worker.offsets[r];
    const index_t count = worker.offsets[nr];
    worker.packed_ids.resize(count);
    worker.packed_dist.resize(count);
    worker.packed = Matrix<float>(count, dim_);
  }
  {
    std::vector<std::vector<index_t>> cursor(workers);
    for (index_t w = 0; w < workers; ++w)
      cursor[w].assign(workers_[w].offsets.begin(),
                       workers_[w].offsets.end() - 1);
    for (index_t r = 0; r < nr; ++r) {
      for (const auto& [d, id] : lists[r]) {
        const index_t w = worker_of_point[id];
        Worker& worker = workers_[w];
        const index_t slot = cursor[w][r]++;
        worker.packed_ids[slot] = id;
        worker.packed_dist[slot] = d;
        worker.packed.copy_row_from(X, id, slot);
      }
    }
  }
  for (index_t w = 0; w < workers; ++w)
    network_.note_message(kMessageHeaderBytes +
                          worker_points(w) * point_wire_bytes(dim_));
}

std::uint64_t DistributedRbc::scan_worker(
    const Worker& worker, const float* q, const std::vector<index_t>& survivors,
    const std::vector<dist_t>& rep_dists, dist_t rep_bound, dist_t gamma1,
    TopK& out) const {
  std::uint64_t computed = 0;
  for (const index_t r : survivors) {
    const index_t lo = worker.offsets[r], hi = worker.offsets[r + 1];
    if (lo == hi) continue;
    const dist_t dr = rep_dists[r];
    // Workers cannot see the coordinator's (or each other's) tightening
    // bound; min(rep_bound, local worst) is still an upper bound on the
    // true k-th NN distance, so every strict prune below is exact-safe.
    const dist_t list_bound = std::min(rep_bound, out.worst());
    if (params_.use_overlap_rule && dr > list_bound + psi_[r]) continue;
    if (params_.use_lemma_rule && dr > 2 * list_bound + gamma1) continue;
    if (hi - lo >= RbcExactIndex<>::kKernelMinSegment) {
      // Kernelized portion scan, same pattern as the single-node index:
      // freeze the early-exit / annulus window from the entry bound
      // (binary search over the sorted portion distances), run the window
      // through the dispatched row-block kernel, re-measure prefilter
      // survivors with the scalar metric. Superset of the adaptive scan =>
      // identical results.
      const dist_t* pd = worker.packed_dist.data();
      index_t seg_hi = hi, seg_lo = lo;
      if (params_.use_early_exit)
        seg_hi = static_cast<index_t>(
            std::upper_bound(pd + lo, pd + hi, dr + list_bound) - pd);
      if (params_.use_annulus_bound)
        seg_lo = static_cast<index_t>(
            std::lower_bound(pd + lo, pd + seg_hi, dr - list_bound) - pd);
      kernel_scan_rows(
          q, worker.packed, seg_lo, seg_hi, metric_, out,
          [&worker](index_t p) { return worker.packed_ids[p]; });
      computed += seg_hi - seg_lo;
      continue;
    }
    for (index_t p = lo; p < hi; ++p) {
      const dist_t b = std::min(rep_bound, out.worst());
      // Claim-2 early exit: portions keep the sorted-by-rho(x,r) order.
      if (params_.use_early_exit && worker.packed_dist[p] > dr + b) break;
      if (params_.use_annulus_bound && worker.packed_dist[p] < dr - b)
        continue;
      out.push(metric_(q, worker.packed.row(p), dim_), worker.packed_ids[p]);
      ++computed;
    }
  }
  worker.list_evals->fetch_add(computed, std::memory_order_relaxed);
  counters::add_dist_evals(computed);
  return computed;
}

KnnResult DistributedRbc::search(const Matrix<float>& Q, index_t k,
                                 DistStats* stats) const {
  assert(Q.cols() == dim_);
  const index_t nr = reps_.rows();
  const index_t nw = num_workers();
  KnnResult result(Q.rows(), k);

  const int nt = max_threads();
  std::vector<DistStats> tstats(static_cast<std::size_t>(nt));
  struct Scratch {
    std::vector<dist_t> rep_dists;
    std::vector<index_t> survivors;
  };
  std::vector<Scratch> scratch(static_cast<std::size_t>(nt));

  parallel_for_dynamic(0, Q.rows(), [&](index_t qi) {
    const auto tid = static_cast<std::size_t>(thread_id());
    Scratch& s = scratch[tid];
    DistStats& local = tstats[tid];
    const float* q = Q.row(qi);

    // ---- coordinator stage 1: BF(q, R) ------------------------------
    s.rep_dists.resize(nr);
    TopK rep_top(k);
    dist_t gamma1 = kInfDist;
    for (index_t r = 0; r < nr; ++r) {
      const dist_t d = metric_(q, reps_.row(r), dim_);
      s.rep_dists[r] = d;
      rep_top.push(d, r);
      if (d < gamma1) gamma1 = d;
    }
    counters::add_dist_evals(nr);
    const dist_t rep_bound = rep_top.worst();
    local.queries += 1;
    local.rep_dist_evals += nr;

    // ---- coordinator stage 2: prune representatives -----------------
    s.survivors.clear();
    for (index_t r = 0; r < nr; ++r) {
      const dist_t dr = s.rep_dists[r];
      if (params_.use_overlap_rule && dr > rep_bound + psi_[r]) continue;
      if (params_.use_lemma_rule && dr > 2 * rep_bound + gamma1) continue;
      s.survivors.push_back(r);
    }
    // Nearest representatives first, so every worker's local bound
    // tightens as early as possible.
    std::sort(s.survivors.begin(), s.survivors.end(),
              [&](index_t a, index_t b) {
                const dist_t da = s.rep_dists[a];
                const dist_t db = s.rep_dists[b];
                return da < db || (da == db && a < b);
              });

    // ---- stage 3: contact the workers owning surviving lists --------
    TopK merged(k);
    for (index_t w = 0; w < nw; ++w) {
      const Worker& worker = workers_[w];
      bool owns_survivor = false;
      for (const index_t r : s.survivors)
        if (worker.offsets[r + 1] > worker.offsets[r]) {
          owns_survivor = true;
          break;
        }
      if (!owns_survivor) continue;

      // Request: the query row plus the surviving (rep, distance) pairs.
      network_.note_message(
          kMessageHeaderBytes +
          static_cast<std::uint64_t>(dim_) * sizeof(float) +
          s.survivors.size() * (sizeof(index_t) + sizeof(dist_t)));
      TopK local_top(k);
      local.list_dist_evals += scan_worker(worker, q, s.survivors,
                                           s.rep_dists, rep_bound, gamma1,
                                           local_top);
      // Response: the worker's local top-k.
      network_.note_message(kMessageHeaderBytes +
                            static_cast<std::uint64_t>(k) *
                                (sizeof(dist_t) + sizeof(index_t)));
      merged.merge_from(local_top);
      local.workers_contacted += 1;
    }
    merged.extract_sorted(result.dists.row(qi), result.ids.row(qi));
  });

  if (stats != nullptr)
    for (const DistStats& s : tstats) stats->merge(s);
  return result;
}

}  // namespace rbc::dist
